//! The paper's running example (Figs. 2–4), end to end.
//!
//! Reproduces, on the 3-qubit running example of the paper:
//!
//! * the amplitudes and probabilities of Fig. 2,
//! * the prefix-sum array and the worked binary search of Fig. 3,
//! * the decision diagram of Fig. 4 with edge probabilities (Fig. 4c) and
//!   the proposed 2-norm normalization (Fig. 4d), exported as Graphviz DOT.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example running_example
//! ```

use dd::{DdPackage, EdgeProbabilities};
use statevector::PrefixSampler;
use weaksim::{Backend, WeakSimulator};

fn main() -> Result<(), weaksim::RunError> {
    let circuit = algorithms::running_example();
    println!("circuit:\n{circuit}");

    // Strong simulation (Fig. 2, middle): the amplitudes.
    let strong = WeakSimulator::new(Backend::StateVector).strong(&circuit)?;
    println!("amplitudes and probabilities (Fig. 2):");
    for index in 0..8u64 {
        println!("  |{index:03b}>  p = {:.4}", strong.probability(index));
    }

    // Vector-based sampling (Fig. 3): prefix sums + binary search.
    if let weaksim::StrongState::StateVector(vector) = &strong {
        let sampler = PrefixSampler::new(vector);
        println!("\nprefix sums (Fig. 3): {:?}", sampler.prefix_sums());
        println!(
            "binary search for p_hat = 1/2 lands on index {} = |011> (Example 8)",
            sampler.locate(0.5)
        );
    }

    // DD-based sampling (Fig. 4): the decision diagram and edge probabilities.
    let mut package = DdPackage::new();
    let state = dd::simulate(&mut package, &circuit).expect("validated circuit");
    println!(
        "\ndecision diagram has {} nodes (Fig. 4b draws {} before node sharing)",
        state.node_count(&package),
        6
    );
    let probabilities = EdgeProbabilities::new(&package, &state);
    println!("DOT export with branch probabilities (Fig. 4c/4d):\n");
    println!("{}", dd::to_dot(&package, &state, Some(&probabilities)));

    // Finally draw a few samples, like the measurement column of Fig. 2.
    let outcome = WeakSimulator::new(Backend::DecisionDiagram).run(&circuit, 1_000_000, 7)?;
    println!("one million DD-based samples (frequencies):");
    for (bits, count) in outcome.histogram.to_bitstring_counts() {
        println!("  |{bits}> : {:.4}", count as f64 / 1_000_000.0);
    }
    Ok(())
}

//! Noisy-hardware emulation: teleportation under a swept error rate.
//!
//! The ideal teleportation circuit moves `ry(theta)|0>` onto qubit 2, so
//! `P(c2 = 1) = sin^2(theta/2)` exactly.  Under the uniform hardware model
//! (`algorithms::hardware_noise`: depolarizing noise after every gate plus
//! bit-flip read-out error) each shot realizes every noise site as a random
//! Kraus branch, and the teleported marginal drifts towards the fully mixed
//! `1/2` as the error rate grows — "just like the real thing", including
//! the imperfections.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example noisy_teleportation
//! ```

use weaksim::{Backend, WeakSimulator};

fn main() -> Result<(), weaksim::RunError> {
    let theta = 1.2f64;
    let ideal = (theta / 2.0).sin().powi(2);
    let (circuit, sweep) = algorithms::teleportation_noise_sweep(theta, 8, 0.2);
    println!("teleporting ry({theta})|0>: ideal P(c2 = 1) = {ideal:.4}, mixed limit = 0.5000\n");
    println!("  error rate p   P(c2 = 1)   deviation from ideal");

    let shots = 100_000u64;
    let mut last_deviation = 0.0f64;
    for (p, model) in sweep {
        let outcome = WeakSimulator::new(Backend::DecisionDiagram)
            .with_noise(model)
            .run(&circuit, shots, 2020)?;
        let one_count: u64 = outcome
            .histogram
            .counts()
            .iter()
            .filter(|(&record, _)| record & 0b100 != 0)
            .map(|(_, &count)| count)
            .sum();
        let p_one = one_count as f64 / shots as f64;
        let deviation = (p_one - ideal).abs();
        println!("  {p:<12.3}   {p_one:.4}      {deviation:.4}");
        last_deviation = deviation;
    }

    println!(
        "\nat the top of the sweep the teleported bit has drifted {last_deviation:.4} from ideal"
    );

    // The same run is seed-deterministic: repeating it reproduces the
    // histogram bit for bit.
    let model = algorithms::hardware_noise(0.05);
    let mut sim = WeakSimulator::new(Backend::DecisionDiagram).with_noise(model);
    let a = sim.run(&circuit, 10_000, 7)?;
    let b = sim.run(&circuit, 10_000, 7)?;
    assert_eq!(a.histogram, b.histogram);
    println!("noisy runs are seed-deterministic (10k shots reproduced exactly)");
    Ok(())
}

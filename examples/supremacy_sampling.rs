//! Sampling supremacy-style random circuits and validating that the output
//! is statistically indistinguishable from the exact distribution.
//!
//! Random grid circuits are the hardest workload in the paper's evaluation
//! (their states have little structure to compress).  This example runs a
//! moderate instance with both backends, compares the empirical histograms
//! against the exact output distribution with a chi-square test, and prints
//! the cross-entropy style statistics used to benchmark real devices.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example supremacy_sampling -- 4 4 8
//! ```

use weaksim::stats;
use weaksim::{Backend, WeakSimulator};

fn main() -> Result<(), weaksim::RunError> {
    let mut args = std::env::args().skip(1);
    let rows: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let cols: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let depth: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let (circuit, spec) = algorithms::supremacy(rows, cols, depth, 2020);
    println!(
        "{}: {} qubits, {} gates, depth {}",
        circuit.name(),
        spec.qubits,
        circuit.len(),
        circuit.stats().depth
    );

    let shots = 200_000;
    let dd = WeakSimulator::new(Backend::DecisionDiagram).run(&circuit, shots, 99)?;
    println!(
        "DD-based:     {:>9} nodes,      strong {:.2} s, sampling {:.2} s",
        dd.representation_size,
        dd.strong_time.as_secs_f64(),
        dd.weak_time().as_secs_f64()
    );
    let sv = WeakSimulator::new(Backend::StateVector).run(&circuit, shots, 99)?;
    println!(
        "vector-based: {:>9} amplitudes, strong {:.2} s, sampling {:.2} s",
        sv.representation_size,
        sv.strong_time.as_secs_f64(),
        sv.weak_time().as_secs_f64()
    );

    // Validate statistical indistinguishability against the exact
    // distribution (available from either strong simulation).
    for outcome in [&dd, &sv] {
        let chi = stats::chi_square_test(&outcome.histogram, |index| {
            outcome.strong().probability(index)
        });
        let tvd = stats::total_variation_distance(&outcome.histogram, |index| {
            outcome.strong().probability(index)
        });
        println!(
            "{}: chi-square = {:.1} (dof {}), p = {:.3}, TVD = {:.4} -> {}",
            outcome.backend,
            chi.statistic,
            chi.degrees_of_freedom,
            chi.p_value,
            tvd,
            if chi.is_consistent(0.01) {
                "consistent with the ideal quantum computer"
            } else {
                "REJECTED"
            }
        );
    }
    Ok(())
}

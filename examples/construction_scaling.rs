//! Measures DD construction wall time on `supremacy_4x5_10` for the
//! sequential path and the parallel path at several worker counts.
use std::time::Instant;

fn main() {
    let (circuit, _) = algorithms::supremacy(4, 5, 10, 7);
    let start = Instant::now();
    let mut package = dd::DdPackage::new();
    let state = dd::simulate(&mut package, &circuit).expect("valid circuit");
    println!(
        "sequential: {:.2}s ({} nodes)",
        start.elapsed().as_secs_f64(),
        state.node_count(&package)
    );
    for workers in [1usize, 2, 4] {
        let start = Instant::now();
        let mut package = dd::DdPackage::new();
        let state =
            dd::simulate_with_threads(&mut package, &circuit, workers).expect("valid circuit");
        println!(
            "workers={workers}: {:.2}s ({} nodes)",
            start.elapsed().as_secs_f64(),
            state.node_count(&package)
        );
    }
}

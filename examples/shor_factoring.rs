//! Factoring with Shor's algorithm driven entirely by weak simulation.
//!
//! This example runs the full classical post-processing loop on top of the
//! simulator: sample the order-finding circuit, extract the period from the
//! counting-register measurement by continued fractions, and derive the
//! factors — i.e. it uses the simulator exactly the way the algorithm would
//! use a physical quantum computer.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example shor_factoring -- 15 7
//! ```

use weaksim::{Backend, WeakSimulator};

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Extracts the denominator of the best rational approximation of
/// `value / 2^bits` with denominator at most `max_denominator` (continued
/// fraction expansion — the classical post-processing step of Shor's
/// algorithm).
fn continued_fraction_denominator(value: u64, bits: u32, max_denominator: u64) -> u64 {
    let mut numerator = value as u128;
    let mut denominator = 1u128 << bits;
    let (mut p_prev, mut p) = (1u128, 0u128);
    let (mut q_prev, mut q) = (0u128, 1u128);
    while numerator != 0 {
        let a = denominator / numerator;
        (p_prev, p) = (p, a * p + p_prev);
        (q_prev, q) = (q, a * q + q_prev);
        let remainder = denominator % numerator;
        denominator = numerator;
        numerator = remainder;
        if q > u128::from(max_denominator) {
            return q_prev.max(1) as u64;
        }
    }
    q.max(1) as u64
}

fn main() -> Result<(), weaksim::RunError> {
    let mut args = std::env::args().skip(1);
    let modulus: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(15);
    let base: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let (circuit, spec) = algorithms::shor(modulus, base);
    println!(
        "order finding for {modulus} with base {base}: {} qubits, {} gates (true order: {})",
        circuit.num_qubits(),
        circuit.len(),
        spec.order
    );

    let shots = 2_000;
    let outcome = WeakSimulator::new(Backend::DecisionDiagram).run(&circuit, shots, 42)?;
    println!(
        "decision diagram: {} nodes; {} samples in {:.3} s",
        outcome.representation_size,
        shots,
        outcome.weak_time().as_secs_f64()
    );

    // Post-process: read the counting register (qubits n..3n), run continued
    // fractions, and try to derive factors.
    let counting_bits = u32::from(spec.counting_bits);
    let mut candidate_orders = std::collections::BTreeMap::new();
    for (&sample, &count) in outcome.histogram.counts() {
        let counting_value = sample >> spec.work_bits;
        if counting_value == 0 {
            continue;
        }
        let order = continued_fraction_denominator(counting_value, counting_bits, modulus);
        *candidate_orders.entry(order).or_insert(0u64) += count;
    }

    let mut found = false;
    let mut orders: Vec<_> = candidate_orders.into_iter().collect();
    orders.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    for (order, count) in orders.iter().take(5) {
        let valid = *order > 0 && mod_pow(base, *order, modulus) == 1;
        println!("candidate order {order} (supported by {count} shots, valid: {valid})");
        if valid && order % 2 == 0 {
            let half = mod_pow(base, order / 2, modulus);
            if half != modulus - 1 {
                let f1 = gcd(half + 1, modulus);
                let f2 = gcd(half.saturating_sub(1), modulus);
                for f in [f1, f2] {
                    if f > 1 && f < modulus {
                        println!(
                            "  -> non-trivial factor: {f} (since {f} * {} = {modulus})",
                            modulus / f
                        );
                        found = true;
                    }
                }
            }
        }
    }
    if !found {
        println!("no factor extracted from this run (retry with another base or more shots)");
    }
    Ok(())
}

fn mod_pow(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    let mut result = 1u64;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            result = result * base % modulus;
        }
        base = base * base % modulus;
        exp >>= 1;
    }
    result
}

//! Thousand-qubit Clifford circuits through the segmented router.
//!
//! Fully-Clifford circuits do not need a dense backend at all: the router
//! recognizes them (via `Circuit::clifford_segments`) and executes them on
//! the polynomial-time stabilizer-tableau engine, where a 1000-qubit GHZ
//! state is prepared and sampled 100 000 times in well under a second —
//! a register size for which a dense state vector could not even be
//! allocated (`2^1000` amplitudes).  The example also runs a
//! repetition-code syndrome-extraction cycle — a *dynamic* Clifford
//! circuit (mid-circuit resets) — shot by shot on the tableau, and prints
//! which engine executed each segment.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example clifford_router -- 1000 100000
//! ```

use std::time::Instant;
use weaksim::{Backend, WeakSimulator};

fn main() -> Result<(), weaksim::RunError> {
    let mut args = std::env::args().skip(1);
    let n: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1000);
    let shots: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);

    let mut sim = WeakSimulator::new(Backend::DecisionDiagram).with_clifford_router();

    // A GHZ state across the whole register: static, fully Clifford.
    let start = Instant::now();
    let ghz = algorithms::ghz(n);
    let outcome = sim.run(&ghz, shots, 7)?;
    let elapsed = start.elapsed();
    println!(
        "{}: route {}, {} generators, {} shots in {:.3} s",
        ghz.name(),
        outcome.route,
        outcome.representation_size,
        outcome.histogram.shots(),
        elapsed.as_secs_f64()
    );
    // Only the all-zeros and all-ones strings (of the low 64 qubits) occur.
    let all_ones = if n >= 64 { u64::MAX } else { (1 << n) - 1 };
    assert!(outcome
        .histogram
        .counts()
        .keys()
        .all(|&k| k == 0 || k == all_ones));
    println!(
        "  P(0...0) = {:.4}, P(1...1) = {:.4}",
        outcome.histogram.frequency(0),
        outcome.histogram.frequency(all_ones)
    );

    // Repetition-code syndrome extraction: dynamic (resets), still fully
    // Clifford, so every trajectory runs on the tableau.
    let data = n / 2 + 1;
    let cycle = algorithms::stabilizer_cycle(data, 2);
    let cycle_shots = shots.min(100);
    let start = Instant::now();
    let outcome = sim.run(&cycle, cycle_shots, 11)?;
    let elapsed = start.elapsed();
    println!(
        "{}: {} qubits, route {}, {} shots in {:.3} s",
        cycle.name(),
        cycle.num_qubits(),
        outcome.route,
        outcome.histogram.shots(),
        elapsed.as_secs_f64()
    );
    let readout_ones = if data >= 64 {
        u64::MAX
    } else {
        (1 << data) - 1
    };
    assert!(outcome
        .histogram
        .counts()
        .keys()
        .all(|&k| k == 0 || k == readout_ones));
    println!(
        "  logical readout: P(0_L) = {:.3}, P(1_L) = {:.3}",
        outcome.histogram.frequency(0),
        outcome.histogram.frequency(readout_ones)
    );
    Ok(())
}

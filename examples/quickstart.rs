//! Quickstart: weak simulation of a Bell pair.
//!
//! Builds the two-qubit Bell circuit, runs it through both backends and
//! prints the sampled histograms — the kind of output a physical quantum
//! computer would return.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use circuit::{Circuit, Qubit};
use weaksim::{Backend, WeakSimulator};

fn main() -> Result<(), weaksim::RunError> {
    // The running circuit of Example 2 in the paper: H then CNOT.
    let mut bell = Circuit::with_name(2, "bell");
    bell.h(Qubit(0));
    bell.cx(Qubit(0), Qubit(1));

    let shots = 10_000;
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = WeakSimulator::new(backend).run(&bell, shots, 2020)?;
        println!("=== {backend} sampling of {} ===", bell.name());
        println!(
            "representation size: {} ({}), strong simulation {:.3} ms, sampling {:.3} ms",
            outcome.representation_size,
            match backend {
                Backend::DecisionDiagram => "DD nodes",
                Backend::StateVector => "amplitudes",
            },
            outcome.strong_time.as_secs_f64() * 1e3,
            outcome.weak_time().as_secs_f64() * 1e3,
        );
        for (bits, count) in outcome.histogram.to_bitstring_counts() {
            println!(
                "  |{bits}> observed {count} times ({:.3})",
                count as f64 / shots as f64
            );
        }
        println!();
    }
    Ok(())
}

//! Iterative phase estimation driven from OpenQASM text with `if (c==k)`
//! feed-forward — the flagship classically-controlled workload.
//!
//! A single ancilla qubit is measured and reset once per phase bit, and the
//! already-extracted bits select classically-conditioned phase corrections
//! (`if (c==v) p(...) q[0];`).  The circuit is generated, exported to QASM,
//! re-parsed from that text and run on both backends: for an exact
//! `num_bits`-bit phase every shot recovers the same register value `m` with
//! `phase = 2*pi*m / 2^num_bits`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ipe
//! ```

use weaksim::{Backend, WeakSimulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_bits = 4u16;
    let m = 11u64; // phase = 2*pi * 11/16
    let phase = 2.0 * std::f64::consts::PI * m as f64 / (1u64 << num_bits) as f64;

    let generated = algorithms::ipe(num_bits, phase);
    let qasm = circuit::qasm::to_qasm(&generated)?;
    println!("{qasm}");
    assert!(
        qasm.contains("if (c=="),
        "the QASM text carries feed-forward"
    );

    // Round-trip through the textual form: what runs below is the parsed
    // program, not the generated circuit.
    let circuit = circuit::qasm::parse(&qasm)?;
    assert!(circuit.is_dynamic());
    println!(
        "estimating phase 2*pi*{m}/{}: expect every shot to read c = {m}\n",
        1u64 << num_bits
    );

    let shots = 20_000u64;
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = WeakSimulator::new(backend).run(&circuit, shots, 2026)?;
        let recovered = outcome.histogram.frequency(m);
        println!(
            "{backend}: {} trajectories in {:.3} ms, P(c = {m}) = {recovered:.4}",
            shots,
            outcome.weak_time().as_secs_f64() * 1e3,
        );
        for (bits, count) in outcome.histogram.to_bitstring_counts() {
            println!("  c = {bits} : {count}");
        }
        assert!(
            recovered > 0.999,
            "{backend}: expected a deterministic phase read-out, got {recovered}"
        );
    }
    Ok(())
}

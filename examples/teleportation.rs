//! Quantum teleportation with real mid-circuit measurement — the flagship
//! dynamic-circuit workload.
//!
//! Qubit 0 is prepared in `ry(theta)|0>`, entangled with a Bell pair on
//! qubits 1 and 2, and measured mid-circuit together with qubit 1.  The
//! correction gates run *after* the measurements (on the collapsed qubits,
//! which is equivalent to classical control), and the teleported state is
//! finally read out of qubit 2.  The sampled marginal of `c[2]` must match
//! `sin^2(theta/2)` on both backends — the state really moved.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example teleportation
//! ```

use circuit::Circuit;
use weaksim::{Backend, WeakSimulator};

fn main() -> Result<(), weaksim::RunError> {
    let theta = 1.2f64;
    let circuit = algorithms::teleportation(theta);
    assert!(circuit.is_dynamic());

    println!("{}", qasm_or_note(&circuit));
    let expected = (theta / 2.0).sin().powi(2);
    println!("expected P(c2 = 1) = sin^2({}/2) = {expected:.4}\n", theta);

    let shots = 100_000u64;
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = WeakSimulator::new(backend).run(&circuit, shots, 2020)?;
        let one_count: u64 = outcome
            .histogram
            .counts()
            .iter()
            .filter(|(&record, _)| record & 0b100 != 0)
            .map(|(_, &count)| count)
            .sum();
        println!(
            "{backend}: {} trajectories in {:.3} ms, P(c2 = 1) = {:.4}",
            shots,
            outcome.weak_time().as_secs_f64() * 1e3,
            one_count as f64 / shots as f64,
        );
        for (bits, count) in outcome.histogram.to_bitstring_counts() {
            println!("  c = {bits} : {count}");
        }
    }
    Ok(())
}

/// The QASM form of the circuit (every operation used here is exportable).
fn qasm_or_note(circuit: &Circuit) -> String {
    circuit::qasm::to_qasm(circuit).unwrap_or_else(|e| format!("(not exportable: {e})"))
}

//! Sampling the Quantum Fourier Transform at sizes where dense state vectors
//! stop being practical.
//!
//! The paper's headline result (Table I) is that the DD-based sampler
//! handles `qft_32` and `qft_48` easily while the vector-based sampler runs
//! out of memory.  This example reproduces that contrast with a configurable
//! memory budget: the dense backend is given the paper's 32 GiB budget
//! *virtually* (it refuses to allocate, it does not actually swap), while
//! the decision-diagram backend runs the real thing.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example qft_sampling -- 32
//! ```

use statevector::MemoryBudget;
use weaksim::{Backend, RunError, WeakSimulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let qubits: u16 = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(32);
    let shots = 100_000;
    let circuit = algorithms::qft(qubits, true);
    println!("weak simulation of {} with {shots} shots", circuit.name());

    // DD-based sampling always works: the QFT of |0...0> is a product state
    // with one decision-diagram node per qubit.
    let dd = WeakSimulator::new(Backend::DecisionDiagram).run(&circuit, shots, 7)?;
    println!(
        "DD-based:     {:>10} nodes, strong {:.3} s, sampling {:.3} s, {} distinct outcomes",
        dd.representation_size,
        dd.strong_time.as_secs_f64(),
        dd.weak_time().as_secs_f64(),
        dd.histogram.distinct_outcomes(),
    );

    // Vector-based sampling with the paper's 32 GiB budget; qft_32 and above
    // report a memory-out exactly as Table I does.
    let vector = WeakSimulator::new(Backend::StateVector)
        .with_memory_budget(MemoryBudget::from_gib(32))
        .run(&circuit, shots, 7);
    match vector {
        Ok(outcome) => println!(
            "vector-based: {:>10} amplitudes, strong {:.3} s, sampling {:.3} s",
            outcome.representation_size,
            outcome.strong_time.as_secs_f64(),
            outcome.weak_time().as_secs_f64(),
        ),
        Err(RunError::MemoryOut { required_bytes, .. }) => println!(
            "vector-based: MO (memory out) — would need {:.1} GiB",
            required_bytes as f64 / f64::from(1u32 << 30)
        ),
        Err(other) => return Err(other.into()),
    }
    Ok(())
}

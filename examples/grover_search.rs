//! Grover's search, sampled like a physical quantum computer would be.
//!
//! Generates a Grover circuit with a random oracle, samples it, and checks
//! whether the most frequent measurement outcome is indeed the marked
//! element — which is exactly how one would use the real device.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example grover_search -- 12 2021
//! ```

use weaksim::{Backend, WeakSimulator};

fn main() -> Result<(), weaksim::RunError> {
    let mut args = std::env::args().skip(1);
    let n: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2021);

    let search_space = (1u64 << n) as f64;
    let iterations = (std::f64::consts::FRAC_PI_4 * search_space.sqrt()).floor() as usize;
    let (circuit, spec) = algorithms::grover_with_iterations(n, seed, iterations.max(1));
    println!(
        "grover search over {n} qubits (+1 ancilla), marked element {:0width$b}, {} iterations, {} gates",
        spec.marked,
        spec.iterations,
        circuit.len(),
        width = usize::from(n)
    );

    let shots = 10_000;
    let outcome = WeakSimulator::new(Backend::DecisionDiagram).run(&circuit, shots, seed)?;
    println!(
        "decision diagram has {} nodes; drew {shots} samples in {:.3} s",
        outcome.representation_size,
        outcome.weak_time().as_secs_f64()
    );

    // The ancilla is the top qubit; mask it off to read the search register.
    let mask = (1u64 << n) - 1;
    let mut search_counts = std::collections::BTreeMap::new();
    for (&outcome_bits, &count) in outcome.histogram.counts() {
        *search_counts.entry(outcome_bits & mask).or_insert(0u64) += count;
    }
    let (most_common, count) = search_counts
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(&o, &c)| (o, c))
        .expect("at least one sample");

    println!(
        "most frequent search-register outcome: {most_common:0width$b} ({} of {shots} shots)",
        count,
        width = usize::from(n)
    );
    if most_common == spec.marked {
        println!("success: the sampler found the marked element");
    } else {
        println!("the marked element was not the most frequent outcome (unlucky run)");
    }
    Ok(())
}

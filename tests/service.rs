//! Integration tests for the service broker: single-flight coalescing under
//! an 8-thread soak (exactly one construction per fingerprint, histograms
//! bit-identical to single-threaded runs), deterministic load shedding with
//! [`weaksim::RunError::Overloaded`], typed-error propagation to every
//! coalesced waiter, and crash-safe snapshot persistence with corruption
//! tolerance.  The fault-injected variants are gated behind the
//! `fault-inject` feature.

use circuit::Circuit;
use std::path::PathBuf;
use std::sync::Barrier;
use std::time::{Duration, Instant};
use weaksim::service::{RetryPolicy, ServiceBroker, ServiceConfig};
use weaksim::{
    ArtifactCache, Backend, CacheOutcome, CancelToken, RunError, RunGovernor, ShotHistogram,
    WeakSimulator,
};

const SHOTS: u64 = 4_000;
const SEED: u64 = 0x5eed_cafe;

/// A unique temp path for this test binary's snapshot files.
fn snapshot_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("weaksim-service-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    dir.join(name)
}

/// The mixed workload: four distinct fingerprints with different structure
/// (and therefore different artifact payload shapes in snapshots).
fn workload() -> Vec<Circuit> {
    vec![
        algorithms::ghz(6),
        algorithms::w_state(6),
        algorithms::qft(6, true),
        algorithms::random_circuit(6, 8, 3),
    ]
}

/// Single-threaded reference histograms for the workload under `SEED`.
fn references(circuits: &[Circuit]) -> Vec<ShotHistogram> {
    circuits
        .iter()
        .map(|circuit| {
            WeakSimulator::new(Backend::DecisionDiagram)
                .run(circuit, SHOTS, SEED)
                .expect("reference run")
                .histogram
        })
        .collect()
}

#[test]
fn eight_thread_soak_builds_each_fingerprint_exactly_once() {
    let circuits = workload();
    let expected = references(&circuits);
    let broker = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
    let sim = WeakSimulator::new(Backend::DecisionDiagram);

    const THREADS: usize = 8;
    const ROUNDS: usize = 6;
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let barrier = &barrier;
            let broker = &broker;
            let sim = &sim;
            let circuits = &circuits;
            let expected = &expected;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    // Stagger the first visit per worker so hot hits,
                    // coalesced waits and the cold builds all interleave.
                    for offset in 0..circuits.len() {
                        let index = (worker + round + offset) % circuits.len();
                        let outcome = broker
                            .serve(sim, &circuits[index], SHOTS, SEED)
                            .expect("soak serve");
                        assert_eq!(
                            outcome.histogram, expected[index],
                            "worker {worker} round {round} circuit {index} diverged \
                             from the single-threaded reference"
                        );
                    }
                }
            });
        }
    });

    let service = broker.stats();
    let cache = broker.cache().stats();
    let total = (THREADS * ROUNDS * circuits.len()) as u64;
    assert_eq!(
        service.builds,
        circuits.len() as u64,
        "exactly one construction per distinct fingerprint"
    );
    assert_eq!(service.build_failures, 0);
    assert_eq!(service.shed, 0, "the default queue never sheds this load");
    assert_eq!((service.inflight, service.queued), (0, 0));
    assert_eq!(cache.entries, circuits.len());
    // Counter coherence: every request probes the cache exactly once, and
    // every miss either built the artifact or coalesced onto the builder.
    assert_eq!(cache.hits + cache.misses, total);
    assert_eq!(service.builds + service.coalesced, cache.misses);
}

#[test]
fn full_slots_shed_with_overloaded_and_recover() {
    // One construction slot, zero queue: any cold request arriving while a
    // build is in flight is shed immediately.  The in-flight build is a
    // heavy random circuit held open just long enough to observe the shed,
    // then cancelled — which must surface as a typed error, not poison the
    // broker for later requests.
    let token = CancelToken::new();
    let sim = WeakSimulator::new(Backend::DecisionDiagram).with_governor(
        RunGovernor::unlimited()
            .with_cancel_token(token.clone())
            .with_check_interval(64),
    );
    let broker = ServiceBroker::new(
        ArtifactCache::unbounded(),
        ServiceConfig {
            max_inflight_builds: 1,
            queue_capacity: 0,
            retry: RetryPolicy {
                max_attempts: 1,
                backoff: Duration::ZERO,
            },
        },
    );
    let heavy = algorithms::random_circuit(16, 80, 11);
    let light = algorithms::ghz(4);

    std::thread::scope(|scope| {
        let heavy_serve = scope.spawn(|| broker.serve(&sim, &heavy, 100, 1));

        let observe_by = Instant::now() + Duration::from_secs(60);
        while broker.stats().inflight == 0 {
            assert!(
                Instant::now() < observe_by,
                "heavy build never occupied the construction slot"
            );
            std::thread::yield_now();
        }

        let shed = broker.serve(&sim, &light, 100, 1);
        match shed {
            Err(RunError::Overloaded {
                queue_depth,
                estimated_wait,
            }) => {
                assert_eq!(queue_depth, 0, "nothing was queued ahead");
                assert!(estimated_wait > Duration::ZERO);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(broker.stats().shed, 1);

        token.cancel();
        let heavy_result = heavy_serve.join().expect("heavy thread");
        assert!(
            matches!(heavy_result, Err(RunError::Cancelled(_))),
            "cancelled build must surface typed, got {heavy_result:?}"
        );
    });

    // The failed build retired its slot and released the permit: a fresh
    // simulator (the old one's token stays cancelled) serves immediately.
    let service = broker.stats();
    assert_eq!((service.inflight, service.queued), (0, 0));
    assert_eq!(service.build_failures, 1);
    let fresh = WeakSimulator::new(Backend::DecisionDiagram);
    let outcome = broker.serve(&fresh, &light, 100, 1).expect("recovered");
    assert_eq!(outcome.cache, Some(CacheOutcome::Miss));
}

#[test]
fn snapshot_restart_serves_intact_entries_warm_and_corrupted_entries_cold() {
    let circuits = workload();
    let expected = references(&circuits);
    let broker = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
    let sim = WeakSimulator::new(Backend::DecisionDiagram);
    for circuit in &circuits {
        broker
            .serve(&sim, circuit, SHOTS, SEED)
            .expect("cold serve");
    }

    let path = snapshot_path("restart.snap");
    let written = broker.write_snapshot(&path).expect("write snapshot");
    assert_eq!(written.entries, circuits.len());

    // Clean restart: every entry restores, every serve is a warm hit with a
    // histogram bit-identical to the pre-restart run.
    let restarted = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
    let report = restarted.load_snapshot(&path).expect("load snapshot");
    assert_eq!(report.loaded, circuits.len());
    assert_eq!((report.skipped, report.torn), (0, false));
    for (circuit, reference) in circuits.iter().zip(&expected) {
        let outcome = restarted.serve(&sim, circuit, SHOTS, SEED).expect("warm");
        assert_eq!(outcome.cache, Some(CacheOutcome::Hit));
        assert_eq!(&outcome.histogram, reference);
    }
    assert_eq!(restarted.stats().builds, 0, "nothing rebuilt after restore");

    // Corrupt the *last* entry's payload (entries are LRU-ordered, so the
    // last one belongs to the most recently used circuit): its checksum
    // fails, it reloads as a reported skip, and the corrupted request
    // rebuilds cold — still bit-identical.  The intact entries stay warm.
    let mut bytes = std::fs::read(&path).expect("read snapshot back");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&path, &bytes).expect("write corrupted snapshot");

    let corrupted = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
    let report = corrupted.load_snapshot(&path).expect("load corrupted");
    assert_eq!(report.loaded, circuits.len() - 1);
    assert_eq!(report.skipped, 1);
    assert!(!report.torn);
    assert!(
        report.messages.iter().any(|m| m.contains("checksum")),
        "skip must be reported: {:?}",
        report.messages
    );
    // The most recently *served* circuit in the loop above was the restarted
    // broker's warm pass... but the snapshot was written by `broker`, whose
    // most recent use was the last cold serve: the final workload circuit.
    let cold_index = circuits.len() - 1;
    for (index, (circuit, reference)) in circuits.iter().zip(&expected).enumerate() {
        let outcome = corrupted.serve(&sim, circuit, SHOTS, SEED).expect("serve");
        let want = if index == cold_index {
            CacheOutcome::Miss
        } else {
            CacheOutcome::Hit
        };
        assert_eq!(outcome.cache, Some(want), "circuit {index}");
        assert_eq!(&outcome.histogram, reference, "circuit {index}");
    }
    assert_eq!(
        corrupted.stats().builds,
        1,
        "only the corrupted entry rebuilt"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_snapshot_is_a_reported_tear_never_a_panic() {
    let broker = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
    let sim = WeakSimulator::new(Backend::DecisionDiagram);
    broker
        .serve(&sim, &algorithms::ghz(5), 500, 1)
        .expect("cold serve");
    broker
        .serve(&sim, &algorithms::w_state(5), 500, 1)
        .expect("cold serve");

    let path = snapshot_path("truncated.snap");
    broker.write_snapshot(&path).expect("write snapshot");
    let bytes = std::fs::read(&path).expect("read snapshot back");

    // Every possible truncation point must load without panicking, restore
    // only fully-intact entries, and report the tear (except the empty
    // prefix cases, which report an unusable header instead).
    for keep in 0..bytes.len() {
        std::fs::write(&path, &bytes[..keep]).expect("write truncation");
        let report = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default())
            .load_snapshot(&path)
            .expect("truncated load");
        assert!(
            report.torn || report.loaded + report.skipped == 2,
            "truncation at {keep} neither completed nor reported a tear"
        );
        assert!(report.loaded <= 2);
    }
    std::fs::remove_file(&path).ok();
}

#[cfg(feature = "fault-inject")]
mod fault_injected {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use weaksim::service::ServiceFaultPlan;

    #[test]
    fn transient_build_failure_retries_and_succeeds() {
        let broker = ServiceBroker::new(
            ArtifactCache::unbounded(),
            ServiceConfig {
                retry: RetryPolicy {
                    max_attempts: 3,
                    backoff: Duration::from_millis(1),
                },
                ..ServiceConfig::default()
            },
        );
        broker.set_fault_plan(ServiceFaultPlan {
            fail_builds_from: Some(1),
            fail_builds_count: 2,
            transient_faults: true,
            ..ServiceFaultPlan::default()
        });
        let sim = WeakSimulator::new(Backend::DecisionDiagram);
        let outcome = broker
            .serve(&sim, &algorithms::ghz(4), 500, 7)
            .expect("third attempt succeeds");
        assert_eq!(outcome.cache, Some(CacheOutcome::Miss));
        let stats = broker.stats();
        assert_eq!(stats.retries, 2, "two transient failures were retried");
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.build_failures, 0);
    }

    #[test]
    fn transient_failures_past_the_retry_budget_surface_typed() {
        let broker = ServiceBroker::new(
            ArtifactCache::unbounded(),
            ServiceConfig {
                retry: RetryPolicy {
                    max_attempts: 2,
                    backoff: Duration::from_millis(1),
                },
                ..ServiceConfig::default()
            },
        );
        broker.set_fault_plan(ServiceFaultPlan {
            fail_builds_from: Some(1),
            fail_builds_count: 0, // every attempt fails
            transient_faults: true,
            ..ServiceFaultPlan::default()
        });
        let sim = WeakSimulator::new(Backend::DecisionDiagram);
        let result = broker.serve(&sim, &algorithms::ghz(4), 500, 7);
        assert!(
            matches!(result, Err(RunError::Deadline(_))),
            "exhausted retries surface the transient error, got {result:?}"
        );
        let stats = broker.stats();
        assert_eq!(stats.retries, 1, "one retry before the budget ran out");
        assert_eq!(stats.build_failures, 1);
        assert!(broker.cache().is_empty(), "nothing was published");
    }

    #[test]
    fn failed_build_propagates_the_same_error_to_every_waiter() {
        let broker = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
        // The only build attempt fails permanently, after a delay long
        // enough that the second thread reliably coalesces onto its slot.
        broker.set_fault_plan(ServiceFaultPlan {
            fail_builds_from: Some(1),
            fail_builds_count: 1,
            transient_faults: false,
            build_delay: Some(Duration::from_millis(300)),
            ..ServiceFaultPlan::default()
        });
        let sim = WeakSimulator::new(Backend::DecisionDiagram);
        let circuit = algorithms::ghz(4);

        let saw_cancelled = AtomicBool::new(false);
        let barrier = Barrier::new(2);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let barrier = &barrier;
                    let broker = &broker;
                    let sim = &sim;
                    let circuit = &circuit;
                    let saw_cancelled = &saw_cancelled;
                    scope.spawn(move || {
                        barrier.wait();
                        match broker.serve(sim, circuit, 500, 7) {
                            Err(RunError::Cancelled(_)) => {
                                saw_cancelled.store(true, Ordering::Relaxed);
                            }
                            Err(other) => panic!("unexpected error {other}"),
                            // The loser of the admission race can arrive
                            // *after* the failed slot retired; it then owns
                            // a fresh build (attempt 2, not injected) and
                            // legitimately succeeds.
                            Ok(outcome) => {
                                assert_eq!(outcome.cache, Some(CacheOutcome::Miss));
                            }
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("waiter thread");
            }
        });
        assert!(
            saw_cancelled.load(Ordering::Relaxed),
            "the injected failure must reach at least the building request"
        );
        assert_eq!(broker.stats().build_failures, 1);

        // The poisoned slot was retired with the failure: the next request
        // starts a fresh (non-injected) build and succeeds.
        let outcome = broker.serve(&sim, &circuit, 500, 7).expect("fresh build");
        assert!(matches!(
            outcome.cache,
            Some(CacheOutcome::Miss) | Some(CacheOutcome::Hit)
        ));
        assert_eq!(outcome.histogram.shots(), 500);
    }

    #[test]
    fn injected_snapshot_write_failure_leaves_the_previous_snapshot_intact() {
        let broker = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
        let sim = WeakSimulator::new(Backend::DecisionDiagram);
        broker
            .serve(&sim, &algorithms::ghz(4), 500, 7)
            .expect("cold serve");

        let path = snapshot_path("write-fault.snap");
        broker.write_snapshot(&path).expect("first write succeeds");
        let good = std::fs::read(&path).expect("read first snapshot");

        broker.set_fault_plan(ServiceFaultPlan {
            fail_snapshot_write_at: Some(2),
            ..ServiceFaultPlan::default()
        });
        let result = broker.write_snapshot(&path);
        assert!(result.is_err(), "second write must fail by injection");
        assert_eq!(
            std::fs::read(&path).expect("snapshot still readable"),
            good,
            "a failed write must not damage the existing snapshot"
        );

        // Third call (past the injection point) succeeds again.
        broker.write_snapshot(&path).expect("third write succeeds");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_snapshot_read_failure_surfaces_as_io_error() {
        let broker = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
        let sim = WeakSimulator::new(Backend::DecisionDiagram);
        broker
            .serve(&sim, &algorithms::ghz(4), 500, 7)
            .expect("cold serve");
        let path = snapshot_path("read-fault.snap");
        broker.write_snapshot(&path).expect("write snapshot");

        let restarted = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
        restarted.set_fault_plan(ServiceFaultPlan {
            fail_snapshot_read_at: Some(1),
            ..ServiceFaultPlan::default()
        });
        assert!(restarted.load_snapshot(&path).is_err());
        // The second load (past the injection) restores normally.
        let report = restarted.load_snapshot(&path).expect("second load");
        assert_eq!(report.loaded, 1);
        assert!(restarted.cache().stats().entries == 1);
        std::fs::remove_file(&path).ok();
    }
}

//! Cross-checks the two strong-simulation substrates against each other:
//! for a wide range of circuits the decision-diagram engine and the dense
//! statevector engine must produce the same state (up to numerical noise).

use dd::DdPackage;
use mathkit::Complex;

fn assert_backends_agree(circuit: &circuit::Circuit, tolerance: f64) {
    let dense = statevector::simulate(circuit).expect("dense simulation succeeds");
    let mut package = DdPackage::new();
    let diagram = dd::simulate(&mut package, circuit).expect("DD simulation succeeds");
    for index in 0..dense.len() as u64 {
        let a = dense.amplitude(index);
        let b = diagram.amplitude(&package, index);
        assert!(
            (a - b).norm() < tolerance,
            "{}: amplitude {index} differs: dense {a}, DD {b}",
            circuit.name()
        );
    }
}

#[test]
fn bell_ghz_and_w_states_agree() {
    assert_backends_agree(&algorithms::bell_pair(), 1e-9);
    assert_backends_agree(&algorithms::ghz(7), 1e-9);
    assert_backends_agree(&algorithms::w_state(6), 1e-9);
}

#[test]
fn qft_states_agree() {
    for n in [2u16, 4, 6, 9] {
        assert_backends_agree(&algorithms::qft(n, true), 1e-8);
        assert_backends_agree(&algorithms::qft(n, false), 1e-8);
    }
}

#[test]
fn qft_implements_the_discrete_fourier_transform() {
    // Semantics check: applied to basis state |x>, the QFT (with swaps)
    // produces amplitudes e^{2 pi i x y / 2^n} / sqrt(2^n) at |y>, with qubit
    // k carrying bit k of both x and y.
    let n = 4u16;
    let dim = 1u64 << n;
    for x in [0u64, 1, 5, 11, 15] {
        let mut circuit = circuit::Circuit::new(n);
        for bit in 0..n {
            if x & (1 << bit) != 0 {
                circuit.x(circuit::Qubit(bit));
            }
        }
        circuit.extend_from(&algorithms::qft(n, true));
        let state = statevector::simulate(&circuit).unwrap();
        let scale = 1.0 / (dim as f64).sqrt();
        for y in 0..dim {
            let angle = std::f64::consts::TAU * (x as f64) * (y as f64) / dim as f64;
            let expected = Complex::from_polar(scale, angle);
            let got = state.amplitude(y);
            assert!(
                (got - expected).norm() < 1e-9,
                "x = {x}, y = {y}: got {got}, expected {expected}"
            );
        }
    }
}

#[test]
fn grover_iterations_agree() {
    let (circuit, _) = algorithms::grover_with_iterations(6, 11, 4);
    assert_backends_agree(&circuit, 1e-8);
}

#[test]
fn shor_order_finding_agrees_on_small_moduli() {
    let (circuit, _) = algorithms::shor(15, 7);
    assert_backends_agree(&circuit, 1e-8);
}

#[test]
fn jellium_circuits_agree() {
    let (circuit, _) = algorithms::jellium(2, 2);
    assert_backends_agree(&circuit, 1e-8);
}

#[test]
fn supremacy_circuits_agree() {
    let (circuit, _) = algorithms::supremacy(3, 3, 8, 5);
    assert_backends_agree(&circuit, 1e-8);
}

#[test]
fn random_circuits_agree() {
    for seed in 0..8 {
        let circuit = algorithms::random_circuit(6, 6, seed);
        assert_backends_agree(&circuit, 1e-8);
    }
}

#[test]
fn running_example_agrees_and_matches_the_paper() {
    let circuit = algorithms::running_example();
    assert_backends_agree(&circuit, 1e-12);
    let dense = statevector::simulate(&circuit).unwrap();
    let expected = [0.0, 0.375, 0.0, 0.375, 0.125, 0.0, 0.0, 0.125];
    for (i, &p) in expected.iter().enumerate() {
        assert!((dense.probability(i as u64) - p).abs() < 1e-12);
    }
    // Fig. 4a's non-zero amplitudes.
    assert!((dense.amplitude(1) - Complex::new(0.0, -(3.0_f64 / 8.0).sqrt())).norm() < 1e-12);
    assert!((dense.amplitude(4) - Complex::from_real((1.0_f64 / 8.0).sqrt())).norm() < 1e-12);
}

#[test]
fn both_normalization_schemes_agree_with_the_dense_engine() {
    for normalization in [dd::Normalization::LeftMost, dd::Normalization::TwoNorm] {
        let circuit = algorithms::random_circuit(5, 5, 33);
        let dense = statevector::simulate(&circuit).unwrap();
        let mut package = DdPackage::with_normalization(normalization);
        let diagram = dd::simulate(&mut package, &circuit).unwrap();
        for index in 0..dense.len() as u64 {
            assert!(
                (dense.amplitude(index) - diagram.amplitude(&package, index)).norm() < 1e-8,
                "normalization {normalization:?}, index {index}"
            );
        }
    }
}

#[test]
fn qasm_round_trip_preserves_the_simulated_state() {
    let mut original = circuit::Circuit::with_name(4, "roundtrip");
    original
        .h(circuit::Qubit(0))
        .cx(circuit::Qubit(0), circuit::Qubit(1))
        .t(circuit::Qubit(2))
        .cp(
            mathkit::Angle::pi_over(4),
            circuit::Qubit(1),
            circuit::Qubit(3),
        )
        .swap(circuit::Qubit(2), circuit::Qubit(3))
        .rz(mathkit::Angle::Radians(0.8), circuit::Qubit(0));
    let text = circuit::qasm::to_qasm(&original).expect("exportable circuit");
    let parsed = circuit::qasm::parse(&text).expect("parsable output");

    let a = statevector::simulate(&original).unwrap();
    let b = statevector::simulate(&parsed).unwrap();
    assert!(a.fidelity(&b) > 1.0 - 1e-9);
}

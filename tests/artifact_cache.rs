//! Integration tests for the artifact layer: cached runs must be
//! bit-identical to uncached ones for the same seed on every engine, the
//! request fingerprint must be sensitive to everything that changes the
//! prepared sampler, shared artifacts must sample correctly from many
//! threads at once, and the byte-budgeted cache must evict LRU-first and
//! rebuild evicted artifacts transparently.

use circuit::{Circuit, NoiseChannel, NoiseModel, OneQubitGate, Qubit};
use mathkit::Angle;
use weaksim::{ArtifactCache, Backend, CacheOutcome, RunGovernor, WeakSimulator};

/// Runs `circuit` cold and warm through a fresh cache plus once without any
/// cache, asserting that all three histograms are bit-identical and the
/// cache outcomes are reported correctly.
fn assert_cached_runs_bit_identical(mut sim: WeakSimulator, circuit: &Circuit) {
    let shots = 20_000;
    let seed = 0xfeed_5eed;
    let uncached = sim.run(circuit, shots, seed).unwrap();
    assert_eq!(uncached.cache, None);

    let cache = ArtifactCache::unbounded();
    let mut sim = sim.with_cache(&cache);
    let cold = sim.run(circuit, shots, seed).unwrap();
    assert_eq!(cold.cache, Some(CacheOutcome::Miss));
    let warm = sim.run(circuit, shots, seed).unwrap();
    assert_eq!(warm.cache, Some(CacheOutcome::Hit));

    assert_eq!(cold.histogram, uncached.histogram, "cold != uncached");
    assert_eq!(warm.histogram, uncached.histogram, "warm != uncached");
    assert_eq!(cold.route, uncached.route, "routes must agree");
    assert_eq!(warm.route, uncached.route, "routes must agree");
}

#[test]
fn dd_cached_runs_match_uncached_bit_for_bit() {
    // Trailing measurements exercise the record-relabelling path too.
    let mut circuit = algorithms::ghz(7);
    circuit.measure(Qubit(2), 0).measure(Qubit(5), 1);
    assert_cached_runs_bit_identical(WeakSimulator::new(Backend::DecisionDiagram), &circuit);
}

#[test]
fn sv_cached_runs_match_uncached_bit_for_bit() {
    let circuit = algorithms::qft(6, true);
    assert_cached_runs_bit_identical(WeakSimulator::new(Backend::StateVector), &circuit);
}

#[test]
fn routed_tableau_cached_runs_match_uncached_bit_for_bit() {
    // GHZ is fully Clifford: under the router both the cached and uncached
    // runs must serve it from the tableau engine.
    let circuit = algorithms::ghz(24);
    let mut sim = WeakSimulator::new(Backend::DecisionDiagram).with_clifford_router();
    let probe = sim.run(&circuit, 100, 1).unwrap();
    assert!(probe.route.used_tableau(), "router must pick the tableau");
    assert_cached_runs_bit_identical(sim, &circuit);
}

#[test]
fn request_fingerprint_is_sensitive_to_the_whole_request() {
    let base = |theta: f64, clbits: u16| {
        let mut c = Circuit::new(3);
        c.set_num_clbits(clbits);
        c.h(Qubit(0));
        c.gate(OneQubitGate::Rz(Angle::Radians(theta)), Qubit(1));
        c.cx(Qubit(0), Qubit(2));
        c
    };
    let theta = 0.123_456_789_f64;
    let circuit = base(theta, 3);
    let sim = WeakSimulator::new(Backend::DecisionDiagram);
    let key = sim.request_fingerprint(&circuit);

    // Stable across calls and simulator instances with equal configuration.
    assert_eq!(key, sim.request_fingerprint(&circuit));
    assert_eq!(
        key,
        WeakSimulator::new(Backend::DecisionDiagram).request_fingerprint(&circuit)
    );

    // One flipped mantissa bit in a gate angle is a different request.
    let flipped = base(f64::from_bits(theta.to_bits() ^ 1), 3);
    assert_ne!(key, sim.request_fingerprint(&flipped));

    // A different classical-register layout is a different request.
    assert_ne!(key, sim.request_fingerprint(&base(theta, 4)));

    // Backend choice and router flag are part of the key.
    assert_ne!(
        key,
        WeakSimulator::new(Backend::StateVector).request_fingerprint(&circuit)
    );
    assert_ne!(
        key,
        WeakSimulator::new(Backend::DecisionDiagram)
            .with_clifford_router()
            .request_fingerprint(&circuit)
    );

    // Attaching real noise changes the key; changing its parameter by one
    // bit changes it again.
    let noisy = |p: f64| {
        WeakSimulator::new(Backend::DecisionDiagram)
            .with_noise(NoiseModel::new().with_gate_noise(NoiseChannel::bit_flip(p)))
    };
    let noisy_key = noisy(0.01).request_fingerprint(&circuit);
    assert_ne!(key, noisy_key);
    assert_ne!(
        noisy_key,
        noisy(f64::from_bits(0.01f64.to_bits() ^ 1)).request_fingerprint(&circuit)
    );

    // A noise model with no non-trivial channel is the same request as no
    // noise model at all — both run the identical noise-free simulation.
    let trivial = WeakSimulator::new(Backend::DecisionDiagram)
        .with_noise(NoiseModel::new().with_gate_noise(NoiseChannel::bit_flip(0.0)));
    assert_eq!(key, trivial.request_fingerprint(&circuit));
}

#[test]
fn shared_artifacts_sample_concurrently() {
    let circuit = algorithms::w_state(6);
    let cache = ArtifactCache::unbounded();
    let mut sim = WeakSimulator::new(Backend::DecisionDiagram).with_cache(&cache);
    let reference = sim.run(&circuit, 10_000, 7).unwrap();

    let artifact = cache
        .get(sim.request_fingerprint(&circuit))
        .expect("the run above populated the cache");
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|worker| {
                let artifact = std::sync::Arc::clone(&artifact);
                scope.spawn(move || {
                    // Same seed on every thread: all histograms must equal
                    // the single-threaded reference exactly.
                    let hist = artifact.sample(10_000, 7);
                    (worker, hist)
                })
            })
            .collect();
        for handle in handles {
            let (worker, hist) = handle.join().unwrap();
            assert_eq!(hist, reference.histogram, "worker {worker} diverged");
        }
    });

    // Different seeds still produce different draws from the shared arena.
    assert_ne!(artifact.sample(10_000, 8), reference.histogram);
}

#[test]
fn byte_budget_evicts_lru_and_rebuilds_transparently() {
    let a = algorithms::ghz(9);
    let b = algorithms::qft(9, false);

    // Size the budget to hold exactly one of the two artifacts.
    let probe = ArtifactCache::unbounded();
    let mut sizing = WeakSimulator::new(Backend::DecisionDiagram).with_cache(&probe);
    sizing.run(&a, 100, 1).unwrap();
    sizing.run(&b, 100, 1).unwrap();
    let both = probe.stats().bytes;
    assert_eq!(probe.stats().entries, 2);

    let cache = ArtifactCache::governed(&RunGovernor::unlimited().with_byte_budget(both - 1));
    let mut sim = WeakSimulator::new(Backend::DecisionDiagram).with_cache(&cache);
    let cold_a = sim.run(&a, 5_000, 3).unwrap();
    assert_eq!(cold_a.cache, Some(CacheOutcome::Miss));
    let cold_b = sim.run(&b, 5_000, 3).unwrap();
    assert_eq!(cold_b.cache, Some(CacheOutcome::Miss));

    // `b` displaced `a` (least recently used), so `a` misses and is rebuilt —
    // with a histogram identical to its first run.
    let stats = cache.stats();
    assert!(stats.evictions >= 1, "budget must have forced an eviction");
    assert!(stats.bytes < both, "budget must hold after eviction");
    let rebuilt_a = sim.run(&a, 5_000, 3).unwrap();
    assert_eq!(rebuilt_a.cache, Some(CacheOutcome::Miss));
    assert_eq!(rebuilt_a.histogram, cold_a.histogram);

    // And `a`'s rebuild in turn displaced `b`; a fresh `b` run still matches.
    let rebuilt_b = sim.run(&b, 5_000, 3).unwrap();
    assert_eq!(rebuilt_b.cache, Some(CacheOutcome::Miss));
    assert_eq!(rebuilt_b.histogram, cold_b.histogram);
}

#[test]
fn touch_on_hit_keeps_broker_served_entries_off_the_eviction_block() {
    // Regression for the serve-path LRU ordering: a broker-served entry
    // never goes through `ArtifactCache::get` (coalesced waiters take the
    // artifact from the build slot), so recency must be bumped via
    // `ArtifactCache::touch` — without it, an entry that just served a
    // burst of concurrent traffic is still ranked by its *insertion* time
    // and becomes the eviction victim at the next insert.
    //
    // Three near-identical circuits (same structure, different angles) give
    // three same-sized artifacts; a budget sized to hold exactly two forces
    // every insert past the second to evict.
    let variant = |theta: f64| {
        let mut c = Circuit::new(9);
        for q in 0..9 {
            c.h(Qubit(q));
        }
        for q in 0..8 {
            c.cx(Qubit(q), Qubit(q + 1));
        }
        c.gate(OneQubitGate::Rz(Angle::Radians(theta)), Qubit(4));
        c
    };
    let (a, b, c) = (variant(0.25), variant(0.5), variant(0.75));

    let probe = ArtifactCache::unbounded();
    let mut sizing = WeakSimulator::new(Backend::DecisionDiagram).with_cache(&probe);
    sizing.run(&a, 100, 1).unwrap();
    sizing.run(&b, 100, 1).unwrap();
    let two = probe.stats().bytes;
    assert_eq!(probe.stats().entries, 2);

    let cache = ArtifactCache::governed(&RunGovernor::unlimited().with_byte_budget(two));
    let mut sim = WeakSimulator::new(Backend::DecisionDiagram).with_cache(&cache);
    let sim_ro = WeakSimulator::new(Backend::DecisionDiagram);
    let (key_a, key_b) = (
        sim_ro.request_fingerprint(&a),
        sim_ro.request_fingerprint(&b),
    );

    // Insert a then b, then interleave a broker-style slot-serve of `a`
    // (touch, not get) before inserting c at the full budget.
    sim.run(&a, 100, 1).unwrap();
    sim.run(&b, 100, 1).unwrap();
    assert!(cache.touch(key_a), "a is resident and must be touchable");
    sim.run(&c, 100, 1).unwrap();

    // The victim must be b — the true least-recently-*used* entry — not a.
    assert!(
        cache.get(key_a).is_some(),
        "touched entry a must survive the eviction"
    );
    assert!(
        cache.get(key_b).is_none(),
        "untouched entry b must be the eviction victim"
    );
    assert!(!cache.touch(key_b), "touching an evicted key reports false");
}

#[test]
fn noisy_and_dynamic_requests_bypass_the_cache() {
    let cache = ArtifactCache::unbounded();

    let mut dynamic = algorithms::ghz(3);
    dynamic.measure(Qubit(0), 0);
    dynamic.h(Qubit(1)); // gate after measurement: dynamic
    let mut sim = WeakSimulator::new(Backend::DecisionDiagram).with_cache(&cache);
    let outcome = sim.run(&dynamic, 500, 1).unwrap();
    assert_eq!(outcome.cache, None);

    let mut noisy = WeakSimulator::new(Backend::DecisionDiagram)
        .with_noise(NoiseModel::new().with_gate_noise(NoiseChannel::depolarizing(0.02)))
        .with_cache(&cache);
    let outcome = noisy.run(&algorithms::ghz(3), 500, 1).unwrap();
    assert_eq!(outcome.cache, None);

    let stats = cache.stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.entries),
        (0, 0, 0),
        "neither request may touch the cache"
    );
}

//! Determinism proofs for the parallel DD-construction path.
//!
//! The contract under test: [`dd::simulate_with_threads`] must produce a root
//! edge (and a node population) that is **bit-identical** across construction
//! worker counts.  Workers intern into private overlay tables and the results
//! are re-interned into the master package in a fixed task order, so the
//! merged diagram is a pure function of the circuit — never of the worker
//! count or of scheduling.
//!
//! The plain sequential [`dd::simulate`] entry point interleaves interning
//! differently (it never splits a multiply into sub-cone tasks), so against
//! it we only assert numerical agreement of the amplitudes, not bit-identity.

use circuit::{Circuit, Qubit};
use dd::{DdPackage, StateDd};
use mathkit::Angle;

/// Worker counts every arm must agree across.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Builds `circuit` with `workers` construction workers and returns the
/// package and state for inspection.
fn build_with_workers(circuit: &Circuit, workers: usize) -> (DdPackage, StateDd) {
    let mut package = DdPackage::new();
    let state = dd::simulate_with_threads(&mut package, circuit, workers)
        .unwrap_or_else(|e| panic!("construction with {workers} workers failed: {e}"));
    (package, state)
}

/// Asserts the canonical root edge, the full package statistics and the
/// amplitude vector are identical across all of [`WORKER_COUNTS`], and that
/// the amplitudes numerically match the plain sequential builder.
fn assert_thread_count_invariant(circuit: &Circuit, label: &str) {
    let (reference_package, reference_state) = build_with_workers(circuit, 1);
    let reference_amplitudes = reference_state.to_amplitudes(&reference_package);

    for &workers in &WORKER_COUNTS[1..] {
        let (package, state) = build_with_workers(circuit, workers);
        assert_eq!(
            state.root(),
            reference_state.root(),
            "{label}: root edge with {workers} workers differs from the 1-worker run"
        );
        assert_eq!(
            state.node_count(&package),
            reference_state.node_count(&reference_package),
            "{label}: reachable node count with {workers} workers differs"
        );
        assert_eq!(
            package.stats().vector_nodes,
            reference_package.stats().vector_nodes,
            "{label}: vector arena population with {workers} workers differs"
        );
        assert_eq!(
            state.to_amplitudes(&package),
            reference_amplitudes,
            "{label}: amplitudes with {workers} workers are not bit-identical"
        );
    }

    // The sequential path interns in a different order, so amplitudes agree
    // numerically (shared canonical weight table, same arithmetic) but the
    // root edge need not be the same id.
    let mut sequential_package = DdPackage::new();
    let sequential_state = dd::simulate(&mut sequential_package, circuit)
        .unwrap_or_else(|e| panic!("{label}: sequential construction failed: {e}"));
    let sequential_amplitudes = sequential_state.to_amplitudes(&sequential_package);
    assert_eq!(
        sequential_amplitudes.len(),
        reference_amplitudes.len(),
        "{label}: amplitude vector lengths differ"
    );
    for (i, (parallel, sequential)) in reference_amplitudes
        .iter()
        .zip(sequential_amplitudes.iter())
        .enumerate()
    {
        let delta = (*parallel - *sequential).norm();
        assert!(
            delta < 1e-10,
            "{label}: amplitude {i} differs from sequential by {delta:.3e}"
        );
    }
}

#[test]
fn ghz_is_worker_count_invariant() {
    assert_thread_count_invariant(&algorithms::ghz(12), "ghz_12");
}

/// The coherent (fully unitary) equivalent of [`algorithms::ipe`]: an
/// `num_bits`-qubit counting register accumulating phase kickback from a
/// `|1>` eigenstate qubit, read out by an inverse QFT.  The library's
/// iterative variant recycles one ancilla through mid-circuit measure/reset
/// and is therefore dynamic — strong simulation rejects it by design.
fn coherent_ipe(num_bits: u16, phase: f64) -> Circuit {
    let mut c = Circuit::new(num_bits + 1);
    let eigen = Qubit(num_bits);
    c.x(eigen);
    for j in 0..num_bits {
        c.h(Qubit(j));
        let theta = phase * std::f64::consts::TAU * (1u64 << j) as f64;
        c.cp(Angle::Radians(theta), Qubit(j), eigen);
    }
    c.extend_from(&algorithms::inverse_qft(num_bits, true));
    c
}

#[test]
fn ipe_is_worker_count_invariant() {
    assert_thread_count_invariant(&coherent_ipe(5, 0.8125), "coherent_ipe_5");
}

#[test]
fn supremacy_3x3_is_worker_count_invariant() {
    let (circuit, _) = algorithms::supremacy(3, 3, 8, 5);
    assert_thread_count_invariant(&circuit, "supremacy_3x3_8");
}

/// The acceptance workload from the bench suite: the 20-qubit
/// `supremacy_4x5_10` circuit.  Building it to completion takes tens of
/// seconds per run in debug, so this arm compares the full-size circuit at a
/// reduced depth in debug builds and at full depth under `--release` (CI's
/// thread-matrix job runs it optimized).
#[test]
fn supremacy_4x5_is_worker_count_invariant() {
    let depth = if cfg!(debug_assertions) { 5 } else { 10 };
    let (circuit, _) = algorithms::supremacy(4, 5, depth, 7);
    let (reference_package, reference_state) = build_with_workers(&circuit, 1);
    for workers in [2, 4] {
        let (package, state) = build_with_workers(&circuit, workers);
        assert_eq!(
            state.root(),
            reference_state.root(),
            "supremacy_4x5_{depth}: root with {workers} workers differs from 1 worker"
        );
        assert_eq!(
            package.stats().vector_nodes,
            reference_package.stats().vector_nodes,
            "supremacy_4x5_{depth}: arena population with {workers} workers differs"
        );
    }
}

#[test]
fn random_circuits_are_worker_count_invariant() {
    for seed in 0..6 {
        let circuit = algorithms::random_circuit(6, 6, seed);
        assert_thread_count_invariant(&circuit, &format!("random_6x6_seed{seed}"));
    }
}

/// `workers == 0` means "one worker per CPU"; whatever that resolves to on
/// the host, the result must still match the explicit 1-worker run.
#[test]
fn auto_worker_count_matches_explicit() {
    let (circuit, _) = algorithms::supremacy(3, 3, 6, 3);
    let (_, reference) = build_with_workers(&circuit, 1);
    let (_, auto) = build_with_workers(&circuit, 0);
    assert_eq!(auto.root(), reference.root());
}

/// The simulator-facing knob must route through the same deterministic
/// machinery: a [`weaksim::WeakSimulator`] configured with construction
/// threads samples exactly the histogram the 1-worker run does.
#[test]
fn weak_simulator_construction_threads_preserve_samples() {
    let (circuit, _) = algorithms::supremacy(3, 3, 8, 5);
    let baseline = weaksim::WeakSimulator::new(weaksim::Backend::DecisionDiagram)
        .with_construction_threads(1)
        .run(&circuit, 256, 17)
        .expect("1-worker run failed");
    for workers in [2, 4] {
        let outcome = weaksim::WeakSimulator::new(weaksim::Backend::DecisionDiagram)
            .with_construction_threads(workers)
            .run(&circuit, 256, 17)
            .expect("parallel run failed");
        assert_eq!(
            outcome.histogram, baseline.histogram,
            "histogram with {workers} construction workers diverged"
        );
    }
}

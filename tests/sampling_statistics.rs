//! Validates the paper's central claim: the weak-simulation output is
//! statistically indistinguishable from the exact output distribution of an
//! error-free quantum computer, for both samplers.

use dd::{CompiledSampler, DdPackage};
use weaksim::stats::{chi_square_test, total_variation_distance};
use weaksim::{Backend, ShotHistogram, WeakSimulator};

const SHOTS: u64 = 100_000;
const SIGNIFICANCE: f64 = 1e-4;

fn assert_statistically_indistinguishable(circuit: &circuit::Circuit, seed: u64) {
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = WeakSimulator::new(backend)
            .run(circuit, SHOTS, seed)
            .expect("simulation succeeds");
        let chi = chi_square_test(&outcome.histogram, |i| outcome.strong().probability(i));
        assert!(
            chi.is_consistent(SIGNIFICANCE),
            "{} sampling of {} rejected: chi2 = {:.2}, dof = {}, p = {:.6}",
            backend,
            circuit.name(),
            chi.statistic,
            chi.degrees_of_freedom,
            chi.p_value
        );
        let tvd = total_variation_distance(&outcome.histogram, |i| outcome.strong().probability(i));
        // The expected TVD of a faithful sampler grows with the support size:
        // roughly sqrt(2K / (pi * shots)) for K outcomes. Allow 1.5x that.
        let support = 1u64 << circuit.num_qubits();
        let expected_noise = (2.0 * support as f64 / (std::f64::consts::PI * SHOTS as f64)).sqrt();
        let threshold = (1.5 * expected_noise).max(0.01);
        assert!(
            tvd < threshold,
            "{} sampling of {}: TVD {tvd} exceeds {threshold}",
            backend,
            circuit.name()
        );
        // No impossible outcome may ever be produced (error-free sampling).
        for &index in outcome.histogram.counts().keys() {
            assert!(
                outcome.strong().probability(index) > 0.0,
                "{} produced impossible outcome {index:b}",
                backend
            );
        }
    }
}

#[test]
fn running_example_sampling_is_faithful() {
    assert_statistically_indistinguishable(&algorithms::running_example(), 1);
}

#[test]
fn ghz_sampling_is_faithful() {
    assert_statistically_indistinguishable(&algorithms::ghz(8), 2);
}

#[test]
fn w_state_sampling_is_faithful() {
    assert_statistically_indistinguishable(&algorithms::w_state(6), 3);
}

#[test]
fn qft_sampling_is_faithful() {
    assert_statistically_indistinguishable(&algorithms::qft(6, true), 4);
}

#[test]
fn supremacy_sampling_is_faithful() {
    let (circuit, _) = algorithms::supremacy(3, 3, 6, 7);
    assert_statistically_indistinguishable(&circuit, 5);
}

#[test]
fn jellium_sampling_is_faithful() {
    let (circuit, _) = algorithms::jellium(2, 1);
    assert_statistically_indistinguishable(&circuit, 6);
}

#[test]
fn random_circuit_sampling_is_faithful() {
    let circuit = algorithms::random_circuit(6, 5, 17);
    assert_statistically_indistinguishable(&circuit, 7);
}

#[test]
fn grover_amplifies_the_marked_element() {
    // After the optimal number of iterations the marked element dominates
    // the search-register distribution.
    let (circuit, spec) = algorithms::grover_with_iterations(8, 4, 12);
    let outcome = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&circuit, 20_000, 11)
        .unwrap();
    let mask = (1u64 << spec.search_qubits) - 1;
    let mut counts = std::collections::HashMap::new();
    for (&bits, &count) in outcome.histogram.counts() {
        *counts.entry(bits & mask).or_insert(0u64) += count;
    }
    let marked_count = counts.get(&spec.marked).copied().unwrap_or(0);
    assert!(
        marked_count as f64 / 20_000.0 > 0.9,
        "marked element frequency {} too low",
        marked_count as f64 / 20_000.0
    );
}

#[test]
fn shor_counting_register_peaks_at_multiples_of_the_inverse_order() {
    // For modulus 15 the order of any valid base is 4 (or 2), so the
    // counting register (8 bits) concentrates on multiples of 256/4 = 64.
    let (circuit, spec) = algorithms::shor(15, 7);
    let outcome = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&circuit, 50_000, 13)
        .unwrap();
    assert_eq!(spec.order, 4);
    let step = (1u64 << spec.counting_bits) / spec.order;
    let mut on_peak = 0u64;
    let mut total = 0u64;
    for (&bits, &count) in outcome.histogram.counts() {
        let counting_value = bits >> spec.work_bits;
        total += count;
        if counting_value % step == 0 {
            on_peak += count;
        }
    }
    let fraction = on_peak as f64 / total as f64;
    assert!(
        fraction > 0.99,
        "only {fraction} of the shots landed on phase-estimation peaks"
    );
}

/// The production [`CompiledSampler`] draws from the exact distribution:
/// chi-square-consistent with the state probabilities on GHZ, QFT and
/// supremacy states.  (The three-way comparison against the retired
/// interpreted samplers lives in the bench crate's `comparison_samplers`
/// integration test, behind the `comparison-samplers` feature.)
#[test]
fn compiled_sampler_draws_the_exact_distribution() {
    let circuits = [
        algorithms::ghz(8),
        algorithms::qft(6, true),
        algorithms::supremacy(3, 3, 6, 7).0,
    ];
    for circuit in &circuits {
        let mut package = DdPackage::new();
        let state = dd::simulate(&mut package, circuit).expect("valid circuit");
        let n = circuit.num_qubits();

        let compiled = CompiledSampler::new(&package, &state).expect("compiles");
        let compiled_hist = ShotHistogram::from_samples(
            n,
            compiled
                .sample_many_parallel(42, SHOTS as usize)
                .into_iter(),
        );

        let chi = chi_square_test(&compiled_hist, |i| state.probability(&package, i));
        assert!(
            chi.is_consistent(SIGNIFICANCE),
            "CompiledSampler on {} rejected: chi2 = {:.2}, dof = {}, p = {:.6}",
            circuit.name(),
            chi.statistic,
            chi.degrees_of_freedom,
            chi.p_value
        );
    }
}

/// The parallel batch sampler is seed-deterministic independent of the
/// worker-thread count — the contract that makes `WeakSimulator` runs
/// reproducible on any machine.
#[test]
fn parallel_sampling_is_deterministic_across_thread_counts() {
    let (circuit, _) = algorithms::supremacy(3, 3, 6, 7);
    let mut package = DdPackage::new();
    let state = dd::simulate(&mut package, &circuit).expect("valid circuit");
    let compiled = CompiledSampler::new(&package, &state).expect("compiles");

    let shots = 3 * dd::PARALLEL_CHUNK_SHOTS + 511; // not a chunk multiple
    let reference = compiled.sample_many_parallel_with_threads(2020, shots, 1);
    for threads in [2, 8] {
        assert_eq!(
            reference,
            compiled.sample_many_parallel_with_threads(2020, shots, threads),
            "thread count {threads} changed the sampled values"
        );
    }
    // And the high-level simulator path (which uses however many threads the
    // machine has) reproduces the same histogram run-to-run.
    let mut sim = WeakSimulator::new(Backend::DecisionDiagram);
    let a = sim.run(&circuit, 10_000, 2020).unwrap();
    let b = sim.run(&circuit, 10_000, 2020).unwrap();
    assert_eq!(a.histogram, b.histogram);
}

#[test]
fn dd_and_vector_histograms_agree_with_each_other() {
    // Beyond agreeing with the exact distribution, the two samplers agree
    // with one another within statistical noise.
    let circuit = algorithms::random_circuit(5, 4, 23);
    let dd = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&circuit, SHOTS, 31)
        .unwrap();
    let sv = WeakSimulator::new(Backend::StateVector)
        .run(&circuit, SHOTS, 32)
        .unwrap();
    for index in 0..(1u64 << circuit.num_qubits()) {
        let fd = dd.histogram.frequency(index);
        let fv = sv.histogram.frequency(index);
        assert!(
            (fd - fv).abs() < 0.02,
            "index {index}: DD frequency {fd}, vector frequency {fv}"
        );
    }
}

//! Structural checks of the decision-diagram sizes — the "size" column of
//! Table I is what makes DD-based weak simulation scale, so the shapes the
//! paper reports (QFT: one node per qubit, Grover: ~two nodes per qubit,
//! Shor/supremacy: large but far below 2^n) are asserted here.

use dd::{DdPackage, Normalization};

#[test]
fn qft_states_use_one_node_per_qubit() {
    // Table I: qft_16 -> 16 nodes, qft_32 -> 32, qft_48 -> 48.
    for n in [8u16, 16, 32, 48] {
        let mut package = DdPackage::new();
        let state = dd::simulate(&mut package, &algorithms::qft(n, true)).unwrap();
        assert_eq!(state.node_count(&package), usize::from(n), "qft_{n}");
        assert!((state.norm_sqr(&package) - 1.0).abs() < 1e-9);
    }
}

#[test]
fn grover_states_use_about_two_nodes_per_qubit() {
    // Table I: grover_20 -> 40 nodes, grover_25 -> 50, i.e. 2 per qubit.
    for n in [8u16, 10, 12] {
        let (circuit, _) = algorithms::grover_with_iterations(n, 3, 4);
        let mut package = DdPackage::new();
        let state = dd::simulate(&mut package, &circuit).unwrap();
        let nodes = state.node_count(&package);
        let qubits = usize::from(n) + 1;
        assert!(
            nodes >= qubits && nodes <= 3 * qubits,
            "grover_{n}: {nodes} nodes for {qubits} qubits"
        );
    }
}

#[test]
fn ghz_states_use_two_nodes_per_level_below_the_root() {
    for n in [4u16, 8, 16, 32] {
        let mut package = DdPackage::new();
        let state = dd::simulate(&mut package, &algorithms::ghz(n)).unwrap();
        assert_eq!(
            state.node_count(&package),
            2 * usize::from(n) - 1,
            "ghz_{n}"
        );
    }
}

#[test]
fn shor_states_are_entangled_but_far_below_the_dense_size() {
    let (circuit, spec) = algorithms::shor(33, 2);
    let mut package = DdPackage::new();
    let state = dd::simulate(&mut package, &circuit).unwrap();
    let nodes = state.node_count(&package);
    let qubits = usize::from(spec.total_qubits());
    // Genuinely entangled: well above a product state...
    assert!(nodes > 4 * qubits, "only {nodes} nodes");
    // ...but exponentially below the dense representation.
    assert!(
        (nodes as u64) < (1u64 << spec.total_qubits()) / 4,
        "{nodes} nodes"
    );
    assert!((state.norm_sqr(&package) - 1.0).abs() < 1e-6);
}

#[test]
fn supremacy_states_are_the_least_compressible() {
    let (circuit, spec) = algorithms::supremacy(4, 3, 10, 1);
    let mut package = DdPackage::new();
    let state = dd::simulate(&mut package, &circuit).unwrap();
    let nodes = state.node_count(&package);
    // Random circuits of this depth produce states whose DD is within a
    // small factor of the dense bound, exactly the regime the paper reports.
    assert!(nodes > usize::from(spec.qubits) * 8, "only {nodes} nodes");
    assert!((state.norm_sqr(&package) - 1.0).abs() < 1e-6);
}

#[test]
fn normalization_scheme_does_not_change_node_counts() {
    // Canonicity: both normalization schemes identify the same sub-vector
    // sharing, so the node counts agree.
    for circuit in [
        algorithms::qft(12, true),
        algorithms::w_state(9),
        algorithms::random_circuit(8, 4, 5),
        algorithms::shor(15, 2).0,
    ] {
        let mut left = DdPackage::with_normalization(Normalization::LeftMost);
        let mut norm = DdPackage::with_normalization(Normalization::TwoNorm);
        let a = dd::simulate(&mut left, &circuit).unwrap();
        let b = dd::simulate(&mut norm, &circuit).unwrap();
        assert_eq!(
            a.node_count(&left),
            b.node_count(&norm),
            "node counts differ for {}",
            circuit.name()
        );
    }
}

#[test]
fn garbage_collection_preserves_the_state() {
    let circuit = algorithms::random_circuit(10, 8, 13);
    let mut package = DdPackage::new();
    let state = dd::simulate(&mut package, &circuit).unwrap();
    let before: Vec<f64> = (0..1u64 << 10)
        .map(|i| state.probability(&package, i))
        .collect();
    let nodes_before = state.node_count(&package);

    let roots = package.collect_garbage(&[state.root()]);
    let state = dd::StateDd::from_root(roots[0], 10);
    assert_eq!(state.node_count(&package), nodes_before);
    assert_eq!(package.allocated_vector_nodes(), nodes_before);
    for (i, &p) in before.iter().enumerate() {
        assert!((state.probability(&package, i as u64) - p).abs() < 1e-12);
    }
}

#[test]
fn measurement_collapse_composes_with_further_gates() {
    use circuit::Qubit;
    use rand::SeedableRng;
    // Measure one qubit of a Bell pair, then re-entangle with fresh gates:
    // the library extension (dd::measure_qubit) keeps the package usable.
    let mut package = DdPackage::new();
    let state = dd::simulate(&mut package, &algorithms::bell_pair()).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let (bit, collapsed) = dd::measure_qubit(&mut package, &state, Qubit(0), &mut rng).unwrap();

    let mut follow_up = circuit::Circuit::new(2);
    follow_up.h(Qubit(1));
    let final_state = dd::apply_circuit(&mut package, collapsed, &follow_up).unwrap();
    assert!((final_state.norm_sqr(&package) - 1.0).abs() < 1e-10);
    // Qubit 0 stays in the measured value; qubit 1 is in superposition.
    let base = u64::from(bit);
    assert!((final_state.probability(&package, base) - 0.5).abs() < 1e-10);
    assert!((final_state.probability(&package, base | 0b10) - 0.5).abs() < 1e-10);
}

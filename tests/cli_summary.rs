//! End-to-end serve-loop tests for `weaksim-cli`: per-request failures must
//! neither kill the loop nor corrupt the end-of-session cache summary — the
//! [`weaksim::ArtifactCache`] hit/miss counters printed at exit reflect
//! exactly the requests that reached the cache, malformed requests included
//! mid-stream notwithstanding.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

const GOOD_QASM: &str = "OPENQASM 2.0;\n\
                         include \"qelib1.inc\";\n\
                         qreg q[3];\n\
                         creg c[3];\n\
                         h q[0];\n\
                         cx q[0],q[1];\n\
                         cx q[1],q[2];\n";

/// Writes `contents` to a unique file under the target tmp dir and returns
/// its path.
fn fixture(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("weaksim-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write fixture");
    path
}

/// Runs the CLI in serve mode with the given stdin lines; returns
/// (stdout, stderr, success).
fn serve(extra_args: &[&str], stdin_lines: &[&str]) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_weaksim-cli"))
        .args(["--shots", "200"])
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn weaksim-cli");
    child
        .stdin
        .take()
        .expect("stdin handle")
        .write_all(stdin_lines.join("\n").as_bytes())
        .expect("feed stdin");
    let output = child.wait_with_output().expect("wait for weaksim-cli");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

#[test]
fn cache_counters_survive_a_malformed_request_mid_stream() {
    let good = fixture("good.qasm", GOOD_QASM);
    let bad = fixture(
        "malformed.qasm",
        "OPENQASM 2.0;\nqreg q[2;\nthis is not qasm\n",
    );
    let good_path = good.to_str().expect("utf-8 path");
    let bad_path = bad.to_str().expect("utf-8 path");

    let (stdout, stderr, ok) = serve(&[], &[good_path, bad_path, good_path]);

    // The malformed request fails the session but not the loop: both good
    // requests are served (cold miss, then warm hit on the same artifact).
    assert!(!ok, "a malformed request must fail the session exit code");
    assert!(
        stderr.contains("QASM parse error"),
        "stderr should name the parse failure, got:\n{stderr}"
    );
    assert!(stdout.contains("cache miss"), "stdout:\n{stdout}");
    assert!(stdout.contains("cache hit"), "stdout:\n{stdout}");

    // The exit summary still accounts for exactly the two requests that
    // reached the cache — the mid-stream error neither dropped the summary
    // nor leaked a phantom miss.
    assert!(
        stdout.contains("1 hits / 1 misses"),
        "cache summary must survive the mid-stream error, got:\n{stdout}"
    );
}

#[test]
fn unreadable_path_mid_stream_keeps_serving_too() {
    let good = fixture("good2.qasm", GOOD_QASM);
    let good_path = good.to_str().expect("utf-8 path");

    let (stdout, stderr, ok) = serve(&[], &[good_path, "/no/such/file.qasm", good_path]);

    assert!(!ok);
    assert!(
        stderr.contains("cannot read"),
        "stderr should report the unreadable path, got:\n{stderr}"
    );
    assert!(
        stdout.contains("1 hits / 1 misses"),
        "cache summary must survive the unreadable path, got:\n{stdout}"
    );
}

#[test]
fn broken_stdout_pipe_still_reports_the_summary_and_exits_nonzero() {
    let good = fixture("good-pipe.qasm", GOOD_QASM);
    let good_path = good.to_str().expect("utf-8 path");

    let mut child = Command::new(env!("CARGO_BIN_EXE_weaksim-cli"))
        .args(["--shots", "200"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn weaksim-cli");
    // Close the read end of the CLI's stdout before it serves anything:
    // its first report write hits a broken pipe.
    drop(child.stdout.take());
    child
        .stdin
        .take()
        .expect("stdin handle")
        .write_all(format!("{good_path}\n{good_path}\n").as_bytes())
        .expect("feed stdin");
    let output = child.wait_with_output().expect("wait for weaksim-cli");
    let stderr = String::from_utf8_lossy(&output.stderr);

    assert!(
        !output.status.success(),
        "a broken stdout must fail the session exit code"
    );
    // No panic: the loop kept serving, and the end-of-session summary was
    // rerouted to stderr instead of being swallowed.
    assert!(
        stderr.contains("cache:"),
        "summary must survive the broken pipe on stderr, got:\n{stderr}"
    );
    assert!(
        stderr.contains("stdout"),
        "the broken pipe itself should be reported, got:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "broken pipe must never panic, got:\n{stderr}"
    );
}

#[test]
fn snapshot_round_trip_serves_the_second_session_warm() {
    let good = fixture("good-snap.qasm", GOOD_QASM);
    let good_path = good.to_str().expect("utf-8 path");
    let snap = fixture("cache.snap", ""); // unique path; content replaced below
    std::fs::remove_file(&snap).ok();
    let snap_path = snap.to_str().expect("utf-8 path");

    // Session 1: cold build, snapshot written at (clean) shutdown.
    let (stdout1, stderr1, ok1) = serve(&["--snapshot", snap_path], &[good_path]);
    assert!(ok1, "first session failed:\n{stderr1}");
    assert!(stdout1.contains("cache miss"), "stdout:\n{stdout1}");
    assert!(
        stderr1.contains("snapshot: wrote 1 artifact"),
        "stderr:\n{stderr1}"
    );
    assert!(snap.exists(), "snapshot file must exist after shutdown");

    // Session 2: the same request is served warm from the restored cache —
    // same seed, so the reported top outcomes match the cold run exactly.
    let (stdout2, stderr2, ok2) = serve(&["--snapshot", snap_path], &[good_path]);
    assert!(ok2, "second session failed:\n{stderr2}");
    assert!(
        stderr2.contains("restored 1 artifact"),
        "stderr:\n{stderr2}"
    );
    assert!(stdout2.contains("cache hit"), "stdout:\n{stdout2}");
    assert!(stdout2.contains("1 hits / 0 misses"), "stdout:\n{stdout2}");
    let outcomes = |out: &str| {
        out.lines()
            .filter(|line| line.contains("top outcomes"))
            .map(str::to_owned)
            .collect::<Vec<_>>()
    };
    assert_eq!(
        outcomes(&stdout1),
        outcomes(&stdout2),
        "snapshot restore changed the served histogram"
    );
    std::fs::remove_file(&snap).ok();
}

#[test]
fn serve_threads_coalesce_identical_requests_into_one_build() {
    let good = fixture("good-threads.qasm", GOOD_QASM);
    let good_path = good.to_str().expect("utf-8 path");
    let requests = [good_path; 6];

    let (stdout, stderr, ok) = serve(&["--serve-threads", "4"], &requests);
    assert!(ok, "threaded session failed:\n{stderr}");

    // All six requests were served, every one with the identical histogram,
    // and the broker built the artifact exactly once — the rest were warm
    // hits or coalesced onto the single in-flight build.
    let outcomes: Vec<&str> = stdout
        .lines()
        .filter(|line| line.contains("top outcomes"))
        .collect();
    assert_eq!(outcomes.len(), 6, "stdout:\n{stdout}");
    assert!(
        outcomes.iter().all(|line| *line == outcomes[0]),
        "threaded serves diverged:\n{stdout}"
    );
    assert!(
        stdout.contains("service: 1 builds"),
        "single-flight must build exactly once, got:\n{stdout}"
    );
}

#[test]
fn construction_threads_flag_serves_the_identical_histogram() {
    let good = fixture("good3.qasm", GOOD_QASM);
    let good_path = good.to_str().expect("utf-8 path");

    let (baseline, _, ok1) = serve(&["--construction-threads", "1"], &[good_path]);
    let (parallel, _, ok4) = serve(&["--construction-threads", "4"], &[good_path]);
    assert!(ok1 && ok4);

    // Parallel DD construction is bit-identical, so the whole report — top
    // outcomes included — matches line for line (timing lines excluded).
    let outcomes = |out: &str| {
        out.lines()
            .filter(|line| line.contains("top outcomes"))
            .map(str::to_owned)
            .collect::<Vec<_>>()
    };
    assert_eq!(
        outcomes(&baseline),
        outcomes(&parallel),
        "construction worker count changed the served histogram"
    );
}

//! Soak tests for the decision-diagram package's rebuilt tables: the
//! open-addressing unique tables, the bounded lossy compute caches and the
//! weight-dropping garbage collector, exercised together under randomized
//! interleavings of gate applies, measurements and garbage collections.
//!
//! Two invariants are asserted throughout:
//!
//! 1. **Canonical sharing** — equal sub-vectors produce identical node ids,
//!    across unique-table growth and across GC-triggered table rebuilds.
//! 2. **Lossy caching never changes results** — a package whose compute
//!    caches are disabled entirely (`set_compute_cache_capacity(0)`) walks
//!    the exact same float operations, so amplitudes and measurement draws
//!    must agree bit-for-bit with the cached run (the circuits below only
//!    use dyadic-amplitude gates, keeping every intermediate value exact).

use circuit::{Circuit, Qubit};
use dd::{DdPackage, StateDd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random circuit over the dyadic gate set (H, X, Y, Z, S, CX, CZ, CCX):
/// every amplitude stays an exact multiple of a power of `1/sqrt(2)`, so
/// cached and uncached runs cannot diverge through value-interning order.
fn random_dyadic_circuit(num_qubits: u16, ops: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(num_qubits);
    for _ in 0..ops {
        let q = Qubit(rng.gen_range(0..num_qubits));
        match rng.gen_range(0..8u8) {
            0 => {
                c.h(q);
            }
            1 => {
                c.x(q);
            }
            2 => {
                c.y(q);
            }
            3 => {
                c.z(q);
            }
            4 => {
                c.s(q);
            }
            5 | 6 => {
                let mut t = Qubit(rng.gen_range(0..num_qubits));
                while t == q {
                    t = Qubit(rng.gen_range(0..num_qubits));
                }
                if rng.gen_bool(0.5) {
                    c.cx(q, t);
                } else {
                    c.cz(q, t);
                }
            }
            _ => {
                if num_qubits >= 3 {
                    let mut a = Qubit(rng.gen_range(0..num_qubits));
                    while a == q {
                        a = Qubit(rng.gen_range(0..num_qubits));
                    }
                    let mut b = Qubit(rng.gen_range(0..num_qubits));
                    while b == q || b == a {
                        b = Qubit(rng.gen_range(0..num_qubits));
                    }
                    c.ccx(a, b, q);
                } else {
                    c.h(q);
                }
            }
        }
    }
    c
}

/// Interleaves applies, measurements and garbage collections on one package
/// and asserts canonical sharing holds at every checkpoint: re-simulating
/// the same prefix in the same package must land on the identical root edge.
#[test]
fn soak_interleaved_applies_measures_and_gcs_keep_sharing_canonical() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let circuit = random_dyadic_circuit(5, 40, seed);
        let mut package = DdPackage::new();
        let mut state = StateDd::zero_state(&mut package, 5).unwrap();
        let mut applied: Vec<circuit::Operation> = Vec::new();

        for op in circuit.operations() {
            state = dd::apply_operation(&mut package, state, op).unwrap();
            applied.push(op.clone());

            match rng.gen_range(0..10u8) {
                // Mid-run measurement draw (read-only: branch masses only).
                0 => {
                    let q = Qubit(rng.gen_range(0..5));
                    let masses = dd::branch_masses(&mut package, &state, q).unwrap();
                    let total = masses[0] + masses[1];
                    assert!(
                        (total - 1.0).abs() < 1e-9,
                        "seed {seed}: branch masses sum to {total}"
                    );
                }
                // Garbage collection with the live state as the only root.
                1 => {
                    let roots = package.collect_garbage(&[state.root()]);
                    state = StateDd::from_root(roots[0], 5);
                    assert_eq!(
                        package.allocated_vector_nodes(),
                        state.node_count(&package),
                        "seed {seed}: GC left garbage in the arena"
                    );
                }
                _ => {}
            }
        }

        // Canonical sharing: replaying the same prefix in the same package
        // reaches the *identical* root edge (equal vectors => equal ids),
        // even though the unique table grew and was rebuilt by GCs.
        let mut replay = StateDd::zero_state(&mut package, 5).unwrap();
        for op in &applied {
            replay = dd::apply_operation(&mut package, replay, op).unwrap();
        }
        assert_eq!(
            replay.root(),
            state.root(),
            "seed {seed}: replaying the circuit did not share the existing diagram"
        );
    }
}

/// Lossy compute-cache evictions must never change simulation results:
/// a cache-disabled package (every lookup misses, every operation is
/// recomputed from scratch) produces bit-identical amplitudes and
/// bit-identical measurement trajectories.
#[test]
fn soak_lossy_caches_never_change_results() {
    for seed in 0..6u64 {
        let circuit = random_dyadic_circuit(5, 60, 50 + seed);

        let mut cached_pkg = DdPackage::new();
        let cached = dd::simulate(&mut cached_pkg, &circuit).expect("valid circuit");

        let mut reference_pkg = DdPackage::new();
        reference_pkg.set_compute_cache_capacity(0);
        let reference = dd::simulate(&mut reference_pkg, &circuit).expect("valid circuit");

        let a = cached.to_amplitudes(&cached_pkg);
        let b = reference.to_amplitudes(&reference_pkg);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                x, y,
                "seed {seed}: amplitude {i} differs between cached and uncached runs"
            );
        }

        // Measurement trajectories consume identical probabilities, so the
        // same RNG stream must collapse both runs identically.
        let mut rng_a = StdRng::seed_from_u64(7 + seed);
        let mut rng_b = StdRng::seed_from_u64(7 + seed);
        let mut state_a = cached;
        let mut state_b = reference;
        for q in 0..5u16 {
            let (bit_a, next_a) =
                dd::measure_qubit(&mut cached_pkg, &state_a, Qubit(q), &mut rng_a).unwrap();
            let (bit_b, next_b) =
                dd::measure_qubit(&mut reference_pkg, &state_b, Qubit(q), &mut rng_b).unwrap();
            assert_eq!(
                bit_a, bit_b,
                "seed {seed}: measurement of qubit {q} diverged"
            );
            state_a = next_a;
            state_b = next_b;
        }
    }
}

/// Garbage collection must also shrink the interned-value table: after
/// discarding a large state with thousands of distinct weights, both the
/// node arena *and* the value table shrink to what the surviving root
/// needs, and the survivor still reads back the same amplitudes.
#[test]
fn gc_of_a_large_discarded_state_shrinks_the_value_table() {
    let mut package = DdPackage::new();

    // Survivor: a small entangled state with a handful of weights.
    let keep_circuit = {
        let mut c = Circuit::new(4);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(1), Qubit(2));
        c.h(Qubit(3));
        c
    };
    let zero4 = StateDd::zero_state(&mut package, 4).unwrap();
    let keep = dd::apply_circuit(&mut package, zero4, &keep_circuit).expect("valid circuit");
    let keep_amps = keep.to_amplitudes(&package);

    // Discarded bulk: a random 8-qubit rotation-rich state with thousands
    // of distinct amplitudes, dropped on the floor.
    let bulk_circuit = algorithms::random_circuit(8, 6, 99);
    let zero8 = StateDd::zero_state(&mut package, 8).unwrap();
    let _bulk = dd::apply_circuit(&mut package, zero8, &bulk_circuit).expect("valid circuit");

    let before = package.stats();
    assert!(
        before.interned_values > 500,
        "bulk state should have bloated the value table, got {}",
        before.interned_values
    );

    let roots = package.collect_garbage(&[keep.root()]);
    let survivor = StateDd::from_root(roots[0], 4);

    let after = package.stats();
    assert!(
        after.interned_values < 50,
        "value table must shrink to the survivor's weights, got {}",
        after.interned_values
    );
    assert!(
        after.interned_values >= 2,
        "the canonical constants always survive"
    );

    // The survivor is intact, amplitude for amplitude.
    let survivor_amps = survivor.to_amplitudes(&package);
    assert_eq!(keep_amps.len(), survivor_amps.len());
    for (i, (x, y)) in keep_amps.iter().zip(&survivor_amps).enumerate() {
        assert!(
            (*x - *y).norm() < 1e-12,
            "amplitude {i} changed across GC: {x} vs {y}"
        );
    }
}

/// The unique table keeps sharing across growth *and* across a GC rebuild
/// in one combined run: build a big state, GC it, and verify re-derived
/// sub-states land on existing nodes instead of duplicating the arena.
#[test]
fn unique_table_sharing_survives_growth_and_gc_rebuild() {
    let mut package = DdPackage::new();
    let circuit = random_dyadic_circuit(6, 80, 4242);
    let state = dd::simulate(&mut package, &circuit).expect("valid circuit");

    let roots = package.collect_garbage(&[state.root()]);
    let state = StateDd::from_root(roots[0], 6);
    let compact = package.allocated_vector_nodes();
    assert_eq!(compact, state.node_count(&package));

    // Rebuilding the same state from scratch in the same package shares
    // every node with the compacted arena (plus whatever transient nodes
    // the intermediate gate applications allocate — but the *final* root
    // must be the identical edge).
    let rebuilt = dd::simulate(&mut package, &circuit).expect("valid circuit");
    assert_eq!(
        rebuilt.root(),
        state.root(),
        "rebuilt state must share the surviving diagram node-for-node"
    );
}

/// Concurrency soak for the parallel construction path: randomized
/// interleavings of parallel applies (worker count re-rolled per gate), GC
/// rebuilds and compute-cache evictions, on a package whose unique tables
/// start at the *minimum* capacity so every run forces repeated table growth
/// while construction workers are interning into their overlay shards.
///
/// Asserted: (1) the stressed run's amplitudes are bit-identical to a fresh
/// unstressed single-worker build (dyadic gate set — every value is exact),
/// and (2) canonical sharing survives — replaying the applied prefix in the
/// same package, at yet another worker count, lands on the *identical* root
/// edge instead of duplicating the diagram.
#[test]
fn soak_parallel_applies_gcs_and_evictions_keep_sharing_canonical() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(9000 + seed);
        let circuit = random_dyadic_circuit(6, 48, 300 + seed);

        let mut reference_pkg = DdPackage::new();
        let reference =
            dd::simulate_with_threads(&mut reference_pkg, &circuit, 1).expect("valid circuit");
        let reference_amps = reference.to_amplitudes(&reference_pkg);

        // Stressed run: tables start at minimum capacity and must grow under
        // parallel interning pressure; GCs rebuild them mid-run; evictions
        // shrink (or disable) the compute caches between applies.
        let mut package = DdPackage::with_unique_table_slots(16);
        let mut state = StateDd::zero_state(&mut package, 6).unwrap();
        let mut applied: Vec<circuit::Operation> = Vec::new();
        for op in circuit.operations() {
            let workers = [1usize, 2, 4, 8][rng.gen_range(0..4usize)];
            state = dd::apply_operation_with_threads(&mut package, state, op, workers)
                .unwrap_or_else(|e| panic!("seed {seed}: apply with {workers} workers: {e}"));
            applied.push(op.clone());

            match rng.gen_range(0..8u8) {
                0 => {
                    let roots = package.collect_garbage(&[state.root()]);
                    state = StateDd::from_root(roots[0], 6);
                }
                1 => package.shrink_compute_caches(),
                2 => package.set_compute_cache_capacity(rng.gen_range(0..64)),
                _ => {}
            }
        }

        assert_eq!(
            state.to_amplitudes(&package),
            reference_amps,
            "seed {seed}: stressed parallel run diverged from the fresh 1-worker build"
        );

        // Canonical sharing after all that churn: a replay in the same
        // package (at a fixed different worker count, no GC this time) must
        // re-derive the existing nodes, not duplicate them.
        let mut replay = StateDd::zero_state(&mut package, 6).unwrap();
        for op in &applied {
            replay = dd::apply_operation_with_threads(&mut package, replay, op, 4).unwrap();
        }
        assert_eq!(
            replay.root(),
            state.root(),
            "seed {seed}: replay after parallel churn did not share the existing diagram"
        );
    }
}

/// `measure_all` (ported to the compiled sampler) still draws from the
/// correct distribution and collapses to the observed basis state.
#[test]
fn measure_all_samples_and_collapses_consistently() {
    let mut package = DdPackage::new();
    let circuit = {
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(1), Qubit(2));
        c
    };
    let state = dd::simulate(&mut package, &circuit).expect("valid circuit");
    let mut rng = StdRng::seed_from_u64(33);
    let mut seen = [false; 2];
    for _ in 0..40 {
        let (outcome, collapsed) = dd::measure_all(&mut package, &state, &mut rng).unwrap();
        assert!(
            outcome == 0 || outcome == 0b111,
            "GHZ measurement produced impossible outcome {outcome:03b}"
        );
        assert!((collapsed.probability(&package, outcome) - 1.0).abs() < 1e-12);
        seen[usize::from(outcome != 0)] = true;
    }
    assert!(seen[0] && seen[1], "both GHZ outcomes should occur");
}

//! Cross-engine equivalence of the segmented Clifford router: the
//! stabilizer-tableau engine, the decision-diagram backend and the dense
//! statevector backend must be statistically indistinguishable on Clifford
//! circuits, bit-identical where the distribution is deterministic, and the
//! routed path must stay seed-deterministic across thread counts.

use circuit::{Circuit, Qubit};
use weaksim::{stats, Backend, EngineKind, WeakSimulator};

/// A small non-trivial Clifford circuit touching every tableau-supported
/// gate family: H, S, Z, CX, CZ and SWAP.
fn clifford_mix() -> Circuit {
    let mut c = Circuit::with_name(4, "clifford_mix");
    c.h(Qubit(0))
        .s(Qubit(0))
        .cx(Qubit(0), Qubit(1))
        .h(Qubit(2))
        .cz(Qubit(1), Qubit(2))
        .swap(Qubit(2), Qubit(3))
        .z(Qubit(3))
        .s(Qubit(1))
        .cx(Qubit(3), Qubit(0));
    c
}

#[test]
fn tableau_dd_and_sv_agree_on_small_clifford_circuits() {
    for circuit in [algorithms::ghz(5), clifford_mix()] {
        // Exact reference distribution from one dense strong simulation.
        let exact = WeakSimulator::new(Backend::DecisionDiagram)
            .strong(&circuit)
            .unwrap();
        let shots = 40_000;

        let routed = WeakSimulator::new(Backend::DecisionDiagram)
            .with_clifford_router()
            .run(&circuit, shots, 17)
            .unwrap();
        assert!(routed.route.used_tableau(), "{}", circuit.name());
        assert!(routed.state.is_none(), "tableau runs keep no dense state");

        let dd = WeakSimulator::new(Backend::DecisionDiagram)
            .run(&circuit, shots, 17)
            .unwrap();
        let sv = WeakSimulator::new(Backend::StateVector)
            .run(&circuit, shots, 17)
            .unwrap();
        assert!(!dd.route.used_tableau());
        assert!(!sv.route.used_tableau());

        for (label, outcome) in [("tableau", &routed), ("dd", &dd), ("sv", &sv)] {
            let chi = stats::chi_square_test(&outcome.histogram, |index| exact.probability(index));
            assert!(
                chi.is_consistent(0.001),
                "{} via {label}: chi-square {} (p = {})",
                circuit.name(),
                chi.statistic,
                chi.p_value
            );
        }
    }
}

#[test]
fn deterministic_clifford_records_are_bit_identical_across_engines() {
    // Probability-1 (hence dyadic) record distribution: |11> prepared by
    // X + CX, read out in swapped order.  Every engine must produce the
    // exact same histogram, not merely a statistically close one.
    let mut circuit = Circuit::new(2);
    circuit
        .x(Qubit(0))
        .cx(Qubit(0), Qubit(1))
        .measure(Qubit(1), 0)
        .measure(Qubit(0), 1);
    let shots = 5000;

    let routed = WeakSimulator::new(Backend::DecisionDiagram)
        .with_clifford_router()
        .run(&circuit, shots, 5)
        .unwrap();
    assert!(routed.route.used_tableau());
    let dd = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&circuit, shots, 5)
        .unwrap();
    let sv = WeakSimulator::new(Backend::StateVector)
        .run(&circuit, shots, 5)
        .unwrap();
    assert_eq!(routed.histogram, dd.histogram);
    assert_eq!(routed.histogram, sv.histogram);
    assert_eq!(routed.histogram.count(0b11), shots);
}

#[test]
fn routed_runs_are_seed_deterministic() {
    let circuit = algorithms::stabilizer_cycle(6, 2);
    let mut sim = WeakSimulator::new(Backend::DecisionDiagram).with_clifford_router();
    let a = sim.run(&circuit, 2000, 23).unwrap();
    let b = sim.run(&circuit, 2000, 23).unwrap();
    assert!(a.route.used_tableau());
    assert_eq!(a.histogram, b.histogram, "same seed, same records");
    let c = sim.run(&circuit, 2000, 24).unwrap();
    assert_ne!(
        a.histogram, c.histogram,
        "different seed, different records"
    );
}

#[test]
fn routed_histograms_are_thread_count_invariant() {
    // The dynamic Clifford path must give bit-identical histograms whatever
    // the worker-thread configuration, like every other sampler here.
    let circuit = algorithms::stabilizer_cycle(5, 3);
    let one = WeakSimulator::new(Backend::DecisionDiagram)
        .with_clifford_router()
        .with_threads(1)
        .run(&circuit, 3000, 41)
        .unwrap();
    let many = WeakSimulator::new(Backend::DecisionDiagram)
        .with_clifford_router()
        .with_threads(8)
        .run(&circuit, 3000, 41)
        .unwrap();
    assert!(one.route.used_tableau() && many.route.used_tableau());
    assert_eq!(one.histogram, many.histogram);
}

#[test]
fn stitched_prefix_matches_the_unrouted_dense_run_exactly() {
    // Clifford prefix ending in the basis state |0110>, followed by a
    // non-Clifford core: the router folds the prefix into X preparations
    // and hands the rest to the dense backend with the same seed, so the
    // sampled histogram is bit-identical to the unrouted run.
    let mut circuit = Circuit::new(4);
    circuit
        .x(Qubit(1))
        .cx(Qubit(1), Qubit(2))
        .z(Qubit(0))
        .t(Qubit(2))
        .h(Qubit(0))
        .cx(Qubit(0), Qubit(3));
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let routed = WeakSimulator::new(backend)
            .with_clifford_router()
            .run(&circuit, 8000, 13)
            .unwrap();
        assert_eq!(routed.route.segments.len(), 2, "{backend}");
        assert_eq!(routed.route.segments[0].engine, EngineKind::Tableau);
        assert_eq!(routed.route.segments[0].ops, 3);
        assert_eq!(routed.route.segments[1].engine, EngineKind::from(backend));
        assert_eq!(routed.route.segments[1].ops, 3);

        let dense = WeakSimulator::new(backend).run(&circuit, 8000, 13).unwrap();
        assert_eq!(dense.route.segments.len(), 1);
        assert_eq!(routed.histogram, dense.histogram, "{backend}");
    }
}

#[test]
fn thousand_qubit_ghz_routes_and_samples_instantly() {
    let build_start = std::time::Instant::now();
    let circuit = algorithms::ghz(1000);
    let outcome = WeakSimulator::new(Backend::DecisionDiagram)
        .with_clifford_router()
        .run(&circuit, 100_000, 77)
        .unwrap();
    let elapsed = build_start.elapsed();

    assert!(outcome.route.used_tableau());
    assert_eq!(outcome.histogram.shots(), 100_000);
    // 2n stabilizer/destabilizer generators, no dense state anywhere.
    assert_eq!(outcome.representation_size, 2000);
    // The histogram keys the low 64 bits: all-zeros or all-ones only.
    assert!(outcome
        .histogram
        .counts()
        .keys()
        .all(|&k| k == 0 || k == u64::MAX));
    let zero_freq = outcome.histogram.frequency(0);
    assert!((zero_freq - 0.5).abs() < 0.02, "{zero_freq}");
    // The acceptance bound holds in release builds; debug builds only
    // check completion (they run the same code an order of magnitude
    // slower).
    if !cfg!(debug_assertions) {
        assert!(
            elapsed.as_secs_f64() < 1.0,
            "1000-qubit GHZ construct + 100k shots took {elapsed:?}"
        );
    }
}

//! Governor integration suite: budgets, deadlines, cancellation and graceful
//! degradation across the full simulation stack.
//!
//! The unconditional tests drive *real* resource pressure (tiny budgets,
//! short deadlines, cross-thread cancellation).  The `fault-inject` section
//! at the bottom uses the deterministic injection hooks
//! (`cargo test --features fault-inject --test governor`) to prove that
//! every failure kind surfaces as a typed error — never a panic — and that
//! the package stays fully usable afterwards, bit-identically.

use std::time::{Duration, Instant};

use weaksim::{Backend, CancelToken, DdError, RunError, RunGovernor, WeakSimulator};

/// A statically-routed circuit big enough that DD construction performs many
/// thousands of governed checkpoints but still finishes in well under a
/// second when unlimited.
fn static_workload() -> circuit::Circuit {
    algorithms::supremacy(4, 4, 8, 7).0
}

/// A dynamic (mid-circuit measurement) workload for the trajectory engine.
fn dynamic_workload() -> circuit::Circuit {
    algorithms::teleportation(1.2)
}

#[test]
fn node_budget_exhaustion_is_a_structured_memory_out() {
    let governor = RunGovernor::unlimited().with_node_budget(64);
    let err = WeakSimulator::new(Backend::DecisionDiagram)
        .with_governor(governor)
        .run(&static_workload(), 100, 1)
        .expect_err("a 64-node budget cannot hold a supremacy state");
    match err {
        RunError::DdMemoryOut(DdError::MemoryOut {
            live_nodes,
            allocated_bytes,
            node_budget,
            byte_budget,
            op_index,
        }) => {
            assert_eq!(node_budget, Some(64));
            assert_eq!(byte_budget, None);
            assert!(live_nodes > 64, "report carries the observed count");
            assert!(allocated_bytes > 0);
            assert!(op_index.is_some(), "failure is stamped with the op index");
        }
        other => panic!("expected a structured memory-out, got {other}"),
    }
}

#[test]
fn byte_budget_exhaustion_is_a_structured_memory_out() {
    let governor = RunGovernor::unlimited().with_byte_budget(16 * 1024);
    let err = WeakSimulator::new(Backend::DecisionDiagram)
        .with_governor(governor)
        .run(&static_workload(), 100, 1)
        .expect_err("a 16 KiB byte budget cannot hold a supremacy state");
    assert!(
        matches!(
            err,
            RunError::DdMemoryOut(DdError::MemoryOut {
                byte_budget: Some(_),
                ..
            })
        ),
        "got {err}"
    );
}

#[test]
fn deadline_aborts_a_long_construction_promptly() {
    // supremacy_4x5_10 takes tens of seconds to build unlimited; a 100 ms
    // deadline must abort it within ~1 s thanks to the amortized checks.
    let circuit = algorithms::supremacy(4, 5, 10, 7).0;
    let governor = RunGovernor::unlimited().with_timeout(Duration::from_millis(100));
    let started = Instant::now();
    let err = WeakSimulator::new(Backend::DecisionDiagram)
        .with_governor(governor)
        .run(&circuit, 100, 1)
        .expect_err("the deadline fires long before construction finishes");
    let elapsed = started.elapsed();
    assert!(
        matches!(err, RunError::Deadline(DdError::Deadline { .. })),
        "got {err}"
    );
    assert!(
        elapsed < Duration::from_millis(1500),
        "abort took {elapsed:?}, expected well under 1.5 s"
    );
}

#[test]
fn cancellation_from_another_thread_stops_the_run() {
    let token = CancelToken::new();
    let governor = RunGovernor::unlimited().with_cancel_token(token.clone());
    let circuit = algorithms::supremacy(4, 5, 10, 7).0;

    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            token.cancel();
        })
    };
    let err = WeakSimulator::new(Backend::DecisionDiagram)
        .with_governor(governor)
        .run(&circuit, 100, 1)
        .expect_err("cancellation aborts the run");
    canceller.join().expect("canceller thread exits cleanly");
    assert!(
        matches!(err, RunError::Cancelled(DdError::Cancelled { .. })),
        "got {err}"
    );
    assert!(token.is_cancelled());
}

#[test]
fn interrupted_trajectory_run_returns_completed_shots() {
    // A pre-expired deadline: the chunk-boundary check fires before any shot
    // runs, so the outcome is deterministic — zero completed shots, a
    // Deadline interruption, and an empty (but well-formed) histogram.
    let governor = RunGovernor::unlimited().with_timeout(Duration::ZERO);
    let outcome = WeakSimulator::new(Backend::DecisionDiagram)
        .with_governor(governor)
        .run(&dynamic_workload(), 500, 3)
        .expect("interruption degrades gracefully instead of failing");
    let interruption = outcome.interruption.expect("run was interrupted");
    assert!(matches!(interruption.reason, DdError::Deadline { .. }));
    assert_eq!(interruption.completed_shots, 0);
    assert_eq!(outcome.histogram.shots(), interruption.completed_shots);
}

#[test]
fn interrupted_sv_trajectory_run_degrades_too() {
    // The state-vector backend shares the chunk-boundary governance.
    let governor = RunGovernor::unlimited().with_timeout(Duration::ZERO);
    let outcome = WeakSimulator::new(Backend::StateVector)
        .with_governor(governor)
        .run(&dynamic_workload(), 500, 3)
        .expect("interruption degrades gracefully instead of failing");
    let interruption = outcome.interruption.expect("run was interrupted");
    assert!(matches!(interruption.reason, DdError::Deadline { .. }));
    assert_eq!(outcome.histogram.shots(), interruption.completed_shots);
}

#[test]
fn cancelled_trajectory_run_reports_partial_results() {
    // Cancel mid-run from another thread; whatever completed is returned
    // and accounted for exactly.
    let token = CancelToken::new();
    let governor = RunGovernor::unlimited().with_cancel_token(token.clone());
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            token.cancel();
        })
    };
    let outcome = WeakSimulator::new(Backend::DecisionDiagram)
        .with_governor(governor)
        .run(&dynamic_workload(), 50_000_000, 3)
        .expect("cancellation degrades gracefully");
    canceller.join().expect("canceller thread exits cleanly");
    let interruption = outcome.interruption.expect("run was cancelled");
    assert!(matches!(interruption.reason, DdError::Cancelled { .. }));
    assert_eq!(outcome.histogram.shots(), interruption.completed_shots);
    assert!(
        interruption.completed_shots < 50_000_000,
        "the run must not have finished all shots"
    );
}

#[test]
fn rerun_after_abort_matches_a_fresh_run_bit_for_bit() {
    // An aborted governed run must leave no residue: simulating again with
    // an unlimited governor gives the same histogram as a fresh simulator.
    let circuit = static_workload();
    let mut governed = WeakSimulator::new(Backend::DecisionDiagram)
        .with_governor(RunGovernor::unlimited().with_node_budget(64));
    governed
        .run(&circuit, 200, 9)
        .expect_err("budget abort expected");

    let retry = governed
        .with_governor(RunGovernor::unlimited())
        .run(&circuit, 200, 9)
        .expect("retry after abort succeeds");
    let fresh = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&circuit, 200, 9)
        .expect("fresh run succeeds");
    assert_eq!(
        retry.histogram.counts(),
        fresh.histogram.counts(),
        "retry after abort must be bit-identical to a fresh run"
    );
}

#[test]
fn unlimited_governor_changes_nothing() {
    // The governed path with no limits must reproduce the ungoverned
    // histogram exactly (the fast path is a single branch).
    let circuit = algorithms::grover(8, 5);
    let plain = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&circuit, 2_000, 11)
        .expect("plain run");
    let governed = WeakSimulator::new(Backend::DecisionDiagram)
        .with_governor(RunGovernor::unlimited().with_check_interval(64))
        .run(&circuit, 2_000, 11)
        .expect("governed run");
    assert_eq!(plain.histogram.counts(), governed.histogram.counts());
}

#[test]
fn node_budget_exhaustion_in_parallel_construction_is_a_structured_memory_out() {
    // Construction workers account their overlay allocations against the
    // shared budget, so real node pressure surfaces as the same structured
    // error the sequential path raises — and the degrade-retry path (GC +
    // cache shrink + one retry) runs first, exactly as it does sequentially.
    let governor = RunGovernor::unlimited().with_node_budget(64);
    let err = WeakSimulator::new(Backend::DecisionDiagram)
        .with_construction_threads(4)
        .with_governor(governor)
        .run(&static_workload(), 100, 1)
        .expect_err("a 64-node budget cannot hold a supremacy state");
    match err {
        RunError::DdMemoryOut(DdError::MemoryOut {
            node_budget,
            op_index,
            ..
        }) => {
            assert_eq!(node_budget, Some(64));
            assert!(op_index.is_some(), "failure is stamped with the op index");
        }
        other => panic!("expected a structured memory-out, got {other}"),
    }
}

#[test]
fn cancellation_stops_a_parallel_construction_run() {
    let token = CancelToken::new();
    let governor = RunGovernor::unlimited().with_cancel_token(token.clone());
    let circuit = algorithms::supremacy(4, 5, 10, 7).0;

    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            token.cancel();
        })
    };
    let err = WeakSimulator::new(Backend::DecisionDiagram)
        .with_construction_threads(4)
        .with_governor(governor)
        .run(&circuit, 100, 1)
        .expect_err("cancellation aborts the run");
    canceller.join().expect("canceller thread exits cleanly");
    assert!(
        matches!(err, RunError::Cancelled(DdError::Cancelled { .. })),
        "got {err}"
    );
}

#[cfg(feature = "fault-inject")]
mod fault_injection {
    use super::*;
    use dd::{FaultPlan, InjectedFault};

    fn governed(fault: FaultPlan) -> WeakSimulator {
        WeakSimulator::new(Backend::DecisionDiagram).with_governor(
            RunGovernor::unlimited()
                .with_check_interval(1)
                .with_fault(fault),
        )
    }

    #[test]
    fn every_injected_fault_surfaces_as_a_typed_error() {
        let circuit = static_workload();
        for (kind, expected) in [
            (InjectedFault::MemoryOut, "memory"),
            (InjectedFault::Deadline, "deadline"),
            (InjectedFault::Cancelled, "cancel"),
        ] {
            let err = governed(FaultPlan { at_count: 10, kind })
                .run(&circuit, 100, 1)
                .expect_err("injected fault must fail the run");
            let matches_kind = match kind {
                InjectedFault::MemoryOut => matches!(err, RunError::DdMemoryOut(_)),
                InjectedFault::Deadline => matches!(err, RunError::Deadline(_)),
                InjectedFault::Cancelled => matches!(err, RunError::Cancelled(_)),
            };
            assert!(matches_kind, "{expected} fault surfaced as {err}");
        }
    }

    #[test]
    fn injected_faults_fire_at_any_depth_without_panicking() {
        // Sweep the trigger point across the whole construction, including
        // checkpoint 1 (before anything is built): typed error or success,
        // never a panic.
        let circuit = algorithms::ghz(6);
        for at_count in [1, 2, 3, 5, 10, 50, 1_000] {
            for kind in [
                InjectedFault::MemoryOut,
                InjectedFault::Deadline,
                InjectedFault::Cancelled,
            ] {
                let result = governed(FaultPlan { at_count, kind }).run(&circuit, 50, 1);
                if let Err(err) = result {
                    assert!(
                        matches!(
                            err,
                            RunError::DdMemoryOut(_)
                                | RunError::Deadline(_)
                                | RunError::Cancelled(_)
                        ),
                        "unexpected error kind at checkpoint {at_count}: {err}"
                    );
                }
            }
        }
    }

    #[test]
    fn mid_run_trajectory_fault_returns_a_deterministic_partial_histogram() {
        // With one worker and an injected fault at a fixed checkpoint count,
        // the partial result is reproducible run-to-run.  A *noisy* workload
        // keeps decision-diagram work (and therefore governor checkpoints)
        // flowing on every error shot — a noiseless dynamic circuit would
        // serve every shot from the prefix cache after warm-up and the fault
        // would never trigger.
        let circuit = dynamic_workload();
        let noise = algorithms::hardware_noise(0.05);
        let fault = FaultPlan {
            at_count: 2_000,
            kind: InjectedFault::Deadline,
        };
        let run = || {
            WeakSimulator::new(Backend::DecisionDiagram)
                .with_threads(1)
                .with_noise(noise.clone())
                .with_governor(
                    RunGovernor::unlimited()
                        .with_check_interval(1)
                        .with_fault(fault),
                )
                .run(&circuit, 100_000, 3)
                .expect("fault degrades gracefully")
        };
        let first = run();
        let second = run();
        let interruption = first.interruption.clone().expect("run was interrupted");
        assert!(matches!(interruption.reason, DdError::Deadline { .. }));
        assert_eq!(first.histogram.shots(), interruption.completed_shots);
        assert!(
            interruption.completed_shots > 0,
            "the fault should fire after some shots completed"
        );
        assert!(interruption.completed_shots < 100_000);
        assert_eq!(first.histogram.counts(), second.histogram.counts());
        assert_eq!(first.interruption, second.interruption);
    }

    #[test]
    fn injected_faults_in_parallel_construction_surface_as_one_typed_error() {
        // Construction workers share the governor's checkpoint counter, so
        // an injected fault fires *inside a worker mid-layer*.  It must
        // surface as exactly one typed error at the top — never a panic and
        // never a deadlock (the remaining workers finish their tasks and the
        // join propagates the lowest-indexed failure deterministically).
        let circuit = static_workload();
        for kind in [
            InjectedFault::MemoryOut,
            InjectedFault::Deadline,
            InjectedFault::Cancelled,
        ] {
            for workers in [2usize, 4] {
                let err = governed(FaultPlan {
                    at_count: 500,
                    kind,
                })
                .with_construction_threads(workers)
                .run(&circuit, 100, 1)
                .expect_err("injected worker fault must fail the run");
                let matches_kind = match kind {
                    InjectedFault::MemoryOut => matches!(err, RunError::DdMemoryOut(_)),
                    InjectedFault::Deadline => matches!(err, RunError::Deadline(_)),
                    InjectedFault::Cancelled => matches!(err, RunError::Cancelled(_)),
                };
                assert!(
                    matches_kind,
                    "{kind:?} with {workers} workers surfaced as {err}"
                );
            }
        }
    }

    #[test]
    fn parallel_injected_faults_fire_at_any_depth_without_panicking() {
        // Sweep the trigger point across the whole parallel construction:
        // typed error or success, never a panic, never a hang.
        let circuit = algorithms::ghz(6);
        for at_count in [1, 2, 3, 5, 10, 50, 1_000] {
            for kind in [
                InjectedFault::MemoryOut,
                InjectedFault::Deadline,
                InjectedFault::Cancelled,
            ] {
                let result = governed(FaultPlan { at_count, kind })
                    .with_construction_threads(4)
                    .run(&circuit, 50, 1);
                if let Err(err) = result {
                    assert!(
                        matches!(
                            err,
                            RunError::DdMemoryOut(_)
                                | RunError::Deadline(_)
                                | RunError::Cancelled(_)
                        ),
                        "unexpected error kind at checkpoint {at_count}: {err}"
                    );
                }
            }
        }
    }

    #[test]
    fn rerun_after_worker_abort_is_bit_identical_to_a_fresh_single_thread_run() {
        // Workers never mutate the master package, so an injected mid-layer
        // abort leaves it fully usable: lifting the fault and re-running at
        // 4 workers must reproduce a fresh 1-worker run bit-for-bit.
        let circuit = static_workload();
        let mut sim = governed(FaultPlan {
            at_count: 2_000,
            kind: InjectedFault::MemoryOut,
        })
        .with_construction_threads(4);
        sim.run(&circuit, 200, 9)
            .expect_err("injected mid-layer abort");

        let retry = sim
            .with_governor(RunGovernor::unlimited())
            .run(&circuit, 200, 9)
            .expect("retry succeeds once the fault is lifted");
        let fresh = WeakSimulator::new(Backend::DecisionDiagram)
            .with_construction_threads(1)
            .run(&circuit, 200, 9)
            .expect("fresh single-thread run succeeds");
        assert_eq!(
            retry.histogram.counts(),
            fresh.histogram.counts(),
            "post-abort parallel retry must match a fresh single-thread run"
        );
    }

    #[test]
    fn rerun_after_injected_abort_is_bit_identical_to_a_fresh_run() {
        let circuit = static_workload();
        let mut sim = governed(FaultPlan {
            at_count: 100,
            kind: InjectedFault::MemoryOut,
        });
        sim.run(&circuit, 200, 9).expect_err("injected abort");

        let retry = sim
            .with_governor(RunGovernor::unlimited())
            .run(&circuit, 200, 9)
            .expect("retry succeeds once the fault is lifted");
        let fresh = WeakSimulator::new(Backend::DecisionDiagram)
            .run(&circuit, 200, 9)
            .expect("fresh run succeeds");
        assert_eq!(retry.histogram.counts(), fresh.histogram.counts());
    }
}

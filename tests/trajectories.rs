//! End-to-end tests of dynamic-circuit (trajectory) simulation: QASM-level
//! teleportation, measure-and-reset qubit reuse, classically-controlled
//! feed-forward (`if (c==k)`, iterative phase estimation), stochastic noise
//! channels validated against analytic density-matrix distributions,
//! cross-backend agreement and thread-count-invariant determinism.

use circuit::{qasm, Circuit, NoiseChannel, NoiseModel, Qubit};
use weaksim::{
    simulate_noisy_trajectories, simulate_noisy_trajectories_with_threads,
    simulate_trajectories_with_threads, stats, Backend, WeakSimulator,
};

/// Quantum teleportation with mid-circuit measurement, expressed in the
/// OpenQASM 2.0 subset.  Qubit 0 carries `ry(1.2)|0>`; after the two
/// mid-circuit measurements the corrections are applied as CX/CZ from the
/// *collapsed* qubits (equivalent to classically controlled X/Z), and the
/// teleported state is read out of qubit 2 into `c[2]`.
const TELEPORTATION_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
ry(1.2) q[0];
h q[1];
cx q[1],q[2];
cx q[0],q[1];
h q[0];
measure q[0] -> c[0];
measure q[1] -> c[1];
cx q[1],q[2];
cz q[0],q[2];
measure q[2] -> c[2];
"#;

/// `P(c2 = 1)` for the teleported state `ry(1.2)|0>`: `sin^2(0.6)`.
fn teleported_one_probability() -> f64 {
    (0.6f64).sin().powi(2)
}

#[test]
fn teleportation_qasm_parses_as_a_dynamic_circuit() {
    let circuit = qasm::parse(TELEPORTATION_QASM).expect("teleportation QASM parses");
    assert_eq!(circuit.num_qubits(), 3);
    assert_eq!(circuit.num_clbits(), 3);
    assert!(circuit.is_dynamic());
    assert_eq!(circuit.len(), 10);
    assert!(circuit.validate().is_ok());
    // The QASM text is the same workload the bench and example use, so the
    // three surfaces cannot silently drift apart.
    assert_eq!(
        circuit.operations(),
        algorithms::teleportation(1.2).operations()
    );
}

#[test]
fn teleportation_distributions_match_on_both_backends() {
    let circuit = qasm::parse(TELEPORTATION_QASM).unwrap();
    let shots = 40_000u64;
    let p_one = teleported_one_probability();

    let mut histograms = Vec::new();
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = WeakSimulator::new(backend)
            .run(&circuit, shots, 77)
            .unwrap();
        assert_eq!(outcome.histogram.shots(), shots);
        assert_eq!(outcome.histogram.num_qubits(), 3);

        // The teleported qubit's marginal must match the prepared state,
        // independent of the (uniform) correction bits c0/c1.
        let observed_one: u64 = outcome
            .histogram
            .counts()
            .iter()
            .filter(|(&record, _)| record & 0b100 != 0)
            .map(|(_, &count)| count)
            .sum();
        let freq = observed_one as f64 / shots as f64;
        assert!(
            (freq - p_one).abs() < 0.01,
            "{backend}: teleported P(1) = {freq}, expected {p_one}"
        );

        // Each (c0, c1) correction pattern occurs a quarter of the time.
        for pattern in 0..4u64 {
            let count: u64 = outcome
                .histogram
                .counts()
                .iter()
                .filter(|(&record, _)| record & 0b11 == pattern)
                .map(|(_, &count)| count)
                .sum();
            let freq = count as f64 / shots as f64;
            assert!(
                (freq - 0.25).abs() < 0.02,
                "{backend}: correction pattern {pattern:02b} frequency {freq}"
            );
        }
        histograms.push(outcome.histogram);
    }

    // The full 3-bit record distributions of the two backends agree.
    for record in 0..8u64 {
        let dd = histograms[0].frequency(record);
        let sv = histograms[1].frequency(record);
        assert!(
            (dd - sv).abs() < 0.015,
            "record {record:03b}: DD {dd} vs SV {sv}"
        );
    }
}

#[test]
fn measure_and_reset_reuses_a_qubit_for_independent_coins() {
    // One physical qubit produces three independent fair coins through
    // measure-reset-reuse — the workload that motivates qubit reuse.
    let mut circuit = Circuit::with_name(1, "coin_reuse_3");
    for c in 0..3u16 {
        if c > 0 {
            circuit.reset(Qubit(0));
        }
        circuit.h(Qubit(0)).measure(Qubit(0), c);
    }
    assert!(circuit.is_dynamic());

    let shots = 32_000u64;
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = WeakSimulator::new(backend).run(&circuit, shots, 3).unwrap();
        assert_eq!(outcome.histogram.distinct_outcomes(), 8);
        for record in 0..8u64 {
            let freq = outcome.histogram.frequency(record);
            assert!(
                (freq - 0.125).abs() < 0.01,
                "{backend}: record {record:03b} frequency {freq}"
            );
        }
    }
}

#[test]
fn trajectories_are_deterministic_across_thread_counts() {
    let circuit = qasm::parse(TELEPORTATION_QASM).unwrap();
    // Enough shots for several 1024-shot chunks so every thread count
    // exercises real work distribution.
    let shots = 5 * 1024 + 311;
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let reference =
            simulate_trajectories_with_threads(backend, &circuit, shots, 2020, 1).unwrap();
        for threads in [2, 8] {
            let run = simulate_trajectories_with_threads(backend, &circuit, shots, 2020, threads)
                .unwrap();
            assert_eq!(
                reference.histogram, run.histogram,
                "{backend}: {threads} threads changed the classical records"
            );
        }
    }
}

#[test]
fn dynamic_circuits_roundtrip_through_qasm() {
    let circuit = qasm::parse(TELEPORTATION_QASM).unwrap();
    let written = qasm::to_qasm(&circuit).unwrap();
    let reparsed = qasm::parse(&written).unwrap();
    assert_eq!(reparsed.operations(), circuit.operations());
    assert_eq!(reparsed.num_clbits(), circuit.num_clbits());

    // The reparsed circuit simulates identically (same seed, same records).
    let a = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&circuit, 2048, 5)
        .unwrap();
    let b = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&reparsed, 2048, 5)
        .unwrap();
    assert_eq!(a.histogram, b.histogram);
}

#[test]
fn iterative_phase_estimation_recovers_the_phase_from_qasm() {
    // 3-bit IPE of phase 2*pi*5/8, driven from the QASM text (with
    // `if (c==k)` feed-forward) rather than the generated circuit, so the
    // whole parser -> trajectory-engine pipeline is under test.  For an
    // exact 3-bit phase the read-out is deterministic: c = 5 every shot.
    let m = 5u64;
    let phase = 2.0 * std::f64::consts::PI * m as f64 / 8.0;
    let generated = algorithms::ipe(3, phase);
    let text = qasm::to_qasm(&generated).expect("ipe exports to QASM");
    assert!(text.contains("if (c=="));
    let circuit = qasm::parse(&text).expect("ipe QASM parses");
    assert_eq!(circuit.operations(), generated.operations());
    assert!(circuit.is_dynamic());

    let shots = 20_000u64;
    let mut histograms = Vec::new();
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = WeakSimulator::new(backend)
            .run(&circuit, shots, 41)
            .unwrap();
        assert_eq!(
            outcome.histogram.count(m),
            shots,
            "{backend}: exact phases must be recovered deterministically"
        );
        histograms.push(outcome.histogram);
    }
    assert_eq!(histograms[0], histograms[1]);

    // A phase *between* the 3-bit grid points spreads the distribution; the
    // two backends must still agree on it.
    let rough = qasm::parse(&qasm::to_qasm(&algorithms::ipe(3, 1.0)).unwrap()).unwrap();
    let dd = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&rough, shots, 42)
        .unwrap();
    let sv = WeakSimulator::new(Backend::StateVector)
        .run(&rough, shots, 42)
        .unwrap();
    for record in 0..8u64 {
        let (a, b) = (
            dd.histogram.frequency(record),
            sv.histogram.frequency(record),
        );
        assert!((a - b).abs() < 0.02, "record {record}: DD {a} vs SV {b}");
    }
    // The most likely estimate is the closest grid point:
    // 1.0 / (2*pi) * 8 = 1.27..., so c = 1.
    let top = dd
        .histogram
        .counts()
        .iter()
        .max_by_key(|(_, &count)| count)
        .map(|(&record, _)| record);
    assert_eq!(top, Some(1));
}

#[test]
fn conditioned_circuit_matches_the_analytic_distribution() {
    // h q0; measure q0 -> c0; if (c==1) h q1; measure q1 -> c1.
    // Analytically: P(00) = 1/2, P(01) = P(11) = 1/4, P(10) = 0.
    let src = "qreg q[2]; creg c[2];\nh q[0];\nmeasure q[0] -> c[0];\nif (c==1) h q[1];\nmeasure q[1] -> c[1];";
    let circuit = qasm::parse(src).unwrap();
    assert!(circuit.is_dynamic());
    let expected = |record: u64| match record {
        0b00 => 0.5,
        0b01 | 0b11 => 0.25,
        _ => 0.0,
    };
    let shots = 30_000u64;
    let mut histograms = Vec::new();
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = WeakSimulator::new(backend)
            .run(&circuit, shots, 97)
            .unwrap();
        // Chi-square goodness of fit against the analytic distribution: the
        // samples must be statistically indistinguishable from the ideal
        // feed-forward device.
        let result = stats::chi_square_test(&outcome.histogram, expected);
        assert!(
            result.is_consistent(0.001),
            "{backend}: chi-square p-value {} too small",
            result.p_value
        );
        histograms.push(outcome.histogram);
    }
    // And the two backends agree with each other.
    for record in 0..4u64 {
        let (a, b) = (
            histograms[0].frequency(record),
            histograms[1].frequency(record),
        );
        assert!((a - b).abs() < 0.015, "record {record:02b}: {a} vs {b}");
    }
}

#[test]
fn conditioned_trajectories_are_thread_count_invariant() {
    let circuit = algorithms::ipe(3, 1.0);
    let shots = 4 * 1024 + 99;
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let reference =
            simulate_trajectories_with_threads(backend, &circuit, shots, 1234, 1).unwrap();
        for threads in [2, 8] {
            let run = simulate_trajectories_with_threads(backend, &circuit, shots, 1234, threads)
                .unwrap();
            assert_eq!(
                reference.histogram, run.histogram,
                "{backend}: {threads} threads changed the feed-forward records"
            );
        }
    }
}

/// The trajectory histograms of a noisy 2-qubit circuit must be
/// statistically indistinguishable from the analytically computed
/// density-matrix distribution: a depolarizing channel of strength `p` on
/// one qubit of a Bell pair gives
/// `P(00) = P(11) = (1 - p/2)/2` and `P(01) = P(10) = p/4`
/// (the `I`/`Z` branches keep the correlation, `X`/`Y` break it).
#[test]
fn depolarized_bell_pair_matches_the_analytic_distribution() {
    let p = 0.3f64;
    let mut bell = Circuit::with_name(2, "noisy_bell");
    bell.h(Qubit(0))
        .cx(Qubit(0), Qubit(1))
        .measure(Qubit(0), 0)
        .measure(Qubit(1), 1);
    // Qubit 1 is touched by exactly one gate (the CX), so the qubit-specific
    // channel inserts exactly one depolarizing site — the case the analytic
    // distribution above describes.
    let model = NoiseModel::new().with_qubit_noise(Qubit(1), NoiseChannel::depolarizing(p));
    let expected = move |record: u64| match record {
        0b00 | 0b11 => (1.0 - p / 2.0) / 2.0,
        0b01 | 0b10 => p / 4.0,
        _ => 0.0,
    };
    let shots = 40_000u64;
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = simulate_noisy_trajectories(backend, &bell, &model, shots, 101).unwrap();
        let result = stats::chi_square_test(&outcome.histogram, expected);
        assert!(
            result.is_consistent(0.001),
            "{backend}: chi-square p-value {} too small (statistic {})",
            result.p_value,
            result.statistic
        );
    }
}

/// Amplitude damping on the excited state `|1>`: the qubit decays with
/// probability exactly `gamma`, and the damped Bell pair keeps its
/// correlation in the no-decay branch —
/// `P(00) = 1/2`, `P(01) = gamma/2`, `P(11) = (1-gamma)/2`, `P(10) = 0`.
#[test]
fn amplitude_damped_states_match_the_analytic_distributions() {
    let gamma = 0.35f64;
    let model = NoiseModel::new().with_gate_noise(NoiseChannel::amplitude_damping(gamma));
    let shots = 40_000u64;

    // Damped excited state: x q0 (one noise site), measure.
    let mut excited = Circuit::with_name(1, "damped_excited");
    excited.x(Qubit(0)).measure(Qubit(0), 0);
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = simulate_noisy_trajectories(backend, &excited, &model, shots, 103).unwrap();
        let result = stats::chi_square_test(&outcome.histogram, |record| match record {
            0 => gamma,
            1 => 1.0 - gamma,
            _ => 0.0,
        });
        assert!(
            result.is_consistent(0.001),
            "{backend}: excited-state chi-square p-value {} too small",
            result.p_value
        );
    }

    // Damped Bell pair: one amplitude-damping site on qubit 1 after the CX.
    let mut bell = Circuit::with_name(2, "damped_bell");
    bell.h(Qubit(0))
        .cx(Qubit(0), Qubit(1))
        .measure(Qubit(0), 0)
        .measure(Qubit(1), 1);
    let site = NoiseModel::new().with_qubit_noise(Qubit(1), NoiseChannel::amplitude_damping(gamma));
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = simulate_noisy_trajectories(backend, &bell, &site, shots, 107).unwrap();
        assert_eq!(
            outcome.histogram.count(0b10),
            0,
            "{backend}: damping can only move |11> to |01>"
        );
        let result = stats::chi_square_test(&outcome.histogram, move |record| match record {
            0b00 => 0.5,
            0b01 => gamma / 2.0,
            0b11 => (1.0 - gamma) / 2.0,
            _ => 0.0,
        });
        assert!(
            result.is_consistent(0.001),
            "{backend}: damped-Bell chi-square p-value {} too small",
            result.p_value
        );
    }
}

/// Read-out error composes with gate noise: `|1>` under amplitude damping
/// `gamma` followed by a bit-flip read-out of probability `q` records `0`
/// with probability `gamma (1-q) + (1-gamma) q`.
#[test]
fn readout_error_composes_with_gate_noise() {
    let (gamma, q) = (0.3f64, 0.1f64);
    let model = NoiseModel::new()
        .with_gate_noise(NoiseChannel::amplitude_damping(gamma))
        .with_measurement_noise(NoiseChannel::bit_flip(q));
    let mut c = Circuit::with_name(1, "damped_flipped_readout");
    c.x(Qubit(0)).measure(Qubit(0), 0);
    let p_zero = gamma * (1.0 - q) + (1.0 - gamma) * q;
    let shots = 40_000u64;
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = simulate_noisy_trajectories(backend, &c, &model, shots, 109).unwrap();
        let result = stats::chi_square_test(&outcome.histogram, move |record| match record {
            0 => p_zero,
            1 => 1.0 - p_zero,
            _ => 0.0,
        });
        assert!(
            result.is_consistent(0.001),
            "{backend}: chi-square p-value {} too small",
            result.p_value
        );
    }
}

/// A noise model whose channels all have strength zero inserts no noise
/// sites, so the run is bit-identical to the noiseless trajectory run with
/// the same seed — not merely statistically equivalent.
#[test]
fn zero_strength_noise_is_bit_identical_to_the_noiseless_run() {
    let circuit = algorithms::teleportation(1.2);
    let silent = algorithms::hardware_noise(0.0);
    assert!(!silent.has_noise());
    let shots = 4 * 1024 + 33;
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        for threads in [1, 4] {
            let ideal =
                simulate_trajectories_with_threads(backend, &circuit, shots, 555, threads).unwrap();
            let noisy = simulate_noisy_trajectories_with_threads(
                backend, &circuit, &silent, shots, 555, threads,
            )
            .unwrap();
            assert_eq!(
                ideal.histogram, noisy.histogram,
                "{backend}/{threads} threads: p = 0 noise changed the records"
            );
        }
    }
}

/// Fully depolarizing (`p = 1`) noise on a qubit replaces it by the
/// maximally mixed state: the measured marginal is uniform no matter what
/// the circuit prepared.
#[test]
fn fully_depolarizing_noise_yields_the_uniform_marginal() {
    let model = NoiseModel::new().with_gate_noise(NoiseChannel::depolarizing(1.0));
    let mut c = Circuit::with_name(1, "depolarized_excited");
    c.x(Qubit(0)).measure(Qubit(0), 0);
    let shots = 40_000u64;
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = simulate_noisy_trajectories(backend, &c, &model, shots, 113).unwrap();
        let result = stats::chi_square_test(
            &outcome.histogram,
            |record| {
                if record < 2 {
                    0.5
                } else {
                    0.0
                }
            },
        );
        assert!(
            result.is_consistent(0.001),
            "{backend}: marginal not uniform, chi-square p-value {}",
            result.p_value
        );
    }
}

/// Noisy histograms are bit-identical across worker counts (tested at two
/// multi-worker counts against the single-worker reference) and differ
/// between seeds.
#[test]
fn noisy_records_are_thread_count_invariant() {
    let circuit = algorithms::teleportation(1.2);
    let model = algorithms::hardware_noise(0.05);
    let shots = 3 * 1024 + 17;
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let reference =
            simulate_noisy_trajectories_with_threads(backend, &circuit, &model, shots, 77, 1)
                .unwrap();
        for threads in [2, 8] {
            let run = simulate_noisy_trajectories_with_threads(
                backend, &circuit, &model, shots, 77, threads,
            )
            .unwrap();
            assert_eq!(
                reference.histogram, run.histogram,
                "{backend}: {threads} threads changed the noisy records"
            );
        }
        let other =
            simulate_noisy_trajectories_with_threads(backend, &circuit, &model, shots, 78, 1)
                .unwrap();
        assert_ne!(
            reference.histogram, other.histogram,
            "{backend}: different seeds must give different noisy records"
        );
    }
}

/// The decision-diagram and statevector runners draw every decision from
/// the same uniform variates through identical probability arithmetic, so
/// for a circuit whose branch probabilities are exactly representable the
/// classical records agree bit for bit.
#[test]
fn backends_agree_exactly_on_noisy_records() {
    let mut c = Circuit::with_name(2, "dyadic_noisy");
    c.h(Qubit(0))
        .cx(Qubit(0), Qubit(1))
        .measure(Qubit(0), 0)
        .measure(Qubit(1), 1);
    let model = NoiseModel::new()
        .with_gate_noise(NoiseChannel::depolarizing(0.5))
        .with_qubit_noise(Qubit(1), NoiseChannel::amplitude_damping(0.5))
        .with_measurement_noise(NoiseChannel::bit_flip(0.25));
    let shots = 4 * 1024 + 7;
    let dd =
        simulate_noisy_trajectories(Backend::DecisionDiagram, &c, &model, shots, 2024).unwrap();
    let sv = simulate_noisy_trajectories(Backend::StateVector, &c, &model, shots, 2024).unwrap();
    assert_eq!(
        dd.histogram, sv.histogram,
        "DD and SV noisy records must be identical for the same seed"
    );
}

/// `WeakSimulator::with_noise` routes every circuit — static ones included —
/// through the trajectory engine, while a zero-strength model keeps the
/// static fast path (and its strong state).
#[test]
fn weak_simulator_routes_noisy_circuits_through_trajectories() {
    let circuit = algorithms::ghz(3);
    let noisy = WeakSimulator::new(Backend::DecisionDiagram)
        .with_noise(algorithms::hardware_noise(0.02))
        .run(&circuit, 2_000, 5)
        .unwrap();
    assert!(
        noisy.state.is_none(),
        "noisy runs have no single final state"
    );
    assert_eq!(noisy.histogram.num_qubits(), 3);
    // Noise makes the forbidden middle outcomes appear.
    let broken: u64 = (1..7).map(|r| noisy.histogram.count(r)).sum();
    assert!(
        broken > 0,
        "2% depolarizing noise must break some GHZ shots"
    );

    let silent = WeakSimulator::new(Backend::DecisionDiagram)
        .with_noise(algorithms::hardware_noise(0.0))
        .run(&circuit, 2_000, 5)
        .unwrap();
    assert!(
        silent.state.is_some(),
        "a zero-strength model keeps the static fast path"
    );
    let ideal = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&circuit, 2_000, 5)
        .unwrap();
    assert_eq!(silent.histogram, ideal.histogram);

    // Malformed models surface as InvalidNoise.
    let bad = WeakSimulator::new(Backend::DecisionDiagram)
        .with_noise(NoiseModel::new().with_gate_noise(NoiseChannel::bit_flip(7.0)))
        .run(&circuit, 10, 0);
    assert!(matches!(bad, Err(weaksim::RunError::InvalidNoise(_))));
}

/// The error-rate sweep workload: noisy iterative phase estimation recovers
/// an exact 3-bit phase deterministically at `p = 0` and degrades
/// monotonically as the error rate grows.
#[test]
fn noisy_ipe_error_rate_sweep_degrades_the_recovery_probability() {
    let m = 5u64;
    let phase = 2.0 * std::f64::consts::PI * m as f64 / 8.0;
    let (circuit, sweep) = algorithms::ipe_noise_sweep(3, phase, 2, 0.1);
    let shots = 6_000u64;
    let mut recoveries = Vec::new();
    for (p, model) in &sweep {
        let outcome =
            simulate_noisy_trajectories(Backend::DecisionDiagram, &circuit, model, shots, 606)
                .unwrap();
        recoveries.push((*p, outcome.histogram.frequency(m)));
    }
    assert_eq!(
        recoveries[0].1, 1.0,
        "the ideal device recovers the exact phase deterministically"
    );
    for window in recoveries.windows(2) {
        assert!(
            window[1].1 < window[0].1,
            "recovery must degrade with the error rate: {recoveries:?}"
        );
    }
    assert!(
        recoveries[1].1 > 0.5,
        "5% noise must not destroy the estimate outright: {recoveries:?}"
    );
}

/// `if (c==k) measure/reset` runs end-to-end from QASM text: parser →
/// trajectory engine on both backends, plus a write/parse round trip.
#[test]
fn conditioned_measure_and_reset_run_from_qasm_text() {
    // h q0; measure -> c0; reset; x (q0 is |1>); if (c==1) reset q0;
    // measure -> c1.  c0 = 0 leaves q0 excited (record 10); c0 = 1 resets it
    // (record 01).  Records 00 and 11 are impossible.
    let src = "\
OPENQASM 2.0;
include \"qelib1.inc\";
qreg q[1];
creg c[2];
h q[0];
measure q[0] -> c[0];
reset q[0];
x q[0];
if (c==1) reset q[0];
measure q[0] -> c[1];
";
    let circuit = qasm::parse(src).expect("conditioned-reset QASM parses");
    assert!(circuit.is_dynamic());
    let written = qasm::to_qasm(&circuit).unwrap();
    assert!(written.contains("if (c==1) reset q[0];"));
    assert_eq!(
        qasm::parse(&written).unwrap().operations(),
        circuit.operations()
    );

    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = WeakSimulator::new(backend)
            .run(&circuit, 8_000, 909)
            .unwrap();
        assert_eq!(outcome.histogram.count(0b00), 0, "{backend}");
        assert_eq!(outcome.histogram.count(0b11), 0, "{backend}");
        let f = outcome.histogram.frequency(0b01);
        assert!((f - 0.5).abs() < 0.03, "{backend}: P(01) = {f}");
    }

    // Conditioned measurement: only the c0 = 1 half reads out q1.
    let src = "\
qreg q[2];
creg c[2];
h q[0];
measure q[0] -> c[0];
x q[1];
if (c==1) measure q[1] -> c[1];
";
    let circuit = qasm::parse(src).expect("conditioned-measure QASM parses");
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = WeakSimulator::new(backend)
            .run(&circuit, 8_000, 911)
            .unwrap();
        assert_eq!(outcome.histogram.count(0b01), 0, "{backend}");
        assert_eq!(outcome.histogram.count(0b10), 0, "{backend}");
        let f = outcome.histogram.frequency(0b11);
        assert!((f - 0.5).abs() < 0.03, "{backend}: P(11) = {f}");
    }
}

#[test]
fn static_circuits_still_keep_their_strong_state() {
    // A static circuit with a terminal measurement block keeps the fast
    // path: the outcome exposes the strong state and a classical histogram.
    let mut circuit = Circuit::new(2);
    circuit.h(Qubit(0)).cx(Qubit(0), Qubit(1)).measure_all();
    assert!(!circuit.is_dynamic());
    let outcome = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&circuit, 1000, 1)
        .unwrap();
    assert!(outcome.state.is_some());
    assert!(outcome
        .histogram
        .counts()
        .keys()
        .all(|&record| record == 0 || record == 0b11));
}

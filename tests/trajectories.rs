//! End-to-end tests of dynamic-circuit (trajectory) simulation: QASM-level
//! teleportation, measure-and-reset qubit reuse, classically-controlled
//! feed-forward (`if (c==k)`, iterative phase estimation), cross-backend
//! agreement and thread-count-invariant determinism.

use circuit::{qasm, Circuit, Qubit};
use weaksim::{simulate_trajectories_with_threads, stats, Backend, WeakSimulator};

/// Quantum teleportation with mid-circuit measurement, expressed in the
/// OpenQASM 2.0 subset.  Qubit 0 carries `ry(1.2)|0>`; after the two
/// mid-circuit measurements the corrections are applied as CX/CZ from the
/// *collapsed* qubits (equivalent to classically controlled X/Z), and the
/// teleported state is read out of qubit 2 into `c[2]`.
const TELEPORTATION_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
ry(1.2) q[0];
h q[1];
cx q[1],q[2];
cx q[0],q[1];
h q[0];
measure q[0] -> c[0];
measure q[1] -> c[1];
cx q[1],q[2];
cz q[0],q[2];
measure q[2] -> c[2];
"#;

/// `P(c2 = 1)` for the teleported state `ry(1.2)|0>`: `sin^2(0.6)`.
fn teleported_one_probability() -> f64 {
    (0.6f64).sin().powi(2)
}

#[test]
fn teleportation_qasm_parses_as_a_dynamic_circuit() {
    let circuit = qasm::parse(TELEPORTATION_QASM).expect("teleportation QASM parses");
    assert_eq!(circuit.num_qubits(), 3);
    assert_eq!(circuit.num_clbits(), 3);
    assert!(circuit.is_dynamic());
    assert_eq!(circuit.len(), 10);
    assert!(circuit.validate().is_ok());
    // The QASM text is the same workload the bench and example use, so the
    // three surfaces cannot silently drift apart.
    assert_eq!(
        circuit.operations(),
        algorithms::teleportation(1.2).operations()
    );
}

#[test]
fn teleportation_distributions_match_on_both_backends() {
    let circuit = qasm::parse(TELEPORTATION_QASM).unwrap();
    let shots = 40_000u64;
    let p_one = teleported_one_probability();

    let mut histograms = Vec::new();
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = WeakSimulator::new(backend)
            .run(&circuit, shots, 77)
            .unwrap();
        assert_eq!(outcome.histogram.shots(), shots);
        assert_eq!(outcome.histogram.num_qubits(), 3);

        // The teleported qubit's marginal must match the prepared state,
        // independent of the (uniform) correction bits c0/c1.
        let observed_one: u64 = outcome
            .histogram
            .counts()
            .iter()
            .filter(|(&record, _)| record & 0b100 != 0)
            .map(|(_, &count)| count)
            .sum();
        let freq = observed_one as f64 / shots as f64;
        assert!(
            (freq - p_one).abs() < 0.01,
            "{backend}: teleported P(1) = {freq}, expected {p_one}"
        );

        // Each (c0, c1) correction pattern occurs a quarter of the time.
        for pattern in 0..4u64 {
            let count: u64 = outcome
                .histogram
                .counts()
                .iter()
                .filter(|(&record, _)| record & 0b11 == pattern)
                .map(|(_, &count)| count)
                .sum();
            let freq = count as f64 / shots as f64;
            assert!(
                (freq - 0.25).abs() < 0.02,
                "{backend}: correction pattern {pattern:02b} frequency {freq}"
            );
        }
        histograms.push(outcome.histogram);
    }

    // The full 3-bit record distributions of the two backends agree.
    for record in 0..8u64 {
        let dd = histograms[0].frequency(record);
        let sv = histograms[1].frequency(record);
        assert!(
            (dd - sv).abs() < 0.015,
            "record {record:03b}: DD {dd} vs SV {sv}"
        );
    }
}

#[test]
fn measure_and_reset_reuses_a_qubit_for_independent_coins() {
    // One physical qubit produces three independent fair coins through
    // measure-reset-reuse — the workload that motivates qubit reuse.
    let mut circuit = Circuit::with_name(1, "coin_reuse_3");
    for c in 0..3u16 {
        if c > 0 {
            circuit.reset(Qubit(0));
        }
        circuit.h(Qubit(0)).measure(Qubit(0), c);
    }
    assert!(circuit.is_dynamic());

    let shots = 32_000u64;
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = WeakSimulator::new(backend).run(&circuit, shots, 3).unwrap();
        assert_eq!(outcome.histogram.distinct_outcomes(), 8);
        for record in 0..8u64 {
            let freq = outcome.histogram.frequency(record);
            assert!(
                (freq - 0.125).abs() < 0.01,
                "{backend}: record {record:03b} frequency {freq}"
            );
        }
    }
}

#[test]
fn trajectories_are_deterministic_across_thread_counts() {
    let circuit = qasm::parse(TELEPORTATION_QASM).unwrap();
    // Enough shots for several 1024-shot chunks so every thread count
    // exercises real work distribution.
    let shots = 5 * 1024 + 311;
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let reference =
            simulate_trajectories_with_threads(backend, &circuit, shots, 2020, 1).unwrap();
        for threads in [2, 8] {
            let run = simulate_trajectories_with_threads(backend, &circuit, shots, 2020, threads)
                .unwrap();
            assert_eq!(
                reference.histogram, run.histogram,
                "{backend}: {threads} threads changed the classical records"
            );
        }
    }
}

#[test]
fn dynamic_circuits_roundtrip_through_qasm() {
    let circuit = qasm::parse(TELEPORTATION_QASM).unwrap();
    let written = qasm::to_qasm(&circuit).unwrap();
    let reparsed = qasm::parse(&written).unwrap();
    assert_eq!(reparsed.operations(), circuit.operations());
    assert_eq!(reparsed.num_clbits(), circuit.num_clbits());

    // The reparsed circuit simulates identically (same seed, same records).
    let a = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&circuit, 2048, 5)
        .unwrap();
    let b = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&reparsed, 2048, 5)
        .unwrap();
    assert_eq!(a.histogram, b.histogram);
}

#[test]
fn iterative_phase_estimation_recovers_the_phase_from_qasm() {
    // 3-bit IPE of phase 2*pi*5/8, driven from the QASM text (with
    // `if (c==k)` feed-forward) rather than the generated circuit, so the
    // whole parser -> trajectory-engine pipeline is under test.  For an
    // exact 3-bit phase the read-out is deterministic: c = 5 every shot.
    let m = 5u64;
    let phase = 2.0 * std::f64::consts::PI * m as f64 / 8.0;
    let generated = algorithms::ipe(3, phase);
    let text = qasm::to_qasm(&generated).expect("ipe exports to QASM");
    assert!(text.contains("if (c=="));
    let circuit = qasm::parse(&text).expect("ipe QASM parses");
    assert_eq!(circuit.operations(), generated.operations());
    assert!(circuit.is_dynamic());

    let shots = 20_000u64;
    let mut histograms = Vec::new();
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = WeakSimulator::new(backend)
            .run(&circuit, shots, 41)
            .unwrap();
        assert_eq!(
            outcome.histogram.count(m),
            shots,
            "{backend}: exact phases must be recovered deterministically"
        );
        histograms.push(outcome.histogram);
    }
    assert_eq!(histograms[0], histograms[1]);

    // A phase *between* the 3-bit grid points spreads the distribution; the
    // two backends must still agree on it.
    let rough = qasm::parse(&qasm::to_qasm(&algorithms::ipe(3, 1.0)).unwrap()).unwrap();
    let dd = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&rough, shots, 42)
        .unwrap();
    let sv = WeakSimulator::new(Backend::StateVector)
        .run(&rough, shots, 42)
        .unwrap();
    for record in 0..8u64 {
        let (a, b) = (
            dd.histogram.frequency(record),
            sv.histogram.frequency(record),
        );
        assert!((a - b).abs() < 0.02, "record {record}: DD {a} vs SV {b}");
    }
    // The most likely estimate is the closest grid point:
    // 1.0 / (2*pi) * 8 = 1.27..., so c = 1.
    let top = dd
        .histogram
        .counts()
        .iter()
        .max_by_key(|(_, &count)| count)
        .map(|(&record, _)| record);
    assert_eq!(top, Some(1));
}

#[test]
fn conditioned_circuit_matches_the_analytic_distribution() {
    // h q0; measure q0 -> c0; if (c==1) h q1; measure q1 -> c1.
    // Analytically: P(00) = 1/2, P(01) = P(11) = 1/4, P(10) = 0.
    let src = "qreg q[2]; creg c[2];\nh q[0];\nmeasure q[0] -> c[0];\nif (c==1) h q[1];\nmeasure q[1] -> c[1];";
    let circuit = qasm::parse(src).unwrap();
    assert!(circuit.is_dynamic());
    let expected = |record: u64| match record {
        0b00 => 0.5,
        0b01 | 0b11 => 0.25,
        _ => 0.0,
    };
    let shots = 30_000u64;
    let mut histograms = Vec::new();
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let outcome = WeakSimulator::new(backend)
            .run(&circuit, shots, 97)
            .unwrap();
        // Chi-square goodness of fit against the analytic distribution: the
        // samples must be statistically indistinguishable from the ideal
        // feed-forward device.
        let result = stats::chi_square_test(&outcome.histogram, expected);
        assert!(
            result.is_consistent(0.001),
            "{backend}: chi-square p-value {} too small",
            result.p_value
        );
        histograms.push(outcome.histogram);
    }
    // And the two backends agree with each other.
    for record in 0..4u64 {
        let (a, b) = (
            histograms[0].frequency(record),
            histograms[1].frequency(record),
        );
        assert!((a - b).abs() < 0.015, "record {record:02b}: {a} vs {b}");
    }
}

#[test]
fn conditioned_trajectories_are_thread_count_invariant() {
    let circuit = algorithms::ipe(3, 1.0);
    let shots = 4 * 1024 + 99;
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        let reference =
            simulate_trajectories_with_threads(backend, &circuit, shots, 1234, 1).unwrap();
        for threads in [2, 8] {
            let run = simulate_trajectories_with_threads(backend, &circuit, shots, 1234, threads)
                .unwrap();
            assert_eq!(
                reference.histogram, run.histogram,
                "{backend}: {threads} threads changed the feed-forward records"
            );
        }
    }
}

#[test]
fn static_circuits_still_keep_their_strong_state() {
    // A static circuit with a terminal measurement block keeps the fast
    // path: the outcome exposes the strong state and a classical histogram.
    let mut circuit = Circuit::new(2);
    circuit.h(Qubit(0)).cx(Qubit(0), Qubit(1)).measure_all();
    assert!(!circuit.is_dynamic());
    let outcome = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&circuit, 1000, 1)
        .unwrap();
    assert!(outcome.state.is_some());
    assert!(outcome
        .histogram
        .counts()
        .keys()
        .all(|&record| record == 0 || record == 0b11));
}

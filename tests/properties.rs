//! Property-based tests of the core data structures and invariants,
//! exercising the decision-diagram package, the dense engine and the
//! samplers with randomly generated circuits and states.
//!
//! Written as seeded randomized tests (the offline build cannot fetch
//! `proptest`): every property draws its cases from a deterministic RNG, so
//! failures reproduce exactly.

use dd::{CompiledSampler, DdPackage, EdgeProbabilities, StateDd};
use mathkit::Complex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

/// Draws a normalized amplitude vector over `num_qubits` qubits.
fn normalized_amplitudes(rng: &mut StdRng, num_qubits: u16) -> Vec<Complex> {
    let len = 1usize << num_qubits;
    loop {
        let mut amps: Vec<Complex> = (0..len)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let norm: f64 = amps.iter().map(Complex::norm_sqr).sum::<f64>().sqrt();
        if norm < 1e-6 {
            continue; // numerically zero vector; redraw
        }
        for a in &mut amps {
            *a = *a / norm;
        }
        return amps;
    }
}

/// Building a DD from amplitudes and reading the amplitudes back is the
/// identity, for both normalization schemes.
#[test]
fn dd_amplitude_round_trip() {
    let mut rng = StdRng::seed_from_u64(101);
    for case in 0..CASES {
        let amps = normalized_amplitudes(&mut rng, 4);
        let normalization = if case % 2 == 0 {
            dd::Normalization::LeftMost
        } else {
            dd::Normalization::TwoNorm
        };
        let mut package = DdPackage::with_normalization(normalization);
        let state = StateDd::from_amplitudes(&mut package, &amps).unwrap();
        for (i, want) in amps.iter().enumerate() {
            let got = state.amplitude(&package, i as u64);
            assert!((got - *want).norm() < 1e-9, "index {i}: {got} vs {want}");
        }
        // The norm is preserved as well.
        assert!((state.norm_sqr(&package) - 1.0).abs() < 1e-9);
    }
}

/// The DD of a state never has more nodes than the dense vector has
/// non-trivial prefixes (a loose but useful structural bound: at most
/// 2^n - 1 nodes for n qubits).
#[test]
fn dd_size_is_bounded() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..CASES {
        let amps = normalized_amplitudes(&mut rng, 4);
        let mut package = DdPackage::new();
        let state = StateDd::from_amplitudes(&mut package, &amps).unwrap();
        assert!(state.node_count(&package) <= 15);
    }
}

/// Under the 2-norm normalization scheme every node's outgoing weights have
/// squared magnitudes summing to 1 (the invariant that enables sampling
/// straight from local edge weights).
#[test]
fn two_norm_invariant_holds() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..CASES {
        let amps = normalized_amplitudes(&mut rng, 4);
        let mut package = DdPackage::new();
        let state = StateDd::from_amplitudes(&mut package, &amps).unwrap();
        let probs = EdgeProbabilities::new(&package, &state);
        // Downstream probability of every reachable node is 1 under this
        // normalization.
        let mut stack = vec![state.root()];
        while let Some(edge) = stack.pop() {
            if edge.is_zero() || edge.is_terminal() {
                continue;
            }
            assert!((probs.downstream[&edge.target] - 1.0).abs() < 1e-9);
            let node = *package.vnode(edge.target);
            let w0 = if node.children[0].is_zero() {
                0.0
            } else {
                package.weight_value(node.children[0].weight).norm_sqr()
            };
            let w1 = if node.children[1].is_zero() {
                0.0
            } else {
                package.weight_value(node.children[1].weight).norm_sqr()
            };
            assert!((w0 + w1 - 1.0).abs() < 1e-9, "node weights {w0} + {w1}");
            stack.push(node.children[0]);
            stack.push(node.children[1]);
        }
    }
}

/// Adding a state DD to itself doubles every amplitude.
#[test]
fn dd_addition_is_elementwise() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..CASES {
        let amps = normalized_amplitudes(&mut rng, 3);
        let mut package = DdPackage::new();
        let state = StateDd::from_amplitudes(&mut package, &amps).unwrap();
        let doubled = dd::add(&mut package, state.root(), state.root()).unwrap();
        let doubled = StateDd::from_root(doubled, 3);
        for (i, want) in amps.iter().enumerate() {
            let got = doubled.amplitude(&package, i as u64);
            assert!((got - *want * 2.0).norm() < 1e-9);
        }
    }
}

/// The DD and dense engines agree on random circuits.
#[test]
fn engines_agree_on_random_circuits() {
    let mut rng = StdRng::seed_from_u64(105);
    for _ in 0..CASES {
        let seed = rng.gen_range(0..500u64);
        let layers = rng.gen_range(1..5u16);
        let circuit = algorithms::random_circuit(4, layers, seed);
        let dense = statevector::simulate(&circuit).unwrap();
        let mut package = DdPackage::new();
        let diagram = dd::simulate(&mut package, &circuit).unwrap();
        for index in 0..16u64 {
            let a = dense.amplitude(index);
            let b = diagram.amplitude(&package, index);
            assert!((a - b).norm() < 1e-8, "index {index}: {a} vs {b}");
        }
    }
}

/// The prefix-sum array is monotone and ends at the total probability mass,
/// and `locate` inverts it consistently.
#[test]
fn prefix_sums_are_monotone() {
    let mut rng = StdRng::seed_from_u64(106);
    for _ in 0..CASES {
        let amps = normalized_amplitudes(&mut rng, 4);
        let p_hat = rng.gen_range(0.0..1.0);
        let dense = statevector::StateVector::from_amplitudes(amps);
        let sampler = statevector::PrefixSampler::new(&dense);
        let prefix = sampler.prefix_sums();
        for window in prefix.windows(2) {
            assert!(window[1] >= window[0] - 1e-12);
        }
        assert!((sampler.total_mass() - 1.0).abs() < 1e-9);
        let index = sampler.locate(p_hat);
        assert!(index < 16);
        // The located index is the first whose prefix exceeds p_hat.
        assert!(prefix[index as usize] > p_hat - 1e-12);
        if index > 0 {
            assert!(prefix[index as usize - 1] <= p_hat + 1e-12);
        }
    }
}

/// Weak simulation never produces an outcome of probability zero, for
/// random states sampled by both production samplers.  (The retired
/// interpreted samplers are covered by the bench crate's comparison tests
/// behind the `comparison-samplers` feature.)
#[test]
fn samplers_never_emit_impossible_outcomes() {
    let mut rng = StdRng::seed_from_u64(107);
    for _ in 0..CASES {
        let amps = normalized_amplitudes(&mut rng, 3);
        // Dense sampler.
        let dense = statevector::StateVector::from_amplitudes(amps.clone());
        let prefix = statevector::PrefixSampler::new(&dense);
        for _ in 0..64 {
            let s = prefix.sample(&mut rng);
            assert!(
                dense.probability(s) > 0.0,
                "dense sampler produced impossible outcome {s}"
            );
        }
        // The compiled DD sampler.
        let mut package = DdPackage::new();
        let state = StateDd::from_amplitudes(&mut package, &amps).unwrap();
        let compiled = CompiledSampler::new(&package, &state).expect("compiles");
        for _ in 0..64 {
            let s = compiled.sample(&mut rng);
            assert!(
                state.probability(&package, s) > 1e-12,
                "compiled sampler produced impossible outcome {s}"
            );
        }
    }
}

/// The QASM writer/parser round-trip preserves simulated states for
/// exportable circuits.
#[test]
fn qasm_round_trip_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(108);
    for _ in 0..CASES {
        // Only single-qubit gates and CX/CZ/CP/CCX/SWAP are exportable; the
        // random generator only emits those.
        let seed = rng.gen_range(0..200u64);
        let circuit = algorithms::random_circuit(4, 3, seed);
        let text = circuit::qasm::to_qasm(&circuit).unwrap();
        let parsed = circuit::qasm::parse(&text).unwrap();
        let a = statevector::simulate(&circuit).unwrap();
        let b = statevector::simulate(&parsed).unwrap();
        assert!(a.fidelity(&b) > 1.0 - 1e-9);
    }
}

/// The QASM writer/parser round-trip is the structural identity on random
/// *dynamic* circuits mixing gates with `creg`-recorded measurements,
/// resets and classically-conditioned (`if (c==k)`) gates, measurements and
/// resets.
#[test]
fn qasm_round_trip_preserves_dynamic_circuits() {
    use circuit::{Circuit, OneQubitGate, Operation, Qubit};
    use mathkit::Angle;

    let mut rng = StdRng::seed_from_u64(110);
    for case in 0..CASES {
        let num_qubits = rng.gen_range(1..=4u16);
        let num_clbits = rng.gen_range(1..=4u16);
        let mut c = Circuit::with_name(num_qubits, format!("dynamic_case_{case}"));
        c.set_num_clbits(num_clbits);

        let random_qubit = |rng: &mut StdRng| Qubit(rng.gen_range(0..num_qubits));
        let random_gate = |rng: &mut StdRng| -> Operation {
            let target = Qubit(rng.gen_range(0..num_qubits));
            match rng.gen_range(0..6) {
                0 => Operation::Unitary {
                    gate: OneQubitGate::H,
                    target,
                    controls: vec![],
                },
                1 => Operation::Unitary {
                    gate: OneQubitGate::Rz(Angle::Radians(rng.gen_range(-3.2..3.2))),
                    target,
                    controls: vec![],
                },
                2 => Operation::Unitary {
                    gate: OneQubitGate::Phase(Angle::Radians(rng.gen_range(-3.2..3.2))),
                    target,
                    controls: vec![],
                },
                3 => Operation::Unitary {
                    gate: OneQubitGate::T,
                    target,
                    controls: vec![],
                },
                4 if num_qubits >= 2 => {
                    let mut control = Qubit(rng.gen_range(0..num_qubits));
                    while control == target {
                        control = Qubit(rng.gen_range(0..num_qubits));
                    }
                    Operation::Unitary {
                        gate: if rng.gen_bool(0.5) {
                            OneQubitGate::X
                        } else {
                            OneQubitGate::Z
                        },
                        target,
                        controls: vec![control],
                    }
                }
                _ => Operation::Unitary {
                    gate: OneQubitGate::X,
                    target,
                    controls: vec![],
                },
            }
        };

        for _ in 0..rng.gen_range(1..=20usize) {
            match rng.gen_range(0..10) {
                0 => {
                    let q = random_qubit(&mut rng);
                    let cbit = rng.gen_range(0..num_clbits);
                    c.measure(q, cbit);
                }
                1 => {
                    let q = random_qubit(&mut rng);
                    c.reset(q);
                }
                2 | 3 => {
                    let value = rng.gen_range(0..(1u64 << num_clbits));
                    let gate = random_gate(&mut rng);
                    c.conditioned(value, gate);
                }
                4 => {
                    let value = rng.gen_range(0..(1u64 << num_clbits));
                    let qubit = random_qubit(&mut rng);
                    let cbit = rng.gen_range(0..num_clbits);
                    c.conditioned(value, Operation::Measure { qubit, cbit });
                }
                5 => {
                    let value = rng.gen_range(0..(1u64 << num_clbits));
                    let qubit = random_qubit(&mut rng);
                    c.conditioned(value, Operation::Reset { qubit });
                }
                _ => {
                    let gate = random_gate(&mut rng);
                    c.push(gate);
                }
            }
        }
        c.validate().expect("generated circuit is valid");

        let text = circuit::qasm::to_qasm(&c).expect("dynamic circuit exports");
        let parsed = circuit::qasm::parse(&text).expect("written QASM parses back");
        assert_eq!(parsed.operations(), c.operations(), "case {case}:\n{text}");
        assert_eq!(parsed.num_clbits(), c.num_clbits());
        assert_eq!(parsed.num_qubits(), c.num_qubits());

        // A second write is a fixed point (modulo the `// name` header).
        let strip_name = |t: &str| t.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(
            strip_name(&circuit::qasm::to_qasm(&parsed).unwrap()),
            strip_name(&text)
        );
    }
}

/// Interned weights compare equal exactly when the complex values agree
/// within tolerance.
#[test]
fn weight_interning_respects_tolerance() {
    let mut rng = StdRng::seed_from_u64(109);
    for _ in 0..CASES {
        let re = rng.gen_range(-1.0..1.0);
        let im = rng.gen_range(-1.0..1.0);
        let mut package = DdPackage::new();
        let a = package.weight(Complex::new(re, im));
        let b = package.weight(Complex::new(re + 1e-13, im - 1e-13));
        assert_eq!(a, b);
        let c = package.weight(Complex::new(re + 0.5, im));
        assert_ne!(a, c);
    }
}

//! Property-based tests of the core data structures and invariants,
//! exercising the decision-diagram package, the dense engine and the
//! samplers with randomly generated circuits and states.

use dd::{DdPackage, DdSampler, StateDd};
use mathkit::Complex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a normalized amplitude vector over `n` qubits.
fn normalized_amplitudes(num_qubits: u16) -> impl Strategy<Value = Vec<Complex>> {
    let len = 1usize << num_qubits;
    proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), len).prop_filter_map(
        "vector must not be numerically zero",
        |pairs| {
            let mut amps: Vec<Complex> = pairs.into_iter().map(|(re, im)| Complex::new(re, im)).collect();
            let norm: f64 = amps.iter().map(Complex::norm_sqr).sum::<f64>().sqrt();
            if norm < 1e-6 {
                return None;
            }
            for a in &mut amps {
                *a = *a / norm;
            }
            Some(amps)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Building a DD from amplitudes and reading the amplitudes back is the
    /// identity, for both normalization schemes.
    #[test]
    fn dd_amplitude_round_trip(amps in normalized_amplitudes(4),
                               use_leftmost in any::<bool>()) {
        let normalization = if use_leftmost {
            dd::Normalization::LeftMost
        } else {
            dd::Normalization::TwoNorm
        };
        let mut package = DdPackage::with_normalization(normalization);
        let state = StateDd::from_amplitudes(&mut package, &amps);
        for (i, want) in amps.iter().enumerate() {
            let got = state.amplitude(&package, i as u64);
            prop_assert!((got - *want).norm() < 1e-9, "index {i}: {got} vs {want}");
        }
        // The norm is preserved as well.
        prop_assert!((state.norm_sqr(&package) - 1.0).abs() < 1e-9);
    }

    /// The DD of a state never has more nodes than the dense vector has
    /// non-trivial prefixes (a loose but useful structural bound: at most
    /// 2^n - 1 nodes for n qubits).
    #[test]
    fn dd_size_is_bounded(amps in normalized_amplitudes(4)) {
        let mut package = DdPackage::new();
        let state = StateDd::from_amplitudes(&mut package, &amps);
        prop_assert!(state.node_count(&package) <= 15);
    }

    /// Under the 2-norm normalization scheme every node's outgoing weights
    /// have squared magnitudes summing to 1 (the invariant that enables
    /// sampling straight from local edge weights).
    #[test]
    fn two_norm_invariant_holds(amps in normalized_amplitudes(4)) {
        let mut package = DdPackage::new();
        let state = StateDd::from_amplitudes(&mut package, &amps);
        let sampler = DdSampler::new(&package, &state);
        // Downstream probability of every reachable node is 1 under this
        // normalization.
        let mut stack = vec![state.root()];
        while let Some(edge) = stack.pop() {
            if edge.is_zero() || edge.is_terminal() {
                continue;
            }
            prop_assert!((sampler.downstream(edge) - 1.0).abs() < 1e-9);
            let node = *package.vnode(edge.target);
            let w0 = if node.children[0].is_zero() { 0.0 } else {
                package.weight_value(node.children[0].weight).norm_sqr()
            };
            let w1 = if node.children[1].is_zero() { 0.0 } else {
                package.weight_value(node.children[1].weight).norm_sqr()
            };
            prop_assert!((w0 + w1 - 1.0).abs() < 1e-9, "node weights {w0} + {w1}");
            stack.push(node.children[0]);
            stack.push(node.children[1]);
        }
    }

    /// Adding a state DD to itself doubles every amplitude.
    #[test]
    fn dd_addition_is_elementwise(amps in normalized_amplitudes(3)) {
        let mut package = DdPackage::new();
        let state = StateDd::from_amplitudes(&mut package, &amps);
        let doubled = dd::add(&mut package, state.root(), state.root());
        let doubled = StateDd::from_root(doubled, 3);
        for (i, want) in amps.iter().enumerate() {
            let got = doubled.amplitude(&package, i as u64);
            prop_assert!((got - *want * 2.0).norm() < 1e-9);
        }
    }

    /// The DD and dense engines agree on random circuits.
    #[test]
    fn engines_agree_on_random_circuits(seed in 0u64..500, layers in 1u16..5) {
        let circuit = algorithms::random_circuit(4, layers, seed);
        let dense = statevector::simulate(&circuit).unwrap();
        let mut package = DdPackage::new();
        let diagram = dd::simulate(&mut package, &circuit).unwrap();
        for index in 0..16u64 {
            let a = dense.amplitude(index);
            let b = diagram.amplitude(&package, index);
            prop_assert!((a - b).norm() < 1e-8, "index {index}: {a} vs {b}");
        }
    }

    /// The prefix-sum array is monotone and ends at the total probability
    /// mass, and `locate` inverts it consistently.
    #[test]
    fn prefix_sums_are_monotone(amps in normalized_amplitudes(4), p_hat in 0.0..1.0f64) {
        let dense = statevector::StateVector::from_amplitudes(amps);
        let sampler = statevector::PrefixSampler::new(&dense);
        let prefix = sampler.prefix_sums();
        for window in prefix.windows(2) {
            prop_assert!(window[1] >= window[0] - 1e-12);
        }
        prop_assert!((sampler.total_mass() - 1.0).abs() < 1e-9);
        let index = sampler.locate(p_hat);
        prop_assert!(index < 16);
        // The located index is the first whose prefix exceeds p_hat.
        prop_assert!(prefix[index as usize] > p_hat - 1e-12);
        if index > 0 {
            prop_assert!(prefix[index as usize - 1] <= p_hat + 1e-12);
        }
    }

    /// Weak simulation never produces an outcome of probability zero, for
    /// random states sampled by both samplers.
    #[test]
    fn samplers_never_emit_impossible_outcomes(amps in normalized_amplitudes(3), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Dense sampler.
        let dense = statevector::StateVector::from_amplitudes(amps.clone());
        let prefix = statevector::PrefixSampler::new(&dense);
        for _ in 0..64 {
            let s = prefix.sample(&mut rng);
            prop_assert!(dense.probability(s) > 0.0, "dense sampler produced impossible outcome {s}");
        }
        // DD sampler.
        let mut package = DdPackage::new();
        let state = StateDd::from_amplitudes(&mut package, &amps);
        let sampler = DdSampler::new(&package, &state);
        for _ in 0..64 {
            let s = sampler.sample(&package, &mut rng);
            prop_assert!(state.probability(&package, s) > 1e-12, "DD sampler produced impossible outcome {s}");
        }
    }

    /// The QASM writer/parser round-trip preserves simulated states for
    /// exportable circuits.
    #[test]
    fn qasm_round_trip_preserves_semantics(seed in 0u64..200) {
        // Only single-qubit gates and CX/CZ/CP/CCX/SWAP are exportable; the
        // random generator only emits those.
        let circuit = algorithms::random_circuit(4, 3, seed);
        let text = circuit::qasm::to_qasm(&circuit).unwrap();
        let parsed = circuit::qasm::parse(&text).unwrap();
        let a = statevector::simulate(&circuit).unwrap();
        let b = statevector::simulate(&parsed).unwrap();
        prop_assert!(a.fidelity(&b) > 1.0 - 1e-9);
    }

    /// Interned weights compare equal exactly when the complex values agree
    /// within tolerance.
    #[test]
    fn weight_interning_respects_tolerance(re in -1.0..1.0f64, im in -1.0..1.0f64) {
        let mut package = DdPackage::new();
        let a = package.weight(Complex::new(re, im));
        let b = package.weight(Complex::new(re + 1e-13, im - 1e-13));
        prop_assert_eq!(a, b);
        let c = package.weight(Complex::new(re + 0.5, im));
        prop_assert_ne!(a, c);
    }
}

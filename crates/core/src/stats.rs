//! Statistical validation of weak-simulation output.
//!
//! The paper's central claim is that its samplers produce output that is
//! *statistically indistinguishable* from an error-free quantum computer.
//! This module provides the machinery used by tests, examples and the
//! experiment harness to check that claim: a chi-square goodness-of-fit test
//! of the empirical histogram against the exact output distribution,
//! total-variation distance, and Kullback–Leibler divergence.

use crate::ShotHistogram;

/// The result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareResult {
    /// The chi-square statistic over the pooled outcome bins.
    pub statistic: f64,
    /// Degrees of freedom (bins - 1).
    pub degrees_of_freedom: usize,
    /// The p-value (probability of a statistic at least this large under the
    /// null hypothesis that the samples follow the exact distribution).
    pub p_value: f64,
}

impl ChiSquareResult {
    /// Returns `true` if the test does **not** reject the null hypothesis at
    /// the given significance level (i.e. the samples look like the exact
    /// distribution).
    #[must_use]
    pub fn is_consistent(&self, significance: f64) -> bool {
        self.p_value >= significance
    }
}

/// Performs a chi-square goodness-of-fit test of `histogram` against the
/// exact probabilities given by `probability(outcome)`.
///
/// Outcomes with an expected count below 5 are pooled into a single bin, the
/// standard remedy for sparse categories.  Outcomes never observed and with
/// probability zero are ignored.
///
/// # Panics
///
/// Panics if the histogram is empty.
///
/// # Examples
///
/// ```
/// use weaksim::{stats, ShotHistogram};
///
/// // A fair coin sampled fairly.
/// let hist = ShotHistogram::from_samples(1, (0..10_000).map(|i| i % 2));
/// let result = stats::chi_square_test(&hist, |o| if o < 2 { 0.5 } else { 0.0 });
/// assert!(result.is_consistent(0.01));
/// ```
pub fn chi_square_test(
    histogram: &ShotHistogram,
    probability: impl Fn(u64) -> f64,
) -> ChiSquareResult {
    assert!(histogram.shots() > 0, "cannot test an empty histogram");
    let shots = histogram.shots() as f64;

    // Collect the support: every observed outcome plus every outcome with
    // non-negligible probability that we know about from the observations.
    // (For distributions with huge support the unobserved mass is pooled.)
    let mut bins: Vec<(f64, f64)> = Vec::new(); // (observed, expected)
    let mut observed_mass = 0.0;
    for (&outcome, &count) in histogram.counts() {
        let p = probability(outcome);
        bins.push((count as f64, p * shots));
        observed_mass += p;
    }

    // Pool bins with small expected counts together with the entire
    // unobserved probability mass.  The pool boundary depends only on the
    // exact probabilities (expected < 5), never on whether an outcome
    // happened to be observed — pooling "observed but rare" outcomes
    // separately from "unobserved" outcomes would bias the statistic upward
    // for distributions with a long tail of tiny probabilities.
    let unobserved = (1.0 - observed_mass).max(0.0);
    let mut pooled: Vec<(f64, f64)> = Vec::new();
    let mut small = (0.0, unobserved * shots);
    for (obs, exp) in bins {
        if exp < 5.0 {
            small.0 += obs;
            small.1 += exp;
        } else {
            pooled.push((obs, exp));
        }
    }
    if small.1 > 0.5 {
        pooled.push(small);
    }

    let mut statistic = 0.0;
    for &(obs, exp) in &pooled {
        if exp > 0.0 {
            statistic += (obs - exp) * (obs - exp) / exp;
        }
    }
    let degrees_of_freedom = pooled.len().saturating_sub(1).max(1);
    let p_value = chi_square_survival(statistic, degrees_of_freedom as f64);
    ChiSquareResult {
        statistic,
        degrees_of_freedom,
        p_value,
    }
}

/// The total-variation distance between the empirical distribution of
/// `histogram` and the exact distribution `probability`, computed over the
/// observed support plus the unobserved remainder:
/// `TVD = 1/2 * sum |freq_i - p_i|`.
///
/// # Panics
///
/// Panics if the histogram is empty.
pub fn total_variation_distance(
    histogram: &ShotHistogram,
    probability: impl Fn(u64) -> f64,
) -> f64 {
    assert!(histogram.shots() > 0, "cannot compare an empty histogram");
    let mut distance = 0.0;
    let mut covered = 0.0;
    for &outcome in histogram.counts().keys() {
        let p = probability(outcome);
        distance += (histogram.frequency(outcome) - p).abs();
        covered += p;
    }
    // Unobserved outcomes contribute their full probability mass.
    distance += (1.0 - covered).max(0.0);
    distance / 2.0
}

/// The Kullback–Leibler divergence `D(empirical || exact)` over the observed
/// support (outcomes with zero exact probability contribute infinity, which
/// is what you want when a sampler produces impossible outcomes).
///
/// # Panics
///
/// Panics if the histogram is empty.
pub fn kl_divergence(histogram: &ShotHistogram, probability: impl Fn(u64) -> f64) -> f64 {
    assert!(histogram.shots() > 0, "cannot compare an empty histogram");
    let mut divergence = 0.0;
    for &outcome in histogram.counts().keys() {
        let freq = histogram.frequency(outcome);
        let p = probability(outcome);
        if freq > 0.0 {
            if p <= 0.0 {
                return f64::INFINITY;
            }
            divergence += freq * (freq / p).ln();
        }
    }
    divergence.max(0.0)
}

/// The survival function `P(X >= x)` of a chi-square distribution with `k`
/// degrees of freedom, i.e. the regularized upper incomplete gamma function
/// `Q(k/2, x/2)`.
///
/// Uses the standard series / continued-fraction split (Numerical Recipes
/// style) which is accurate to well beyond what hypothesis testing needs.
#[must_use]
pub fn chi_square_survival(x: f64, k: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    regularized_gamma_q(k / 2.0, x / 2.0)
}

fn regularized_gamma_q(a: f64, x: f64) -> f64 {
    if x < a + 1.0 {
        1.0 - regularized_gamma_p_series(a, x)
    } else {
        regularized_gamma_q_continued_fraction(a, x)
    }
}

fn regularized_gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn regularized_gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -f64::from(i) * (f64::from(i) - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Natural log of the gamma function (Lanczos approximation).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_5e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut series = 1.000_000_000_190_015;
    for c in COEFFS {
        y += 1.0;
        series += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * series / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ln_gamma_matches_known_values() {
        // Gamma(5) = 24, Gamma(0.5) = sqrt(pi).
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        assert!((ln_gamma(1.0)).abs() < 1e-10);
    }

    #[test]
    fn chi_square_survival_reference_values() {
        // P(X >= 3.841) with 1 dof is about 0.05.
        assert!((chi_square_survival(3.841, 1.0) - 0.05).abs() < 0.001);
        // P(X >= 9.488) with 4 dof is about 0.05.
        assert!((chi_square_survival(9.488, 4.0) - 0.05).abs() < 0.001);
        // Degenerate inputs.
        assert_eq!(chi_square_survival(0.0, 3.0), 1.0);
        assert!(chi_square_survival(100.0, 3.0) < 1e-10);
    }

    #[test]
    fn fair_samples_pass_the_test() {
        let mut rng = StdRng::seed_from_u64(7);
        let hist = ShotHistogram::from_samples(2, (0..40_000).map(|_| rng.gen_range(0..4u64)));
        let result = chi_square_test(&hist, |_| 0.25);
        assert!(result.is_consistent(0.001), "p = {}", result.p_value);
        assert!(total_variation_distance(&hist, |_| 0.25) < 0.02);
        assert!(kl_divergence(&hist, |_| 0.25) < 0.001);
    }

    #[test]
    fn biased_samples_fail_the_test() {
        // Claim uniform but sample heavily biased.
        let mut rng = StdRng::seed_from_u64(8);
        let hist = ShotHistogram::from_samples(
            2,
            (0..40_000).map(|_| {
                if rng.gen::<f64>() < 0.4 {
                    0
                } else {
                    rng.gen_range(0..4u64)
                }
            }),
        );
        let result = chi_square_test(&hist, |_| 0.25);
        assert!(!result.is_consistent(0.001), "p = {}", result.p_value);
        assert!(total_variation_distance(&hist, |_| 0.25) > 0.05);
    }

    #[test]
    fn impossible_outcomes_blow_up_kl() {
        let hist = ShotHistogram::from_samples(1, [0, 1, 1].into_iter());
        let kl = kl_divergence(&hist, |o| if o == 1 { 1.0 } else { 0.0 });
        assert!(kl.is_infinite());
    }

    #[test]
    fn tvd_of_perfect_match_is_small() {
        let hist = ShotHistogram::from_samples(1, (0..10_000).map(|i| i % 2));
        assert!(total_variation_distance(&hist, |_| 0.5) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn chi_square_of_empty_histogram_panics() {
        let hist = ShotHistogram::new(2);
        let _ = chi_square_test(&hist, |_| 0.25);
    }
}

//! Immutable, shareable simulation artifacts and the cross-run cache that
//! serves them.
//!
//! The paper's weak-simulation contract is *pay once, sample cheap*: strong
//! simulation of `supremacy_4x5_10` costs around a minute, after which 200k
//! shots cost ~0.13 s.  This module makes the expensive part reusable
//! across runs, simulators and threads:
//!
//! * [`SimArtifact`] — everything a request needs *after* strong
//!   simulation, detached from the machinery that built it: a prepared
//!   sampler (compiled decision-diagram arena, dense prefix sums, or
//!   stabilizer affine-subspace basis), the trailing-measurement
//!   relabelling, the executed [`RunRoute`] and the representation-size /
//!   [`DdStats`] snapshot.  Artifacts are immutable, `Send + Sync` and
//!   `'static`, so an `Arc<SimArtifact>` can be sampled concurrently by any
//!   number of tenants.
//! * [`ArtifactCache`] — a bounded, fingerprint-keyed, byte-budgeted LRU
//!   store of `Arc<SimArtifact>`s.  Attach one to a simulator with
//!   [`WeakSimulator::with_cache`](crate::WeakSimulator::with_cache): every
//!   eligible `run` first consults the cache, and a hit skips strong
//!   simulation *and* sampler compilation entirely.
//!
//! # Reproducibility
//!
//! [`SimArtifact::sample`] draws with exactly the RNG scheme of the engine
//! that would have produced the shots uncached — chunked SplitMix64 streams
//! for the decision-diagram and tableau paths, one sequential `StdRng` for
//! the dense path — so a cached histogram is **bit-identical** to the
//! uncached run with the same seed, and two tenants sampling one shared
//! artifact with different seeds draw independent, individually
//! reproducible shot streams.
//!
//! # Keys
//!
//! Cache keys are the request fingerprint
//! ([`WeakSimulator::request_fingerprint`](crate::WeakSimulator::request_fingerprint)):
//! [`Circuit::fingerprint`](circuit::Circuit::fingerprint) extended with
//! the backend choice, the router flag and the attached noise model.  Any
//! bit of drift — an angle's last mantissa bit, a creg relabelling, a noise
//! parameter — produces a different key and a rebuild.

use crate::govern::RunGovernor;
use crate::router::{map_terminal_words, RunRoute};
use crate::simulator::{map_terminal_record, Backend, RunError, StrongState};
use crate::ShotHistogram;
use circuit::Qubit;
use dd::{chunk_stream_seed, CompiledSampler, DdStats, PARALLEL_CHUNK_SHOTS};
use rand::rngs::{SmallRng, StdRng};
use rand::SeedableRng;
use statevector::PrefixSampler;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tableau::MeasurementSampler;

/// The prepared sampler inside a [`SimArtifact`]: one variant per engine,
/// each fully detached from the package/state that built it.
#[derive(Debug, Clone)]
pub enum PreparedSampler {
    /// A compiled decision-diagram arena (owned; survives its package).
    DecisionDiagram(CompiledSampler),
    /// Dense prefix sums over `2^n` amplitudes.
    StateVector(PrefixSampler),
    /// The affine-subspace sampler of a stabilizer state.
    Tableau(MeasurementSampler),
}

impl PreparedSampler {
    /// Heap bytes held by the sampler itself.
    fn heap_bytes(&self) -> usize {
        match self {
            PreparedSampler::DecisionDiagram(s) => s.arena_bytes(),
            PreparedSampler::StateVector(s) => s.heap_bytes(),
            PreparedSampler::Tableau(s) => s.heap_bytes(),
        }
    }
}

/// An immutable, reusable weak-simulation artifact: the complete output of
/// the expensive phase of a run (strong simulation + sampler preparation),
/// detached from every borrowed resource so it can outlive its builder and
/// be shared across threads and runs.
///
/// Obtain artifacts through an [`ArtifactCache`] attached with
/// [`WeakSimulator::with_cache`](crate::WeakSimulator::with_cache); sample
/// them (concurrently, if desired) with [`SimArtifact::sample`].
#[derive(Debug)]
pub struct SimArtifact {
    sampler: PreparedSampler,
    /// Trailing-measurement relabelling `(qubit, cbit)`; empty means the
    /// full register is histogrammed directly.
    mapping: Vec<(Qubit, u16)>,
    num_qubits: u16,
    /// Classical-record width used when `mapping` is non-empty.
    record_width: u16,
    backend: Backend,
    route: RunRoute,
    dd_stats: Option<DdStats>,
    representation_size: u128,
    build_strong_time: Duration,
    build_precompute_time: Duration,
}

impl SimArtifact {
    /// Builds an artifact from a dense strong state by compiling the
    /// backend's prepared sampler and snapshotting the run metadata; the
    /// caller may drop `state` (and with it the DD package) afterwards.
    pub(crate) fn from_dense(
        state: &StrongState,
        mapping: Vec<(Qubit, u16)>,
        record_width: u16,
        route: RunRoute,
        build_strong_time: Duration,
    ) -> Result<Self, RunError> {
        let precompute_start = Instant::now();
        let sampler = match state {
            StrongState::DecisionDiagram { package, state } => {
                PreparedSampler::DecisionDiagram(CompiledSampler::new(package, state)?)
            }
            StrongState::StateVector(vector) => {
                PreparedSampler::StateVector(PrefixSampler::new(vector))
            }
        };
        Ok(Self {
            sampler,
            mapping,
            num_qubits: state.num_qubits(),
            record_width,
            backend: state.backend(),
            route,
            dd_stats: state.dd_stats(),
            representation_size: state.representation_size(),
            build_strong_time,
            build_precompute_time: precompute_start.elapsed(),
        })
    }

    /// Builds an artifact around a prepared tableau sampler (the router's
    /// static fully-Clifford path).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_tableau(
        sampler: MeasurementSampler,
        mapping: Vec<(Qubit, u16)>,
        num_qubits: u16,
        record_width: u16,
        backend: Backend,
        route: RunRoute,
        build_strong_time: Duration,
        build_precompute_time: Duration,
    ) -> Self {
        // The stabilizer generator count, as reported by the router.
        let representation_size = 2 * usize::from(num_qubits).max(1) as u128;
        Self {
            sampler: PreparedSampler::Tableau(sampler),
            mapping,
            num_qubits,
            record_width,
            backend,
            route,
            dd_stats: None,
            representation_size,
            build_strong_time,
            build_precompute_time,
        }
    }

    /// The prepared sampler.
    #[must_use]
    pub fn sampler(&self) -> &PreparedSampler {
        &self.sampler
    }

    /// The register width in qubits.
    #[must_use]
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// The backend the artifact was prepared for (reported in cached
    /// outcomes; tableau-routed artifacts report the configured dense
    /// backend, like the router does).
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The route the preparing run executed (and every cached run reports).
    #[must_use]
    pub fn route(&self) -> &RunRoute {
        &self.route
    }

    /// The decision-diagram statistics snapshot taken at build time, if the
    /// artifact came from the DD engine.
    #[must_use]
    pub fn dd_stats(&self) -> Option<DdStats> {
        self.dd_stats
    }

    /// Representation size of the strong state the artifact was compiled
    /// from (DD nodes, dense amplitudes, or stabilizer generators).
    #[must_use]
    pub fn representation_size(&self) -> u128 {
        self.representation_size
    }

    /// Wall-clock time the build spent in strong simulation.
    #[must_use]
    pub fn build_strong_time(&self) -> Duration {
        self.build_strong_time
    }

    /// Wall-clock time the build spent preparing the sampler (compilation,
    /// prefix sums, or the tableau's measurement sweep).
    #[must_use]
    pub fn build_precompute_time(&self) -> Duration {
        self.build_precompute_time
    }

    /// Approximate heap bytes retained by this artifact — what the cache
    /// charges against its byte budget.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.sampler.heap_bytes()
            + self.mapping.len() * std::mem::size_of::<(Qubit, u16)>()
            + self.route.segments.len() * std::mem::size_of::<crate::router::RouteSegment>()
    }

    /// Serializes the complete artifact into `out` — the per-entry payload
    /// of the service snapshot (see [`crate::service`] for the file
    /// framing).  Everything [`decode_snapshot`](Self::decode_snapshot)
    /// needs to re-serve bit-identical histograms: the sampler (via its
    /// engine crate's encoder), the relabelling, the route and the build
    /// metadata.
    pub(crate) fn encode_snapshot(&self, out: &mut Vec<u8>) {
        let kind: u8 = match &self.sampler {
            PreparedSampler::DecisionDiagram(_) => 0,
            PreparedSampler::StateVector(_) => 1,
            PreparedSampler::Tableau(_) => 2,
        };
        out.push(kind);
        out.push(match self.backend {
            Backend::DecisionDiagram => 0,
            Backend::StateVector => 1,
        });
        out.extend_from_slice(&self.num_qubits.to_le_bytes());
        out.extend_from_slice(&self.record_width.to_le_bytes());
        out.extend_from_slice(&(self.mapping.len() as u32).to_le_bytes());
        for &(qubit, cbit) in &self.mapping {
            out.extend_from_slice(&qubit.0.to_le_bytes());
            out.extend_from_slice(&cbit.to_le_bytes());
        }
        out.extend_from_slice(&(self.route.segments.len() as u32).to_le_bytes());
        for segment in &self.route.segments {
            out.push(match segment.engine {
                crate::router::EngineKind::Tableau => 0,
                crate::router::EngineKind::DecisionDiagram => 1,
                crate::router::EngineKind::StateVector => 2,
            });
            out.extend_from_slice(&(segment.ops as u64).to_le_bytes());
        }
        match &self.dd_stats {
            None => out.push(0),
            Some(stats) => {
                out.push(1);
                for value in dd_stats_words(stats) {
                    out.extend_from_slice(&value.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&self.representation_size.to_le_bytes());
        out.extend_from_slice(&self.build_strong_time.as_secs_f64().to_bits().to_le_bytes());
        out.extend_from_slice(
            &self
                .build_precompute_time
                .as_secs_f64()
                .to_bits()
                .to_le_bytes(),
        );
        let mut sampler_bytes = Vec::new();
        match &self.sampler {
            PreparedSampler::DecisionDiagram(s) => s.encode_snapshot(&mut sampler_bytes),
            PreparedSampler::StateVector(s) => s.encode_snapshot(&mut sampler_bytes),
            PreparedSampler::Tableau(s) => s.encode_snapshot(&mut sampler_bytes),
        }
        out.extend_from_slice(&(sampler_bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&sampler_bytes);
    }

    /// Reconstructs an artifact from an [`encode_snapshot`](Self::encode_snapshot)
    /// payload, delegating sampler validation to the engine crates and
    /// cross-checking the register width.  Returns `None` for any
    /// truncated, malformed or inconsistent payload — a corrupted snapshot
    /// section is skipped by the loader, never a panic.
    pub(crate) fn decode_snapshot(bytes: &[u8]) -> Option<Self> {
        let mut reader = SnapshotReader(bytes);
        let kind = reader.u8()?;
        let backend = match reader.u8()? {
            0 => Backend::DecisionDiagram,
            1 => Backend::StateVector,
            _ => return None,
        };
        let num_qubits = reader.u16()?;
        let record_width = reader.u16()?;
        let mapping_len = reader.u32()? as usize;
        if mapping_len > usize::from(u16::MAX) {
            return None;
        }
        let mut mapping = Vec::with_capacity(mapping_len);
        for _ in 0..mapping_len {
            let qubit = Qubit(reader.u16()?);
            let cbit = reader.u16()?;
            if qubit.0 >= num_qubits || cbit >= record_width {
                return None;
            }
            mapping.push((qubit, cbit));
        }
        let segment_count = reader.u32()? as usize;
        if segment_count > 1 << 20 {
            return None;
        }
        let mut segments = Vec::with_capacity(segment_count);
        for _ in 0..segment_count {
            let engine = match reader.u8()? {
                0 => crate::router::EngineKind::Tableau,
                1 => crate::router::EngineKind::DecisionDiagram,
                2 => crate::router::EngineKind::StateVector,
                _ => return None,
            };
            let ops = usize::try_from(reader.u64()?).ok()?;
            segments.push(crate::router::RouteSegment { engine, ops });
        }
        let dd_stats = match reader.u8()? {
            0 => None,
            1 => {
                let mut words = [0u64; DD_STATS_WORDS];
                for word in &mut words {
                    *word = reader.u64()?;
                }
                Some(dd_stats_from_words(&words)?)
            }
            _ => return None,
        };
        let representation_size = reader.u128()?;
        let build_strong_time = duration_from_bits(reader.u64()?)?;
        let build_precompute_time = duration_from_bits(reader.u64()?)?;
        let sampler_len = usize::try_from(reader.u64()?).ok()?;
        let sampler_bytes = reader.take(sampler_len)?;
        if reader.remaining() != 0 {
            return None;
        }
        let sampler = match kind {
            0 => {
                let s = CompiledSampler::decode_snapshot(sampler_bytes)?;
                if s.num_qubits() != num_qubits {
                    return None;
                }
                PreparedSampler::DecisionDiagram(s)
            }
            1 => {
                let s = PrefixSampler::decode_snapshot(sampler_bytes)?;
                if s.num_qubits() != num_qubits {
                    return None;
                }
                PreparedSampler::StateVector(s)
            }
            2 => {
                let s = MeasurementSampler::decode_snapshot(sampler_bytes)?;
                if s.num_qubits() != usize::from(num_qubits) {
                    return None;
                }
                PreparedSampler::Tableau(s)
            }
            _ => return None,
        };
        Some(Self {
            sampler,
            mapping,
            num_qubits,
            record_width,
            backend,
            route: RunRoute { segments },
            dd_stats,
            representation_size,
            build_strong_time,
            build_precompute_time,
        })
    }

    /// Draws `shots` seed-deterministic samples.
    ///
    /// The RNG scheme matches the engine that built the artifact exactly —
    /// chunked SplitMix64 streams (thread-count independent) for the
    /// decision-diagram and tableau paths, one sequential `StdRng` for the
    /// dense path — so the histogram is bit-identical to the uncached run
    /// with the same seed.  `&self` only: any number of threads may sample
    /// one shared artifact concurrently, each with its own seed stream.
    #[must_use]
    pub fn sample(&self, shots: u64, seed: u64) -> ShotHistogram {
        let width = if self.mapping.is_empty() {
            self.num_qubits
        } else {
            self.record_width
        };
        let mut histogram = ShotHistogram::new(width);
        match &self.sampler {
            PreparedSampler::DecisionDiagram(sampler) => {
                // Whole parallel chunks per batch, advancing chunk offsets:
                // stitching consecutive calls reproduces one giant
                // `sample_many_parallel` call exactly (the DD engine's
                // scheme, verbatim).
                const BATCH_CHUNKS: u64 = 1024;
                let batch_shots = BATCH_CHUNKS * PARALLEL_CHUNK_SHOTS as u64;
                let threads = rayon::current_num_threads();
                let mut drawn = 0u64;
                while drawn < shots {
                    let batch = (shots - drawn).min(batch_shots);
                    // Infallible: `batch` is capped at BATCH_CHUNKS whole
                    // parallel chunks, well inside usize on every target.
                    #[allow(clippy::expect_used)]
                    let batch_len = usize::try_from(batch).expect("batch bounded to fit usize");
                    let samples = sampler.sample_batch_parallel(
                        seed,
                        drawn / PARALLEL_CHUNK_SHOTS as u64,
                        batch_len,
                        threads,
                    );
                    if self.mapping.is_empty() {
                        histogram.record_many(&samples);
                    } else {
                        for sample in samples {
                            histogram.record(map_terminal_record(sample, &self.mapping));
                        }
                    }
                    drawn += batch;
                }
            }
            PreparedSampler::StateVector(sampler) => {
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..shots {
                    let sample = sampler.sample(&mut rng);
                    if self.mapping.is_empty() {
                        histogram.record(sample);
                    } else {
                        histogram.record(map_terminal_record(sample, &self.mapping));
                    }
                }
            }
            PreparedSampler::Tableau(sampler) => {
                // The router's chunk-seeded draw loop, inlined (sampling
                // from a prepared tableau sampler is infallible).
                let chunk_len = PARALLEL_CHUNK_SHOTS as u64;
                let total_chunks = shots.div_ceil(chunk_len);
                if self.mapping.is_empty() {
                    for chunk_index in 0..total_chunks {
                        let chunk_shots = chunk_len.min(shots - chunk_index * chunk_len);
                        let mut rng = SmallRng::seed_from_u64(chunk_stream_seed(seed, chunk_index));
                        for _ in 0..chunk_shots {
                            histogram.record(sampler.sample_u64(&mut rng));
                        }
                    }
                } else {
                    let mut buf = vec![0u64; sampler.num_qubits().div_ceil(64)];
                    for chunk_index in 0..total_chunks {
                        let chunk_shots = chunk_len.min(shots - chunk_index * chunk_len);
                        let mut rng = SmallRng::seed_from_u64(chunk_stream_seed(seed, chunk_index));
                        for _ in 0..chunk_shots {
                            sampler.sample_into(&mut buf, &mut rng);
                            histogram.record(map_terminal_words(&buf, &self.mapping));
                        }
                    }
                }
            }
        }
        histogram
    }
}

/// Number of `u64` words a [`DdStats`] serializes to.
const DD_STATS_WORDS: usize = 23;

/// Flattens a [`DdStats`] into a fixed-width word array (the snapshot
/// encoding); [`dd_stats_from_words`] is the inverse.
fn dd_stats_words(stats: &DdStats) -> [u64; DD_STATS_WORDS] {
    let c = |counters: &dd::CacheCounters| [counters.hits, counters.misses, counters.evictions];
    let [a0, a1, a2] = c(&stats.add_cache);
    let [b0, b1, b2] = c(&stats.mv_cache);
    let [d0, d1, d2] = c(&stats.madd_cache);
    let [e0, e1, e2] = c(&stats.mm_cache);
    let [f0, f1, f2] = c(&stats.operator_cache);
    [
        stats.vector_nodes as u64,
        stats.matrix_nodes as u64,
        stats.interned_values as u64,
        stats.vector_unique_hits,
        stats.vector_unique_misses,
        stats.matrix_unique_hits,
        stats.matrix_unique_misses,
        a0,
        a1,
        a2,
        b0,
        b1,
        b2,
        d0,
        d1,
        d2,
        e0,
        e1,
        e2,
        f0,
        f1,
        f2,
        stats.garbage_collections,
    ]
}

/// Rebuilds a [`DdStats`] from its snapshot words; `None` when a `usize`
/// field does not fit the loading target.
fn dd_stats_from_words(words: &[u64; DD_STATS_WORDS]) -> Option<DdStats> {
    let counters = |offset: usize| dd::CacheCounters {
        hits: words[offset],
        misses: words[offset + 1],
        evictions: words[offset + 2],
    };
    Some(DdStats {
        vector_nodes: usize::try_from(words[0]).ok()?,
        matrix_nodes: usize::try_from(words[1]).ok()?,
        interned_values: usize::try_from(words[2]).ok()?,
        vector_unique_hits: words[3],
        vector_unique_misses: words[4],
        matrix_unique_hits: words[5],
        matrix_unique_misses: words[6],
        add_cache: counters(7),
        mv_cache: counters(10),
        madd_cache: counters(13),
        mm_cache: counters(16),
        operator_cache: counters(19),
        garbage_collections: words[22],
    })
}

/// A finite, non-negative duration decoded from `f64` bits; `None` rejects
/// the NaN/negative/infinite values a corrupted payload could carry
/// (`Duration::from_secs_f64` panics on those).
fn duration_from_bits(bits: u64) -> Option<Duration> {
    let seconds = f64::from_bits(bits);
    if seconds.is_finite() && (0.0..1e18).contains(&seconds) {
        Some(Duration::from_secs_f64(seconds))
    } else {
        None
    }
}

/// A bounds-checked little-endian reader over a snapshot payload.
struct SnapshotReader<'a>(&'a [u8]);

impl<'a> SnapshotReader<'a> {
    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .and_then(|b| b.try_into().ok().map(u64::from_le_bytes))
    }

    fn u128(&mut self) -> Option<u128> {
        self.take(16)
            .and_then(|b| b.try_into().ok().map(u128::from_le_bytes))
    }
}

/// Whether a cached run was served from the cache or had to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The artifact was found in the cache: no strong simulation ran.
    Hit,
    /// The artifact was built by this run and inserted for the next one.
    Miss,
    /// The artifact was built by a *concurrent* request with the same
    /// fingerprint: this request waited on the shared build slot and was
    /// served the published artifact without building (or re-querying the
    /// cache).  Only the [`ServiceBroker`](crate::service::ServiceBroker)
    /// produces this outcome — plain cached runs report hits and misses.
    Coalesced,
}

/// A counters-and-occupancy snapshot of an [`ArtifactCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found their artifact.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Artifacts inserted (including oversized ones that were not retained).
    pub insertions: u64,
    /// Artifacts evicted to make room under the byte budget.
    pub evictions: u64,
    /// Artifacts currently retained.
    pub entries: usize,
    /// Bytes currently retained.
    pub bytes: u64,
}

/// One retained artifact.
#[derive(Debug)]
struct CacheEntry {
    key: [u64; 2],
    artifact: Arc<SimArtifact>,
    bytes: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: Vec<CacheEntry>,
    byte_budget: Option<u64>,
    bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl CacheInner {
    /// Evicts least-recently-used entries until at least `needed` bytes fit
    /// under `budget`.
    fn evict_to_fit(&mut self, needed: u64, budget: u64) {
        while self.bytes + needed > budget && !self.entries.is_empty() {
            let mut lru = 0;
            for (i, entry) in self.entries.iter().enumerate() {
                if entry.last_used < self.entries[lru].last_used {
                    lru = i;
                }
            }
            let evicted = self.entries.swap_remove(lru);
            self.bytes -= evicted.bytes;
            self.evictions += 1;
        }
    }
}

/// A bounded, fingerprint-keyed store of [`Arc<SimArtifact>`]s shared
/// across runs (and across simulator clones — the handle is cheaply
/// cloneable and internally synchronized).
///
/// Retention is LRU under an optional byte budget, following the bounded
/// compute-cache idiom of the DD package: inserting over budget first
/// evicts least-recently-used entries, and an artifact larger than the
/// whole budget is served to its requester but not retained.  An
/// [`unbounded`](ArtifactCache::unbounded) cache never evicts.
///
/// # Examples
///
/// ```
/// use weaksim::{ArtifactCache, Backend, CacheOutcome, WeakSimulator};
///
/// let circuit = algorithms::w_state(6);
/// let cache = ArtifactCache::unbounded();
/// let mut sim = WeakSimulator::new(Backend::DecisionDiagram).with_cache(&cache);
/// let cold = sim.run(&circuit, 1000, 7)?;
/// assert_eq!(cold.cache, Some(CacheOutcome::Miss));
/// let warm = sim.run(&circuit, 1000, 7)?;
/// assert_eq!(warm.cache, Some(CacheOutcome::Hit));
/// assert_eq!(cold.histogram, warm.histogram); // same seed: bit-identical
/// assert_eq!(cache.stats().hits, 1);
/// # Ok::<(), weaksim::RunError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ArtifactCache {
    inner: Arc<Mutex<CacheInner>>,
}

impl ArtifactCache {
    /// A cache with no byte budget: nothing is ever evicted.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A cache that retains at most `bytes` of artifact heap.
    #[must_use]
    pub fn with_byte_budget(bytes: u64) -> Self {
        Self {
            inner: Arc::new(Mutex::new(CacheInner {
                byte_budget: Some(bytes),
                ..CacheInner::default()
            })),
        }
    }

    /// A cache bounded by the governor's byte budget (unbounded when the
    /// governor has none), so retained artifacts live under the same
    /// ceiling the governor enforces on package footprints.
    #[must_use]
    pub fn governed(governor: &RunGovernor) -> Self {
        match governor.byte_budget() {
            Some(bytes) => Self::with_byte_budget(bytes),
            None => Self::unbounded(),
        }
    }

    /// The artifact stored under `key`, bumping its recency; counts a hit
    /// or miss either way.
    #[must_use]
    pub fn get(&self, key: [u64; 2]) -> Option<Arc<SimArtifact>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.iter_mut().find(|entry| entry.key == key) {
            Some(entry) => {
                entry.last_used = tick;
                let artifact = Arc::clone(&entry.artifact);
                inner.hits += 1;
                Some(artifact)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores `artifact` under `key` and returns the shared handle.
    ///
    /// Replaces any existing entry for the key (two simulators racing on
    /// the same miss both insert; last wins, both handles stay valid).
    /// Under a byte budget, least-recently-used entries are evicted until
    /// the newcomer fits; an artifact larger than the whole budget is
    /// returned without being retained.
    pub fn insert(&self, key: [u64; 2], artifact: SimArtifact) -> Arc<SimArtifact> {
        let bytes = artifact.heap_bytes() as u64;
        let artifact = Arc::new(artifact);
        let mut inner = self.lock();
        inner.insertions += 1;
        if let Some(existing) = inner.entries.iter().position(|entry| entry.key == key) {
            let removed = inner.entries.swap_remove(existing);
            inner.bytes -= removed.bytes;
        }
        if let Some(budget) = inner.byte_budget {
            if bytes > budget {
                return Arc::clone(&artifact);
            }
            inner.evict_to_fit(bytes, budget);
        }
        inner.tick += 1;
        let last_used = inner.tick;
        inner.bytes += bytes;
        inner.entries.push(CacheEntry {
            key,
            artifact: Arc::clone(&artifact),
            bytes,
            last_used,
        });
        artifact
    }

    /// A snapshot of the hit/miss/insertion/eviction counters and the
    /// current occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            entries: inner.entries.len(),
            bytes: inner.bytes,
        }
    }

    /// Number of retained artifacts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache holds no artifacts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every retained artifact (outstanding `Arc` handles stay
    /// valid); counters are kept.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.entries.clear();
        inner.bytes = 0;
    }

    /// Bumps the recency of `key` without counting a hit or a miss; returns
    /// whether the entry is retained.
    ///
    /// This is the broker's serve-path hook: a request served from a shared
    /// build slot (coalesced waiter) or re-checked under the broker lock
    /// never calls [`get`](Self::get), yet the entry it was served from must
    /// become the *most* recently used — otherwise an artifact serving heavy
    /// concurrent traffic could still be the LRU eviction victim.
    pub fn touch(&self, key: [u64; 2]) -> bool {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.iter_mut().find(|entry| entry.key == key) {
            Some(entry) => {
                entry.last_used = tick;
                true
            }
            None => false,
        }
    }

    /// Like [`get`](Self::get), but without counting a hit or a miss — the
    /// broker's double-check under its own lock, which must not inflate the
    /// request-level counters.  Bumps recency on success.
    pub(crate) fn peek(&self, key: [u64; 2]) -> Option<Arc<SimArtifact>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner
            .entries
            .iter_mut()
            .find(|entry| entry.key == key)
            .map(|entry| {
                entry.last_used = tick;
                Arc::clone(&entry.artifact)
            })
    }

    /// Every retained entry in LRU order (least recently used first) —
    /// the order a snapshot writes, so a budget-constrained load replays
    /// insertions oldest-first and evicts the same victims the live cache
    /// would have.
    pub(crate) fn entries_lru_order(&self) -> Vec<([u64; 2], Arc<SimArtifact>)> {
        let inner = self.lock();
        let mut entries: Vec<_> = inner
            .entries
            .iter()
            .map(|entry| (entry.last_used, entry.key, Arc::clone(&entry.artifact)))
            .collect();
        entries.sort_by_key(|&(last_used, _, _)| last_used);
        entries
            .into_iter()
            .map(|(_, key, artifact)| (key, artifact))
            .collect()
    }

    /// Inserts an already-shared artifact (the snapshot-load path), with the
    /// same replace/evict/oversize semantics as [`insert`](Self::insert) but
    /// without counting an insertion — restoring a snapshot is not request
    /// traffic.
    pub(crate) fn restore(&self, key: [u64; 2], artifact: Arc<SimArtifact>) {
        let bytes = artifact.heap_bytes() as u64;
        let mut inner = self.lock();
        if let Some(existing) = inner.entries.iter().position(|entry| entry.key == key) {
            let removed = inner.entries.swap_remove(existing);
            inner.bytes -= removed.bytes;
        }
        if let Some(budget) = inner.byte_budget {
            if bytes > budget {
                return;
            }
            inner.evict_to_fit(bytes, budget);
        }
        inner.tick += 1;
        let last_used = inner.tick;
        inner.bytes += bytes;
        inner.entries.push(CacheEntry {
            key,
            artifact,
            bytes,
            last_used,
        });
    }

    /// Locks the store.  A poisoned mutex is recovered, not propagated: the
    /// cache holds no invariants a panicking tenant could half-update into
    /// unsoundness (worst case is a stale counter), and a cache must never
    /// take down the simulators sharing it.
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal artifact for cache-mechanics tests (the simulator-level
    /// integration lives in the workspace `artifact_cache` test).
    fn tiny_artifact(n: u16) -> SimArtifact {
        let circuit = algorithms::ghz(n);
        let state = crate::WeakSimulator::new(Backend::DecisionDiagram)
            .strong(&circuit)
            .unwrap();
        SimArtifact::from_dense(
            &state,
            Vec::new(),
            0,
            RunRoute::dense(Backend::DecisionDiagram, circuit.len()),
            Duration::ZERO,
        )
        .unwrap()
    }

    #[test]
    fn artifacts_are_shareable_across_threads() {
        fn assert_shareable<T: Send + Sync + 'static>() {}
        assert_shareable::<SimArtifact>();
        assert_shareable::<ArtifactCache>();
    }

    #[test]
    fn get_and_insert_track_counters() {
        let cache = ArtifactCache::unbounded();
        let key = [1, 2];
        assert!(cache.get(key).is_none());
        let handle = cache.insert(key, tiny_artifact(4));
        let again = cache.get(key).expect("inserted artifact is retained");
        assert!(Arc::ptr_eq(&handle, &again));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let one = tiny_artifact(4).heap_bytes() as u64;
        // Room for two artifacts, not three.
        let cache = ArtifactCache::with_byte_budget(one * 2 + one / 2);
        cache.insert([1, 0], tiny_artifact(4));
        cache.insert([2, 0], tiny_artifact(4));
        assert_eq!(cache.len(), 2);
        // Touch key 1 so key 2 is the LRU victim.
        assert!(cache.get([1, 0]).is_some());
        cache.insert([3, 0], tiny_artifact(4));
        assert_eq!(cache.len(), 2);
        assert!(cache.get([1, 0]).is_some(), "recently used entry survives");
        assert!(cache.get([2, 0]).is_none(), "LRU entry was evicted");
        assert!(cache.get([3, 0]).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().bytes <= one * 2 + one / 2);
    }

    #[test]
    fn oversized_artifacts_are_served_but_not_retained() {
        let cache = ArtifactCache::with_byte_budget(1);
        let handle = cache.insert([9, 9], tiny_artifact(4));
        assert_eq!(handle.num_qubits(), 4);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn clear_drops_entries_but_keeps_handles_alive() {
        let cache = ArtifactCache::unbounded();
        let handle = cache.insert([5, 5], tiny_artifact(4));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().bytes, 0);
        // The outstanding handle still samples fine.
        assert_eq!(handle.sample(100, 3).shots(), 100);
    }

    #[test]
    fn governed_cache_adopts_the_byte_budget() {
        let governor = RunGovernor::unlimited().with_byte_budget(10);
        let cache = ArtifactCache::governed(&governor);
        cache.insert([1, 1], tiny_artifact(4)); // far over 10 bytes
        assert!(cache.is_empty(), "governed budget applies to artifacts");
        let unbounded = ArtifactCache::governed(&RunGovernor::unlimited());
        unbounded.insert([1, 1], tiny_artifact(4));
        assert_eq!(unbounded.len(), 1);
    }
}

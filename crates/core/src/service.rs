//! The multi-threaded request broker: single-flight construction,
//! admission control with load shedding, and crash-safe cache persistence.
//!
//! PR 8/9 made a warm request ~10,000× cheaper than a cold one, which
//! concentrates the serve path's failure modes in three places; this module
//! closes all three around a shared [`ArtifactCache`]:
//!
//! * **Single-flight cold builds** — concurrent requests with the same
//!   [`request_fingerprint`](crate::WeakSimulator::request_fingerprint)
//!   share *one* in-flight construction through a build-slot table.  The
//!   first request builds; every concurrent duplicate blocks on the slot
//!   and is served the published artifact
//!   ([`CacheOutcome::Coalesced`]) — N cold tenants pay the ~60 s
//!   construction once, not N times.  A failed build propagates the same
//!   typed [`RunError`] to every waiter; `Deadline` failures are retried
//!   with bounded backoff ([`RetryPolicy`]) before the slot is poisoned,
//!   and a poisoned slot is removed so the *next* request starts a fresh
//!   build.
//! * **Admission control** — at most
//!   [`max_inflight_builds`](ServiceConfig::max_inflight_builds)
//!   constructions run concurrently; excess cold requests wait in a
//!   bounded, deadline-aware queue.  A request that cannot be admitted —
//!   queue full, or the estimated wait (moving average of recent build
//!   times) exceeds the simulator governor's
//!   [`timeout`](crate::RunGovernor::timeout) — is shed *immediately* with
//!   [`RunError::Overloaded`] instead of timing out after consuming
//!   resources.  Warm cache hits always bypass the queue.
//! * **Crash-safe persistence** — [`ServiceBroker::write_snapshot`] writes
//!   a versioned binary snapshot of the cache (compiled DD arenas, SV
//!   prefix sums, tableau samplers, fingerprint keys, LRU order)
//!   atomically: temp file, `fsync`, rename, with a per-section checksum.
//!   [`ServiceBroker::load_snapshot`] tolerates corruption: a torn or
//!   checksum-failing section is skipped and reported
//!   ([`SnapshotLoadReport`]), never a panic, and the corrupted entry is
//!   simply rebuilt cold on first request.  A snapshot round-trip re-serves
//!   bit-identical histograms.
//!
//! # Snapshot file format (version 1)
//!
//! All integers little-endian.
//!
//! ```text
//! header:   magic  b"WSIMSNP1"            8 bytes
//!           version u32                   4 bytes  (= 1)
//!           entry_count u32               4 bytes
//! entry*:   key    [u64; 2]              16 bytes  (request fingerprint)
//!           payload_len u64               8 bytes
//!           checksum u64                  8 bytes  (FNV-1a 64 of payload)
//!           payload                       payload_len bytes
//! ```
//!
//! Entries are written in LRU order (least recently used first), so a
//! budget-constrained load replays insertions oldest-first and evicts the
//! same victims the live cache would have.  The payload is the
//! `SimArtifact` encoding: sampler kind, backend, register widths, the
//! trailing-measurement relabelling, the executed route, the `DdStats`
//! snapshot, representation size, build times, and the engine crate's own
//! sampler serialization (see `CompiledSampler::encode_snapshot`,
//! `PrefixSampler::encode_snapshot`, `MeasurementSampler::encode_snapshot`).
//!
//! # Example
//!
//! ```
//! use weaksim::service::{ServiceBroker, ServiceConfig};
//! use weaksim::{ArtifactCache, Backend, CacheOutcome, WeakSimulator};
//!
//! let circuit = algorithms::ghz(6);
//! let broker = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
//! let sim = WeakSimulator::new(Backend::DecisionDiagram);
//! let cold = broker.serve(&sim, &circuit, 1000, 7)?;
//! assert_eq!(cold.cache, Some(CacheOutcome::Miss));
//! let warm = broker.serve(&sim, &circuit, 1000, 7)?;
//! assert_eq!(warm.cache, Some(CacheOutcome::Hit));
//! assert_eq!(cold.histogram, warm.histogram); // same seed: bit-identical
//! assert_eq!(broker.stats().builds, 1);
//! # Ok::<(), weaksim::RunError>(())
//! ```

use crate::artifact::{ArtifactCache, CacheOutcome, SimArtifact};
use crate::simulator::{outcome_from_artifact, RunError, RunOutcome, StrongState, WeakSimulator};
use circuit::Circuit;
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Magic bytes opening a snapshot file.
const SNAPSHOT_MAGIC: &[u8; 8] = b"WSIMSNP1";
/// Snapshot format version written (and the only one accepted).
const SNAPSHOT_VERSION: u32 = 1;
/// Estimated build seconds used for admission decisions before the first
/// build has completed (no observation to average yet).
const DEFAULT_BUILD_ESTIMATE_SECS: f64 = 1.0;

/// Bounded retry policy for transient ([`RunError::Deadline`]) build
/// failures inside a build slot, applied before the slot is poisoned.
///
/// Retrying a deadline failure is meaningful because every attempt re-arms
/// the simulator's [`RunGovernor`](crate::RunGovernor) with the *full*
/// timeout; permanent failures (memory-out, cancellation, invalid input)
/// are never retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total build attempts per slot (1 = no retry; 0 is treated as 1).
    pub max_attempts: u32,
    /// Base backoff slept before retry `n` (scaled linearly: `backoff * n`).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 2,
            backoff: Duration::from_millis(25),
        }
    }
}

/// Configuration of a [`ServiceBroker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Maximum concurrent artifact constructions (0 is treated as 1).
    /// Cold builds beyond the cap wait in the admission queue; warm hits
    /// and coalesced waiters are unaffected.
    pub max_inflight_builds: usize,
    /// Maximum requests waiting for a construction slot; a request
    /// arriving at a full queue is shed with [`RunError::Overloaded`].
    pub queue_capacity: usize,
    /// Retry policy for transient build failures.
    pub retry: RetryPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_inflight_builds: 4,
            queue_capacity: 64,
            retry: RetryPolicy::default(),
        }
    }
}

/// A counters snapshot of a [`ServiceBroker`] (cache-level hit/miss
/// counters live in [`ArtifactCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Successful artifact constructions published to the cache.
    pub builds: u64,
    /// Build slots poisoned by a failed construction (after retries).
    pub build_failures: u64,
    /// Transient build failures that were retried.
    pub retries: u64,
    /// Requests served from another request's build slot (or from a
    /// concurrent publish) without building or re-querying the cache.
    pub coalesced: u64,
    /// Requests shed with [`RunError::Overloaded`] before admission.
    pub shed: u64,
    /// Constructions currently in flight.
    pub inflight: usize,
    /// Requests currently queued for a construction slot.
    pub queued: usize,
}

/// Deterministic service-layer fault points (`fault-inject` feature only):
/// forced build failures from an exact global attempt count, forced
/// snapshot write/read failures at exact call counts, and an optional
/// build delay to widen concurrency windows in tests.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceFaultPlan {
    /// Fail builds from this 1-based global attempt number onward.
    pub fail_builds_from: Option<u64>,
    /// How many consecutive attempts fail once triggered (0 = all of them).
    pub fail_builds_count: u64,
    /// Injected failure kind: `true` surfaces [`RunError::Deadline`]
    /// (transient, retried per [`RetryPolicy`]); `false` surfaces
    /// [`RunError::Cancelled`] (permanent, poisons the slot immediately).
    pub transient_faults: bool,
    /// Fail the Nth (1-based) [`ServiceBroker::write_snapshot`] call.
    pub fail_snapshot_write_at: Option<u64>,
    /// Fail the Nth (1-based) [`ServiceBroker::load_snapshot`] call.
    pub fail_snapshot_read_at: Option<u64>,
    /// Sleep this long at the start of every build attempt (holds the
    /// build slot open so tests can pile coalescing waiters onto it
    /// deterministically).
    pub build_delay: Option<Duration>,
}

/// State of one in-flight construction, shared between the builder and its
/// coalesced waiters.
#[derive(Debug)]
enum SlotState {
    /// The builder is still constructing.
    Building,
    /// The build succeeded and published this artifact.
    Done(Arc<SimArtifact>),
    /// The build failed (after retries); every waiter receives this error.
    Failed(RunError),
}

/// One build slot: a state cell plus the condvar its waiters block on.
#[derive(Debug)]
struct BuildSlot {
    state: Mutex<SlotState>,
    done: Condvar,
}

impl BuildSlot {
    fn new() -> Self {
        Self {
            state: Mutex::new(SlotState::Building),
            done: Condvar::new(),
        }
    }
}

/// Broker state guarded by one mutex: the slot table plus the admission
/// counters its condvar signals on.
#[derive(Debug, Default)]
struct BrokerState {
    inflight: usize,
    queued: usize,
    slots: HashMap<[u64; 2], Arc<BuildSlot>>,
}

/// What [`ServiceBroker::admit`] decided for a cold request.
enum Admission {
    /// This request owns a construction slot: build and publish.
    Build(Arc<BuildSlot>),
    /// A same-fingerprint build is in flight: wait on its slot.
    Wait(Arc<BuildSlot>),
    /// A concurrent build published between the cache check and the
    /// broker lock: serve the artifact directly.
    Served(Arc<SimArtifact>),
}

/// A multi-threaded request broker around an [`ArtifactCache`]; see the
/// [module docs](self) for the single-flight / admission / persistence
/// semantics.  The broker is `Send + Sync`: share one instance (behind an
/// `Arc` or by reference) across any number of serving threads.
#[derive(Debug)]
pub struct ServiceBroker {
    cache: ArtifactCache,
    config: ServiceConfig,
    state: Mutex<BrokerState>,
    admit_signal: Condvar,
    builds: AtomicU64,
    build_failures: AtomicU64,
    retries: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    build_attempts: AtomicU64,
    /// EWMA of recent successful build times, stored as `f64` bits.
    avg_build_bits: AtomicU64,
    #[cfg(feature = "fault-inject")]
    faults: Mutex<ServiceFaultPlan>,
    #[cfg(feature = "fault-inject")]
    snapshot_writes: AtomicU64,
    #[cfg(feature = "fault-inject")]
    snapshot_reads: AtomicU64,
}

impl ServiceBroker {
    /// Creates a broker serving (and populating) `cache` under `config`.
    #[must_use]
    pub fn new(cache: ArtifactCache, config: ServiceConfig) -> Self {
        Self {
            cache,
            config,
            state: Mutex::new(BrokerState::default()),
            admit_signal: Condvar::new(),
            builds: AtomicU64::new(0),
            build_failures: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            build_attempts: AtomicU64::new(0),
            avg_build_bits: AtomicU64::new(0),
            #[cfg(feature = "fault-inject")]
            faults: Mutex::new(ServiceFaultPlan::default()),
            #[cfg(feature = "fault-inject")]
            snapshot_writes: AtomicU64::new(0),
            #[cfg(feature = "fault-inject")]
            snapshot_reads: AtomicU64::new(0),
        }
    }

    /// Installs a deterministic fault plan (testing only).
    #[cfg(feature = "fault-inject")]
    pub fn set_fault_plan(&self, plan: ServiceFaultPlan) {
        *lock_recovering(&self.faults) = plan;
    }

    /// The cache the broker serves from.
    #[must_use]
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The broker's configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// A snapshot of the broker counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let state = lock_recovering(&self.state);
        ServiceStats {
            builds: self.builds.load(Ordering::Relaxed),
            build_failures: self.build_failures.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            inflight: state.inflight,
            queued: state.queued,
        }
    }

    /// Serves one request through the broker: warm hits are answered from
    /// the cache immediately (no queue), cold requests are admitted under
    /// the concurrency cap and coalesced single-flight per fingerprint,
    /// and cache-ineligible requests (noisy or dynamic circuits) fall
    /// through to the plain engine.  Histograms are bit-identical to an
    /// unbrokered [`WeakSimulator::run`] with the same seed in every case.
    ///
    /// # Errors
    ///
    /// Everything [`WeakSimulator::run`] can return, plus
    /// [`RunError::Overloaded`] when admission control sheds the request
    /// (queue full, or estimated wait past the governor's timeout).  A
    /// coalesced waiter receives the *builder's* error when the shared
    /// build fails.
    pub fn serve(
        &self,
        sim: &WeakSimulator,
        circuit: &Circuit,
        shots: u64,
        seed: u64,
    ) -> Result<RunOutcome, RunError> {
        circuit.validate().map_err(RunError::InvalidCircuit)?;
        if let Some(model) = sim.noise() {
            model
                .validate_for(circuit.num_qubits())
                .map_err(RunError::InvalidNoise)?;
        }
        let noise_free = !sim.noise().is_some_and(|model| model.has_noise());
        if !noise_free || circuit.is_dynamic() {
            // Cache-ineligible: per-shot evolution has no reusable prepared
            // sampler, so there is nothing to coalesce or admit — run it.
            return sim.clone().run(circuit, shots, seed);
        }

        let key = sim.request_fingerprint(circuit);
        if let Some(artifact) = self.cache.get(key) {
            return Ok(outcome_from_artifact(
                &artifact,
                shots,
                seed,
                CacheOutcome::Hit,
                None,
            ));
        }
        let deadline = sim.governor().timeout().map(|t| Instant::now() + t);
        match self.admit(key, deadline)? {
            Admission::Served(artifact) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                self.cache.touch(key);
                Ok(outcome_from_artifact(
                    &artifact,
                    shots,
                    seed,
                    CacheOutcome::Coalesced,
                    None,
                ))
            }
            Admission::Wait(slot) => self.wait_on_slot(&slot, key, shots, seed),
            Admission::Build(slot) => self.build_and_publish(sim, circuit, key, &slot, shots, seed),
        }
    }

    /// Decides how a cold request proceeds: coalesce onto an existing
    /// slot, claim a construction slot, queue for one, or shed.
    fn admit(&self, key: [u64; 2], deadline: Option<Instant>) -> Result<Admission, RunError> {
        let max_inflight = self.config.max_inflight_builds.max(1);
        let mut state = lock_recovering(&self.state);
        loop {
            if let Some(slot) = state.slots.get(&key) {
                return Ok(Admission::Wait(Arc::clone(slot)));
            }
            // Double-check the cache under the broker lock: a concurrent
            // build may have published (and retired its slot) between the
            // caller's miss and this lock.
            if let Some(artifact) = self.cache.peek(key) {
                return Ok(Admission::Served(artifact));
            }
            if state.inflight < max_inflight {
                state.inflight += 1;
                let slot = Arc::new(BuildSlot::new());
                state.slots.insert(key, Arc::clone(&slot));
                return Ok(Admission::Build(slot));
            }

            // Every construction slot is busy: queue if admission before
            // the deadline is plausible, shed otherwise.
            let estimated_wait = self.estimated_wait(state.queued);
            if state.queued >= self.config.queue_capacity
                || deadline.is_some_and(|d| Instant::now() + estimated_wait > d)
            {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(RunError::Overloaded {
                    queue_depth: state.queued,
                    estimated_wait,
                });
            }
            state.queued += 1;
            let (next, timed_out) = match deadline {
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    let (guard, timeout) = match self.admit_signal.wait_timeout(state, remaining) {
                        Ok(ok) => ok,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    (guard, timeout.timed_out())
                }
                None => (
                    match self.admit_signal.wait(state) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    },
                    false,
                ),
            };
            state = next;
            state.queued -= 1;
            if timed_out {
                let estimated_wait = self.estimated_wait(state.queued);
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(RunError::Overloaded {
                    queue_depth: state.queued,
                    estimated_wait,
                });
            }
            // Loop: re-check slots (coalesce wins over building afresh),
            // the cache, and the concurrency cap.
        }
    }

    /// Blocks on a build slot until the shared construction resolves, then
    /// serves the published artifact — or propagates the builder's typed
    /// error to this waiter.
    fn wait_on_slot(
        &self,
        slot: &BuildSlot,
        key: [u64; 2],
        shots: u64,
        seed: u64,
    ) -> Result<RunOutcome, RunError> {
        let mut state = lock_recovering(&slot.state);
        loop {
            match &*state {
                SlotState::Building => {
                    state = match slot.done.wait(state) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                SlotState::Done(artifact) => {
                    let artifact = Arc::clone(artifact);
                    drop(state);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    // The entry just served concurrent traffic: make it the
                    // most recently used even though no `get` ran.
                    self.cache.touch(key);
                    return Ok(outcome_from_artifact(
                        &artifact,
                        shots,
                        seed,
                        CacheOutcome::Coalesced,
                        None,
                    ));
                }
                SlotState::Failed(error) => return Err(error.clone()),
            }
        }
    }

    /// Runs the construction this request owns, publishes the result (or
    /// the error) to the slot, and retires the slot.
    fn build_and_publish(
        &self,
        sim: &WeakSimulator,
        circuit: &Circuit,
        key: [u64; 2],
        slot: &Arc<BuildSlot>,
        shots: u64,
        seed: u64,
    ) -> Result<RunOutcome, RunError> {
        // Insurance against a panicking build: resolve the slot and release
        // the permit on unwind, so waiters get a typed error instead of a
        // deadlock.  Defused on every normal path.
        let mut guard = SlotGuard {
            broker: self,
            key,
            slot,
            armed: true,
        };
        let built = self.build_with_retry(sim, circuit);
        guard.armed = false;
        match built {
            Ok((artifact, state, build_seconds)) => {
                let artifact = self.cache.insert(key, artifact);
                self.resolve_slot(key, slot, SlotState::Done(Arc::clone(&artifact)));
                self.builds.fetch_add(1, Ordering::Relaxed);
                self.record_build_seconds(build_seconds);
                Ok(outcome_from_artifact(
                    &artifact,
                    shots,
                    seed,
                    CacheOutcome::Miss,
                    state,
                ))
            }
            Err(error) => {
                self.resolve_slot(key, slot, SlotState::Failed(error.clone()));
                self.build_failures.fetch_add(1, Ordering::Relaxed);
                Err(error)
            }
        }
    }

    /// One construction with bounded retry-with-backoff on transient
    /// ([`RunError::Deadline`]) failures; returns the artifact, the strong
    /// state (dense path) and the successful attempt's build seconds.
    #[allow(clippy::type_complexity)]
    fn build_with_retry(
        &self,
        sim: &WeakSimulator,
        circuit: &Circuit,
    ) -> Result<(SimArtifact, Option<StrongState>, f64), RunError> {
        let max_attempts = self.config.retry.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let start = Instant::now();
            match self.attempt_build(sim, circuit) {
                Ok((artifact, state)) => {
                    return Ok((artifact, state, start.elapsed().as_secs_f64()))
                }
                Err(error) => {
                    let transient = matches!(error, RunError::Deadline(_));
                    if !transient || attempt >= max_attempts {
                        return Err(error);
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.config.retry.backoff * attempt);
                }
            }
        }
    }

    /// One build attempt, with the `fault-inject` hooks applied first.
    fn attempt_build(
        &self,
        sim: &WeakSimulator,
        circuit: &Circuit,
    ) -> Result<(SimArtifact, Option<StrongState>), RunError> {
        let attempt = self.build_attempts.fetch_add(1, Ordering::Relaxed) + 1;
        #[cfg(feature = "fault-inject")]
        {
            let plan = *lock_recovering(&self.faults);
            if let Some(delay) = plan.build_delay {
                std::thread::sleep(delay);
            }
            if let Some(from) = plan.fail_builds_from {
                let triggered = attempt >= from
                    && (plan.fail_builds_count == 0 || attempt < from + plan.fail_builds_count);
                if triggered {
                    return Err(if plan.transient_faults {
                        RunError::Deadline(dd::DdError::Deadline { op_index: None })
                    } else {
                        RunError::Cancelled(dd::DdError::Cancelled { op_index: None })
                    });
                }
            }
        }
        #[cfg(not(feature = "fault-inject"))]
        let _ = attempt;
        sim.prepare_artifact(circuit)
    }

    /// Publishes `resolution` to the slot, wakes its waiters, removes the
    /// slot from the table and releases the construction permit.
    fn resolve_slot(&self, key: [u64; 2], slot: &Arc<BuildSlot>, resolution: SlotState) {
        {
            let mut state = lock_recovering(&slot.state);
            *state = resolution;
        }
        slot.done.notify_all();
        let mut state = lock_recovering(&self.state);
        // Only remove the table entry if it is still *this* slot; a failed
        // build's successor may already have replaced it.
        if state
            .slots
            .get(&key)
            .is_some_and(|current| Arc::ptr_eq(current, slot))
        {
            state.slots.remove(&key);
        }
        state.inflight = state.inflight.saturating_sub(1);
        drop(state);
        self.admit_signal.notify_all();
    }

    /// Estimated wait for a construction slot with `queued` requests ahead:
    /// the build-time moving average scaled by how many admission waves the
    /// queue represents.
    fn estimated_wait(&self, queued: usize) -> Duration {
        let avg = f64::from_bits(self.avg_build_bits.load(Ordering::Relaxed));
        let avg = if avg > 0.0 {
            avg
        } else {
            DEFAULT_BUILD_ESTIMATE_SECS
        };
        let waves = queued as f64 / self.config.max_inflight_builds.max(1) as f64 + 1.0;
        Duration::from_secs_f64((avg * waves).min(1e9))
    }

    /// Folds a successful build's seconds into the moving average
    /// (EWMA, `0.7 * old + 0.3 * new`).
    fn record_build_seconds(&self, seconds: f64) {
        let mut current = self.avg_build_bits.load(Ordering::Relaxed);
        loop {
            let avg = f64::from_bits(current);
            let next = if avg > 0.0 {
                0.7 * avg + 0.3 * seconds
            } else {
                seconds
            };
            match self.avg_build_bits.compare_exchange_weak(
                current,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Writes a crash-safe snapshot of the cache to `path`; see
    /// [`write_snapshot`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (and the injected write fault of a
    /// [`ServiceFaultPlan`]); the previous snapshot at `path`, if any,
    /// survives every failure mode because the data is staged in a temp
    /// file and renamed into place only after `fsync`.
    pub fn write_snapshot(&self, path: &Path) -> io::Result<SnapshotWriteReport> {
        #[cfg(feature = "fault-inject")]
        {
            let call = self.snapshot_writes.fetch_add(1, Ordering::Relaxed) + 1;
            if lock_recovering(&self.faults).fail_snapshot_write_at == Some(call) {
                return Err(io::Error::other("injected snapshot write failure"));
            }
        }
        write_snapshot(&self.cache, path)
    }

    /// Loads a snapshot from `path` into the cache; see [`load_snapshot`].
    ///
    /// # Errors
    ///
    /// Fails only when the file cannot be *read* (not found, permissions,
    /// or the injected read fault of a [`ServiceFaultPlan`]).  Corrupted
    /// *content* never errors: damaged sections are skipped and reported
    /// in the returned [`SnapshotLoadReport`].
    pub fn load_snapshot(&self, path: &Path) -> io::Result<SnapshotLoadReport> {
        #[cfg(feature = "fault-inject")]
        {
            let call = self.snapshot_reads.fetch_add(1, Ordering::Relaxed) + 1;
            if lock_recovering(&self.faults).fail_snapshot_read_at == Some(call) {
                return Err(io::Error::other("injected snapshot read failure"));
            }
        }
        load_snapshot(&self.cache, path)
    }
}

/// Resolves the slot with a cancellation error if the builder unwinds, so
/// coalesced waiters receive a typed error instead of deadlocking.
struct SlotGuard<'a> {
    broker: &'a ServiceBroker,
    key: [u64; 2],
    slot: &'a Arc<BuildSlot>,
    armed: bool,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.broker.resolve_slot(
                self.key,
                self.slot,
                SlotState::Failed(RunError::Cancelled(dd::DdError::Cancelled {
                    op_index: None,
                })),
            );
        }
    }
}

/// Result of a successful snapshot write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotWriteReport {
    /// Artifacts serialized.
    pub entries: usize,
    /// Total bytes written (header + sections).
    pub bytes: u64,
}

/// Result of a snapshot load: what was restored, what was skipped and why.
/// Corruption is *reported*, never propagated as an error — a skipped
/// section just means that artifact rebuilds cold on first request.
#[derive(Debug, Clone, Default)]
pub struct SnapshotLoadReport {
    /// Artifacts restored into the cache.
    pub loaded: usize,
    /// Sections skipped (checksum mismatch or malformed payload).
    pub skipped: usize,
    /// Whether the file ended before its declared entries (torn write) or
    /// the header itself was unusable.
    pub torn: bool,
    /// Human-readable reports for every skipped/torn section.
    pub messages: Vec<String>,
}

/// Serializes every retained artifact of `cache` to `path`, atomically:
/// the bytes are staged in a sibling `.tmp` file, `fsync`ed, and renamed
/// into place — a crash mid-write leaves the previous snapshot intact.
/// Entries are written in LRU order; each section carries an FNV-1a 64
/// checksum so the loader can skip exactly the damaged ones.  See the
/// [module docs](self) for the file format.
///
/// # Errors
///
/// Propagates I/O failures from creating, writing, syncing or renaming the
/// temp file.
pub fn write_snapshot(cache: &ArtifactCache, path: &Path) -> io::Result<SnapshotWriteReport> {
    let entries = cache.entries_lru_order();
    let mut buf = Vec::new();
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    let mut payload = Vec::new();
    for (key, artifact) in &entries {
        payload.clear();
        artifact.encode_snapshot(&mut payload);
        buf.extend_from_slice(&key[0].to_le_bytes());
        buf.extend_from_slice(&key[1].to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
    }

    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "snapshot path has no file name",
        )
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp_path = path.with_file_name(tmp_name);
    let mut file = std::fs::File::create(&tmp_path)?;
    file.write_all(&buf)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp_path, path)?;
    Ok(SnapshotWriteReport {
        entries: entries.len(),
        bytes: buf.len() as u64,
    })
}

/// Loads a snapshot written by [`write_snapshot`] into `cache`, restoring
/// entries oldest-first so the cache's LRU order (and, under a byte
/// budget, its eviction victims) match the saved state.
///
/// Corruption tolerance: an unusable header loads nothing; a section whose
/// checksum fails or whose payload does not decode is skipped; a file that
/// ends before its declared entry count stops there.  All three are
/// reported in the [`SnapshotLoadReport`] — never a panic, and never an
/// `Err` (those are reserved for failing to read the file at all).
///
/// # Errors
///
/// Propagates the error from reading `path` (e.g. not found).
pub fn load_snapshot(cache: &ArtifactCache, path: &Path) -> io::Result<SnapshotLoadReport> {
    let bytes = std::fs::read(path)?;
    let mut report = SnapshotLoadReport::default();
    if bytes.len() < 16 || &bytes[..8] != SNAPSHOT_MAGIC {
        report.torn = true;
        report
            .messages
            .push("snapshot header missing or unrecognized; starting cold".to_owned());
        return Ok(report);
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != SNAPSHOT_VERSION {
        report.torn = true;
        report.messages.push(format!(
            "unsupported snapshot version {version}; starting cold"
        ));
        return Ok(report);
    }
    let declared = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
    let mut offset = 16usize;
    for index in 0..declared {
        if bytes.len() - offset < 32 {
            report.torn = true;
            report.messages.push(format!(
                "snapshot truncated in the header of entry {index} of {declared}; \
                 remaining entries lost"
            ));
            break;
        }
        let word = |at: usize| -> u64 {
            let mut out = [0u8; 8];
            out.copy_from_slice(&bytes[at..at + 8]);
            u64::from_le_bytes(out)
        };
        let key = [word(offset), word(offset + 8)];
        let payload_len = word(offset + 16);
        let checksum = word(offset + 24);
        offset += 32;
        let payload_len = match usize::try_from(payload_len) {
            Ok(len) if len <= bytes.len() - offset => len,
            _ => {
                report.torn = true;
                report.messages.push(format!(
                    "snapshot truncated in the payload of entry {index} of {declared}; \
                     remaining entries lost"
                ));
                break;
            }
        };
        let payload = &bytes[offset..offset + payload_len];
        offset += payload_len;
        if fnv1a64(payload) != checksum {
            report.skipped += 1;
            report.messages.push(format!(
                "entry {index} (key {:016x}{:016x}): checksum mismatch, skipped \
                 (will rebuild cold)",
                key[0], key[1]
            ));
            continue;
        }
        match SimArtifact::decode_snapshot(payload) {
            Some(artifact) => {
                cache.restore(key, Arc::new(artifact));
                report.loaded += 1;
            }
            None => {
                report.skipped += 1;
                report.messages.push(format!(
                    "entry {index} (key {:016x}{:016x}): payload malformed, skipped \
                     (will rebuild cold)",
                    key[0], key[1]
                ));
            }
        }
    }
    Ok(report)
}

/// FNV-1a 64 over a snapshot section payload.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Locks a broker-internal mutex, recovering from poisoning: the broker's
/// invariants (counters and a slot table) survive a panicking tenant, and
/// the serve path must never take down the other threads sharing it.
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;

    #[test]
    fn broker_is_send_sync() {
        fn assert_shareable<T: Send + Sync>() {}
        assert_shareable::<ServiceBroker>();
    }

    #[test]
    fn warm_and_cold_serves_match_the_plain_simulator() {
        let circuit = algorithms::w_state(6);
        let broker = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
        let sim = WeakSimulator::new(Backend::DecisionDiagram);
        let cold = broker.serve(&sim, &circuit, 2000, 3).unwrap();
        let warm = broker.serve(&sim, &circuit, 2000, 3).unwrap();
        let plain = WeakSimulator::new(Backend::DecisionDiagram)
            .run(&circuit, 2000, 3)
            .unwrap();
        assert_eq!(cold.cache, Some(CacheOutcome::Miss));
        assert_eq!(warm.cache, Some(CacheOutcome::Hit));
        assert_eq!(cold.histogram, plain.histogram);
        assert_eq!(warm.histogram, plain.histogram);
        assert_eq!(broker.stats().builds, 1);
    }

    #[test]
    fn dynamic_circuits_fall_through_to_the_plain_engine() {
        use circuit::Qubit;
        let mut circuit = Circuit::new(2);
        circuit
            .h(Qubit(0))
            .measure(Qubit(0), 0)
            .cx(Qubit(0), Qubit(1))
            .measure(Qubit(1), 1);
        let broker = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
        let sim = WeakSimulator::new(Backend::DecisionDiagram);
        let outcome = broker.serve(&sim, &circuit, 500, 1).unwrap();
        assert_eq!(outcome.cache, None, "dynamic requests bypass the cache");
        assert!(broker.cache().is_empty());
        assert_eq!(broker.stats().builds, 0);
    }

    #[test]
    fn snapshot_round_trip_restores_lru_order_and_histograms() {
        let broker = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
        let sim = WeakSimulator::new(Backend::DecisionDiagram);
        let a = algorithms::ghz(5);
        let b = algorithms::w_state(5);
        let cold_a = broker.serve(&sim, &a, 1000, 9).unwrap();
        let cold_b = broker.serve(&sim, &b, 1000, 9).unwrap();

        let dir = std::env::temp_dir().join(format!("weaksim-service-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.snap");
        let written = broker.write_snapshot(&path).unwrap();
        assert_eq!(written.entries, 2);

        let restored = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
        let report = restored.load_snapshot(&path).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.skipped, 0);
        assert!(!report.torn);
        let warm_a = restored.serve(&sim, &a, 1000, 9).unwrap();
        let warm_b = restored.serve(&sim, &b, 1000, 9).unwrap();
        assert_eq!(warm_a.cache, Some(CacheOutcome::Hit));
        assert_eq!(warm_b.cache, Some(CacheOutcome::Hit));
        assert_eq!(warm_a.histogram, cold_a.histogram);
        assert_eq!(warm_b.histogram, cold_b.histogram);
        assert_eq!(restored.stats().builds, 0, "nothing rebuilt after restore");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_snapshot_sections_are_skipped_not_fatal() {
        let broker = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
        let sim = WeakSimulator::new(Backend::DecisionDiagram);
        broker.serve(&sim, &algorithms::ghz(4), 100, 1).unwrap();
        broker.serve(&sim, &algorithms::w_state(4), 100, 1).unwrap();

        let dir = std::env::temp_dir().join(format!("weaksim-service-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.snap");
        broker.write_snapshot(&path).unwrap();
        // Flip a byte deep inside the first entry's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[60] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let restored = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
        let report = restored.load_snapshot(&path).unwrap();
        assert_eq!(report.loaded + report.skipped, 2);
        assert_eq!(report.skipped, 1, "exactly the damaged section is lost");
        assert!(!report.messages.is_empty());

        // Truncation: keep only half the file — never a panic, and the
        // loader reports the tear.
        let half = bytes.len() / 2;
        std::fs::write(&path, &bytes[..half]).unwrap();
        let torn_report = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default())
            .load_snapshot(&path)
            .unwrap();
        assert!(torn_report.torn);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_snapshot_is_a_read_error_not_a_panic() {
        let broker = ServiceBroker::new(ArtifactCache::unbounded(), ServiceConfig::default());
        let result = broker.load_snapshot(Path::new("/no/such/dir/snapshot.bin"));
        assert!(result.is_err());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}

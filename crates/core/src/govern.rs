//! User-facing run governance: budgets, timeouts and cancellation for
//! whole weak-simulation runs.
//!
//! The low-level [`dd::Governor`] carries an *absolute* deadline, which is
//! the right primitive inside the package hot paths but awkward at the API
//! surface: a simulator is configured once and reused across runs, and each
//! run should get the full timeout.  [`RunGovernor`] is therefore a
//! *specification* — "at most N nodes, at most T seconds, cancellable via
//! this token" — that [`WeakSimulator`](crate::WeakSimulator) arms into a
//! fresh [`dd::Governor`] (deadline clock started) at the beginning of every
//! run.
//!
//! # What is governed
//!
//! * **Decision-diagram construction** (strong simulation): node/byte
//!   budgets, the deadline and the token are all checked at amortized cost
//!   inside the package (see the `dd::govern` module docs, including the
//!   `check_interval` sizing knob).  Budget pressure degrades gracefully —
//!   garbage collection plus compute-cache shrinking, then one retry —
//!   before surfacing as [`RunError::DdMemoryOut`](crate::RunError).
//! * **Sampler compilation**: the compiled-arena passes honour the deadline
//!   and the token (compilation allocates no decision-diagram nodes, so
//!   budgets cannot trip there).
//! * **Trajectory runs** (dynamic or noisy circuits): every worker package
//!   is governed, and workers additionally probe the deadline and the token
//!   at chunk boundaries.  An interrupted trajectory run is *not* an error:
//!   it returns the shots completed so far together with an
//!   [`Interruption`] carrying the reason.
//! * **The dense statevector backend**: deadline and cancellation are
//!   honoured at trajectory chunk boundaries; memory is governed by the
//!   existing up-front [`MemoryBudget`](statevector::MemoryBudget) check
//!   (the dense footprint is known exactly in advance, so no cooperative
//!   budget is needed).
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use weaksim::{Backend, RunGovernor, WeakSimulator};
//!
//! let governor = RunGovernor::unlimited()
//!     .with_node_budget(5_000_000)
//!     .with_timeout(Duration::from_secs(60));
//! let mut sim = WeakSimulator::new(Backend::DecisionDiagram).with_governor(governor);
//! let outcome = sim.run(&algorithms::ghz(8), 1_000, 1)?;
//! assert_eq!(outcome.histogram.shots(), 1_000);
//! # Ok::<(), weaksim::RunError>(())
//! ```

use dd::{CancelToken, DdError, Governor};
use std::time::Duration;

/// A reusable specification of run limits: node/byte budgets for the
/// decision-diagram package, a per-run wall-clock timeout, and a shareable
/// [`CancelToken`].
///
/// Attach one to a simulator with
/// [`WeakSimulator::with_governor`](crate::WeakSimulator::with_governor);
/// every run then [`arm`](RunGovernor::arm)s it into a fresh low-level
/// [`Governor`] whose deadline starts counting at that moment.  The default
/// specification is [`unlimited`](RunGovernor::unlimited), which compiles
/// down to the package's single-branch fast path.
#[derive(Debug, Clone, Default)]
pub struct RunGovernor {
    node_budget: Option<u64>,
    byte_budget: Option<u64>,
    timeout: Option<Duration>,
    cancel: Option<CancelToken>,
    check_interval: Option<u64>,
    #[cfg(feature = "fault-inject")]
    fault: Option<dd::FaultPlan>,
}

impl RunGovernor {
    /// A specification with no limits.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps allocated decision-diagram arena nodes (vector + matrix
    /// combined) per package.
    #[must_use]
    pub fn with_node_budget(mut self, nodes: u64) -> Self {
        self.node_budget = Some(nodes);
        self
    }

    /// Caps the approximate decision-diagram package footprint in bytes
    /// (arenas, unique tables and compute caches) per package.
    #[must_use]
    pub fn with_byte_budget(mut self, bytes: u64) -> Self {
        self.byte_budget = Some(bytes);
        self
    }

    /// The configured byte budget, if any — shared with the artifact cache
    /// ([`ArtifactCache::governed`](crate::ArtifactCache::governed)), so
    /// retained samplers live under the same ceiling as package footprints.
    #[must_use]
    pub fn byte_budget(&self) -> Option<u64> {
        self.byte_budget
    }

    /// Limits every run to `timeout` of wall-clock time, measured from the
    /// moment the run starts (i.e. from [`arm`](RunGovernor::arm)).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Attaches a cooperative cancellation token.  Keep a clone and call
    /// [`CancelToken::cancel`] from any thread to interrupt the run at its
    /// next amortized checkpoint.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Overrides the amortized-check interval of the armed governors (see
    /// [`dd::DEFAULT_CHECK_INTERVAL`] and the `dd::govern` module docs for
    /// how to size it).
    #[must_use]
    pub fn with_check_interval(mut self, interval: u64) -> Self {
        self.check_interval = Some(interval);
        self
    }

    /// Injects a deterministic fault into every armed governor (testing
    /// only; see [`dd::FaultPlan`]).
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn with_fault(mut self, fault: dd::FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Whether any limit (or injected fault) is configured.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        let limited = self.node_budget.is_some()
            || self.byte_budget.is_some()
            || self.timeout.is_some()
            || self.cancel.is_some();
        #[cfg(feature = "fault-inject")]
        let limited = limited || self.fault.is_some();
        limited
    }

    /// The configured timeout, if any.
    ///
    /// Besides bounding the armed run itself, this is the deadline the
    /// service broker's admission control honours: a queued request whose
    /// estimated wait for a construction slot would exceed this timeout is
    /// shed immediately with
    /// [`RunError::Overloaded`](crate::RunError::Overloaded) instead of
    /// waiting only to time out mid-build (see
    /// [`ServiceBroker`](crate::service::ServiceBroker)).
    #[must_use]
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// Arms the specification into a low-level [`Governor`]: the timeout, if
    /// any, becomes an absolute deadline starting *now*.  Cloning the armed
    /// governor (as the trajectory engine does per worker) shares that
    /// deadline and the token.
    #[must_use]
    pub fn arm(&self) -> Governor {
        let mut governor = Governor::unlimited();
        if let Some(nodes) = self.node_budget {
            governor = governor.with_node_budget(nodes);
        }
        if let Some(bytes) = self.byte_budget {
            governor = governor.with_byte_budget(bytes);
        }
        if let Some(timeout) = self.timeout {
            governor = governor.with_timeout(timeout);
        }
        if let Some(token) = &self.cancel {
            governor = governor.with_cancel_token(token.clone());
        }
        if let Some(interval) = self.check_interval {
            governor = governor.with_check_interval(interval);
        }
        #[cfg(feature = "fault-inject")]
        if let Some(fault) = self.fault {
            governor = governor.with_fault(fault);
        }
        governor
    }
}

/// Why (and when) a trajectory run stopped early.
///
/// Interruption is *graceful degradation*, not failure: the histogram of a
/// run carrying an `Interruption` holds every shot that completed before the
/// governor fired, and the owning packages remain fully usable — re-running
/// with the same seed and no interruption reproduces the full histogram
/// bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interruption {
    /// The governed failure that stopped the run (budget, deadline or
    /// cancellation, with its structured report).
    pub reason: DdError,
    /// Shots fully completed — and recorded in the histogram — before the
    /// interruption.
    pub completed_shots: u64,
}

impl std::fmt::Display for Interruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "interrupted after {} completed shots: {}",
            self.completed_shots, self.reason
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn unlimited_spec_arms_to_the_fast_path() {
        let spec = RunGovernor::unlimited();
        assert!(!spec.is_limited());
        assert!(!spec.arm().is_limited());
    }

    #[test]
    fn arming_starts_the_deadline_clock() {
        let spec = RunGovernor::unlimited().with_timeout(Duration::from_secs(3600));
        assert!(spec.is_limited());
        assert_eq!(spec.timeout(), Some(Duration::from_secs(3600)));
        // Armed twice, each governor gets the full hour from its own start.
        let before = Instant::now();
        let armed = spec.arm();
        assert!(armed.is_limited());
        armed.check_now().expect("one hour has not elapsed");
        assert!(before.elapsed() < Duration::from_secs(3600));
    }

    #[test]
    fn budgets_and_token_carry_over() {
        let token = CancelToken::new();
        let spec = RunGovernor::unlimited()
            .with_node_budget(10)
            .with_byte_budget(1 << 20)
            .with_cancel_token(token.clone());
        let armed = spec.arm();
        assert_eq!(armed.node_budget(), Some(10));
        assert_eq!(armed.byte_budget(), Some(1 << 20));
        armed.check_now().expect("not cancelled yet");
        token.cancel();
        assert!(
            armed.check_now().is_err(),
            "armed governor shares the token"
        );
    }

    #[test]
    fn interruption_display_mentions_shots_and_reason() {
        let i = Interruption {
            reason: DdError::Deadline { op_index: None },
            completed_shots: 42,
        };
        let text = i.to_string();
        assert!(text.contains("42"), "{text}");
        assert!(text.contains("deadline"), "{text}");
    }
}

//! Weak simulation of quantum computation — the user-facing front end of the
//! reproduction of Hillmich, Markov and Wille, *"Just Like the Real Thing:
//! Fast Weak Simulation of Quantum Computation"* (DAC 2020).
//!
//! The crate ties the substrates together:
//!
//! * [`WeakSimulator`] — run a [`circuit::Circuit`] through either backend
//!   ([`Backend::DecisionDiagram`] or [`Backend::StateVector`]) and draw
//!   measurement samples that are statistically indistinguishable from an
//!   error-free quantum computer;
//! * [`ShotHistogram`] — aggregated samples with bitstring formatting;
//! * [`stats`] — chi-square goodness-of-fit and total-variation-distance
//!   checks used to validate the "statistically indistinguishable" claim;
//! * [`experiment`] — the harness that regenerates Table I of the paper
//!   (per-benchmark representation sizes and sampling times for both
//!   backends).
//!
//! # Quick start
//!
//! ```
//! use circuit::{Circuit, Qubit};
//! use weaksim::{Backend, WeakSimulator};
//!
//! let mut bell = Circuit::new(2);
//! bell.h(Qubit(0));
//! bell.cx(Qubit(0), Qubit(1));
//!
//! let mut sim = WeakSimulator::new(Backend::DecisionDiagram);
//! let outcome = sim.run(&bell, 1000, 42)?;
//! // Only |00> and |11> can ever be observed.
//! assert!(outcome.histogram.counts().keys().all(|&k| k == 0 || k == 3));
//! # Ok::<(), weaksim::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
mod shots;
mod simulator;
pub mod stats;

pub use shots::ShotHistogram;
pub use simulator::{Backend, RunError, RunOutcome, StrongState, WeakSimulator};

//! Weak simulation of quantum computation — the user-facing front end of the
//! reproduction of Hillmich, Markov and Wille, *"Just Like the Real Thing:
//! Fast Weak Simulation of Quantum Computation"* (DAC 2020).
//!
//! The crate ties the substrates together:
//!
//! * [`WeakSimulator`] — run a [`circuit::Circuit`] through either backend
//!   ([`Backend::DecisionDiagram`] or [`Backend::StateVector`]) and draw
//!   measurement samples that are statistically indistinguishable from an
//!   error-free quantum computer;
//! * [`trajectory`] — per-shot simulation of *dynamic* circuits
//!   (mid-circuit measurement, reset and classically-controlled
//!   `if (c==k)` gates/measures/resets), optionally under a stochastic
//!   [`circuit::NoiseModel`] (noisy-hardware emulation by per-shot Kraus
//!   branch insertion), with decision-prefix-tree caching on the
//!   decision-diagram backend;
//! * [`router`] — the opt-in segmented Clifford router
//!   ([`WeakSimulator::with_clifford_router`]): fully-Clifford circuits
//!   (see [`circuit::Circuit::clifford_segments`]) execute on the
//!   polynomial-time stabilizer-tableau engine (`tableau` crate) at
//!   thousands of qubits, Clifford prefixes ending in a basis state are
//!   stitched into the dense backend, and [`RunOutcome::route`] reports
//!   which engine executed each segment;
//! * [`artifact`] — the pay-once layer: [`SimArtifact`] is a self-contained,
//!   `Arc`-shared snapshot of everything a request needs *after* strong
//!   simulation (a compiled DD sampler, dense prefix sums or a tableau
//!   measurement sampler, plus route and stats), and [`ArtifactCache`] is a
//!   bounded, fingerprint-keyed store ([`circuit::Circuit::fingerprint`])
//!   that lets [`WeakSimulator::with_cache`] serve warm requests without
//!   re-simulating — same seed, bit-identical histogram;
//! * [`govern`] — run governance: attach a [`RunGovernor`] (node/byte
//!   budgets, a per-run timeout, a shareable [`dd::CancelToken`]) with
//!   [`WeakSimulator::with_governor`].  Static runs that hit a limit fail
//!   with a typed [`RunError`]; interrupted trajectory runs degrade
//!   gracefully, returning the completed shots plus an
//!   [`Interruption`] reason;
//! * [`service`] — the multi-threaded request broker around an
//!   [`ArtifactCache`]: [`ServiceBroker`] coalesces concurrent
//!   same-fingerprint cold builds single-flight, applies admission control
//!   (bounded in-flight constructions plus a deadline-aware queue; shed
//!   requests surface [`RunError::Overloaded`]) and persists the cache as
//!   a crash-safe, corruption-tolerant binary snapshot;
//! * [`ShotHistogram`] — aggregated samples with bitstring formatting;
//! * [`stats`] — chi-square goodness-of-fit and total-variation-distance
//!   checks used to validate the "statistically indistinguishable" claim;
//! * [`experiment`] — the harness that regenerates Table I of the paper
//!   (per-benchmark representation sizes and sampling times for both
//!   backends).
//!
//! # Static-vs-dynamic routing
//!
//! [`WeakSimulator::run`] classifies the circuit once
//! ([`circuit::Circuit::is_dynamic`]):
//!
//! * a circuit whose only non-unitary content is a *trailing* block of
//!   `measure` operations (or none at all) is **static**: it is strong-
//!   simulated once and sampled with the one-pass batched sampler of the
//!   paper, the trailing measurements reduced to a bit-relabelling of the
//!   sampled strings — so dynamic-circuit support costs the classic hot
//!   path nothing;
//! * a circuit with a measurement followed by more gates, any `reset`, or
//!   any classically-conditioned gate is **dynamic** and runs
//!   trajectory-by-trajectory: collapse at each event, evolve the suffix
//!   (resolving `if (c==k)` guards against the shot's classical record),
//!   record classical bits.  The decision-diagram engine caches evolved
//!   states, branch masses and compiled terminal samplers per outcome
//!   prefix, so only the first shot down a given prefix pays for
//!   decision-diagram arithmetic and sampler recompilation of the changed
//!   suffix.
//!
//! # Trajectory seeding
//!
//! Every batched sampler in the workspace — the static
//! [`dd::CompiledSampler`] batches and the dynamic trajectory engine —
//! derives per-chunk RNG streams from the same scheme: shots are split into
//! fixed chunks of [`dd::PARALLEL_CHUNK_SHOTS`], and chunk `i` seeds a
//! dedicated xoshiro256++ generator with
//! [`dd::chunk_stream_seed`]`(master_seed, i)` (one SplitMix64 step over
//! the pair).  Worker threads only choose *which* chunks they run, so
//! histograms are bit-identical for a given seed on 1 thread or 128.
//!
//! # Quick start
//!
//! ```
//! use circuit::{Circuit, Qubit};
//! use weaksim::{Backend, WeakSimulator};
//!
//! let mut bell = Circuit::new(2);
//! bell.h(Qubit(0));
//! bell.cx(Qubit(0), Qubit(1));
//!
//! let mut sim = WeakSimulator::new(Backend::DecisionDiagram);
//! let outcome = sim.run(&bell, 1000, 42)?;
//! // Only |00> and |11> can ever be observed.
//! assert!(outcome.histogram.counts().keys().all(|&k| k == 0 || k == 3));
//! # Ok::<(), weaksim::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod artifact;
mod backend;
pub mod experiment;
pub mod govern;
pub mod router;
pub mod service;
mod shots;
mod simulator;
pub mod stats;
pub mod trajectory;

pub use artifact::{ArtifactCache, CacheOutcome, CacheStats, PreparedSampler, SimArtifact};
pub use dd::{CancelToken, DdError};
pub use govern::{Interruption, RunGovernor};
pub use router::{EngineKind, RouteSegment, RunRoute};
pub use service::{
    RetryPolicy, ServiceBroker, ServiceConfig, ServiceStats, SnapshotLoadReport,
    SnapshotWriteReport,
};
pub use shots::ShotHistogram;
pub use simulator::{Backend, RunError, RunOutcome, StrongState, WeakSimulator};
pub use trajectory::{
    simulate_noisy_trajectories, simulate_noisy_trajectories_with_threads, simulate_trajectories,
    simulate_trajectories_with_threads, TrajectoryOutcome,
};

//! The engine abstraction behind [`Backend`]: trait dispatch for every
//! backend-specific step of a run.
//!
//! [`WeakSimulator`](crate::WeakSimulator) and the
//! [`trajectory`](crate::trajectory) module never match on [`Backend`]
//! themselves.  Each backend ships an [`Engine`] — the strong-simulation and
//! sampling entry points plus the governor and memory hooks — and a
//! [`TrajectoryRunner`] — the per-shot measure/reset/collapse primitives —
//! and [`Backend::engine`] is the single dispatch table.  The trajectory
//! shot loop (decision drawing, classical-record bookkeeping, event walk)
//! is written once against [`TrajectoryRunner`], so the decision-diagram
//! and statevector runners share one generic code path and a new engine
//! only has to implement the two traits.

use crate::govern::RunGovernor;
use crate::simulator::{map_terminal_record, Backend, RunError, StrongState};
use crate::trajectory::{DdRunner, Event, SvRunner, TrajectoryPlan};
use crate::ShotHistogram;
use circuit::{Circuit, Qubit};
use dd::{CompiledSampler, DdError, DdPackage, DdStats, Governor, PARALLEL_CHUNK_SHOTS};
use rand::rngs::{SmallRng, StdRng};
use rand::SeedableRng;
use statevector::{MemoryBudget, PrefixSampler};
use std::time::{Duration, Instant};

/// A strong-simulation engine: everything [`WeakSimulator`] needs from a
/// backend outside the per-shot trajectory loop.
///
/// Implementations are stateless unit structs ([`DdEngine`], [`SvEngine`]);
/// all run state lives in the [`StrongState`] / [`TrajectoryRunner`] values
/// they produce.
///
/// [`WeakSimulator`]: crate::WeakSimulator
pub(crate) trait Engine: Sync {
    /// Strong-simulates `circuit` to its final state (the strong-apply
    /// hook).  `budget` bounds dense allocations; `governor` is armed for
    /// the duration of the simulation on engines that support governance.
    /// `construction_threads` fans gate construction out over a worker pool
    /// on engines that support it (`None` = sequential; `Some(0)` = one
    /// worker per CPU); engines without parallel construction ignore it.
    fn strong(
        &self,
        circuit: &Circuit,
        budget: MemoryBudget,
        governor: &RunGovernor,
        construction_threads: Option<usize>,
    ) -> Result<StrongState, RunError>;

    /// Draws `shots` samples from a state this engine produced, optionally
    /// relabelling each sampled bitstring through a trailing-measurement
    /// `(qubit, cbit)` mapping into a classical record of the given width.
    /// Returns the histogram with the precompute and sampling times.
    fn sample_with_record(
        &self,
        state: &StrongState,
        shots: u64,
        seed: u64,
        record: Option<(&[(Qubit, u16)], u16)>,
    ) -> Result<(ShotHistogram, Duration, Duration), RunError>;

    /// Pre-checks the peak memory a trajectory run with `workers` concurrent
    /// workers would allocate against `budget` (engines whose memory grows
    /// with state structure rather than `2^n` accept unconditionally).
    fn check_trajectory_memory(
        &self,
        num_qubits: u16,
        workers: usize,
        budget: MemoryBudget,
    ) -> Result<(), RunError>;

    /// Builds this engine's per-worker trajectory runner for `plan`, under
    /// one worker's armed governor clone.  Fails only when the governor
    /// interrupts the shared-prefix construction — before any shot has run.
    fn trajectory_runner<'p>(
        &self,
        plan: &'p TrajectoryPlan,
        governor: Governor,
    ) -> Result<Box<dyn TrajectoryRunner + 'p>, DdError>;
}

/// The per-shot primitive surface of one backend, owned by a single worker
/// thread: collapse, reset, noise realization and terminal read-out.
///
/// The trajectory shot loop in [`trajectory`](crate::trajectory) drives
/// these primitives identically for every engine; only the state
/// representation behind them differs.
pub(crate) trait TrajectoryRunner {
    /// Rewinds to the shared prefix state, starting a fresh shot.
    fn begin_shot(&mut self);

    /// `P(qubit = 1)` of the current state — consulted by the
    /// state-dependent decision draws (measure, reset, amplitude damping).
    fn p_one(&mut self, qubit: Qubit) -> Result<f64, DdError>;

    /// Applies event `k` under the drawn `decision` — collapse for a
    /// measurement, collapse-and-flip for a reset, the Kraus branch of a
    /// noise site, nothing for the skipped marker — then applies the unitary
    /// segment that follows, resolving classical conditions against
    /// `record`.
    fn advance(&mut self, k: usize, event: Event, decision: u8, record: u64)
        -> Result<(), DdError>;

    /// Draws one terminal full-register sample from the current state.
    fn terminal_sample(&mut self, rng: &mut SmallRng) -> Result<u64, DdError>;

    /// Housekeeping between chunks (garbage collection).
    fn end_of_chunk(&mut self) {}

    /// Peak representation size observed so far.
    fn representation_size(&self) -> u128;

    /// Package table statistics (decision-diagram engines only).
    fn dd_stats(&self) -> Option<DdStats> {
        None
    }
}

impl Backend {
    /// The engine implementing this backend — the one place a [`Backend`]
    /// value is resolved to executable code.
    pub(crate) fn engine(self) -> &'static dyn Engine {
        match self {
            Backend::DecisionDiagram => &DdEngine,
            Backend::StateVector => &SvEngine,
        }
    }
}

/// The decision-diagram engine (the method proposed by the paper).
pub(crate) struct DdEngine;

/// The dense statevector engine (the baseline method).
pub(crate) struct SvEngine;

impl Engine for DdEngine {
    fn strong(
        &self,
        circuit: &Circuit,
        _budget: MemoryBudget,
        governor: &RunGovernor,
        construction_threads: Option<usize>,
    ) -> Result<StrongState, RunError> {
        // Decision diagrams grow with the state's structure, not with 2^n,
        // so the dense memory budget never applies; their memory is bounded
        // by the governor's node/byte budget instead.
        let mut package = Box::new(DdPackage::new());
        package.set_governor(governor.arm());
        let state = match construction_threads {
            None => dd::simulate(&mut package, circuit)?,
            Some(workers) => dd::simulate_with_threads(&mut package, circuit, workers)?,
        };
        Ok(StrongState::DecisionDiagram { package, state })
    }

    fn sample_with_record(
        &self,
        strong: &StrongState,
        shots: u64,
        seed: u64,
        record: Option<(&[(Qubit, u16)], u16)>,
    ) -> Result<(ShotHistogram, Duration, Duration), RunError> {
        let width = record.map_or(strong.num_qubits(), |(_, width)| width);
        let mut histogram = ShotHistogram::new(width);
        let StrongState::DecisionDiagram { package, state } = strong else {
            unreachable!("sampling is dispatched through StrongState::backend")
        };
        let precompute_start = Instant::now();
        // Compiled per call: cross-call reuse is the artifact layer's job
        // (`SimArtifact` / `ArtifactCache` own the long-lived arena), so the
        // strong state no longer carries a lazily-filled sampler cell.
        let sampler = CompiledSampler::new(package, state)?;
        let precompute_time = precompute_start.elapsed();

        // Draw in batches of a whole number of parallel chunks: stitching
        // consecutive `sample_batch_parallel` calls with advancing chunk
        // offsets reproduces one giant call exactly, while each allocation
        // stays comfortably inside `usize` even on 32-bit targets.
        const BATCH_CHUNKS: u64 = 1024;
        let batch_shots = BATCH_CHUNKS * PARALLEL_CHUNK_SHOTS as u64;
        let threads = rayon::current_num_threads();
        let sampling_start = Instant::now();
        let mut drawn = 0u64;
        while drawn < shots {
            let batch = (shots - drawn).min(batch_shots);
            // Infallible: `batch` is capped at BATCH_CHUNKS whole parallel
            // chunks, well inside usize on every target.
            #[allow(clippy::expect_used)]
            let batch_len = usize::try_from(batch).expect("batch bounded to fit usize");
            let samples = sampler.sample_batch_parallel(
                seed,
                drawn / PARALLEL_CHUNK_SHOTS as u64,
                batch_len,
                threads,
            );
            match record {
                None => histogram.record_many(&samples),
                Some((mapping, _)) => {
                    for sample in samples {
                        histogram.record(map_terminal_record(sample, mapping));
                    }
                }
            }
            drawn += batch;
        }
        Ok((histogram, precompute_time, sampling_start.elapsed()))
    }

    fn check_trajectory_memory(
        &self,
        _num_qubits: u16,
        _workers: usize,
        _budget: MemoryBudget,
    ) -> Result<(), RunError> {
        Ok(())
    }

    fn trajectory_runner<'p>(
        &self,
        plan: &'p TrajectoryPlan,
        governor: Governor,
    ) -> Result<Box<dyn TrajectoryRunner + 'p>, DdError> {
        Ok(Box::new(DdRunner::new(plan, governor)?))
    }
}

impl Engine for SvEngine {
    fn strong(
        &self,
        circuit: &Circuit,
        budget: MemoryBudget,
        _governor: &RunGovernor,
        _construction_threads: Option<usize>,
    ) -> Result<StrongState, RunError> {
        // Dense evolution has no construction worker pool; the knob is a
        // decision-diagram concept and is deliberately ignored here.
        let state = statevector::simulate_with_budget(circuit, budget)?;
        Ok(StrongState::StateVector(state))
    }

    fn sample_with_record(
        &self,
        strong: &StrongState,
        shots: u64,
        seed: u64,
        record: Option<(&[(Qubit, u16)], u16)>,
    ) -> Result<(ShotHistogram, Duration, Duration), RunError> {
        let width = record.map_or(strong.num_qubits(), |(_, width)| width);
        let mut histogram = ShotHistogram::new(width);
        let StrongState::StateVector(vector) = strong else {
            unreachable!("sampling is dispatched through StrongState::backend")
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let precompute_start = Instant::now();
        let sampler = PrefixSampler::new(vector);
        let precompute_time = precompute_start.elapsed();

        let sampling_start = Instant::now();
        for _ in 0..shots {
            let sample = sampler.sample(&mut rng);
            match record {
                None => histogram.record(sample),
                Some((mapping, _)) => {
                    histogram.record(map_terminal_record(sample, mapping));
                }
            }
        }
        Ok((histogram, precompute_time, sampling_start.elapsed()))
    }

    fn check_trajectory_memory(
        &self,
        num_qubits: u16,
        workers: usize,
        budget: MemoryBudget,
    ) -> Result<(), RunError> {
        // Each worker holds the shared base vector *plus* the per-shot clone
        // it evolves, so peak concurrent allocation is two vectors per
        // worker — account for all of them, not just one.
        let required = MemoryBudget::state_vector_bytes(num_qubits) * 2 * workers as u128;
        if !budget.allows(required) {
            return Err(RunError::MemoryOut {
                num_qubits,
                required_bytes: required,
            });
        }
        Ok(())
    }

    fn trajectory_runner<'p>(
        &self,
        plan: &'p TrajectoryPlan,
        _governor: Governor,
    ) -> Result<Box<dyn TrajectoryRunner + 'p>, DdError> {
        // Dense evolution is infallible (memory is pre-checked up front);
        // deadline and cancellation are honoured at chunk boundaries.
        Ok(Box::new(SvRunner::new(plan)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_tags_round_trip() {
        let circuit = algorithms::bell_pair();
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let state = backend
                .engine()
                .strong(
                    &circuit,
                    MemoryBudget::unlimited(),
                    &RunGovernor::unlimited(),
                    None,
                )
                .unwrap();
            assert_eq!(state.backend(), backend);
        }
    }

    #[test]
    fn dd_engine_ignores_the_dense_memory_budget() {
        let circuit = algorithms::ghz(12);
        let tight = MemoryBudget::from_bytes(64);
        let governor = RunGovernor::unlimited();
        assert!(Backend::DecisionDiagram
            .engine()
            .strong(&circuit, tight, &governor, None)
            .is_ok());
        assert!(matches!(
            Backend::StateVector
                .engine()
                .strong(&circuit, tight, &governor, None),
            Err(RunError::MemoryOut { .. })
        ));
    }

    #[test]
    fn trajectory_memory_check_scales_with_workers() {
        let sv = Backend::StateVector.engine();
        let one_vector = MemoryBudget::state_vector_bytes(10);
        // Two vectors per worker: a budget of exactly two allows one worker
        // but not two.
        let budget = MemoryBudget::from_bytes(u64::try_from(one_vector * 2).unwrap());
        assert!(sv.check_trajectory_memory(10, 1, budget).is_ok());
        assert!(matches!(
            sv.check_trajectory_memory(10, 2, budget),
            Err(RunError::MemoryOut { .. })
        ));
        // The decision-diagram engine never fails the dense pre-check.
        let dd = Backend::DecisionDiagram.engine();
        assert!(dd
            .check_trajectory_memory(50, 64, MemoryBudget::from_bytes(1))
            .is_ok());
    }
}

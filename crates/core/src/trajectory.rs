//! Per-shot trajectory simulation of *dynamic* circuits — circuits with
//! mid-circuit [`Operation::Measure`] / [`Operation::Reset`] operations,
//! whose state evolution depends on sampled outcomes — optionally under a
//! stochastic [`NoiseModel`] (noisy-hardware emulation).
//!
//! # How a trajectory runs
//!
//! The circuit is split once into *segments* of unitary operations separated
//! by non-unitary *events*: measurements, resets and — when a noise model is
//! attached — stochastic noise sites.  Each shot then walks the event list:
//! at every event the engine draws a *decision* with the shot's RNG (the
//! measured bit, or the Kraus branch of a noise channel), applies the
//! decision to the state (collapse, Pauli error, amplitude decay), and
//! applies the next unitary segment.  Measurement outcomes are recorded into
//! the classical register; circuits without any [`Operation::Measure`]
//! report a terminal measurement of every qubit instead, exactly like
//! static circuits.
//!
//! Classically-conditioned gates ([`Operation::Conditioned`], QASM
//! `if (c==k) gate;`) live *inside* the unitary segments: when a segment is
//! applied, each conditioned gate fires only if the shot's classical record
//! currently equals the compared value.  Conditioned *measurements* and
//! *resets* (`if (c==k) measure/reset`) are events carrying the guard: when
//! the guard is unsatisfied the event records the dedicated `SKIPPED`
//! decision — no RNG draw, no collapse — which is itself a deterministic
//! function of the outcome prefix, so both forms slot into the caching
//! below unchanged.
//!
//! # Noise insertion
//!
//! A [`NoiseModel`] attaches single-qubit channels to gate sites (after
//! every unitary operation, per touched qubit), to specific qubits, and to
//! read-outs (before each measurement).  The trajectory plan expands those
//! attachment points into explicit [`EventKind::Noise`] events.  Pauli
//! channels (bit flip, phase flip, depolarizing) draw their branch from
//! fixed probabilities; amplitude damping draws its decay branch from
//! `gamma * P(qubit = 1)` like a generalized measurement, decays via
//! collapse-and-flip and keeps via the `K0 = diag(1, sqrt(1-gamma))`
//! primitive of each backend.  Channels with zero strength insert no events
//! at all, so a `p = 0` model is **bit-identical** to the noiseless run.
//! Noise attached to a conditioned gate inherits the gate's guard: an idle
//! wire is noiseless.
//!
//! # Sharing work across shots (the decision-diagram backend)
//!
//! The reachable trajectories form a tree keyed by the per-shot **decision
//! sequence** — measurement outcomes and noise-branch choices interleaved in
//! plan order (plus the `SKIPPED` marker for guarded events that did not
//! fire).  The decision-diagram runner caches, per visited decision prefix,
//! the evolved [`StateDd`], the outcome masses of the next event, and — for
//! the terminal read-out — a [`CompiledSampler`] compiled from the leaf
//! state.  A shot that follows an already-visited prefix therefore does
//! **no** decision-diagram arithmetic at all: it is a sequence of
//! cached-probability draws followed by one compiled-arena sample walk.
//! Only the suffix behind a first-visited decision is simulated (and
//! compiled) anew, which is what keeps repeated sampling cheap: the
//! expensive work per distinct trajectory happens once, not once per shot.
//! Keying on the full decision sequence (not just measurement outcomes) is
//! what keeps the cache sound under noise: two shots reaching the same node
//! have made identical noise choices, so they hold identical states.  The
//! cache is capped at [`TRAJECTORY_CACHE_CAP`] prefixes; once the cap is
//! reached, the remainder of such a trajectory falls back to transient
//! (per-shot) evolution.
//!
//! The dense statevector runner keeps the shared unitary prefix (everything
//! before the first event) as a base state and re-evolves a clone of it per
//! shot, collapsing, damping and renormalizing in place.
//!
//! # Determinism
//!
//! Shots are partitioned into fixed chunks of
//! [`PARALLEL_CHUNK_SHOTS`](dd::PARALLEL_CHUNK_SHOTS) trajectories, and
//! chunk `i` draws all its randomness — measurement outcomes *and* noise
//! choices — from a dedicated [`SmallRng`] stream seeded with
//! [`dd::chunk_stream_seed`]`(master_seed, i)` — the exact scheme of
//! [`CompiledSampler::sample_many_parallel`](dd::CompiledSampler).  Worker
//! threads only decide *which* chunks they run (round-robin), never what a
//! chunk contains, and every decision probability is a deterministic
//! function of the decision prefix, so the recorded classical bits are
//! **bit-identical for a given master seed regardless of the thread count**
//! — noisy histograms included.
//!
//! One caveat bounds that guarantee: each worker owns a private
//! [`DdPackage`], and the package's complex-value table unifies values
//! within its tolerance (`1e-10`) to the first-inserted representative.  If
//! a circuit produces two *distinct* amplitudes closer than the tolerance
//! along different decision prefixes, workers that discover those prefixes
//! in different orders can canonicalize to different representatives,
//! shifting a branch probability by up to ~`1e-10` — and a uniform draw
//! landing inside that sliver would record the opposite bit.  For circuits
//! whose distinct amplitudes are separated by more than the tolerance
//! (every workload in this repository), the bit-exact guarantee holds.
//!
//! # Governance and interruption
//!
//! Runs launched through [`WeakSimulator`](crate::WeakSimulator) with a
//! limited [`RunGovernor`](crate::RunGovernor) are governed end to end:
//! every worker package checks its node/byte budget at allocation sites and
//! the deadline/token at amortized checkpoints, and every worker —
//! including the dense statevector backend, whose per-shot arithmetic is
//! otherwise ungoverned — probes the deadline and the cancellation token at
//! chunk boundaries.  An interrupted run is *not* an error: the merged
//! histogram keeps every completed shot and
//! [`TrajectoryOutcome::interruption`] carries the typed reason, so callers
//! can distinguish "finished", "out of budget after N shots" and
//! "cancelled after N shots" without losing the work already done.

use crate::backend::TrajectoryRunner;
use crate::govern::{Interruption, RunGovernor};
use crate::simulator::{Backend, RunError};
use crate::ShotHistogram;
use circuit::{Circuit, Condition, NoiseChannel, NoiseModel, Operation, Qubit};
use dd::{
    chunk_stream_seed, CompiledSampler, DdError, DdPackage, DdStats, Governor, StateDd, VectorEdge,
    PARALLEL_CHUNK_SHOTS,
};
use mathkit::FxHashMap;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use statevector::{MemoryBudget, StateVector};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Maximum number of decision prefixes the decision-diagram runner caches
/// (states, outcome masses and compiled leaf samplers).  Trajectories beyond
/// the cap are evolved transiently per shot.
pub const TRAJECTORY_CACHE_CAP: usize = 4096;

/// Allocated-node threshold above which a trajectory runner garbage-collects
/// its package between shots, keeping only the cached prefix states alive.
const GC_NODE_THRESHOLD: usize = 500_000;

/// The decision recorded when a guarded event's condition was unsatisfied:
/// the event did not fire, so no RNG draw was consumed and the state passed
/// through unchanged.  Sits one past the widest real branch fan-out
/// (depolarizing: branches 0..=3).
const SKIPPED: u8 = 4;

/// Number of decision slots per cached prefix node: up to four Kraus
/// branches plus [`SKIPPED`].
const MAX_DECISIONS: usize = 5;

/// The result of a trajectory simulation.
#[derive(Debug)]
pub struct TrajectoryOutcome {
    /// Aggregated per-shot records: classical-register values when the
    /// circuit contains measurements, terminal full-register measurements
    /// otherwise.
    pub histogram: ShotHistogram,
    /// Time spent building the trajectory plan and the shared prefix state.
    pub precompute_time: Duration,
    /// Time spent running the trajectories (including per-worker runner
    /// construction, which re-derives the shared prefix in each worker's
    /// private arena).
    pub sampling_time: Duration,
    /// Peak decision-diagram node count observed among cached trajectory
    /// states (or the dense amplitude count for the statevector backend).
    pub representation_size: u128,
    /// Aggregated decision-diagram package statistics (unique-table and
    /// compute-cache hit/miss/eviction counters summed over all workers);
    /// `None` for the statevector backend.
    pub dd_stats: Option<DdStats>,
    /// Set when a governed run was interrupted (budget, deadline or
    /// cancellation): the histogram then holds only the shots that completed
    /// before the interruption.  `None` for runs that finished every shot.
    pub interruption: Option<Interruption>,
}

/// What a non-unitary event does to the state.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EventKind {
    /// Measure `qubit` into classical bit `cbit`.
    Measure { qubit: Qubit, cbit: u16 },
    /// Reset `qubit` to `|0>`.
    Reset { qubit: Qubit },
    /// A stochastic noise site: realize one Kraus branch of `channel` on
    /// `qubit`.
    Noise { qubit: Qubit, channel: NoiseChannel },
}

impl EventKind {
    fn qubit(self) -> Qubit {
        match self {
            EventKind::Measure { qubit, .. }
            | EventKind::Reset { qubit }
            | EventKind::Noise { qubit, .. } => qubit,
        }
    }

    /// Whether drawing this event's decision needs `P(qubit = 1)` (and
    /// therefore, on the decision-diagram backend, the projected branch
    /// masses).  Pauli noise draws from fixed probabilities instead.
    fn needs_state_probability(self) -> bool {
        match self {
            EventKind::Measure { .. } | EventKind::Reset { .. } => true,
            EventKind::Noise { channel, .. } => !channel.is_state_independent(),
        }
    }
}

/// A non-unitary event splitting two unitary segments, optionally guarded by
/// a classical condition (`if (c==k) measure/reset;`, or noise inherited
/// from a conditioned gate site).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    kind: EventKind,
    condition: Option<Condition>,
    /// Precomputed cumulative error-branch thresholds of a state-independent
    /// channel: branch `i` (1-based) fires when `r < thresholds[i - 1]` and
    /// no earlier threshold matched; branch 0 otherwise.  `None` when the
    /// draw depends on the state (measure, reset, amplitude damping).
    ///
    /// Precomputing this at planning time keeps the per-shot hot loop free
    /// of the channel match and probability summation — the draw is three
    /// float compares.
    thresholds: Option<[f64; 3]>,
}

impl Event {
    fn new(kind: EventKind, condition: Option<Condition>) -> Self {
        let thresholds = match kind {
            // The running sums replicate the former per-draw accumulation
            // bit-for-bit, so recorded histograms are unchanged.
            EventKind::Noise { channel, .. } => channel.branch_probabilities().map(|p| {
                let t1 = p[1];
                let t2 = t1 + p[2];
                let t3 = t2 + p[3];
                [t1, t2, t3]
            }),
            _ => None,
        };
        Self {
            kind,
            condition,
            thresholds,
        }
    }

    /// Whether the event fires under the shot's current classical record.
    fn fires(&self, record: u64) -> bool {
        self.condition.is_none_or(|c| c.is_satisfied_by(record))
    }
}

/// Writes `bit` into position `cbit` of a classical record, overwriting any
/// earlier value of that bit (shared by both runners and the terminal
/// relabelling in the simulator front end).
pub(crate) fn record_bit(record: u64, cbit: u16, bit: u8) -> u64 {
    (record & !(1u64 << cbit)) | (u64::from(bit) << cbit)
}

/// The uncontrolled X used to flip a qubit back to `|0>` after a reset (or
/// an amplitude-damping decay) collapsed it to `|1>` (the measure-and-flip
/// decomposition, shared by both runners).
fn x_flip(qubit: Qubit) -> Operation {
    Operation::Unitary {
        gate: circuit::OneQubitGate::X,
        target: qubit,
        controls: Vec::new(),
    }
}

/// The uncontrolled Pauli error applied by a noise branch.
fn pauli_error(gate: circuit::OneQubitGate, qubit: Qubit) -> Operation {
    Operation::Unitary {
        gate,
        target: qubit,
        controls: Vec::new(),
    }
}

/// Resolves what a segment entry applies under the shot's current classical
/// record: a classically-conditioned operation fires only when the record
/// equals the compared value, everything else fires unconditionally.
///
/// The record is a deterministic function of the decision prefix (each
/// firing `Measure` event writes its drawn bit), so on the decision-diagram
/// path a cached prefix node always resolves its conditions the same way —
/// caching evolved states per prefix stays sound with feed-forward in the
/// segments.
fn effective_op(op: &Operation, record: u64) -> Option<&Operation> {
    match op {
        Operation::Conditioned { condition, op } => {
            condition.is_satisfied_by(record).then(|| op.as_ref())
        }
        other => Some(other),
    }
}

/// Draws the decision index for a *firing* event: the measured bit for
/// measure/reset events, the Kraus-branch index for noise events.  `p_one`
/// is `P(qubit = 1)` of the event's qubit, consulted only by the
/// state-dependent draws (measure, reset, amplitude damping) — callers pass
/// any value for Pauli noise, which never reads it.
///
/// Error branches occupy the *low* end of the unit interval, mirroring the
/// `r < p_one` convention of measurement draws, so the mapping from uniform
/// variates to decisions is identical on both backends.  State-independent
/// channels draw against the thresholds precomputed in [`Event::new`] —
/// three float compares, no per-shot probability summation.
fn draw_decision(event: Event, p_one: f64, rng: &mut SmallRng) -> u8 {
    if let Some(t) = event.thresholds {
        let r = rng.gen::<f64>();
        return if r < t[0] {
            1
        } else if r < t[1] {
            2
        } else if r < t[2] {
            3
        } else {
            0
        };
    }
    match event.kind {
        EventKind::Measure { .. } | EventKind::Reset { .. } => u8::from(rng.gen::<f64>() < p_one),
        // State-dependent channel: amplitude damping decays with
        // probability gamma * P(qubit = 1).
        EventKind::Noise { channel, .. } => {
            let NoiseChannel::AmplitudeDamping { gamma } = channel else {
                unreachable!("only amplitude damping is state-dependent")
            };
            u8::from(rng.gen::<f64>() < gamma * p_one)
        }
    }
}

/// What a shot reports into the histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecordSource {
    /// The classical register written by `Measure` events.
    Classical,
    /// A terminal measurement of every qubit (no `Measure` in the circuit).
    FinalMeasurement,
}

/// The segmented form of a dynamic circuit, shared by every runner.
#[derive(Debug)]
pub(crate) struct TrajectoryPlan {
    num_qubits: u16,
    /// Bit width of the per-shot record.
    record_width: u16,
    record: RecordSource,
    /// `events.len() + 1` unitary segments; `segments[i]` precedes
    /// `events[i]`, the last segment is the tail after the final event.
    segments: Vec<Vec<Operation>>,
    events: Vec<Event>,
}

impl TrajectoryPlan {
    fn new(circuit: &Circuit, noise: Option<&NoiseModel>) -> Self {
        let mut segments = vec![Vec::new()];
        let mut events = Vec::new();
        fn push_event(events: &mut Vec<Event>, segments: &mut Vec<Vec<Operation>>, e: Event) {
            events.push(e);
            segments.push(Vec::new());
        }
        for op in circuit.operations() {
            // A conditioned measure/reset is an event carrying the guard; a
            // conditioned gate stays in the segment (resolved at application
            // time) and its noise sites inherit the guard.
            let (condition, inner) = match op {
                Operation::Conditioned { condition, op } => (Some(*condition), op.as_ref()),
                other => (None, other),
            };
            match inner {
                Operation::Measure { qubit, cbit } => {
                    if let Some(noise) = noise {
                        for channel in noise.channels_before_measurement(*qubit) {
                            push_event(
                                &mut events,
                                &mut segments,
                                Event::new(
                                    EventKind::Noise {
                                        qubit: *qubit,
                                        channel,
                                    },
                                    condition,
                                ),
                            );
                        }
                    }
                    push_event(
                        &mut events,
                        &mut segments,
                        Event::new(
                            EventKind::Measure {
                                qubit: *qubit,
                                cbit: *cbit,
                            },
                            condition,
                        ),
                    );
                }
                Operation::Reset { qubit } => {
                    push_event(
                        &mut events,
                        &mut segments,
                        Event::new(EventKind::Reset { qubit: *qubit }, condition),
                    );
                }
                // Unitary gates, including classically-conditioned ones
                // (resolved against the record at application time).
                _gate => {
                    // Infallible: `segments` starts with one element and
                    // only ever grows.
                    #[allow(clippy::expect_used)]
                    segments
                        .last_mut()
                        .expect("segments is never empty")
                        .push(op.clone());
                    if let Some(noise) = noise {
                        for qubit in inner.support() {
                            for channel in noise.channels_after_gate(qubit) {
                                push_event(
                                    &mut events,
                                    &mut segments,
                                    Event::new(EventKind::Noise { qubit, channel }, condition),
                                );
                            }
                        }
                    }
                }
            }
        }
        let record = if circuit.has_measurements() {
            RecordSource::Classical
        } else {
            RecordSource::FinalMeasurement
        };
        Self {
            num_qubits: circuit.num_qubits(),
            record_width: match record {
                RecordSource::Classical => circuit.num_clbits(),
                RecordSource::FinalMeasurement => circuit.num_qubits(),
            },
            record,
            segments,
            events,
        }
    }

    /// Whether the unitary tail after the last event can affect the record.
    /// Classical records are fixed once the last event has fired, so the
    /// tail segment is skipped entirely.
    fn tail_matters(&self) -> bool {
        self.record == RecordSource::FinalMeasurement
    }
}

/// Runs one trajectory through `runner` — the single shot loop shared by
/// every engine: walk the event list, draw a decision per firing event
/// (consulting the runner for `P(qubit = 1)` where the draw is
/// state-dependent), record measured bits into the classical record, advance
/// the runner past the event, and read out the terminal record.  Returns the
/// shot's record — or the governed failure that interrupted it (budget,
/// deadline, cancellation).  A failed shot records nothing; the runner
/// remains usable.
fn run_shot(
    runner: &mut dyn TrajectoryRunner,
    plan: &TrajectoryPlan,
    rng: &mut SmallRng,
) -> Result<u64, DdError> {
    runner.begin_shot();
    let mut record = 0u64;
    for (k, &event) in plan.events.iter().enumerate() {
        let decision = if event.fires(record) {
            let p_one = if event.kind.needs_state_probability() {
                runner.p_one(event.kind.qubit())?
            } else {
                0.0
            };
            draw_decision(event, p_one, rng)
        } else {
            SKIPPED
        };
        if let EventKind::Measure { cbit, .. } = event.kind {
            if decision != SKIPPED {
                record = record_bit(record, cbit, decision);
            }
        }

        // A classical record is complete once the last event's bit is drawn:
        // skip the collapse (and any caching) whose result nobody reads.
        if k + 1 == plan.events.len() && !plan.tail_matters() {
            break;
        }
        runner.advance(k, event, decision, record)?;
    }
    match plan.record {
        RecordSource::Classical => Ok(record),
        RecordSource::FinalMeasurement => runner.terminal_sample(rng),
    }
}

/// A cached decision-prefix node of the decision-diagram trajectory tree.
#[derive(Debug)]
struct CacheNode {
    /// State after consuming the prefix and applying the following segment.
    state: StateDd,
    /// Projected masses of the next event's qubit, filled on first use by
    /// events that draw from the state (measure, reset, amplitude damping).
    masses: Option<[f64; 2]>,
    /// Cache ids of the child reached by each decision (the measured bit,
    /// the Kraus branch, or [`SKIPPED`]).
    children: [Option<u32>; MAX_DECISIONS],
    /// Compiled terminal sampler (leaves under `FinalMeasurement` only).
    sampler: Option<CompiledSampler>,
}

impl CacheNode {
    fn new(state: StateDd) -> Self {
        Self {
            state,
            masses: None,
            children: [None; MAX_DECISIONS],
            sampler: None,
        }
    }
}

/// The decision-diagram trajectory runner.
pub(crate) struct DdRunner<'p> {
    plan: &'p TrajectoryPlan,
    package: DdPackage,
    nodes: Vec<CacheNode>,
    /// Cache node tracking the current shot's decision prefix; `None` once
    /// the shot has fallen off the cache.
    at: Option<u32>,
    /// The current shot's evolved state.
    state: StateDd,
    /// Compiled samplers for *off-cache* (transient) leaves, keyed by the
    /// leaf state's root edge.  Compilation is deterministic, so memoizing
    /// only changes cost, never sampled values — without it every off-cache
    /// shot would pay a full `O(node count)` compilation for one sample.
    /// Cleared on garbage collection (node ids are remapped) and when it
    /// reaches [`TRAJECTORY_CACHE_CAP`] entries.
    transient_samplers: FxHashMap<VectorEdge, CompiledSampler>,
    peak_nodes: usize,
}

impl<'p> DdRunner<'p> {
    /// Builds the worker's package (under `governor`) and the shared prefix
    /// state.  Fails when the governor interrupts the prefix construction —
    /// before any shot has run.
    pub(crate) fn new(plan: &'p TrajectoryPlan, governor: Governor) -> Result<Self, DdError> {
        let mut package = DdPackage::new();
        package.set_governor(governor);
        let mut state = StateDd::zero_state(&mut package, plan.num_qubits)?;
        // The classical record is all-zeros before the first event, so
        // conditions in the shared leading segment resolve against 0.
        for op in plan.segments[0].iter().filter_map(|op| effective_op(op, 0)) {
            state = dd::apply_operation(&mut package, state, op)?;
        }
        let peak_nodes = state.node_count(&package);
        Ok(Self {
            plan,
            package,
            nodes: vec![CacheNode::new(state)],
            at: Some(0),
            state,
            transient_samplers: FxHashMap::default(),
            peak_nodes,
        })
    }

    /// The projected masses of `qubit` at the current position — cached on
    /// the prefix node when the shot is on-cache, recomputed otherwise.
    fn masses(
        &mut self,
        at: Option<u32>,
        state: &StateDd,
        qubit: Qubit,
    ) -> Result<[f64; 2], DdError> {
        match at {
            Some(id) => {
                let id = id as usize;
                if let Some(m) = self.nodes[id].masses {
                    return Ok(m);
                }
                let m = dd::branch_masses(&mut self.package, state, qubit)?;
                self.nodes[id].masses = Some(m);
                Ok(m)
            }
            None => dd::branch_masses(&mut self.package, state, qubit),
        }
    }

    /// Evolves past `event` with the drawn `decision`: collapse / error /
    /// decay (nothing for [`SKIPPED`]), then apply the unitary segment that
    /// follows, resolving classical conditions against `record` (the
    /// classical register *after* this event's bit, if any, was written).
    /// (For classical records the caller breaks out before the final event's
    /// evolution, so the irrelevant tail segment is never applied.)
    fn evolve(
        &mut self,
        state: &StateDd,
        event: Event,
        decision: u8,
        next_segment: usize,
        record: u64,
    ) -> Result<StateDd, DdError> {
        let mut next = if decision == SKIPPED {
            *state
        } else {
            match event.kind {
                EventKind::Measure { qubit, .. } => {
                    dd::collapse_qubit(&mut self.package, state, qubit, decision)?
                }
                EventKind::Reset { qubit } => {
                    let mut collapsed =
                        dd::collapse_qubit(&mut self.package, state, qubit, decision)?;
                    if decision == 1 {
                        collapsed =
                            dd::apply_operation(&mut self.package, collapsed, &x_flip(qubit))?;
                    }
                    collapsed
                }
                EventKind::Noise { qubit, channel } => match channel {
                    NoiseChannel::AmplitudeDamping { gamma } => {
                        if decision == 0 {
                            dd::amplitude_damp_keep(&mut self.package, state, qubit, gamma)?
                        } else {
                            // Decay: collapse to |1>, then flip to |0> —
                            // K1 = sqrt(gamma) |0><1| up to normalization.
                            let collapsed = dd::collapse_qubit(&mut self.package, state, qubit, 1)?;
                            dd::apply_operation(&mut self.package, collapsed, &x_flip(qubit))?
                        }
                    }
                    _ => match channel.branch_gate(decision) {
                        None => *state,
                        Some(gate) => dd::apply_operation(
                            &mut self.package,
                            *state,
                            &pauli_error(gate, qubit),
                        )?,
                    },
                },
            }
        };
        for op in self.plan.segments[next_segment]
            .iter()
            .filter_map(|op| effective_op(op, record))
        {
            next = dd::apply_operation(&mut self.package, next, op)?;
        }
        Ok(next)
    }
}

impl TrajectoryRunner for DdRunner<'_> {
    fn begin_shot(&mut self) {
        self.at = Some(0);
        self.state = self.nodes[0].state;
    }

    fn p_one(&mut self, qubit: Qubit) -> Result<f64, DdError> {
        let state = self.state;
        let masses = self.masses(self.at, &state, qubit)?;
        let total = masses[0] + masses[1];
        assert!(total > 0.0, "trajectory reached a zero-mass state");
        Ok(masses[1] / total)
    }

    fn advance(
        &mut self,
        k: usize,
        event: Event,
        decision: u8,
        record: u64,
    ) -> Result<(), DdError> {
        let cached_child = self
            .at
            .and_then(|id| self.nodes[id as usize].children[decision as usize]);
        match cached_child {
            Some(child) => {
                self.state = self.nodes[child as usize].state;
                self.at = Some(child);
            }
            None => {
                let state = self.state;
                let next = self.evolve(&state, event, decision, k + 1, record)?;
                if let Some(parent) = self.at {
                    if self.nodes.len() < TRAJECTORY_CACHE_CAP {
                        // Infallible: the cache is capped at
                        // TRAJECTORY_CACHE_CAP (4096) entries.
                        #[allow(clippy::expect_used)]
                        let id = u32::try_from(self.nodes.len()).expect("cache cap fits in u32");
                        self.peak_nodes = self.peak_nodes.max(next.node_count(&self.package));
                        self.nodes.push(CacheNode::new(next));
                        self.nodes[parent as usize].children[decision as usize] = Some(id);
                        self.at = Some(id);
                    } else {
                        self.at = None;
                    }
                }
                self.state = next;
            }
        }
        Ok(())
    }

    fn terminal_sample(&mut self, rng: &mut SmallRng) -> Result<u64, DdError> {
        match self.at {
            Some(id) => {
                let id = id as usize;
                if let Some(sampler) = &self.nodes[id].sampler {
                    return Ok(sampler.sample(rng));
                }
                let sampler = CompiledSampler::new(&self.package, &self.state)?;
                let sample = sampler.sample(rng);
                self.nodes[id].sampler = Some(sampler);
                Ok(sample)
            }
            None => {
                let root = self.state.root();
                if !self.transient_samplers.contains_key(&root) {
                    if self.transient_samplers.len() >= TRAJECTORY_CACHE_CAP {
                        self.transient_samplers.clear();
                    }
                    let sampler = CompiledSampler::new(&self.package, &self.state)?;
                    self.transient_samplers.insert(root, sampler);
                }
                Ok(self.transient_samplers[&root].sample(rng))
            }
        }
    }

    fn end_of_chunk(&mut self) {
        // Transient (off-cache) trajectory states accumulate garbage in the
        // arena; sweep it while only the cached prefix states are alive.
        if self.package.allocated_vector_nodes() <= GC_NODE_THRESHOLD {
            return;
        }
        let roots: Vec<_> = self.nodes.iter().map(|n| n.state.root()).collect();
        let remapped = self.package.collect_garbage(&roots);
        for (node, root) in self.nodes.iter_mut().zip(remapped) {
            node.state = StateDd::from_root(root, node.state.num_qubits());
        }
        // Node ids were remapped, so the root-edge keys of the transient
        // sampler memo no longer identify the same states.
        self.transient_samplers.clear();
    }

    fn representation_size(&self) -> u128 {
        self.peak_nodes as u128
    }

    fn dd_stats(&self) -> Option<DdStats> {
        Some(self.package.stats())
    }
}

/// The dense statevector trajectory runner.
pub(crate) struct SvRunner<'p> {
    plan: &'p TrajectoryPlan,
    /// The shared unitary prefix (`segments[0]`) applied to `|0...0>`.
    base: StateVector,
    /// `base`'s squared norm, computed once: the first state-dependent event
    /// of every shot normalizes its outcome probabilities by it, and each
    /// collapse or damping renormalizes to exactly 1, so no per-event
    /// `O(2^n)` norm sweep is needed.
    base_norm_sqr: f64,
    /// The per-shot working state, reset from `base` at the start of every
    /// shot — one persistent allocation instead of a fresh `2^n` vector per
    /// trajectory.
    scratch: StateVector,
    /// `scratch`'s squared norm (drops to exactly 1 after the first collapse
    /// or damping of a shot).
    norm_sqr: f64,
}

impl<'p> SvRunner<'p> {
    pub(crate) fn new(plan: &'p TrajectoryPlan) -> Self {
        let mut base = StateVector::zero_state(plan.num_qubits);
        // Conditions in the shared leading segment resolve against the
        // all-zeros classical record, same as the DD runner.
        for op in plan.segments[0].iter().filter_map(|op| effective_op(op, 0)) {
            statevector::apply_operation(&mut base, op);
        }
        let base_norm_sqr = base.norm_sqr();
        let scratch = base.clone();
        Self {
            plan,
            base,
            base_norm_sqr,
            scratch,
            norm_sqr: base_norm_sqr,
        }
    }
}

/// Draws one terminal full-register sample by a linear scan of the
/// amplitudes (thresholded against the state's actual norm, so drifted
/// norms do not bias the draw).
fn sample_state_once(state: &StateVector, rng: &mut SmallRng) -> u64 {
    let threshold = rng.gen::<f64>() * state.norm_sqr();
    let mut running = 0.0;
    // The threshold uses the compensated norm while the scan accumulates
    // naively, so rounding can leave `running` below the threshold after
    // the full sweep; fall back to the last *possible* outcome, never to a
    // zero-amplitude index.
    let mut last_nonzero = 0u64;
    for (i, amp) in state.amplitudes().iter().enumerate() {
        let p = amp.norm_sqr();
        if p > 0.0 {
            last_nonzero = i as u64;
        }
        running += p;
        if running > threshold {
            return i as u64;
        }
    }
    last_nonzero
}

impl TrajectoryRunner for SvRunner<'_> {
    // Dense evolution is infallible (memory is pre-checked up front);
    // deadline and cancellation are honoured at chunk boundaries instead.
    fn begin_shot(&mut self) {
        self.scratch.copy_from(&self.base);
        self.norm_sqr = self.base_norm_sqr;
    }

    fn p_one(&mut self, qubit: Qubit) -> Result<f64, DdError> {
        Ok(self.scratch.marginal_one_probability(qubit.0) / self.norm_sqr)
    }

    fn advance(
        &mut self,
        k: usize,
        event: Event,
        decision: u8,
        record: u64,
    ) -> Result<(), DdError> {
        let qubit = event.kind.qubit().0;
        if decision != SKIPPED {
            match event.kind {
                EventKind::Measure { .. } => {
                    self.scratch.collapse_qubit(qubit, decision);
                    self.norm_sqr = 1.0;
                }
                EventKind::Reset { .. } => {
                    self.scratch.collapse_qubit(qubit, decision);
                    self.norm_sqr = 1.0;
                    if decision == 1 {
                        statevector::apply_operation(
                            &mut self.scratch,
                            &x_flip(event.kind.qubit()),
                        );
                    }
                }
                EventKind::Noise { channel, .. } => match channel {
                    NoiseChannel::AmplitudeDamping { gamma } => {
                        if decision == 0 {
                            self.scratch.damp_qubit_keep(qubit, gamma);
                        } else {
                            self.scratch.collapse_qubit(qubit, 1);
                            statevector::apply_operation(
                                &mut self.scratch,
                                &x_flip(event.kind.qubit()),
                            );
                        }
                        self.norm_sqr = 1.0;
                    }
                    _ => {
                        if let Some(gate) = channel.branch_gate(decision) {
                            statevector::apply_operation(
                                &mut self.scratch,
                                &pauli_error(gate, event.kind.qubit()),
                            );
                        }
                    }
                },
            }
        }
        for op in self.plan.segments[k + 1]
            .iter()
            .filter_map(|op| effective_op(op, record))
        {
            statevector::apply_operation(&mut self.scratch, op);
        }
        Ok(())
    }

    fn terminal_sample(&mut self, rng: &mut SmallRng) -> Result<u64, DdError> {
        Ok(sample_state_once(&self.scratch, rng))
    }

    fn representation_size(&self) -> u128 {
        self.base.len() as u128
    }
}

/// One worker's partial result: its histogram, peak representation size,
/// package statistics, completed-shot count, and the governed failure that
/// stopped it early, if any.
type WorkerResult = (ShotHistogram, u128, Option<DdStats>, u64, Option<DdError>);

/// Builds the backend-specific runner for one worker and runs its assigned
/// chunks, returning the worker's histogram and peak representation size.
/// Both the single-worker fast path and every spawned worker go through
/// here, so the two paths cannot drift apart.
///
/// `governor` is this worker's armed governor clone (fresh checkpoint
/// counter, shared deadline and token); `stop` is the run-wide flag a
/// failing worker raises so its peers wind down at their next chunk
/// boundary instead of burning the remaining budget.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    backend: Backend,
    plan: &TrajectoryPlan,
    shots: u64,
    seed: u64,
    first: u64,
    stride: u64,
    governor: &Governor,
    stop: &AtomicBool,
) -> WorkerResult {
    let mut runner = match backend.engine().trajectory_runner(plan, governor.clone()) {
        Ok(runner) => runner,
        Err(e) => {
            stop.store(true, Ordering::Relaxed);
            return (ShotHistogram::new(plan.record_width), 0, None, 0, Some(e));
        }
    };
    let (h, completed, error) = run_assigned_chunks(
        runner.as_mut(),
        plan,
        shots,
        seed,
        first,
        stride,
        governor,
        stop,
    );
    (
        h,
        runner.representation_size(),
        runner.dd_stats(),
        completed,
        error,
    )
}

/// Runs all chunks assigned to one worker: chunk indices `first, first +
/// stride, ...` below `total_chunks`, each drawn from its own
/// [`chunk_stream_seed`]-derived RNG stream.
///
/// Every chunk boundary probes the deadline and the cancellation token
/// directly (so even backends whose per-shot work is ungoverned — the dense
/// runner — honour them) and the run-wide `stop` flag.  A shot interrupted
/// mid-flight records nothing: the histogram holds completed shots only.
#[allow(clippy::too_many_arguments)]
fn run_assigned_chunks(
    runner: &mut dyn TrajectoryRunner,
    plan: &TrajectoryPlan,
    shots: u64,
    seed: u64,
    first: u64,
    stride: u64,
    governor: &Governor,
    stop: &AtomicBool,
) -> (ShotHistogram, u64, Option<DdError>) {
    let chunk_len = PARALLEL_CHUNK_SHOTS as u64;
    let total_chunks = shots.div_ceil(chunk_len);
    let mut histogram = ShotHistogram::new(plan.record_width);
    let mut completed = 0u64;
    let mut error = None;
    let mut chunk_index = first;
    'chunks: while chunk_index < total_chunks {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if let Err(e) = governor.check_now() {
            stop.store(true, Ordering::Relaxed);
            error = Some(e);
            break;
        }
        let chunk_shots = chunk_len.min(shots - chunk_index * chunk_len);
        let mut rng = SmallRng::seed_from_u64(chunk_stream_seed(seed, chunk_index));
        for _ in 0..chunk_shots {
            match run_shot(runner, plan, &mut rng) {
                Ok(record) => {
                    histogram.record(record);
                    completed += 1;
                }
                Err(e) => {
                    stop.store(true, Ordering::Relaxed);
                    error = Some(e);
                    break 'chunks;
                }
            }
        }
        runner.end_of_chunk();
        chunk_index += stride;
    }
    (histogram, completed, error)
}

/// Simulates `shots` trajectories of a dynamic circuit on `backend`, using
/// every available worker thread (see [`rayon::current_num_threads`]).
///
/// The histogram records classical-register values when the circuit
/// contains measurements, and terminal full-register measurements otherwise
/// (e.g. for circuits that only contain resets).  The output is
/// bit-identical for a given `seed` regardless of the thread count; see the
/// [module docs](self) for the seeding scheme.
///
/// Static circuits are accepted too (the plan degenerates to one segment),
/// but [`WeakSimulator::run`](crate::WeakSimulator::run) routes them through
/// the cheaper one-pass compiled sampler instead.
///
/// # Errors
///
/// Returns [`RunError::InvalidCircuit`] for malformed circuits.  These
/// entry points run with an unlimited memory budget; to enforce a budget on
/// the dense backend (and get [`RunError::MemoryOut`] instead of an
/// allocation failure), go through
/// [`WeakSimulator::run`](crate::WeakSimulator::run) with
/// [`with_memory_budget`](crate::WeakSimulator::with_memory_budget).
pub fn simulate_trajectories(
    backend: Backend,
    circuit: &Circuit,
    shots: u64,
    seed: u64,
) -> Result<TrajectoryOutcome, RunError> {
    simulate_trajectories_with_threads(backend, circuit, shots, seed, rayon::current_num_threads())
}

/// [`simulate_trajectories`] with an explicit worker count (primarily for
/// determinism tests and scaling measurements).
///
/// # Errors
///
/// See [`simulate_trajectories`].
pub fn simulate_trajectories_with_threads(
    backend: Backend,
    circuit: &Circuit,
    shots: u64,
    seed: u64,
    threads: usize,
) -> Result<TrajectoryOutcome, RunError> {
    run_trajectories(
        backend,
        circuit,
        None,
        shots,
        seed,
        threads,
        MemoryBudget::unlimited(),
        &RunGovernor::unlimited(),
    )
}

/// Simulates `shots` noisy trajectories of `circuit` under `noise` — every
/// shot realizes each noise site as a random Kraus branch — on every
/// available worker thread.
///
/// Noisy histograms are seed-deterministic and bit-identical across thread
/// counts, exactly like noiseless trajectory runs; a model whose channels
/// all have zero strength produces output bit-identical to
/// [`simulate_trajectories`] with the same seed.
///
/// # Errors
///
/// Returns [`RunError::InvalidCircuit`] for malformed circuits and
/// [`RunError::InvalidNoise`] for malformed noise models (a parameter
/// outside `[0, 1]`, or a qubit-specific channel outside the circuit).
pub fn simulate_noisy_trajectories(
    backend: Backend,
    circuit: &Circuit,
    noise: &NoiseModel,
    shots: u64,
    seed: u64,
) -> Result<TrajectoryOutcome, RunError> {
    simulate_noisy_trajectories_with_threads(
        backend,
        circuit,
        noise,
        shots,
        seed,
        rayon::current_num_threads(),
    )
}

/// [`simulate_noisy_trajectories`] with an explicit worker count (primarily
/// for determinism tests and scaling measurements).
///
/// # Errors
///
/// See [`simulate_noisy_trajectories`].
pub fn simulate_noisy_trajectories_with_threads(
    backend: Backend,
    circuit: &Circuit,
    noise: &NoiseModel,
    shots: u64,
    seed: u64,
    threads: usize,
) -> Result<TrajectoryOutcome, RunError> {
    run_trajectories(
        backend,
        circuit,
        Some(noise),
        shots,
        seed,
        threads,
        MemoryBudget::unlimited(),
        &RunGovernor::unlimited(),
    )
}

/// The full-parameter trajectory entry point used by [`WeakSimulator`]
/// (crate-internal so the public surface stays small).
///
/// The governor is armed once here — every worker gets a clone sharing the
/// deadline and the cancellation token.  When a worker is interrupted it
/// raises a run-wide stop flag; the merged outcome then carries an
/// [`Interruption`] with the total completed shots, rather than an error —
/// partial histograms are real results.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_trajectories(
    backend: Backend,
    circuit: &Circuit,
    noise: Option<&NoiseModel>,
    shots: u64,
    seed: u64,
    threads: usize,
    budget: MemoryBudget,
    governor: &RunGovernor,
) -> Result<TrajectoryOutcome, RunError> {
    circuit.validate().map_err(RunError::InvalidCircuit)?;
    if let Some(model) = noise {
        model
            .validate_for(circuit.num_qubits())
            .map_err(RunError::InvalidNoise)?;
    }

    let chunk_len = PARALLEL_CHUNK_SHOTS as u64;
    let total_chunks = shots.div_ceil(chunk_len);
    let workers = threads
        .max(1)
        .min(usize::try_from(total_chunks).unwrap_or(usize::MAX))
        .max(1);

    backend
        .engine()
        .check_trajectory_memory(circuit.num_qubits(), workers, budget)?;

    let precompute_start = Instant::now();
    let plan = TrajectoryPlan::new(circuit, noise);
    let precompute_time = precompute_start.elapsed();

    let armed = governor.arm();
    let stop = AtomicBool::new(false);
    let sampling_start = Instant::now();
    let (histogram, representation_size, dd_stats, completed_shots, error) = if workers == 1 {
        run_worker(backend, &plan, shots, seed, 0, 1, &armed, &stop)
    } else {
        let mut slots: Vec<Option<WorkerResult>> = (0..workers).map(|_| None).collect();
        rayon::scope(|scope| {
            for (worker, slot) in slots.iter_mut().enumerate() {
                let plan = &plan;
                let armed = &armed;
                let stop = &stop;
                scope.spawn(move || {
                    *slot = Some(run_worker(
                        backend,
                        plan,
                        shots,
                        seed,
                        worker as u64,
                        workers as u64,
                        armed,
                        stop,
                    ));
                });
            }
        });
        let mut histogram = ShotHistogram::new(plan.record_width);
        let mut size = 0u128;
        let mut dd_stats: Option<DdStats> = None;
        let mut completed = 0u64;
        let mut error: Option<DdError> = None;
        for slot in slots {
            // Infallible: rayon::scope joins every spawned worker before
            // returning, so each slot has been filled.
            #[allow(clippy::expect_used)]
            let (h, s, stats, c, e) = slot.expect("worker ran to completion");
            histogram.merge(&h);
            size = size.max(s);
            completed += c;
            if let Some(stats) = stats {
                dd_stats.get_or_insert_with(DdStats::default).merge(&stats);
            }
            // Keep the lowest-indexed worker's failure: with a shared cause
            // (one deadline, one token) every reason is equivalent, and this
            // choice is independent of thread scheduling.
            if error.is_none() {
                error = e;
            }
        }
        (histogram, size, dd_stats, completed, error)
    };
    let sampling_time = sampling_start.elapsed();

    Ok(TrajectoryOutcome {
        histogram,
        precompute_time,
        sampling_time,
        representation_size,
        dd_stats,
        interruption: error.map(|reason| Interruption {
            reason,
            completed_shots,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Measure a |+> qubit, reset it, re-prepare |+>, measure again: two
    /// independent fair coins in c0/c1.
    fn coin_reuse_circuit() -> Circuit {
        let mut c = Circuit::with_name(1, "coin_reuse");
        c.h(Qubit(0))
            .measure(Qubit(0), 0)
            .reset(Qubit(0))
            .h(Qubit(0))
            .measure(Qubit(0), 1);
        c
    }

    #[test]
    fn plan_segments_at_events() {
        let plan = TrajectoryPlan::new(&coin_reuse_circuit(), None);
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.segments.len(), 4);
        assert_eq!(plan.segments[0].len(), 1); // h
        assert_eq!(plan.segments[1].len(), 0); // between measure and reset
        assert_eq!(plan.segments[2].len(), 1); // h
        assert!(plan.segments[3].is_empty()); // tail
        assert_eq!(plan.record, RecordSource::Classical);
        assert_eq!(plan.record_width, 2);
    }

    #[test]
    fn plan_inserts_noise_sites_per_touched_qubit() {
        // h q0; cx q0,q1; measure q0 -> c0 under gate depolarizing noise and
        // read-out bit flips: one site after h (q0), two after cx (q1 target
        // then q0 control — support order), one before the measure.
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).cx(Qubit(0), Qubit(1)).measure(Qubit(0), 0);
        let model = NoiseModel::new()
            .with_gate_noise(NoiseChannel::depolarizing(0.1))
            .with_measurement_noise(NoiseChannel::bit_flip(0.05));
        let plan = TrajectoryPlan::new(&c, Some(&model));
        let kinds: Vec<(Qubit, bool)> = plan
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::Noise { qubit, channel } => (qubit, channel.is_state_independent()),
                EventKind::Measure { qubit, .. } => (qubit, false),
                EventKind::Reset { qubit } => (qubit, false),
            })
            .collect();
        assert_eq!(plan.events.len(), 5, "{kinds:?}");
        assert!(matches!(
            plan.events[0].kind,
            EventKind::Noise {
                qubit: Qubit(0),
                channel: NoiseChannel::Depolarizing { .. }
            }
        ));
        assert!(matches!(
            plan.events[1].kind,
            EventKind::Noise {
                qubit: Qubit(1),
                ..
            }
        ));
        assert!(matches!(
            plan.events[2].kind,
            EventKind::Noise {
                qubit: Qubit(0),
                ..
            }
        ));
        assert!(matches!(
            plan.events[3].kind,
            EventKind::Noise {
                qubit: Qubit(0),
                channel: NoiseChannel::BitFlip { .. }
            }
        ));
        assert!(matches!(plan.events[4].kind, EventKind::Measure { .. }));
        // Zero-strength models insert nothing: the plan is the noiseless one.
        let silent = NoiseModel::new().with_gate_noise(NoiseChannel::depolarizing(0.0));
        assert_eq!(TrajectoryPlan::new(&c, Some(&silent)).events.len(), 1);
    }

    #[test]
    fn measure_and_reset_reuse_gives_independent_coins() {
        let shots = 8_000u64;
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let outcome = simulate_trajectories(backend, &coin_reuse_circuit(), shots, 11).unwrap();
            assert_eq!(outcome.histogram.shots(), shots);
            for value in 0..4u64 {
                let freq = outcome.histogram.frequency(value);
                assert!(
                    (freq - 0.25).abs() < 0.03,
                    "{backend}: record {value} frequency {freq}"
                );
            }
        }
    }

    #[test]
    fn reset_only_circuits_report_terminal_measurements() {
        // Entangle two qubits, then reset qubit 0: the terminal measurement
        // sees qubit 0 always 0 and qubit 1 uniform.
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).cx(Qubit(0), Qubit(1)).reset(Qubit(0));
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let outcome = simulate_trajectories(backend, &c, 4_000, 5).unwrap();
            assert_eq!(outcome.histogram.num_qubits(), 2);
            assert!(outcome.histogram.count(0b01) == 0);
            assert!(outcome.histogram.count(0b11) == 0);
            let f0 = outcome.histogram.frequency(0b00);
            assert!((f0 - 0.5).abs() < 0.03, "{backend}: {f0}");
        }
    }

    #[test]
    fn trajectory_records_are_thread_count_invariant() {
        // A classical-record circuit and a reset-only circuit (terminal
        // full-register read-out through the cached/transient samplers).
        let mut classical = Circuit::new(3);
        classical
            .h(Qubit(0))
            .cx(Qubit(0), Qubit(1))
            .measure(Qubit(0), 0)
            .h(Qubit(2))
            .cx(Qubit(2), Qubit(1))
            .measure(Qubit(1), 1)
            .measure(Qubit(2), 2);
        let mut reset_only = Circuit::new(3);
        reset_only
            .h(Qubit(0))
            .cx(Qubit(0), Qubit(1))
            .reset(Qubit(0))
            .h(Qubit(0))
            .cx(Qubit(0), Qubit(2))
            .reset(Qubit(2));
        // Several chunks worth of shots so multiple workers get real work.
        let shots = 3 * PARALLEL_CHUNK_SHOTS as u64 + 17;
        for c in [&classical, &reset_only] {
            for backend in [Backend::DecisionDiagram, Backend::StateVector] {
                let reference =
                    simulate_trajectories_with_threads(backend, c, shots, 42, 1).unwrap();
                for threads in [2, 8] {
                    let run =
                        simulate_trajectories_with_threads(backend, c, shots, 42, threads).unwrap();
                    assert_eq!(
                        reference.histogram,
                        run.histogram,
                        "{backend} on {}: thread count {threads} changed the records",
                        c.name()
                    );
                }
                let other = simulate_trajectories_with_threads(backend, c, shots, 43, 1).unwrap();
                assert_ne!(
                    reference.histogram,
                    other.histogram,
                    "{backend} on {}: different seeds must give different records",
                    c.name()
                );
            }
        }
    }

    #[test]
    fn cache_overflow_falls_back_to_transient_trajectories() {
        // 13 coin-flip resets reach 2^13 = 8192 outcome prefixes — past
        // TRAJECTORY_CACHE_CAP — so shots exercise the off-cache evolution
        // and the transient terminal-sampler memo, and must still be
        // thread-count invariant and produce the right distribution.
        let mut c = Circuit::with_name(1, "coin_cascade");
        for _ in 0..13 {
            c.h(Qubit(0)).reset(Qubit(0));
        }
        c.h(Qubit(0));
        let shots = 3 * PARALLEL_CHUNK_SHOTS as u64 + 100;

        let reference =
            simulate_trajectories_with_threads(Backend::DecisionDiagram, &c, shots, 6, 1).unwrap();
        let threaded =
            simulate_trajectories_with_threads(Backend::DecisionDiagram, &c, shots, 6, 4).unwrap();
        assert_eq!(
            reference.histogram, threaded.histogram,
            "off-cache trajectories must stay thread-count invariant"
        );
        // The final H of a freshly reset qubit is a fair coin.
        let f1 = reference.histogram.frequency(1);
        assert!((f1 - 0.5).abs() < 0.03, "terminal P(1) = {f1}");
    }

    #[test]
    fn conditioned_gates_fire_only_on_matching_records() {
        // h q0; measure q0 -> c0; if (c==1) x q1; measure q1 -> c1:
        // a coherent copy through feed-forward, so c0 == c1 always.
        let mut c = Circuit::with_name(2, "feed_forward_copy");
        c.h(Qubit(0))
            .measure(Qubit(0), 0)
            .conditioned_gate(1, circuit::OneQubitGate::X, Qubit(1))
            .measure(Qubit(1), 1);
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let outcome = simulate_trajectories(backend, &c, 6_000, 19).unwrap();
            assert_eq!(outcome.histogram.count(0b01), 0, "{backend}");
            assert_eq!(outcome.histogram.count(0b10), 0, "{backend}");
            let f = outcome.histogram.frequency(0b11);
            assert!((f - 0.5).abs() < 0.03, "{backend}: P(11) = {f}");
        }
    }

    #[test]
    fn conditioned_resets_fire_only_on_matching_records() {
        // h q0; measure -> c0; reset q0; x q0 (q0 is now |1>);
        // if (c==1) reset q0; measure -> c1.
        // c0 = 0: guard idle, c1 = 1 (record 10).  c0 = 1: guard fires,
        // c1 = 0 (record 01).  Records 00 and 11 are impossible.
        let mut c = Circuit::with_name(1, "conditioned_reset");
        c.h(Qubit(0))
            .measure(Qubit(0), 0)
            .reset(Qubit(0))
            .x(Qubit(0))
            .conditioned(1, Operation::Reset { qubit: Qubit(0) })
            .measure(Qubit(0), 1);
        assert!(c.validate().is_ok());
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let outcome = simulate_trajectories(backend, &c, 6_000, 29).unwrap();
            assert_eq!(outcome.histogram.count(0b00), 0, "{backend}");
            assert_eq!(outcome.histogram.count(0b11), 0, "{backend}");
            let f = outcome.histogram.frequency(0b01);
            assert!((f - 0.5).abs() < 0.03, "{backend}: P(01) = {f}");
        }
    }

    #[test]
    fn conditioned_measurements_fire_only_on_matching_records() {
        // h q0; measure q0 -> c0; x q1; if (c==1) measure q1 -> c1:
        // c0 = 1 records c1 = 1 (record 11); c0 = 0 skips the read-out and
        // c1 stays 0 (record 00).
        let mut c = Circuit::with_name(2, "conditioned_measure");
        c.h(Qubit(0)).measure(Qubit(0), 0).x(Qubit(1)).conditioned(
            1,
            Operation::Measure {
                qubit: Qubit(1),
                cbit: 1,
            },
        );
        assert!(c.has_measurements());
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let outcome = simulate_trajectories(backend, &c, 6_000, 31).unwrap();
            assert_eq!(outcome.histogram.count(0b01), 0, "{backend}");
            assert_eq!(outcome.histogram.count(0b10), 0, "{backend}");
            let f = outcome.histogram.frequency(0b11);
            assert!((f - 0.5).abs() < 0.03, "{backend}: P(11) = {f}");
        }
    }

    #[test]
    fn conditions_compare_the_whole_register() {
        // Two coins into c0/c1, then X on q2 only when the register equals
        // exactly 0b10 — P(c2=1) = 1/4, and c2=1 only ever pairs with c=10.
        let mut c = Circuit::with_name(3, "whole_register_guard");
        c.h(Qubit(0))
            .measure(Qubit(0), 0)
            .h(Qubit(1))
            .measure(Qubit(1), 1)
            .conditioned_gate(0b10, circuit::OneQubitGate::X, Qubit(2))
            .measure(Qubit(2), 2);
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let outcome = simulate_trajectories(backend, &c, 8_000, 23).unwrap();
            for record in 0..8u64 {
                let expected = match record {
                    0b110 => 0.25,                 // guard fired
                    0b000 | 0b001 | 0b011 => 0.25, // guard idle
                    _ => 0.0,
                };
                let freq = outcome.histogram.frequency(record);
                assert!(
                    (freq - expected).abs() < 0.03,
                    "{backend}: record {record:03b} frequency {freq}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn conditioned_records_are_thread_count_invariant() {
        // A deeper feed-forward circuit mixing measure, reset, conditioned
        // gates and a conditioned reset, run across thread counts.
        let mut c = Circuit::with_name(2, "conditioned_invariance");
        c.h(Qubit(0))
            .measure(Qubit(0), 0)
            .conditioned_gate(1, circuit::OneQubitGate::H, Qubit(1))
            .reset(Qubit(0))
            .h(Qubit(0))
            .measure(Qubit(0), 1)
            .conditioned(0b11, Operation::Reset { qubit: Qubit(1) })
            .conditioned_gate(0b01, circuit::OneQubitGate::X, Qubit(1))
            .measure(Qubit(1), 2);
        let shots = 3 * PARALLEL_CHUNK_SHOTS as u64 + 5;
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let reference = simulate_trajectories_with_threads(backend, &c, shots, 31, 1).unwrap();
            for threads in [2, 8] {
                let run =
                    simulate_trajectories_with_threads(backend, &c, shots, 31, threads).unwrap();
                assert_eq!(
                    reference.histogram, run.histogram,
                    "{backend}: {threads} threads changed the records"
                );
            }
        }
    }

    #[test]
    fn conditioned_only_circuits_report_terminal_measurements() {
        // No measurements at all: the record stays 0, so `if (c==0)` fires
        // and `if (c==1)` never does; the terminal read-out sees |10>.
        let mut c = Circuit::new(2);
        c.conditioned_gate(0, circuit::OneQubitGate::X, Qubit(1))
            .conditioned_gate(1, circuit::OneQubitGate::X, Qubit(0));
        assert_eq!(c.num_clbits(), 1, "conditions grow the register");
        assert!(c.is_dynamic());
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let outcome = simulate_trajectories(backend, &c, 200, 2).unwrap();
            assert_eq!(outcome.histogram.count(0b10), 200, "{backend}");
        }
    }

    #[test]
    fn backends_agree_on_a_dynamic_distribution() {
        let c = coin_reuse_circuit();
        let shots = 20_000u64;
        let dd = simulate_trajectories(Backend::DecisionDiagram, &c, shots, 7).unwrap();
        let sv = simulate_trajectories(Backend::StateVector, &c, shots, 7).unwrap();
        for value in 0..4u64 {
            assert!(
                (dd.histogram.frequency(value) - sv.histogram.frequency(value)).abs() < 0.02,
                "record {value}"
            );
        }
    }

    #[test]
    fn deterministic_bit_flips_invert_the_record() {
        // A bit-flip channel with p = 1 after the only gate deterministically
        // inverts the measured bit on both backends.
        let mut c = Circuit::new(1);
        c.x(Qubit(0)).measure(Qubit(0), 0);
        let model = NoiseModel::new().with_gate_noise(NoiseChannel::bit_flip(1.0));
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let outcome = simulate_noisy_trajectories(backend, &c, &model, 500, 3).unwrap();
            assert_eq!(outcome.histogram.count(0), 500, "{backend}");
        }
    }

    #[test]
    fn readout_noise_only_affects_measurements() {
        // Read-out flips attach to the measure, not to gates: a circuit with
        // no measurement sees no noise events from measurement channels.
        let mut c = Circuit::new(1);
        c.x(Qubit(0)).reset(Qubit(0));
        let model = NoiseModel::new().with_measurement_noise(NoiseChannel::bit_flip(1.0));
        let plan = TrajectoryPlan::new(&c, Some(&model));
        assert_eq!(plan.events.len(), 1, "reset alone gains no read-out site");
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let outcome = simulate_noisy_trajectories(backend, &c, &model, 300, 9).unwrap();
            // Terminal read-out of the reset qubit: always 0.
            assert_eq!(outcome.histogram.count(0), 300, "{backend}");
        }
    }

    #[test]
    fn noise_on_conditioned_gates_inherits_the_guard() {
        // h q0; measure -> c0; if (c==1) x q1 (with p=1 bit-flip gate noise);
        // measure q1 -> c1.  When the guard fires, the X *and its noise* both
        // fire: q1 flips to 1 then back to 0 — so c1 is always 0.  If the
        // noise ran unconditionally, the c0 = 0 half would see a bare flip
        // and record c1 = 1.
        let mut c = Circuit::new(2);
        c.h(Qubit(0))
            .measure(Qubit(0), 0)
            .conditioned_gate(1, circuit::OneQubitGate::X, Qubit(1))
            .measure(Qubit(1), 1);
        let model = NoiseModel::new().with_gate_noise(NoiseChannel::bit_flip(1.0));
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let outcome = simulate_noisy_trajectories(backend, &c, &model, 2_000, 17).unwrap();
            for record in [0b10u64, 0b11] {
                assert_eq!(
                    outcome.histogram.count(record),
                    0,
                    "{backend}: c1 must stay 0, got record {record:02b}"
                );
            }
            let f = outcome.histogram.frequency(0b01);
            assert!((f - 0.5).abs() < 0.04, "{backend}: P(01) = {f}");
        }
    }

    #[test]
    fn amplitude_damping_decays_the_excited_state() {
        // |1> under amplitude damping with gamma = 1 always decays to |0>.
        let mut c = Circuit::new(1);
        c.x(Qubit(0)).measure(Qubit(0), 0);
        let model = NoiseModel::new().with_gate_noise(NoiseChannel::amplitude_damping(1.0));
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let outcome = simulate_noisy_trajectories(backend, &c, &model, 400, 21).unwrap();
            assert_eq!(outcome.histogram.count(0), 400, "{backend}");
        }
        // ... and with gamma = 0 it never decays.
        let ideal = NoiseModel::new().with_gate_noise(NoiseChannel::amplitude_damping(0.0));
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let outcome = simulate_noisy_trajectories(backend, &c, &ideal, 400, 21).unwrap();
            assert_eq!(outcome.histogram.count(1), 400, "{backend}");
        }
    }

    #[test]
    fn invalid_noise_models_are_rejected() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0)).measure(Qubit(0), 0);
        let bad_param = NoiseModel::new().with_gate_noise(NoiseChannel::depolarizing(1.5));
        let bad_qubit = NoiseModel::new().with_qubit_noise(Qubit(9), NoiseChannel::bit_flip(0.1));
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            assert!(matches!(
                simulate_noisy_trajectories(backend, &c, &bad_param, 10, 0),
                Err(RunError::InvalidNoise(_))
            ));
            assert!(matches!(
                simulate_noisy_trajectories(backend, &c, &bad_qubit, 10, 0),
                Err(RunError::InvalidNoise(_))
            ));
        }
    }

    #[test]
    fn invalid_dynamic_circuits_are_rejected() {
        let mut c = Circuit::new(1);
        c.measure(Qubit(0), 0).h(Qubit(5));
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            assert!(matches!(
                simulate_trajectories(backend, &c, 10, 0),
                Err(RunError::InvalidCircuit(_))
            ));
        }
    }
}

//! Aggregated measurement samples.

use mathkit::FxHashMap;
use std::fmt;

/// A histogram of measurement outcomes (basis-state index -> count).
///
/// Recording goes through a hash accumulator (`FxHashMap`), so the per-shot
/// cost is a single cheap hash insert even for millions of shots; ordered
/// views for display and export are produced on demand by
/// [`sorted_counts`](Self::sorted_counts).
///
/// # Examples
///
/// ```
/// use weaksim::ShotHistogram;
///
/// let hist = ShotHistogram::from_samples(3, [0b101, 0b101, 0b000].into_iter());
/// assert_eq!(hist.shots(), 3);
/// assert_eq!(hist.count(0b101), 2);
/// assert_eq!(hist.bitstring(0b101), "101");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShotHistogram {
    num_qubits: u16,
    counts: FxHashMap<u64, u64>,
    shots: u64,
}

impl ShotHistogram {
    /// Creates an empty histogram for `num_qubits`-bit outcomes.
    #[must_use]
    pub fn new(num_qubits: u16) -> Self {
        Self {
            num_qubits,
            counts: FxHashMap::default(),
            shots: 0,
        }
    }

    /// Builds a histogram from raw samples.
    pub fn from_samples(num_qubits: u16, samples: impl Iterator<Item = u64>) -> Self {
        let mut hist = Self::new(num_qubits);
        for s in samples {
            hist.record(s);
        }
        hist
    }

    /// Records one sample.
    pub fn record(&mut self, outcome: u64) {
        *self.counts.entry(outcome).or_insert(0) += 1;
        self.shots += 1;
    }

    /// Records a whole batch of samples (the bulk path used by the parallel
    /// sampler).
    pub fn record_many(&mut self, outcomes: &[u64]) {
        // One reservation covers the worst case of all-new outcomes, capped
        // at the support size so a billion-shot batch over a few outcomes
        // does not allocate a billion-slot table.
        let support = if self.num_qubits >= 63 {
            usize::MAX
        } else {
            1usize << self.num_qubits
        };
        self.counts.reserve(outcomes.len().min(support));
        for &outcome in outcomes {
            *self.counts.entry(outcome).or_insert(0) += 1;
        }
        self.shots += outcomes.len() as u64;
    }

    /// Merges another histogram into this one (used to combine the
    /// per-worker histograms of parallel trajectory simulation).
    ///
    /// # Panics
    ///
    /// Panics if the two histograms record outcomes of different widths.
    pub fn merge(&mut self, other: &ShotHistogram) {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "cannot merge histograms of different outcome widths"
        );
        for (&outcome, &count) in &other.counts {
            *self.counts.entry(outcome).or_insert(0) += count;
        }
        self.shots += other.shots;
    }

    /// The number of qubits per outcome.
    #[must_use]
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// The total number of recorded shots.
    #[must_use]
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// The raw counts, keyed by basis-state index (unordered; use
    /// [`sorted_counts`](Self::sorted_counts) for an index-ordered view).
    #[must_use]
    pub fn counts(&self) -> &FxHashMap<u64, u64> {
        &self.counts
    }

    /// The counts as `(basis-state index, count)` pairs in index order.
    #[must_use]
    pub fn sorted_counts(&self) -> Vec<(u64, u64)> {
        let mut pairs: Vec<(u64, u64)> = self.counts.iter().map(|(&o, &c)| (o, c)).collect();
        pairs.sort_unstable_by_key(|&(outcome, _)| outcome);
        pairs
    }

    /// The count of a specific outcome.
    #[must_use]
    pub fn count(&self, outcome: u64) -> u64 {
        self.counts.get(&outcome).copied().unwrap_or(0)
    }

    /// The empirical frequency of a specific outcome.
    #[must_use]
    pub fn frequency(&self, outcome: u64) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / self.shots as f64
        }
    }

    /// The number of distinct outcomes observed.
    #[must_use]
    pub fn distinct_outcomes(&self) -> usize {
        self.counts.len()
    }

    /// The most frequent outcome, if any shots were recorded (ties resolve
    /// to the smallest basis-state index).
    #[must_use]
    pub fn most_common(&self) -> Option<(u64, u64)> {
        self.counts
            .iter()
            .max_by_key(|(outcome, count)| (*count, std::cmp::Reverse(*outcome)))
            .map(|(&o, &c)| (o, c))
    }

    /// Formats an outcome as a bitstring `q_{n-1} ... q_1 q_0` (most
    /// significant qubit first), matching the notation of the paper.
    #[must_use]
    pub fn bitstring(&self, outcome: u64) -> String {
        (0..self.num_qubits)
            .rev()
            .map(|bit| if outcome & (1 << bit) != 0 { '1' } else { '0' })
            .collect()
    }

    /// Iterates over `(bitstring, count)` pairs in index order.
    #[must_use]
    pub fn to_bitstring_counts(&self) -> Vec<(String, u64)> {
        self.sorted_counts()
            .into_iter()
            .map(|(o, c)| (self.bitstring(o), c))
            .collect()
    }
}

impl Extend<u64> for ShotHistogram {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for s in iter {
            self.record(s);
        }
    }
}

impl fmt::Display for ShotHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} shots over {} qubits", self.shots, self.num_qubits)?;
        for (outcome, count) in self.sorted_counts() {
            writeln!(
                f,
                "  |{}> : {count} ({:.4})",
                self.bitstring(outcome),
                self.frequency(outcome)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut h = ShotHistogram::new(2);
        h.record(0);
        h.record(3);
        h.record(3);
        assert_eq!(h.shots(), 3);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(1), 0);
        assert!((h.frequency(3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.distinct_outcomes(), 2);
        assert_eq!(h.most_common(), Some((3, 2)));
    }

    #[test]
    fn record_many_matches_individual_records() {
        let mut bulk = ShotHistogram::new(3);
        bulk.record_many(&[1, 2, 2, 7, 7, 7]);
        let single = ShotHistogram::from_samples(3, [1, 2, 2, 7, 7, 7].into_iter());
        assert_eq!(bulk, single);
        assert_eq!(bulk.shots(), 6);
        bulk.record_many(&[]);
        assert_eq!(bulk.shots(), 6);
    }

    #[test]
    fn merge_combines_counts_and_shots() {
        let mut a = ShotHistogram::from_samples(2, [0, 1, 1].into_iter());
        let b = ShotHistogram::from_samples(2, [1, 3].into_iter());
        a.merge(&b);
        assert_eq!(a.shots(), 5);
        assert_eq!(a.count(1), 3);
        assert_eq!(a.count(3), 1);
    }

    #[test]
    #[should_panic(expected = "different outcome widths")]
    fn merge_rejects_mismatched_widths() {
        let mut a = ShotHistogram::new(2);
        a.merge(&ShotHistogram::new(3));
    }

    #[test]
    fn bitstring_formatting_is_msb_first() {
        let h = ShotHistogram::new(4);
        assert_eq!(h.bitstring(0b0101), "0101");
        assert_eq!(h.bitstring(0b1000), "1000");
        assert_eq!(h.bitstring(0), "0000");
    }

    #[test]
    fn from_samples_and_extend() {
        let mut h = ShotHistogram::from_samples(3, [1, 2, 2, 7].into_iter());
        h.extend([7, 7]);
        assert_eq!(h.shots(), 6);
        assert_eq!(h.count(7), 3);
        let pairs = h.to_bitstring_counts();
        assert_eq!(pairs[0], ("001".to_string(), 1));
        assert_eq!(pairs.last().unwrap(), &("111".to_string(), 3));
    }

    #[test]
    fn sorted_counts_are_index_ordered() {
        let mut h = ShotHistogram::new(4);
        h.record_many(&[9, 1, 5, 1, 9, 9]);
        assert_eq!(h.sorted_counts(), vec![(1, 2), (5, 1), (9, 3)]);
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = ShotHistogram::new(2);
        assert_eq!(h.shots(), 0);
        assert_eq!(h.frequency(0), 0.0);
        assert_eq!(h.most_common(), None);
    }

    #[test]
    fn display_lists_outcomes() {
        let h = ShotHistogram::from_samples(2, [0, 3, 3].into_iter());
        let text = h.to_string();
        assert!(text.contains("|00>"));
        assert!(text.contains("|11>"));
    }
}

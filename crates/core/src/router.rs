//! The segmented Clifford router: runs Clifford circuit segments on the
//! polynomial-time stabilizer-tableau engine (the `tableau` crate) and
//! stitches the boundary into the configured dense backend.
//!
//! Routing is opt-in
//! ([`WeakSimulator::with_clifford_router`](crate::WeakSimulator::with_clifford_router))
//! and noiseless-only; it never changes *what* is sampled, only *which
//! engine* does the work:
//!
//! * a **fully-Clifford** circuit (per
//!   [`Circuit::clifford_segments`]) runs entirely on the tableau —
//!   thousand-qubit GHZ and stabilizer-code circuits sample in
//!   milliseconds where a dense backend could not even allocate the state;
//! * a circuit with a **unitary Clifford prefix** whose boundary state is a
//!   computational basis state (the cheap-injection case of
//!   [`Tableau::as_basis_state`]) is *stitched*: the prefix is replayed as
//!   `X` preparations on the dense backend, which then runs the remaining
//!   operations — the prefix costs `O(n)` tableau updates instead of dense
//!   gate applications;
//! * anything else **falls back** to whole-circuit dense execution.
//!
//! Whichever way a run goes, [`RunOutcome::route`](crate::RunOutcome::route)
//! reports the engine that executed each segment.
//!
//! Tableau-routed sampling follows the workspace seeding scheme — shots are
//! split into [`PARALLEL_CHUNK_SHOTS`] chunks and chunk `i` draws from a
//! [`chunk_stream_seed`]-derived stream — so routed histograms are
//! seed-deterministic and independent of the worker-thread count (the
//! tableau path is single-threaded; per-shot work is a handful of word
//! operations, far below any parallelization threshold).

use crate::simulator::{Backend, RunError, RunOutcome};
use crate::ShotHistogram;
use circuit::{Circuit, Operation, Qubit};
use dd::{chunk_stream_seed, PARALLEL_CHUNK_SHOTS};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;
use std::time::{Duration, Instant};
use tableau::{Tableau, TableauError};

/// The engine that executed one routed segment (a superset of [`Backend`]:
/// the stabilizer tableau is a router-only engine with no dense strong
/// state, so it is not a [`Backend`] variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The Gottesman–Knill stabilizer-tableau engine (`tableau` crate).
    Tableau,
    /// The edge-weighted decision-diagram engine.
    DecisionDiagram,
    /// The dense statevector engine.
    StateVector,
}

impl From<Backend> for EngineKind {
    fn from(backend: Backend) -> Self {
        match backend {
            Backend::DecisionDiagram => EngineKind::DecisionDiagram,
            Backend::StateVector => EngineKind::StateVector,
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::Tableau => write!(f, "tableau"),
            EngineKind::DecisionDiagram => write!(f, "DD-based"),
            EngineKind::StateVector => write!(f, "vector-based"),
        }
    }
}

/// One contiguous block of circuit operations executed by a single engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteSegment {
    /// The engine that executed the block.
    pub engine: EngineKind,
    /// Number of original circuit operations in the block (state-injection
    /// gates synthesized by the router are not counted).
    pub ops: usize,
}

/// How a run was routed: which engine executed each contiguous segment of
/// the circuit, in order.  Unrouted (and fallback) runs report a single
/// segment on the configured dense backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRoute {
    /// The executed segments, in circuit order.
    pub segments: Vec<RouteSegment>,
}

impl RunRoute {
    /// The single-segment route of an unrouted dense run.
    pub(crate) fn dense(backend: Backend, ops: usize) -> Self {
        Self {
            segments: vec![RouteSegment {
                engine: backend.into(),
                ops,
            }],
        }
    }

    /// Whether any segment ran on the stabilizer-tableau engine.
    #[must_use]
    pub fn used_tableau(&self) -> bool {
        self.segments
            .iter()
            .any(|s| s.engine == EngineKind::Tableau)
    }

    /// Total operations across all segments.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.segments.iter().map(|s| s.ops).sum()
    }
}

impl fmt::Display for RunRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, segment) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{}({})", segment.engine, segment.ops)?;
        }
        Ok(())
    }
}

/// The router's decision for one run.
pub(crate) enum Routed {
    /// The whole circuit ran on the tableau engine; the finished outcome
    /// (boxed: it dwarfs the other variants).
    Tableau(Box<RunOutcome>),
    /// A Clifford prefix was folded into basis-state preparations; run
    /// `stitched` on the dense backend and report `route`.
    Stitched {
        /// The remainder circuit, prefixed with `X` preparations.
        stitched: Circuit,
        /// The two-segment route to surface in the outcome.
        route: RunRoute,
    },
    /// No tableau-eligible segment: run the original circuit densely.
    Dense,
}

/// The routing *decision* alone, with no execution attached — shared by the
/// executing [`route`] and the artifact-preparing cached path, so a cached
/// run builds exactly the artifact its uncached twin would have used.
pub(crate) enum RoutePlan {
    /// Fully Clifford: execute (or prepare a sampler) on the tableau engine.
    FullyClifford,
    /// A Clifford prefix was folded into basis-state preparations; run
    /// `stitched` on the dense backend and report `route`.
    Stitched {
        /// The remainder circuit, prefixed with `X` preparations.
        stitched: Circuit,
        /// The two-segment route to surface in the outcome.
        route: RunRoute,
    },
    /// No tableau-eligible segment: run the original circuit densely.
    Dense,
}

/// Decides the route for a validated circuit (pure: no simulation runs).
pub(crate) fn route_plan(circuit: &Circuit, backend: Backend) -> RoutePlan {
    let segments = circuit.clifford_segments();
    if segments.is_fully_clifford() {
        return RoutePlan::FullyClifford;
    }
    if segments.prefix_len > 0 {
        if let Some(stitched) = stitch_prefix(circuit, segments.prefix_len) {
            return RoutePlan::Stitched {
                stitched,
                route: RunRoute {
                    segments: vec![
                        RouteSegment {
                            engine: EngineKind::Tableau,
                            ops: segments.prefix_len,
                        },
                        RouteSegment {
                            engine: backend.into(),
                            ops: segments.len - segments.prefix_len,
                        },
                    ],
                },
            };
        }
    }
    RoutePlan::Dense
}

/// Decides and (for fully-Clifford circuits) executes the route.  `circuit`
/// has already been validated; `backend` is the dense engine that handles
/// whatever the tableau does not.
pub(crate) fn route(
    circuit: &Circuit,
    backend: Backend,
    shots: u64,
    seed: u64,
) -> Result<Routed, RunError> {
    Ok(match route_plan(circuit, backend) {
        // `Operation::is_clifford` guarantees the tableau accepts every
        // operation it classifies as Clifford, so this cannot fail — but the
        // classification is the only wall between the engines, so a defect
        // degrades to correct-but-slower dense execution instead of an error.
        RoutePlan::FullyClifford => match run_tableau(circuit, backend, shots, seed) {
            Ok(outcome) => Routed::Tableau(Box::new(outcome)),
            Err(_) => Routed::Dense,
        },
        RoutePlan::Stitched { stitched, route } => Routed::Stitched { stitched, route },
        RoutePlan::Dense => Routed::Dense,
    })
}

/// Prepares a reusable [`SimArtifact`](crate::SimArtifact) for a *static*
/// fully-Clifford circuit: the evolution + sampler-construction preamble of
/// [`run_tableau`], with the sampling loop left to the artifact.  Returns
/// `None` when the tableau rejects an operation, mirroring [`route`]'s
/// degrade-to-dense fallback.
pub(crate) fn prepare_tableau_artifact(
    circuit: &Circuit,
    backend: Backend,
) -> Option<crate::SimArtifact> {
    debug_assert!(!circuit.is_dynamic(), "cached runs are static-only");
    let (prefix, mapping) = match circuit.split_terminal_measurements() {
        Some((prefix, mapping)) => (prefix, mapping),
        None => return None,
    };
    let route = RunRoute {
        segments: vec![RouteSegment {
            engine: EngineKind::Tableau,
            ops: circuit.len(),
        }],
    };
    let strong_start = Instant::now();
    // The RNG is never consulted: the prefix is measure-free.
    let mut rng = SmallRng::seed_from_u64(0);
    let (tab, _record) = tableau::simulate(&prefix, &mut rng).ok()?;
    let strong_time = strong_start.elapsed();
    let precompute_start = Instant::now();
    let sampler = tab.measurement_sampler();
    let precompute_time = precompute_start.elapsed();
    Some(crate::SimArtifact::from_tableau(
        sampler,
        mapping,
        circuit.num_qubits(),
        circuit.num_clbits(),
        backend,
        route,
        strong_time,
        precompute_time,
    ))
}

/// Evolves the leading `prefix_len` Clifford operations on a tableau and, if
/// they leave the register in a computational basis state, returns the
/// remainder circuit prefixed with the `X` gates preparing that state (the
/// basis-state injection of the stitching contract).  Returns `None` when
/// the prefix contains non-unitary operations (their outcome belongs to the
/// shot, not the plan) or ends in superposition.
pub(crate) fn stitch_prefix(circuit: &Circuit, prefix_len: usize) -> Option<Circuit> {
    let ops = circuit.operations();
    if ops[..prefix_len].iter().any(|op| {
        matches!(
            op,
            Operation::Measure { .. } | Operation::Reset { .. } | Operation::Conditioned { .. }
        )
    }) {
        return None;
    }
    let mut tab = Tableau::zero_state(usize::from(circuit.num_qubits()).max(1));
    // The RNG and record are never consulted: the prefix is unitary-only.
    let mut rng = SmallRng::seed_from_u64(0);
    let mut record = 0u64;
    for (i, op) in ops[..prefix_len].iter().enumerate() {
        tableau::apply_operation(&mut tab, op, i, &mut record, &mut rng).ok()?;
    }
    let basis = tab.as_basis_state()?;
    let mut stitched = Circuit::with_name(
        circuit.num_qubits(),
        format!("{}__stitched", circuit.name()),
    );
    stitched.set_num_clbits(circuit.num_clbits());
    for q in 0..circuit.num_qubits() {
        if basis[usize::from(q) / 64] >> (usize::from(q) % 64) & 1 == 1 {
            stitched.x(Qubit(q));
        }
    }
    for op in &ops[prefix_len..] {
        stitched.push(op.clone());
    }
    Some(stitched)
}

/// Draws `shots` shots with the workspace chunk-seeding scheme: chunk `i`
/// (of [`PARALLEL_CHUNK_SHOTS`] shots) uses its own RNG stream seeded with
/// [`chunk_stream_seed`]`(seed, i)`.
fn draw_chunked(
    shots: u64,
    seed: u64,
    mut shot: impl FnMut(&mut SmallRng) -> Result<(), TableauError>,
) -> Result<(), TableauError> {
    let chunk_len = PARALLEL_CHUNK_SHOTS as u64;
    let total_chunks = shots.div_ceil(chunk_len);
    for chunk_index in 0..total_chunks {
        let chunk_shots = chunk_len.min(shots - chunk_index * chunk_len);
        let mut rng = SmallRng::seed_from_u64(chunk_stream_seed(seed, chunk_index));
        for _ in 0..chunk_shots {
            shot(&mut rng)?;
        }
    }
    Ok(())
}

/// Reads the classical record of one full-register sample through the
/// trailing-measurement mapping (the packed-words analogue of the
/// simulator's `map_terminal_record`, needed because tableau registers can
/// exceed 64 qubits).
pub(crate) fn map_terminal_words(sample: &[u64], mapping: &[(Qubit, u16)]) -> u64 {
    let mut out = 0u64;
    for &(qubit, cbit) in mapping {
        let q = usize::from(qubit.0);
        let bit = (sample[q / 64] >> (q % 64) & 1) as u8;
        out = crate::trajectory::record_bit(out, cbit, bit);
    }
    out
}

/// Runs a fully-Clifford circuit end to end on the stabilizer tableau.
///
/// Static circuits get one tableau evolution plus affine-subspace sampling;
/// dynamic ones run shot-by-shot (each shot is a fresh `O(n)`-per-gate
/// tableau walk, so even thousand-qubit trajectories are cheap).  Registers
/// wider than 64 qubits histogram the low 64 bits of each sample — the
/// documented truncation of the `u64`-keyed [`ShotHistogram`].
fn run_tableau(
    circuit: &Circuit,
    backend: Backend,
    shots: u64,
    seed: u64,
) -> Result<RunOutcome, TableauError> {
    let num_qubits = usize::from(circuit.num_qubits()).max(1);
    let route = RunRoute {
        segments: vec![RouteSegment {
            engine: EngineKind::Tableau,
            ops: circuit.len(),
        }],
    };
    // Report the stabilizer generator count as the representation size —
    // the tableau analogue of DD node count / dense amplitude count.
    let representation_size = 2 * num_qubits as u128;

    if !circuit.is_dynamic() {
        let (prefix, mapping) = match circuit.split_terminal_measurements() {
            Some((prefix, mapping)) if !mapping.is_empty() => (prefix, Some(mapping)),
            // Measure-free static circuit (the split yields an empty
            // terminal block): sample the full register.
            Some((prefix, _)) => (prefix, None),
            None => (circuit.clone(), None),
        };
        let strong_start = Instant::now();
        // The RNG is never consulted: the prefix is measure-free.
        let mut rng = SmallRng::seed_from_u64(seed);
        let (tab, _record) = tableau::simulate(&prefix, &mut rng)?;
        let strong_time = strong_start.elapsed();

        let precompute_start = Instant::now();
        let sampler = tab.measurement_sampler();
        let precompute_time = precompute_start.elapsed();

        let sampling_start = Instant::now();
        let histogram = match mapping {
            None => {
                let mut histogram = ShotHistogram::new(circuit.num_qubits());
                draw_chunked(shots, seed, |rng| {
                    histogram.record(sampler.sample_u64(rng));
                    Ok(())
                })?;
                histogram
            }
            Some(mapping) => {
                let mut histogram = ShotHistogram::new(circuit.num_clbits());
                let mut buf = vec![0u64; sampler.num_qubits().div_ceil(64)];
                draw_chunked(shots, seed, |rng| {
                    sampler.sample_into(&mut buf, rng);
                    histogram.record(map_terminal_words(&buf, &mapping));
                    Ok(())
                })?;
                histogram
            }
        };
        let sampling_time = sampling_start.elapsed();
        return Ok(RunOutcome {
            backend,
            histogram,
            strong_time,
            precompute_time,
            sampling_time,
            representation_size,
            dd_stats: None,
            state: None,
            interruption: None,
            route,
            cache: None,
        });
    }

    // Dynamic Clifford circuit: per-shot trajectories.  Circuits without
    // any `Measure` report a terminal full-register sample, exactly like
    // the dense trajectory engine.
    let has_measurements = circuit.has_measurements();
    let width = if has_measurements {
        circuit.num_clbits()
    } else {
        circuit.num_qubits()
    };
    let mut histogram = ShotHistogram::new(width);
    let sampling_start = Instant::now();
    draw_chunked(shots, seed, |rng| {
        let mut tab = Tableau::zero_state(num_qubits);
        let record = tableau::apply_circuit(&mut tab, circuit, rng)?;
        let outcome = if has_measurements {
            record
        } else {
            tab.measurement_sampler().sample_u64(rng)
        };
        histogram.record(outcome);
        Ok(())
    })?;
    let sampling_time = sampling_start.elapsed();
    Ok(RunOutcome {
        backend,
        histogram,
        strong_time: Duration::ZERO,
        precompute_time: Duration::ZERO,
        sampling_time,
        representation_size,
        dd_stats: None,
        state: None,
        interruption: None,
        route,
        cache: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_display_chains_segments() {
        let route = RunRoute {
            segments: vec![
                RouteSegment {
                    engine: EngineKind::Tableau,
                    ops: 17,
                },
                RouteSegment {
                    engine: EngineKind::DecisionDiagram,
                    ops: 3,
                },
            ],
        };
        assert_eq!(route.to_string(), "tableau(17) -> DD-based(3)");
        assert!(route.used_tableau());
        assert_eq!(route.total_ops(), 20);
        let dense = RunRoute::dense(Backend::StateVector, 5);
        assert_eq!(dense.to_string(), "vector-based(5)");
        assert!(!dense.used_tableau());
    }

    #[test]
    fn stitching_requires_a_basis_state_boundary() {
        // X-prefix ending in |01>: stitchable.
        let mut c = Circuit::new(2);
        c.x(Qubit(0)).t(Qubit(1));
        let seg = c.clifford_segments();
        assert_eq!(seg.prefix_len, 1);
        let stitched = stitch_prefix(&c, seg.prefix_len).unwrap();
        // One X preparation plus the T gate.
        assert_eq!(stitched.len(), 2);

        // H-prefix ends in superposition: not stitchable.
        let mut h = Circuit::new(2);
        h.h(Qubit(0)).t(Qubit(1));
        assert!(stitch_prefix(&h, 1).is_none());
    }

    #[test]
    fn fully_clifford_circuits_route_to_the_tableau() {
        let ghz = algorithms::ghz(4);
        let Routed::Tableau(outcome) = route(&ghz, Backend::DecisionDiagram, 2000, 3).unwrap()
        else {
            panic!("GHZ is fully Clifford and must route to the tableau");
        };
        assert!(outcome.route.used_tableau());
        assert_eq!(outcome.histogram.shots(), 2000);
        assert!(outcome
            .histogram
            .counts()
            .keys()
            .all(|&k| k == 0 || k == 0b1111));
    }

    #[test]
    fn non_clifford_circuits_without_clifford_prefix_stay_dense() {
        let mut c = Circuit::new(1);
        c.t(Qubit(0));
        assert!(matches!(
            route(&c, Backend::DecisionDiagram, 10, 0).unwrap(),
            Routed::Dense
        ));
    }
}

//! The experiment harness that regenerates the paper's evaluation (Table I)
//! and supporting figures.
//!
//! Table I of the paper reports, for 17 benchmark circuits, the size of the
//! sampled representation and the time to draw one million samples with the
//! vector-based and the DD-based method.  [`table1_benchmarks`] builds the
//! circuit list (at three scales, so tests and CI can run a cheap subset),
//! [`run_table1_row`] measures one row, and [`format_table`] renders the
//! result in the layout of the paper.

use crate::{Backend, RunError, RunGovernor, WeakSimulator};
use circuit::Circuit;
use statevector::MemoryBudget;
use std::fmt::Write as _;
use std::time::Duration;

/// A named benchmark circuit.
#[derive(Debug, Clone)]
pub struct BenchmarkInstance {
    /// The benchmark name as it appears in Table I (e.g. `qft_32`).
    pub name: String,
    /// The circuit itself.
    pub circuit: Circuit,
}

impl BenchmarkInstance {
    fn new(circuit: Circuit) -> Self {
        Self {
            name: circuit.name().to_string(),
            circuit,
        }
    }
}

/// How much of the paper's benchmark set to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkScale {
    /// A handful of very small instances; finishes in well under a second.
    /// Used by unit and integration tests.
    Smoke,
    /// Mid-sized instances from every family; finishes in minutes on a
    /// laptop.  This is the default for `cargo run -p bench --bin table1`.
    Reduced,
    /// The full 17-benchmark set of Table I (qft_48, grover_35,
    /// supremacy_5x5_10, ...).  Needs a beefy machine and patience, exactly
    /// like the original evaluation.
    Full,
}

/// Builds the benchmark circuits of Table I at the requested scale.
///
/// # Examples
///
/// ```
/// use weaksim::experiment::{table1_benchmarks, BenchmarkScale};
/// let smoke = table1_benchmarks(BenchmarkScale::Smoke);
/// assert!(smoke.iter().any(|b| b.name.starts_with("qft_")));
/// ```
#[must_use]
pub fn table1_benchmarks(scale: BenchmarkScale) -> Vec<BenchmarkInstance> {
    let mut out = Vec::new();
    match scale {
        BenchmarkScale::Smoke => {
            out.push(BenchmarkInstance::new(algorithms::qft(8, true)));
            out.push(BenchmarkInstance::new(algorithms::qft(12, true)));
            out.push(BenchmarkInstance::new(algorithms::grover(6, 2020)));
            out.push(BenchmarkInstance::new(algorithms::shor(15, 2).0));
            out.push(BenchmarkInstance::new(algorithms::jellium(2, 1).0));
            out.push(BenchmarkInstance::new(
                algorithms::supremacy(3, 3, 6, 2020).0,
            ));
        }
        BenchmarkScale::Reduced => {
            out.push(BenchmarkInstance::new(algorithms::qft(16, true)));
            out.push(BenchmarkInstance::new(algorithms::qft(32, true)));
            out.push(BenchmarkInstance::new(algorithms::qft(48, true)));
            out.push(BenchmarkInstance::new(algorithms::grover(16, 2020)));
            out.push(BenchmarkInstance::new(algorithms::grover(18, 2020)));
            out.push(BenchmarkInstance::new(algorithms::grover(20, 2020)));
            out.push(BenchmarkInstance::new(algorithms::shor(33, 2).0));
            out.push(BenchmarkInstance::new(algorithms::shor(55, 2).0));
            out.push(BenchmarkInstance::new(algorithms::shor(69, 4).0));
            out.push(BenchmarkInstance::new(algorithms::jellium(2, 2).0));
            out.push(BenchmarkInstance::new(algorithms::jellium(3, 2).0));
            out.push(BenchmarkInstance::new(
                algorithms::supremacy(4, 4, 10, 2020).0,
            ));
            out.push(BenchmarkInstance::new(
                algorithms::supremacy(5, 4, 10, 2020).0,
            ));
        }
        BenchmarkScale::Full => {
            out.push(BenchmarkInstance::new(algorithms::qft(16, true)));
            out.push(BenchmarkInstance::new(algorithms::qft(32, true)));
            out.push(BenchmarkInstance::new(algorithms::qft(48, true)));
            out.push(BenchmarkInstance::new(algorithms::grover(20, 2020)));
            out.push(BenchmarkInstance::new(algorithms::grover(25, 2020)));
            out.push(BenchmarkInstance::new(algorithms::grover(30, 2020)));
            out.push(BenchmarkInstance::new(algorithms::grover(35, 2020)));
            out.push(BenchmarkInstance::new(algorithms::shor(33, 2).0));
            out.push(BenchmarkInstance::new(algorithms::shor(55, 2).0));
            out.push(BenchmarkInstance::new(algorithms::shor(69, 4).0));
            out.push(BenchmarkInstance::new(algorithms::shor(221, 4).0));
            out.push(BenchmarkInstance::new(algorithms::shor(247, 4).0));
            out.push(BenchmarkInstance::new(algorithms::jellium(2, 2).0));
            out.push(BenchmarkInstance::new(algorithms::jellium(3, 2).0));
            out.push(BenchmarkInstance::new(
                algorithms::supremacy(4, 4, 10, 2020).0,
            ));
            out.push(BenchmarkInstance::new(
                algorithms::supremacy(5, 4, 10, 2020).0,
            ));
            out.push(BenchmarkInstance::new(
                algorithms::supremacy(5, 5, 10, 2020).0,
            ));
        }
    }
    out
}

/// One measured row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Number of qubits.
    pub qubits: u16,
    /// Size of the dense representation (`2^n` amplitudes), reported even
    /// when the vector-based run hits the memory budget.
    pub vector_size: u128,
    /// Prefix-sum construction plus sampling time for the vector-based
    /// method, or `None` on memory-out ("MO" in the paper).
    pub vector_time: Option<Duration>,
    /// Number of nodes of the final state decision diagram, or `None` when
    /// the governed DD run was aborted (see [`dd_failure`](Self::dd_failure)).
    pub dd_size: Option<u128>,
    /// Sampler-compilation (flat-arena + downstream-probability) plus
    /// sampling time for the DD-based method; `None` on a governed abort.
    pub dd_time: Option<Duration>,
    /// Strong-simulation time for the DD backend (not part of Table I, but
    /// reported for transparency); `None` on a governed abort.
    pub dd_strong_time: Option<Duration>,
    /// The governed failure that aborted the DD run, if any: memory-out
    /// ("MO"), deadline ("TO") or cancellation ("CA").  Mirrors how the
    /// paper reports vector-backend memory-outs — a cell, not an error.
    pub dd_failure: Option<RunError>,
    /// Number of samples drawn.
    pub shots: u64,
    /// Package table statistics of the DD run: unique-table sharing rate and
    /// compute-cache hit/miss/eviction counters (see [`dd::DdStats`]).
    pub dd_stats: Option<dd::DdStats>,
}

impl Table1Row {
    /// `log2` of the DD size, matching the `~ 2^x` annotation of the paper;
    /// `None` when the governed DD run was aborted.
    #[must_use]
    pub fn dd_size_log2(&self) -> Option<f64> {
        self.dd_size.map(|size| (size as f64).log2())
    }

    /// The Table I cell reporting the aborted DD run: `"MO"` for a
    /// node/byte budget abort, `"TO"` for a deadline abort, `"CA"` for a
    /// cancellation; `None` when the run completed.
    #[must_use]
    pub fn dd_failure_cell(&self) -> Option<&'static str> {
        match self.dd_failure {
            Some(RunError::DdMemoryOut(_)) => Some("MO"),
            Some(RunError::Deadline(_)) => Some("TO"),
            Some(RunError::Cancelled(_)) => Some("CA"),
            _ => None,
        }
    }
}

/// Measures one benchmark with both samplers.
///
/// The DD-based run is governed by `dd_governor` (armed fresh for this row):
/// a benchmark whose diagram blows the node/byte budget or whose
/// construction outlives the timeout is reported as an "MO"/"TO" cell —
/// exactly how the paper reports vector-backend memory-outs — instead of
/// aborting the whole table.
///
/// # Errors
///
/// Returns an error only if the circuit itself is invalid; a vector-backend
/// memory-out and a governed DD abort are both reported in the row, not as
/// errors.
pub fn run_table1_row(
    instance: &BenchmarkInstance,
    shots: u64,
    budget: MemoryBudget,
    dd_governor: &RunGovernor,
    seed: u64,
) -> Result<Table1Row, RunError> {
    let qubits = instance.circuit.num_qubits();

    // DD-based run; under a limited governor it can abort with MO/TO/CA,
    // which becomes a reported cell rather than a fatal error.
    let (dd_size, dd_time, dd_strong_time, dd_stats, dd_failure) =
        match WeakSimulator::new(Backend::DecisionDiagram)
            .with_governor(dd_governor.clone())
            .run(&instance.circuit, shots, seed)
        {
            Ok(outcome) => (
                Some(outcome.representation_size),
                Some(outcome.weak_time()),
                Some(outcome.strong_time),
                outcome.dd_stats,
                None,
            ),
            Err(
                failure @ (RunError::DdMemoryOut(_)
                | RunError::Deadline(_)
                | RunError::Cancelled(_)),
            ) => (None, None, None, None, Some(failure)),
            Err(other) => return Err(other),
        };

    // Vector-based run, which may hit the memory budget.
    let vector_time = match WeakSimulator::new(Backend::StateVector)
        .with_memory_budget(budget)
        .run(&instance.circuit, shots, seed)
    {
        Ok(outcome) => Some(outcome.weak_time()),
        Err(RunError::MemoryOut { .. }) => None,
        Err(other) => return Err(other),
    };

    Ok(Table1Row {
        name: instance.name.clone(),
        qubits,
        vector_size: 1u128 << qubits,
        vector_time,
        dd_size,
        dd_time,
        dd_strong_time,
        dd_failure,
        shots,
        dd_stats,
    })
}

/// Renders measured rows in the layout of Table I, extended with the DD
/// package's table statistics (node-sharing and compute-cache hit rates of
/// the construction phase).
#[must_use]
pub fn format_table(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>6} | {:>14} {:>12} | {:>12} {:>10} {:>12} {:>8} {:>8}",
        "benchmark",
        "qubits",
        "vec size",
        "vec t [s]",
        "DD size",
        "DD t [s]",
        "DD strong [s]",
        "uniq%",
        "cache%"
    );
    let _ = writeln!(out, "{}", "-".repeat(118));
    for row in rows {
        let vector_time = match row.vector_time {
            Some(t) => format!("{:.2}", t.as_secs_f64()),
            None => "MO".to_string(),
        };
        let (unique_rate, cache_rate) = match &row.dd_stats {
            Some(stats) => (
                format!("{:.1}", 100.0 * stats.vector_unique_hit_rate()),
                format!("{:.1}", 100.0 * stats.compute_hit_rate()),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        // A governed DD abort renders as its MO/TO/CA cell in the time
        // column, mirroring the paper's treatment of vector memory-outs.
        let (dd_size, dd_time, dd_strong) = match (row.dd_size, row.dd_time, row.dd_strong_time) {
            (Some(size), Some(time), Some(strong)) => (
                format!("{} ~2^{:.1}", size, (size as f64).log2()),
                format!("{:.2}", time.as_secs_f64()),
                format!("{:.2}", strong.as_secs_f64()),
            ),
            _ => (
                "-".to_string(),
                row.dd_failure_cell().unwrap_or("-").to_string(),
                "-".to_string(),
            ),
        };
        let _ = writeln!(
            out,
            "{:<22} {:>6} | {:>14} {:>12} | {:>12} {:>10} {:>12} {:>8} {:>8}",
            row.name,
            row.qubits,
            format!("2^{}", row.qubits),
            vector_time,
            dd_size,
            dd_time,
            dd_strong,
            unique_rate,
            cache_rate,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_benchmarks_cover_every_family() {
        let names: Vec<String> = table1_benchmarks(BenchmarkScale::Smoke)
            .into_iter()
            .map(|b| b.name)
            .collect();
        for prefix in ["qft_", "grover_", "shor_", "jellium_", "supremacy_"] {
            assert!(
                names.iter().any(|n| n.starts_with(prefix)),
                "missing family {prefix} in {names:?}"
            );
        }
    }

    #[test]
    fn full_benchmark_set_matches_the_paper() {
        let names: Vec<String> = table1_benchmarks(BenchmarkScale::Full)
            .into_iter()
            .map(|b| b.name)
            .collect();
        assert_eq!(names.len(), 17);
        for expected in [
            "qft_16",
            "qft_32",
            "qft_48",
            "grover_20",
            "grover_25",
            "grover_30",
            "grover_35",
            "shor_33_2",
            "shor_55_2",
            "shor_69_4",
            "shor_221_4",
            "shor_247_4",
            "jellium_2x2",
            "jellium_3x3",
            "supremacy_4x4_10",
            "supremacy_5x4_10",
            "supremacy_5x5_10",
        ] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn running_a_smoke_row_produces_sensible_numbers() {
        let instance = BenchmarkInstance {
            name: "qft_8".into(),
            circuit: algorithms::qft(8, true),
        };
        let row = run_table1_row(
            &instance,
            2_000,
            MemoryBudget::unlimited(),
            &RunGovernor::unlimited(),
            1,
        )
        .expect("row runs");
        assert_eq!(row.qubits, 8);
        assert_eq!(row.vector_size, 256);
        assert_eq!(row.dd_size, Some(8)); // product state
        assert!(row.vector_time.is_some());
        assert!(row.dd_failure.is_none());
        assert_eq!(row.shots, 2_000);
        let log2 = row.dd_size_log2().expect("dd column present");
        assert!((log2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn memory_out_is_reported_not_fatal() {
        let instance = BenchmarkInstance {
            name: "qft_16".into(),
            circuit: algorithms::qft(16, true),
        };
        let row = run_table1_row(
            &instance,
            100,
            MemoryBudget::from_bytes(64),
            &RunGovernor::unlimited(),
            1,
        )
        .expect("row");
        assert!(row.vector_time.is_none());
        assert!(row.dd_size.expect("dd column present") > 0);
        let table = format_table(&[row]);
        assert!(table.contains("MO"));
    }

    #[test]
    fn dd_budget_abort_renders_as_mo_cell() {
        let instance = BenchmarkInstance {
            name: "qft_12".into(),
            circuit: algorithms::qft(12, true),
        };
        let governor = RunGovernor::unlimited().with_node_budget(4);
        let row = run_table1_row(&instance, 100, MemoryBudget::unlimited(), &governor, 1)
            .expect("governed abort becomes row data, not an error");
        assert!(row.dd_size.is_none());
        assert!(row.dd_time.is_none());
        assert_eq!(row.dd_failure_cell(), Some("MO"));
        assert!(matches!(row.dd_failure, Some(RunError::DdMemoryOut(_))));
        let table = format_table(&[row]);
        assert!(
            table.contains("MO"),
            "table should print the MO cell:\n{table}"
        );
    }

    #[test]
    fn format_table_lists_every_row() {
        let instance = BenchmarkInstance {
            name: "ghz_4".into(),
            circuit: algorithms::ghz(4),
        };
        let row = run_table1_row(
            &instance,
            100,
            MemoryBudget::unlimited(),
            &RunGovernor::unlimited(),
            0,
        )
        .unwrap();
        let text = format_table(&[row.clone(), row]);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("ghz_4"));
        assert!(text.contains("benchmark"));
    }
}

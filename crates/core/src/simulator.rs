//! The unified weak-simulation front end.
//!
//! # Static vs. dynamic routing
//!
//! [`WeakSimulator::run`] inspects the circuit once:
//!
//! * **Static** circuits (no mid-circuit measurement, no reset — see
//!   [`Circuit::is_dynamic`]) go through strong simulation followed by the
//!   one-pass batched sampler, exactly as in the paper.  A trailing block of
//!   `measure` operations is allowed: it is split off and applied as a
//!   qubit→classical-bit relabelling of the sampled bitstrings, so circuits
//!   imported from QASM with a terminal `measure q -> c;` stay on the fast
//!   path.
//! * **Dynamic** circuits — mid-circuit measurement, reset or
//!   classically-conditioned gates (`if (c==k)` feed-forward) — are handed
//!   to the [`trajectory`](crate::trajectory) engine, which simulates
//!   shot-by-shot with collapse at each measurement or reset and resolves
//!   each condition against the shot's classical record, reusing the same
//!   SplitMix64 chunk-seeding scheme so the result is seed-deterministic
//!   independent of the worker-thread count.

use crate::artifact::{ArtifactCache, CacheOutcome, SimArtifact};
use crate::govern::{Interruption, RunGovernor};
use crate::router::{RoutePlan, Routed, RunRoute};
use crate::ShotHistogram;
use circuit::{Circuit, NoiseModel, Qubit};
use dd::{DdError, DdPackage, DdStats, StateDd};
use mathkit::hash_mix;
use statevector::{MemoryBudget, StateVector};
use std::fmt;
use std::time::{Duration, Instant};

/// The simulation backend used for strong simulation and sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Edge-weighted decision diagrams with single-path sampling — the
    /// method proposed by the paper (Section IV).
    #[default]
    DecisionDiagram,
    /// Dense state vector with prefix-sum / binary-search sampling — the
    /// baseline method (Section III).
    StateVector,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::DecisionDiagram => write!(f, "DD-based"),
            Backend::StateVector => write!(f, "vector-based"),
        }
    }
}

/// Error returned by [`WeakSimulator::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The circuit failed validation.
    InvalidCircuit(circuit::ValidateCircuitError),
    /// The dense amplitude array would exceed the memory budget (only the
    /// [`Backend::StateVector`] backend can fail this way; this is the "MO"
    /// of Table I).
    MemoryOut {
        /// Number of qubits of the requested simulation.
        num_qubits: u16,
        /// Bytes the amplitude array would need.
        required_bytes: u128,
    },
    /// Strong simulation was requested for a dynamic circuit: the state
    /// after a mid-circuit measurement, reset or classically-conditioned
    /// gate depends on sampled outcomes, so there is no single final state.
    /// Use [`WeakSimulator::run`], which routes dynamic circuits through the
    /// trajectory engine.
    DynamicCircuit {
        /// Index of the first non-unitary or conditioned operation.
        op_index: usize,
    },
    /// The attached noise model is malformed: a channel parameter outside
    /// `[0, 1]`, or a qubit-specific channel on a qubit outside the circuit.
    InvalidNoise(circuit::NoiseModelError),
    /// The decision-diagram package exceeded its governed node/byte budget —
    /// after garbage collection and cache shrinking failed to relieve the
    /// pressure — or a node arena overflowed.  This is the "MO" of Table I
    /// for the DD backend; the carried [`DdError`] holds the structured
    /// report (live nodes, approximate bytes, op index reached).
    DdMemoryOut(DdError),
    /// The run's governed wall-clock deadline expired (the "TO" of a
    /// timeout-limited Table I run).
    Deadline(DdError),
    /// The run was cancelled through its
    /// [`CancelToken`](dd::CancelToken).
    Cancelled(DdError),
    /// The service broker shed this request before admitting it to a cold
    /// build: every construction slot was busy, and the bounded queue was
    /// full or the estimated wait exceeded the request's deadline (see
    /// [`crate::service::ServiceBroker`]).  Shedding happens *immediately* —
    /// the request consumed no strong-simulation resources — so the client
    /// can retry against another replica or back off.  Warm cache hits are
    /// never shed.
    Overloaded {
        /// Requests already queued for a construction slot at shed time.
        queue_depth: usize,
        /// Estimated wait for a slot, from the broker's moving average of
        /// recent build times.
        estimated_wait: Duration,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidCircuit(e) => write!(f, "invalid circuit: {e}"),
            RunError::MemoryOut {
                num_qubits,
                required_bytes,
            } => write!(
                f,
                "memory out: a {num_qubits}-qubit dense state vector needs {required_bytes} bytes"
            ),
            RunError::DynamicCircuit { op_index } => write!(
                f,
                "operation {op_index} is a mid-circuit measurement/reset/conditioned gate; strong simulation is undefined for dynamic circuits (use run, which simulates trajectories)"
            ),
            RunError::InvalidNoise(e) => write!(f, "invalid noise model: {e}"),
            RunError::DdMemoryOut(e) | RunError::Deadline(e) | RunError::Cancelled(e) => {
                write!(f, "{e}")
            }
            RunError::Overloaded {
                queue_depth,
                estimated_wait,
            } => write!(
                f,
                "service overloaded: {queue_depth} request(s) queued for a construction slot, \
                 estimated wait {:.3} s; request shed before admission",
                estimated_wait.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::DdMemoryOut(e) | RunError::Deadline(e) | RunError::Cancelled(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DdError> for RunError {
    fn from(e: DdError) -> Self {
        match e {
            DdError::Deadline { .. } => RunError::Deadline(e),
            DdError::Cancelled { .. } => RunError::Cancelled(e),
            DdError::MemoryOut { .. } | DdError::ArenaOverflow { .. } => RunError::DdMemoryOut(e),
            // The front end validates circuits up front and routes dynamic
            // ones through the trajectory engine, so these two cannot escape
            // it; map them to the dynamic-circuit error they describe.
            DdError::NonUnitaryOperation { .. } | DdError::ConditionedOperation { .. } => {
                RunError::DynamicCircuit { op_index: 0 }
            }
        }
    }
}

impl From<statevector::SimulateError> for RunError {
    fn from(e: statevector::SimulateError) -> Self {
        match e {
            statevector::SimulateError::InvalidCircuit(e) => RunError::InvalidCircuit(e),
            statevector::SimulateError::MemoryOut {
                num_qubits,
                required_bytes,
                ..
            } => RunError::MemoryOut {
                num_qubits,
                required_bytes,
            },
            statevector::SimulateError::NonUnitaryOperation { op_index } => {
                RunError::DynamicCircuit { op_index }
            }
        }
    }
}

impl From<dd::ApplyError> for RunError {
    fn from(e: dd::ApplyError) -> Self {
        match e {
            dd::ApplyError::InvalidCircuit(e) => RunError::InvalidCircuit(e),
            dd::ApplyError::NonUnitaryOperation { op_index } => {
                RunError::DynamicCircuit { op_index }
            }
            dd::ApplyError::Dd(e) => RunError::from(e),
        }
    }
}

/// The result of strong simulation, kept so repeated sampling does not redo
/// the simulation itself.
///
/// Cross-call reuse of the *compiled sampler* lives one layer up: a
/// [`SimArtifact`] detaches the sampler from the package entirely and an
/// [`ArtifactCache`] shares it across runs, so the strong state carries no
/// lazily-filled sampler cell — each direct [`WeakSimulator::sample`] call
/// compiles afresh.
#[derive(Debug)]
pub enum StrongState {
    /// A decision-diagram state together with its owning package.
    DecisionDiagram {
        /// The package owning the nodes.
        package: Box<DdPackage>,
        /// The final state.
        state: StateDd,
    },
    /// A dense state vector.
    StateVector(StateVector),
}

impl StrongState {
    /// The backend that produced (and can sample) this state.
    #[must_use]
    pub fn backend(&self) -> Backend {
        match self {
            StrongState::DecisionDiagram { .. } => Backend::DecisionDiagram,
            StrongState::StateVector(_) => Backend::StateVector,
        }
    }

    /// The number of qubits of the state.
    #[must_use]
    pub fn num_qubits(&self) -> u16 {
        match self {
            StrongState::DecisionDiagram { state, .. } => state.num_qubits(),
            StrongState::StateVector(v) => v.num_qubits(),
        }
    }

    /// The exact measurement probability of a basis state.
    #[must_use]
    pub fn probability(&self, index: u64) -> f64 {
        match self {
            StrongState::DecisionDiagram { package, state, .. } => {
                state.probability(package, index)
            }
            StrongState::StateVector(v) => v.probability(index),
        }
    }

    /// The size of the representation: decision-diagram node count or number
    /// of dense amplitudes (the two "size" columns of Table I).
    #[must_use]
    pub fn representation_size(&self) -> u128 {
        match self {
            StrongState::DecisionDiagram { package, state, .. } => {
                state.node_count(package) as u128
            }
            StrongState::StateVector(v) => v.len() as u128,
        }
    }

    /// The owning package's table statistics (unique-table and compute-cache
    /// hit/miss/eviction counters); `None` for the dense backend.
    #[must_use]
    pub fn dd_stats(&self) -> Option<DdStats> {
        match self {
            StrongState::DecisionDiagram { package, .. } => Some(package.stats()),
            StrongState::StateVector(_) => None,
        }
    }
}

/// Timing and output of one weak-simulation run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The backend that produced this outcome.
    pub backend: Backend,
    /// Aggregated samples: full-register measurements for circuits without
    /// explicit `measure` operations, classical-register values otherwise.
    pub histogram: ShotHistogram,
    /// Time spent on strong simulation (not reported in Table I, but useful;
    /// zero for trajectory runs, where strong and weak simulation
    /// interleave).
    pub strong_time: Duration,
    /// Time spent on the sampling precomputation (prefix sums, downstream
    /// probabilities or trajectory planning).
    pub precompute_time: Duration,
    /// Time spent drawing the samples (for dynamic circuits: running the
    /// trajectories).
    pub sampling_time: Duration,
    /// Representation size (DD nodes or dense amplitudes; for trajectory
    /// runs the peak over the cached per-trajectory states).
    pub representation_size: u128,
    /// Decision-diagram package statistics — unique-table and compute-cache
    /// hit/miss/eviction counters — for DD-backend runs (for trajectory
    /// runs: summed over all worker packages); `None` on the dense backend.
    pub dd_stats: Option<DdStats>,
    /// The final strong-simulation state, for follow-up queries.  `None`
    /// for dynamic circuits, whose final state differs per trajectory.
    pub state: Option<StrongState>,
    /// Set when a governed trajectory run was interrupted (budget, deadline
    /// or cancellation): the histogram then holds only the shots completed
    /// before the interruption.  Always `None` for static runs, which fail
    /// with a [`RunError`] instead — they have no partial result to keep.
    pub interruption: Option<Interruption>,
    /// Which engine executed each contiguous segment of the circuit.
    /// Unrouted runs (the default) report a single segment on the configured
    /// backend; runs under [`WeakSimulator::with_clifford_router`] may report
    /// a tableau-only route or a tableau-prefix + dense-suffix stitch.
    pub route: RunRoute,
    /// Whether an attached [`ArtifactCache`] served this run
    /// ([`CacheOutcome::Hit`]: no strong simulation ran) or was populated by
    /// it ([`CacheOutcome::Miss`]).  `None` when no cache was consulted — no
    /// cache attached, or the request was cache-ineligible (noisy or
    /// dynamic).
    pub cache: Option<CacheOutcome>,
}

impl RunOutcome {
    /// The combined precompute + sampling time — the quantity reported in the
    /// `t [s]` columns of Table I.
    #[must_use]
    pub fn weak_time(&self) -> Duration {
        self.precompute_time + self.sampling_time
    }

    /// The strong-simulation state of a static run.
    ///
    /// # Panics
    ///
    /// Panics for trajectory (dynamic-circuit) runs, which have no single
    /// final state, and for cache *hits*, which skip strong simulation
    /// entirely (check [`RunOutcome::cache`], or query the shared
    /// [`SimArtifact`] instead).
    #[must_use]
    pub fn strong(&self) -> &StrongState {
        // The panic is this accessor's documented contract.
        #[allow(clippy::expect_used)]
        self.state
            .as_ref()
            .expect("dynamic-circuit runs have no single final state")
    }
}

/// A weak simulator: strong simulation followed by measurement sampling on
/// the chosen [`Backend`], optionally under a stochastic noise model.
///
/// # Examples
///
/// ```
/// use weaksim::{Backend, WeakSimulator};
///
/// let circuit = algorithms::ghz(4);
/// let mut sim = WeakSimulator::new(Backend::StateVector);
/// let outcome = sim.run(&circuit, 500, 1)?;
/// assert_eq!(outcome.histogram.shots(), 500);
/// # Ok::<(), weaksim::RunError>(())
/// ```
///
/// Emulating noisy hardware:
///
/// ```
/// use circuit::{NoiseChannel, NoiseModel};
/// use weaksim::{Backend, WeakSimulator};
///
/// let circuit = algorithms::ghz(3);
/// let noise = NoiseModel::new().with_gate_noise(NoiseChannel::depolarizing(0.02));
/// let mut sim = WeakSimulator::new(Backend::DecisionDiagram).with_noise(noise);
/// let outcome = sim.run(&circuit, 500, 1)?;
/// assert!(outcome.state.is_none(), "noisy runs have no single final state");
/// # Ok::<(), weaksim::RunError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WeakSimulator {
    backend: Backend,
    memory_budget: MemoryBudget,
    noise: Option<NoiseModel>,
    governor: RunGovernor,
    threads: Option<usize>,
    construction_threads: Option<usize>,
    clifford_router: bool,
    cache: Option<ArtifactCache>,
}

impl WeakSimulator {
    /// Creates a simulator for the given backend with an unlimited memory
    /// budget, no noise and an unlimited run governor.
    #[must_use]
    pub fn new(backend: Backend) -> Self {
        Self {
            backend,
            memory_budget: MemoryBudget::unlimited(),
            noise: None,
            governor: RunGovernor::unlimited(),
            threads: None,
            construction_threads: None,
            clifford_router: false,
            cache: None,
        }
    }

    /// Attaches an [`ArtifactCache`]: noise-free static [`run`](Self::run)
    /// requests are then served through shared [`SimArtifact`]s — a warm
    /// request skips strong simulation and sampler preparation entirely and
    /// pays only the per-shot sampling cost, with a histogram bit-identical
    /// to the uncached run for the same seed.  [`RunOutcome::cache`] reports
    /// whether the artifact was found or built.
    ///
    /// The handle is shared: clone one cache into many simulators (or hand
    /// it to many threads) and they serve each other's requests.  Noisy and
    /// dynamic requests bypass the cache — their per-shot evolution has no
    /// reusable prepared sampler.
    #[must_use]
    pub fn with_cache(mut self, cache: &ArtifactCache) -> Self {
        self.cache = Some(cache.clone());
        self
    }

    /// Enables the segmented Clifford router (see [`crate::router`]):
    /// noiseless [`run`](Self::run) calls then execute fully-Clifford
    /// circuits on the polynomial-time stabilizer-tableau engine, fold a
    /// basis-state Clifford prefix into the dense backend where cheap, and
    /// fall back to whole-circuit dense execution otherwise.
    /// [`RunOutcome::route`] reports which engine(s) executed each segment.
    ///
    /// Routing never changes the sampled distribution, but tableau-routed
    /// outcomes carry no dense [`RunOutcome::state`] (calling
    /// [`RunOutcome::strong`] on them panics) and report the stabilizer
    /// generator count as their representation size.  Runs with an effective
    /// [noise model](Self::with_noise) bypass the router entirely.
    #[must_use]
    pub fn with_clifford_router(mut self) -> Self {
        self.clifford_router = true;
        self
    }

    /// Restricts the dense-vector backend to the given memory budget.
    /// Decision diagrams grow with the state's structure, not with `2^n`, so
    /// this up-front check never applies to them; to bound *their* memory
    /// use a [`RunGovernor`] node/byte budget instead
    /// (see [`with_governor`](Self::with_governor)).
    #[must_use]
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.memory_budget = budget;
        self
    }

    /// Attaches a [`RunGovernor`]: every subsequent run (and
    /// [`strong`](Self::strong) call) is armed with its node/byte budgets,
    /// gets the full timeout from the moment it starts, and honours the
    /// attached cancellation token.  Static runs that hit a limit fail with
    /// [`RunError::DdMemoryOut`] / [`RunError::Deadline`] /
    /// [`RunError::Cancelled`]; interrupted *trajectory* runs instead return
    /// the completed shots with [`RunOutcome::interruption`] set.
    #[must_use]
    pub fn with_governor(mut self, governor: RunGovernor) -> Self {
        self.governor = governor;
        self
    }

    /// The attached run governor specification.
    #[must_use]
    pub fn governor(&self) -> &RunGovernor {
        &self.governor
    }

    /// Overrides the worker-thread count used for trajectory runs (default:
    /// the rayon pool size).  Histograms are bit-identical across thread
    /// counts for completed runs; `threads == 1` additionally makes
    /// *interrupted* runs deterministic, because a single worker's stop
    /// point does not depend on cross-worker timing.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Fans every gate's decision-diagram construction out over `threads`
    /// construction workers (`0` means one worker per available CPU).
    ///
    /// Strong simulation on the decision-diagram backend decomposes each
    /// matrix–vector multiply into independent sub-cones computed on
    /// worker-private table shards and canonically re-merged, so the built
    /// diagram — root edge, node ids and table statistics — is bit-identical
    /// for every worker count (see the `dd::parallel` module docs).  The
    /// default, and the statevector backend in every case, constructs
    /// sequentially.
    #[must_use]
    pub fn with_construction_threads(mut self, threads: usize) -> Self {
        self.construction_threads = Some(threads);
        self
    }

    /// Attaches a stochastic noise model: every [`run`](Self::run) realizes
    /// the model's channels per shot through the trajectory engine (a noisy
    /// circuit is dynamic by definition — its evolution depends on sampled
    /// noise choices — even when the circuit itself is static).
    ///
    /// A model without any non-trivial channel changes nothing: static
    /// circuits keep the one-pass sampling fast path.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = Some(noise);
        self
    }

    /// The backend of this simulator.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The attached noise model, if any.
    #[must_use]
    pub fn noise(&self) -> Option<&NoiseModel> {
        self.noise.as_ref()
    }

    /// Runs strong simulation only.
    ///
    /// Any attached noise model is ignored: strong simulation produces the
    /// single *ideal* final state, which a stochastic channel does not have
    /// (use [`run`](Self::run), which realizes noise per trajectory).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidCircuit`] for malformed circuits,
    /// [`RunError::MemoryOut`] when the dense backend exceeds its budget and
    /// [`RunError::DynamicCircuit`] for circuits containing mid-circuit
    /// measurement or reset (their final state is trajectory-dependent).
    /// Under a limited [governor](Self::with_governor), the decision-diagram
    /// backend can additionally fail with [`RunError::DdMemoryOut`],
    /// [`RunError::Deadline`] or [`RunError::Cancelled`].
    pub fn strong(&self, circuit: &Circuit) -> Result<StrongState, RunError> {
        self.backend.engine().strong(
            circuit,
            self.memory_budget,
            &self.governor,
            self.construction_threads,
        )
    }

    /// Runs weak simulation: `shots` measurement samples drawn with a
    /// deterministic RNG seeded by `seed`.
    ///
    /// Static circuits (including those ending in a trailing `measure`
    /// block) go through one strong simulation followed by batched sampling;
    /// dynamic circuits (mid-circuit measurement or reset — see
    /// [`Circuit::is_dynamic`]) are simulated trajectory-by-trajectory via
    /// [`crate::trajectory`].  When a [noise model](Self::with_noise) with
    /// at least one non-trivial channel is attached, *every* circuit runs
    /// through the trajectory engine — noisy circuits are dynamic by
    /// definition, their evolution depends on the sampled noise choices.
    /// Either way the histogram is seed-deterministic independent of the
    /// worker-thread count.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidCircuit`] for malformed circuits,
    /// [`RunError::InvalidNoise`] for malformed noise models and
    /// [`RunError::MemoryOut`] when the dense backend exceeds its budget.
    /// Under a limited [governor](Self::with_governor), a *static* run that
    /// hits a limit fails with [`RunError::DdMemoryOut`],
    /// [`RunError::Deadline`] or [`RunError::Cancelled`]; an interrupted
    /// *trajectory* run instead returns `Ok` with
    /// [`RunOutcome::interruption`] set and the completed shots in the
    /// histogram.
    pub fn run(
        &mut self,
        circuit: &Circuit,
        shots: u64,
        seed: u64,
    ) -> Result<RunOutcome, RunError> {
        // Validate the *whole* circuit (and noise model) up front: the
        // static path below only strong-simulates the unitary prefix, which
        // would let a malformed trailing measurement block slip through
        // unchecked.
        circuit.validate().map_err(RunError::InvalidCircuit)?;
        if let Some(model) = &self.noise {
            model
                .validate_for(circuit.num_qubits())
                .map_err(RunError::InvalidNoise)?;
        }
        let noise_free = !self.noise.as_ref().is_some_and(|model| model.has_noise());

        // Cache-eligible requests — noise-free and static — are served
        // through the artifact layer when a cache is attached.  Noisy and
        // dynamic circuits fall through: their per-shot evolution has no
        // reusable prepared sampler.
        if noise_free && !circuit.is_dynamic() {
            if let Some(cache) = self.cache.clone() {
                return self.run_cached(&cache, circuit, shots, seed);
            }
        }

        if self.clifford_router && noise_free {
            match crate::router::route(circuit, self.backend, shots, seed)? {
                Routed::Tableau(outcome) => return Ok(*outcome),
                Routed::Stitched { stitched, route } => {
                    return self.run_dense(&stitched, shots, seed, route);
                }
                Routed::Dense => {}
            }
        }
        self.run_dense(
            circuit,
            shots,
            seed,
            RunRoute::dense(self.backend, circuit.len()),
        )
    }

    /// The cache key for a `run` request on `circuit` under this simulator's
    /// configuration: the circuit fingerprint folded with everything else
    /// that changes the prepared sampler — backend choice, the
    /// Clifford-router flag, and the attached noise model (whose *presence*
    /// is tagged separately from its content, so "no noise" and "noise-free
    /// model attached" still collide onto the same artifact only when both
    /// produce identical simulations).
    ///
    /// Two simulators with equal `request_fingerprint`s for a circuit serve
    /// each other's cached artifacts; any angle-bit, register-layout,
    /// backend or noise difference yields a different key.
    #[must_use]
    pub fn request_fingerprint(&self, circuit: &Circuit) -> [u64; 2] {
        let [mut a, mut b] = circuit.fingerprint();
        let config = u64::from(self.backend as u8) << 8 | u64::from(self.clifford_router);
        a = hash_mix(a, config);
        b = hash_mix(b, config ^ 0x9e37_79b9_7f4a_7c15);
        match self.noise.as_ref().filter(|model| model.has_noise()) {
            Some(model) => {
                let [na, nb] = model.fingerprint();
                a = hash_mix(hash_mix(a, 1), na);
                b = hash_mix(hash_mix(b, 1), nb);
            }
            None => {
                a = hash_mix(a, 0);
                b = hash_mix(b, 0);
            }
        }
        [a, b]
    }

    /// Serves a cache-eligible request through the artifact layer: look the
    /// request fingerprint up, build-and-insert on a miss, then sample the
    /// shared artifact.  The returned histogram is bit-identical to the
    /// uncached run for the same seed on both hits and misses.
    fn run_cached(
        &self,
        cache: &ArtifactCache,
        circuit: &Circuit,
        shots: u64,
        seed: u64,
    ) -> Result<RunOutcome, RunError> {
        let key = self.request_fingerprint(circuit);
        if let Some(artifact) = cache.get(key) {
            return Ok(outcome_from_artifact(
                &artifact,
                shots,
                seed,
                CacheOutcome::Hit,
                None,
            ));
        }

        let (artifact, state) = self.prepare_artifact(circuit)?;
        let artifact = cache.insert(key, artifact);
        Ok(outcome_from_artifact(
            &artifact,
            shots,
            seed,
            CacheOutcome::Miss,
            state,
        ))
    }

    /// Builds the [`SimArtifact`] for a validated, noise-free, static
    /// `circuit`, mirroring the routing semantics of [`run`](Self::run)
    /// exactly: the router (when enabled) may serve a fully-Clifford circuit
    /// from a tableau sampler or stitch a Clifford prefix, and a tableau
    /// rejection degrades to the dense path just like the uncached run.
    ///
    /// Also returns the [`StrongState`] when the dense path built one, so a
    /// cache miss can still expose [`RunOutcome::strong`].
    pub(crate) fn prepare_artifact(
        &self,
        circuit: &Circuit,
    ) -> Result<(SimArtifact, Option<StrongState>), RunError> {
        if self.clifford_router {
            match crate::router::route_plan(circuit, self.backend) {
                RoutePlan::FullyClifford => {
                    if let Some(artifact) =
                        crate::router::prepare_tableau_artifact(circuit, self.backend)
                    {
                        return Ok((artifact, None));
                    }
                    // Tableau rejection (unsupported structure) degrades to
                    // dense, mirroring `route`'s fallback.
                }
                RoutePlan::Stitched { stitched, route } => {
                    return self.prepare_dense_artifact(&stitched, route);
                }
                RoutePlan::Dense => {}
            }
        }
        self.prepare_dense_artifact(circuit, RunRoute::dense(self.backend, circuit.len()))
    }

    /// The dense arm of [`prepare_artifact`]: strong-simulate the unitary
    /// prefix and compile the backend's prepared sampler into an artifact.
    fn prepare_dense_artifact(
        &self,
        circuit: &Circuit,
        route: RunRoute,
    ) -> Result<(SimArtifact, Option<StrongState>), RunError> {
        // `split_terminal_measurements` returns `None` only for dynamic
        // circuits, which the cache hook already filtered out.
        let (prefix, mapping) = circuit
            .split_terminal_measurements()
            .ok_or(RunError::DynamicCircuit { op_index: 0 })?;
        let strong_start = Instant::now();
        let state = self.strong(&prefix)?;
        let strong_time = strong_start.elapsed();
        let artifact =
            SimArtifact::from_dense(&state, mapping, circuit.num_clbits(), route, strong_time)?;
        Ok((artifact, Some(state)))
    }

    /// The dense (non-tableau) execution path shared by unrouted, stitched
    /// and fallback runs: the pre-router body of [`run`](Self::run).  The
    /// caller has already validated `circuit` (stitched circuits are valid
    /// by construction) and chosen the `route` to report.
    fn run_dense(
        &self,
        circuit: &Circuit,
        shots: u64,
        seed: u64,
        route: RunRoute,
    ) -> Result<RunOutcome, RunError> {
        let noise = self.noise.as_ref().filter(|model| model.has_noise());

        // Measure-free noiseless circuits — every classic benchmark — skip
        // the prefix-splitting clone entirely.
        if noise.is_none() && !circuit.is_dynamic() && !circuit.has_measurements() {
            let strong_start = Instant::now();
            let state = self.strong(circuit)?;
            let strong_time = strong_start.elapsed();
            let (histogram, precompute_time, sampling_time) =
                Self::sample_with_record(&state, shots, seed, None)?;
            return Ok(RunOutcome {
                backend: self.backend,
                representation_size: state.representation_size(),
                dd_stats: state.dd_stats(),
                histogram,
                strong_time,
                precompute_time,
                sampling_time,
                state: Some(state),
                interruption: None,
                route,
                cache: None,
            });
        }

        let terminal_split = if noise.is_none() {
            circuit.split_terminal_measurements()
        } else {
            // Noisy runs always take the trajectory engine: even a trailing
            // measurement block needs its per-shot noise realization.
            None
        };
        let Some((prefix, mapping)) = terminal_split else {
            let outcome = crate::trajectory::run_trajectories(
                self.backend,
                circuit,
                noise,
                shots,
                seed,
                self.threads.unwrap_or_else(rayon::current_num_threads),
                self.memory_budget,
                &self.governor,
            )?;
            return Ok(RunOutcome {
                backend: self.backend,
                representation_size: outcome.representation_size,
                dd_stats: outcome.dd_stats,
                histogram: outcome.histogram,
                strong_time: Duration::ZERO,
                precompute_time: outcome.precompute_time,
                sampling_time: outcome.sampling_time,
                state: None,
                interruption: outcome.interruption,
                route,
                cache: None,
            });
        };

        let strong_start = Instant::now();
        let state = self.strong(&prefix)?;
        let strong_time = strong_start.elapsed();
        let record = if mapping.is_empty() {
            None
        } else {
            Some((mapping.as_slice(), circuit.num_clbits()))
        };
        let (histogram, precompute_time, sampling_time) =
            Self::sample_with_record(&state, shots, seed, record)?;
        Ok(RunOutcome {
            backend: self.backend,
            representation_size: state.representation_size(),
            dd_stats: state.dd_stats(),
            histogram,
            strong_time,
            precompute_time,
            sampling_time,
            state: Some(state),
            interruption: None,
            route,
            cache: None,
        })
    }

    /// Draws `shots` samples from an already strong-simulated state.
    ///
    /// Returns the histogram together with the precomputation time (prefix
    /// sums or sampler compilation) and the pure sampling time.  On the
    /// decision-diagram backend the sampler is compiled *per call*; to reuse
    /// a compiled sampler across calls (or threads, or runs), go through the
    /// artifact layer instead — [`SimArtifact`] owns the long-lived arena
    /// and [`ArtifactCache`] shares it across requests.
    ///
    /// The decision-diagram path draws the batch on every available worker
    /// thread; the output is deterministic for a given `seed` regardless of
    /// the thread count (see the `dd` crate docs for the seeding scheme).
    /// Shot counts are drawn in bounded batches, so any `u64` count works
    /// even where `usize` is 32 bits.
    ///
    /// # Errors
    ///
    /// Sampler compilation runs under the governor of the package that
    /// produced `state`: on a governed state it can fail with
    /// [`RunError::Deadline`] or [`RunError::Cancelled`] (compilation
    /// allocates no decision-diagram nodes, so budgets cannot trip here).
    /// Ungoverned states never fail.
    pub fn sample(
        state: &StrongState,
        shots: u64,
        seed: u64,
    ) -> Result<(ShotHistogram, Duration, Duration), RunError> {
        Self::sample_with_record(state, shots, seed, None)
    }

    /// [`sample`](Self::sample), optionally relabelling each sampled
    /// bitstring through a trailing-measurement `(qubit, cbit)` mapping into
    /// a `width`-bit classical record.
    fn sample_with_record(
        state: &StrongState,
        shots: u64,
        seed: u64,
        record: Option<(&[(Qubit, u16)], u16)>,
    ) -> Result<(ShotHistogram, Duration, Duration), RunError> {
        state
            .backend()
            .engine()
            .sample_with_record(state, shots, seed, record)
    }
}

/// Builds the [`RunOutcome`] for a request served from a prepared artifact,
/// shared by the in-simulator cache path and the service broker.  Builder
/// outcomes ([`CacheOutcome::Miss`]) report the artifact's build times (and
/// carry the strong state when the dense path produced one); hit and
/// coalesced outcomes paid only the per-shot draw.
pub(crate) fn outcome_from_artifact(
    artifact: &SimArtifact,
    shots: u64,
    seed: u64,
    cache: CacheOutcome,
    state: Option<StrongState>,
) -> RunOutcome {
    let sampling_start = Instant::now();
    let histogram = artifact.sample(shots, seed);
    let sampling_time = sampling_start.elapsed();
    let (strong_time, precompute_time) = match cache {
        CacheOutcome::Miss => (
            artifact.build_strong_time(),
            artifact.build_precompute_time(),
        ),
        // A warm or coalesced request pays nothing but the per-shot draw:
        // strong simulation and sampler preparation were amortized into the
        // artifact by the build that published it.
        CacheOutcome::Hit | CacheOutcome::Coalesced => (Duration::ZERO, Duration::ZERO),
    };
    RunOutcome {
        backend: artifact.backend(),
        representation_size: artifact.representation_size(),
        dd_stats: artifact.dd_stats(),
        histogram,
        strong_time,
        precompute_time,
        sampling_time,
        state,
        interruption: None,
        route: artifact.route().clone(),
        cache: Some(cache),
    }
}

/// Relabels a full-register sample through the trailing-measurement mapping:
/// classical bit `c` receives the sampled value of qubit `q` for every
/// `(q, c)` pair, later pairs overwriting earlier ones.
pub(crate) fn map_terminal_record(sample: u64, mapping: &[(Qubit, u16)]) -> u64 {
    let mut out = 0u64;
    for &(qubit, cbit) in mapping {
        let bit = ((sample >> qubit.0) & 1) as u8;
        out = crate::trajectory::record_bit(out, cbit, bit);
    }
    out
}

impl Default for WeakSimulator {
    fn default() -> Self {
        Self::new(Backend::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Qubit;

    #[test]
    fn both_backends_agree_on_a_ghz_circuit() {
        let circuit = algorithms::ghz(5);
        let shots = 20_000;
        let dd_outcome = WeakSimulator::new(Backend::DecisionDiagram)
            .run(&circuit, shots, 3)
            .unwrap();
        let sv_outcome = WeakSimulator::new(Backend::StateVector)
            .run(&circuit, shots, 3)
            .unwrap();
        for outcome in [&dd_outcome, &sv_outcome] {
            assert_eq!(outcome.histogram.shots(), shots);
            // Only the all-zeros and all-ones strings occur.
            assert!(outcome
                .histogram
                .counts()
                .keys()
                .all(|&k| k == 0 || k == 0b11111));
            let zero_freq = outcome.histogram.frequency(0);
            assert!(
                (zero_freq - 0.5).abs() < 0.02,
                "{} {zero_freq}",
                outcome.backend
            );
        }
        // The DD is much smaller than the dense vector.
        assert!(dd_outcome.representation_size < sv_outcome.representation_size);
    }

    #[test]
    fn memory_budget_produces_memory_out_only_for_vectors() {
        let circuit = algorithms::qft(18, true);
        let budget = MemoryBudget::from_bytes(1024);
        let vector = WeakSimulator::new(Backend::StateVector)
            .with_memory_budget(budget)
            .run(&circuit, 10, 0);
        assert!(matches!(vector, Err(RunError::MemoryOut { .. })));

        let dd = WeakSimulator::new(Backend::DecisionDiagram)
            .with_memory_budget(budget)
            .run(&circuit, 10, 0);
        assert!(dd.is_ok());
    }

    #[test]
    fn invalid_circuits_are_rejected_by_both_backends() {
        let mut c = Circuit::new(1);
        c.h(Qubit(5));
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let result = WeakSimulator::new(backend).run(&c, 1, 0);
            assert!(matches!(result, Err(RunError::InvalidCircuit(_))));
        }
    }

    #[test]
    fn outcome_reports_timings_and_sizes() {
        let circuit = algorithms::qft(10, true);
        let outcome = WeakSimulator::new(Backend::DecisionDiagram)
            .run(&circuit, 100, 7)
            .unwrap();
        assert_eq!(outcome.representation_size, 10); // product state: 1 node/qubit
        assert!(outcome.weak_time() >= outcome.sampling_time);
        assert_eq!(outcome.strong().num_qubits(), 10);
        let sv = WeakSimulator::new(Backend::StateVector)
            .run(&circuit, 100, 7)
            .unwrap();
        assert_eq!(sv.representation_size, 1 << 10);
    }

    #[test]
    fn strong_state_probability_queries_match() {
        let circuit = algorithms::bell_pair();
        let dd = WeakSimulator::new(Backend::DecisionDiagram)
            .strong(&circuit)
            .unwrap();
        let sv = WeakSimulator::new(Backend::StateVector)
            .strong(&circuit)
            .unwrap();
        for i in 0..4 {
            assert!((dd.probability(i) - sv.probability(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let circuit = algorithms::w_state(4);
        let mut sim = WeakSimulator::new(Backend::DecisionDiagram);
        let a = sim.run(&circuit, 1000, 11).unwrap();
        let b = sim.run(&circuit, 1000, 11).unwrap();
        assert_eq!(a.histogram, b.histogram);
        let c = sim.run(&circuit, 1000, 12).unwrap();
        assert_ne!(a.histogram, c.histogram);
    }

    #[test]
    fn backend_display_names() {
        assert_eq!(Backend::DecisionDiagram.to_string(), "DD-based");
        assert_eq!(Backend::StateVector.to_string(), "vector-based");
    }

    #[test]
    fn cached_runs_hit_after_a_miss_and_stay_bit_identical() {
        let circuit = algorithms::ghz(8);
        let cache = ArtifactCache::unbounded();
        let mut cached = WeakSimulator::new(Backend::DecisionDiagram).with_cache(&cache);
        let mut uncached = WeakSimulator::new(Backend::DecisionDiagram);

        let cold = cached.run(&circuit, 2000, 5).unwrap();
        assert_eq!(cold.cache, Some(CacheOutcome::Miss));
        assert!(
            cold.state.is_some(),
            "a miss still exposes the strong state"
        );

        let warm = cached.run(&circuit, 2000, 5).unwrap();
        assert_eq!(warm.cache, Some(CacheOutcome::Hit));
        assert!(warm.state.is_none(), "a hit never rebuilds the state");
        assert_eq!(warm.strong_time, Duration::ZERO);
        assert_eq!(warm.precompute_time, Duration::ZERO);

        let plain = uncached.run(&circuit, 2000, 5).unwrap();
        assert_eq!(plain.cache, None, "no cache attached, none consulted");
        assert_eq!(cold.histogram, plain.histogram, "miss matches uncached");
        assert_eq!(warm.histogram, plain.histogram, "hit matches uncached");

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        // A second simulator sharing the cache handle hits immediately.
        let shared = WeakSimulator::new(Backend::DecisionDiagram)
            .with_cache(&cache)
            .run(&circuit, 2000, 5)
            .unwrap();
        assert_eq!(shared.cache, Some(CacheOutcome::Hit));
        assert_eq!(shared.histogram, plain.histogram);
    }

    #[test]
    fn trailing_measurements_stay_on_the_static_path_and_relabel_bits() {
        // GHZ with the measurement order swapped: c0 <- q1, c1 <- q0, and
        // qubit 2 never read.  Records are 2 bits wide, only 00 and 11 occur.
        let mut circuit = algorithms::ghz(3);
        circuit.measure(Qubit(1), 0).measure(Qubit(0), 1);
        assert!(!circuit.is_dynamic());
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let outcome = WeakSimulator::new(backend).run(&circuit, 4000, 9).unwrap();
            assert_eq!(outcome.histogram.num_qubits(), 2);
            assert!(outcome
                .histogram
                .counts()
                .keys()
                .all(|&k| k == 0 || k == 0b11));
            assert!((outcome.histogram.frequency(0) - 0.5).abs() < 0.03);
            // The static path keeps the pre-measurement strong state.
            assert_eq!(outcome.strong().num_qubits(), 3);
        }
    }

    #[test]
    fn dynamic_circuits_route_through_the_trajectory_engine() {
        let mut circuit = Circuit::new(2);
        circuit
            .h(Qubit(0))
            .measure(Qubit(0), 0)
            // Copy the collapsed value onto qubit 1, then read it out.
            .cx(Qubit(0), Qubit(1))
            .measure(Qubit(1), 1);
        assert!(circuit.is_dynamic());
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let outcome = WeakSimulator::new(backend).run(&circuit, 4000, 21).unwrap();
            assert!(outcome.state.is_none(), "trajectory runs keep no state");
            // Both bits always agree: only records 00 and 11.
            assert!(outcome
                .histogram
                .counts()
                .keys()
                .all(|&k| k == 0 || k == 0b11));
            assert!((outcome.histogram.frequency(0b11) - 0.5).abs() < 0.03);
        }
    }

    #[test]
    fn run_validates_the_trailing_measurement_block() {
        // The static path strong-simulates only the unitary prefix; a bad
        // qubit or clbit in the terminal measure block must still error
        // instead of silently producing a zero bit.
        let mut bad_qubit = Circuit::new(2);
        bad_qubit.h(Qubit(0)).measure(Qubit(5), 0);
        let mut bad_cbit = Circuit::new(2);
        bad_cbit.h(Qubit(0)).push(circuit::Operation::Measure {
            qubit: Qubit(0),
            cbit: 7,
        });
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            for circuit in [&bad_qubit, &bad_cbit] {
                let result = WeakSimulator::new(backend).run(circuit, 10, 0);
                assert!(
                    matches!(result, Err(RunError::InvalidCircuit(_))),
                    "{backend}"
                );
            }
        }
    }

    #[test]
    fn strong_rejects_dynamic_circuits() {
        let mut circuit = Circuit::new(1);
        circuit.h(Qubit(0)).reset(Qubit(0));
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let result = WeakSimulator::new(backend).strong(&circuit);
            assert!(
                matches!(result, Err(RunError::DynamicCircuit { op_index: 1 })),
                "{backend}"
            );
        }
    }

    #[test]
    fn memory_budget_applies_to_dynamic_vector_runs() {
        let mut circuit = Circuit::new(18);
        circuit.h(Qubit(0)).reset(Qubit(0));
        let budget = MemoryBudget::from_bytes(1024);
        let vector = WeakSimulator::new(Backend::StateVector)
            .with_memory_budget(budget)
            .run(&circuit, 10, 0);
        assert!(matches!(vector, Err(RunError::MemoryOut { .. })));
        let dd = WeakSimulator::new(Backend::DecisionDiagram)
            .with_memory_budget(budget)
            .run(&circuit, 10, 0);
        assert!(dd.is_ok());
    }

    #[test]
    fn terminal_record_mapping_overwrites_in_order() {
        use super::map_terminal_record;
        // q0 -> c0, then q1 -> c0: the later pair wins.
        let mapping = [(Qubit(0), 0), (Qubit(1), 0)];
        assert_eq!(map_terminal_record(0b01, &mapping), 0);
        assert_eq!(map_terminal_record(0b10, &mapping), 1);
        // Unmapped qubits are dropped.
        let mapping = [(Qubit(2), 1)];
        assert_eq!(map_terminal_record(0b100, &mapping), 0b10);
        assert_eq!(map_terminal_record(0b011, &mapping), 0);
    }
}

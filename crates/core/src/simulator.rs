//! The unified weak-simulation front end.

use crate::ShotHistogram;
use circuit::Circuit;
use dd::{CompiledSampler, DdPackage, StateDd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use statevector::{MemoryBudget, PrefixSampler, StateVector};
use std::fmt;
use std::time::{Duration, Instant};

/// The simulation backend used for strong simulation and sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Edge-weighted decision diagrams with single-path sampling — the
    /// method proposed by the paper (Section IV).
    #[default]
    DecisionDiagram,
    /// Dense state vector with prefix-sum / binary-search sampling — the
    /// baseline method (Section III).
    StateVector,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::DecisionDiagram => write!(f, "DD-based"),
            Backend::StateVector => write!(f, "vector-based"),
        }
    }
}

/// Error returned by [`WeakSimulator::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The circuit failed validation.
    InvalidCircuit(circuit::ValidateCircuitError),
    /// The dense amplitude array would exceed the memory budget (only the
    /// [`Backend::StateVector`] backend can fail this way; this is the "MO"
    /// of Table I).
    MemoryOut {
        /// Number of qubits of the requested simulation.
        num_qubits: u16,
        /// Bytes the amplitude array would need.
        required_bytes: u128,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidCircuit(e) => write!(f, "invalid circuit: {e}"),
            RunError::MemoryOut {
                num_qubits,
                required_bytes,
            } => write!(
                f,
                "memory out: a {num_qubits}-qubit dense state vector needs {required_bytes} bytes"
            ),
        }
    }
}

impl std::error::Error for RunError {}

impl From<statevector::SimulateError> for RunError {
    fn from(e: statevector::SimulateError) -> Self {
        match e {
            statevector::SimulateError::InvalidCircuit(e) => RunError::InvalidCircuit(e),
            statevector::SimulateError::MemoryOut {
                num_qubits,
                required_bytes,
                ..
            } => RunError::MemoryOut {
                num_qubits,
                required_bytes,
            },
        }
    }
}

impl From<dd::ApplyError> for RunError {
    fn from(e: dd::ApplyError) -> Self {
        match e {
            dd::ApplyError::InvalidCircuit(e) => RunError::InvalidCircuit(e),
        }
    }
}

/// The result of strong simulation, kept so repeated sampling does not redo
/// the expensive part.
#[derive(Debug)]
pub enum StrongState {
    /// A decision-diagram state together with its owning package.
    DecisionDiagram {
        /// The package owning the nodes.
        package: Box<DdPackage>,
        /// The final state.
        state: StateDd,
    },
    /// A dense state vector.
    StateVector(StateVector),
}

impl StrongState {
    /// The number of qubits of the state.
    #[must_use]
    pub fn num_qubits(&self) -> u16 {
        match self {
            StrongState::DecisionDiagram { state, .. } => state.num_qubits(),
            StrongState::StateVector(v) => v.num_qubits(),
        }
    }

    /// The exact measurement probability of a basis state.
    #[must_use]
    pub fn probability(&self, index: u64) -> f64 {
        match self {
            StrongState::DecisionDiagram { package, state } => state.probability(package, index),
            StrongState::StateVector(v) => v.probability(index),
        }
    }

    /// The size of the representation: decision-diagram node count or number
    /// of dense amplitudes (the two "size" columns of Table I).
    #[must_use]
    pub fn representation_size(&self) -> u128 {
        match self {
            StrongState::DecisionDiagram { package, state } => state.node_count(package) as u128,
            StrongState::StateVector(v) => v.len() as u128,
        }
    }
}

/// Timing and output of one weak-simulation run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The backend that produced this outcome.
    pub backend: Backend,
    /// Aggregated measurement samples.
    pub histogram: ShotHistogram,
    /// Time spent on strong simulation (not reported in Table I, but useful).
    pub strong_time: Duration,
    /// Time spent on the sampling precomputation (prefix sums or downstream
    /// probabilities).
    pub precompute_time: Duration,
    /// Time spent drawing the samples.
    pub sampling_time: Duration,
    /// Representation size (DD nodes or dense amplitudes).
    pub representation_size: u128,
    /// The final strong-simulation state, for follow-up queries.
    pub state: StrongState,
}

impl RunOutcome {
    /// The combined precompute + sampling time — the quantity reported in the
    /// `t [s]` columns of Table I.
    #[must_use]
    pub fn weak_time(&self) -> Duration {
        self.precompute_time + self.sampling_time
    }
}

/// A weak simulator: strong simulation followed by measurement sampling on
/// the chosen [`Backend`].
///
/// # Examples
///
/// ```
/// use weaksim::{Backend, WeakSimulator};
///
/// let circuit = algorithms::ghz(4);
/// let mut sim = WeakSimulator::new(Backend::StateVector);
/// let outcome = sim.run(&circuit, 500, 1)?;
/// assert_eq!(outcome.histogram.shots(), 500);
/// # Ok::<(), weaksim::RunError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WeakSimulator {
    backend: Backend,
    memory_budget: MemoryBudget,
}

impl WeakSimulator {
    /// Creates a simulator for the given backend with an unlimited memory
    /// budget.
    #[must_use]
    pub fn new(backend: Backend) -> Self {
        Self {
            backend,
            memory_budget: MemoryBudget::unlimited(),
        }
    }

    /// Restricts the dense-vector backend to the given memory budget
    /// (decision diagrams are never budgeted; they grow with the state's
    /// structure, not with `2^n`).
    #[must_use]
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.memory_budget = budget;
        self
    }

    /// The backend of this simulator.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Runs strong simulation only.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidCircuit`] for malformed circuits and
    /// [`RunError::MemoryOut`] when the dense backend exceeds its budget.
    pub fn strong(&self, circuit: &Circuit) -> Result<StrongState, RunError> {
        match self.backend {
            Backend::DecisionDiagram => {
                let mut package = Box::new(DdPackage::new());
                let state = dd::simulate(&mut package, circuit)?;
                Ok(StrongState::DecisionDiagram { package, state })
            }
            Backend::StateVector => {
                let state = statevector::simulate_with_budget(circuit, self.memory_budget)?;
                Ok(StrongState::StateVector(state))
            }
        }
    }

    /// Runs strong simulation followed by `shots` measurement samples drawn
    /// with a deterministic RNG seeded by `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidCircuit`] for malformed circuits and
    /// [`RunError::MemoryOut`] when the dense backend exceeds its budget.
    pub fn run(
        &mut self,
        circuit: &Circuit,
        shots: u64,
        seed: u64,
    ) -> Result<RunOutcome, RunError> {
        let strong_start = Instant::now();
        let state = self.strong(circuit)?;
        let strong_time = strong_start.elapsed();
        let (histogram, precompute_time, sampling_time) = Self::sample(&state, shots, seed);
        Ok(RunOutcome {
            backend: self.backend,
            representation_size: state.representation_size(),
            histogram,
            strong_time,
            precompute_time,
            sampling_time,
            state,
        })
    }

    /// Draws `shots` samples from an already strong-simulated state.
    ///
    /// Returns the histogram together with the precomputation time (prefix
    /// sums or sampler compilation) and the pure sampling time.
    ///
    /// The decision-diagram path compiles the state into a
    /// [`CompiledSampler`] and draws the batch on every available worker
    /// thread; the output is deterministic for a given `seed` regardless of
    /// the thread count (see the `dd` crate docs for the seeding scheme).
    #[must_use]
    pub fn sample(
        state: &StrongState,
        shots: u64,
        seed: u64,
    ) -> (ShotHistogram, Duration, Duration) {
        match state {
            StrongState::DecisionDiagram { package, state } => {
                let precompute_start = Instant::now();
                let sampler = CompiledSampler::new(package, state);
                let precompute_time = precompute_start.elapsed();

                let sampling_start = Instant::now();
                let samples = sampler.sample_many_parallel(
                    seed,
                    usize::try_from(shots).expect("shot count fits in usize"),
                );
                let mut histogram = ShotHistogram::new(state.num_qubits());
                histogram.record_many(&samples);
                (histogram, precompute_time, sampling_start.elapsed())
            }
            StrongState::StateVector(vector) => {
                let mut rng = StdRng::seed_from_u64(seed);
                let precompute_start = Instant::now();
                let sampler = PrefixSampler::new(vector);
                let precompute_time = precompute_start.elapsed();

                let sampling_start = Instant::now();
                let mut histogram = ShotHistogram::new(vector.num_qubits());
                for _ in 0..shots {
                    histogram.record(sampler.sample(&mut rng));
                }
                (histogram, precompute_time, sampling_start.elapsed())
            }
        }
    }
}

impl Default for WeakSimulator {
    fn default() -> Self {
        Self::new(Backend::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Qubit;

    #[test]
    fn both_backends_agree_on_a_ghz_circuit() {
        let circuit = algorithms::ghz(5);
        let shots = 20_000;
        let dd_outcome = WeakSimulator::new(Backend::DecisionDiagram)
            .run(&circuit, shots, 3)
            .unwrap();
        let sv_outcome = WeakSimulator::new(Backend::StateVector)
            .run(&circuit, shots, 3)
            .unwrap();
        for outcome in [&dd_outcome, &sv_outcome] {
            assert_eq!(outcome.histogram.shots(), shots);
            // Only the all-zeros and all-ones strings occur.
            assert!(outcome
                .histogram
                .counts()
                .keys()
                .all(|&k| k == 0 || k == 0b11111));
            let zero_freq = outcome.histogram.frequency(0);
            assert!(
                (zero_freq - 0.5).abs() < 0.02,
                "{} {zero_freq}",
                outcome.backend
            );
        }
        // The DD is much smaller than the dense vector.
        assert!(dd_outcome.representation_size < sv_outcome.representation_size);
    }

    #[test]
    fn memory_budget_produces_memory_out_only_for_vectors() {
        let circuit = algorithms::qft(18, true);
        let budget = MemoryBudget::from_bytes(1024);
        let vector = WeakSimulator::new(Backend::StateVector)
            .with_memory_budget(budget)
            .run(&circuit, 10, 0);
        assert!(matches!(vector, Err(RunError::MemoryOut { .. })));

        let dd = WeakSimulator::new(Backend::DecisionDiagram)
            .with_memory_budget(budget)
            .run(&circuit, 10, 0);
        assert!(dd.is_ok());
    }

    #[test]
    fn invalid_circuits_are_rejected_by_both_backends() {
        let mut c = Circuit::new(1);
        c.h(Qubit(5));
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let result = WeakSimulator::new(backend).run(&c, 1, 0);
            assert!(matches!(result, Err(RunError::InvalidCircuit(_))));
        }
    }

    #[test]
    fn outcome_reports_timings_and_sizes() {
        let circuit = algorithms::qft(10, true);
        let outcome = WeakSimulator::new(Backend::DecisionDiagram)
            .run(&circuit, 100, 7)
            .unwrap();
        assert_eq!(outcome.representation_size, 10); // product state: 1 node/qubit
        assert!(outcome.weak_time() >= outcome.sampling_time);
        assert_eq!(outcome.state.num_qubits(), 10);
        let sv = WeakSimulator::new(Backend::StateVector)
            .run(&circuit, 100, 7)
            .unwrap();
        assert_eq!(sv.representation_size, 1 << 10);
    }

    #[test]
    fn strong_state_probability_queries_match() {
        let circuit = algorithms::bell_pair();
        let dd = WeakSimulator::new(Backend::DecisionDiagram)
            .strong(&circuit)
            .unwrap();
        let sv = WeakSimulator::new(Backend::StateVector)
            .strong(&circuit)
            .unwrap();
        for i in 0..4 {
            assert!((dd.probability(i) - sv.probability(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let circuit = algorithms::w_state(4);
        let mut sim = WeakSimulator::new(Backend::DecisionDiagram);
        let a = sim.run(&circuit, 1000, 11).unwrap();
        let b = sim.run(&circuit, 1000, 11).unwrap();
        assert_eq!(a.histogram, b.histogram);
        let c = sim.run(&circuit, 1000, 12).unwrap();
        assert_ne!(a.histogram, c.histogram);
    }

    #[test]
    fn backend_display_names() {
        assert_eq!(Backend::DecisionDiagram.to_string(), "DD-based");
        assert_eq!(Backend::StateVector.to_string(), "vector-based");
    }
}

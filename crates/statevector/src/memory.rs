//! Memory budgeting for dense simulation.
//!
//! The evaluation of the reproduced paper reports "MO" (memory out) for the
//! vector-based sampler whenever the explicit amplitude array no longer fits
//! the machine (e.g. `qft_32`, `qft_48`, `grover_35` on a 32 GiB host).
//! [`MemoryBudget`] lets the experiment harness reproduce that behaviour
//! deterministically and without actually exhausting host memory.

/// A limit on the number of bytes the dense amplitude array may occupy.
///
/// # Examples
///
/// ```
/// use statevector::MemoryBudget;
///
/// // The paper's 32 GiB machine cannot hold a 32-qubit state vector
/// // (2^32 amplitudes * 16 bytes = 64 GiB).
/// let budget = MemoryBudget::from_gib(32);
/// assert!(budget.allows(MemoryBudget::state_vector_bytes(30)));
/// assert!(!budget.allows(MemoryBudget::state_vector_bytes(32)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    bytes: u64,
}

/// Size of one complex amplitude in bytes (two `f64`s).
const AMPLITUDE_BYTES: u128 = 16;

impl MemoryBudget {
    /// A budget that never triggers a memory-out.
    #[must_use]
    pub fn unlimited() -> Self {
        Self { bytes: u64::MAX }
    }

    /// A budget of exactly `bytes` bytes.
    #[must_use]
    pub fn from_bytes(bytes: u64) -> Self {
        Self { bytes }
    }

    /// A budget of `gib` GiB.
    #[must_use]
    pub fn from_gib(gib: u32) -> Self {
        Self {
            bytes: u64::from(gib) * 1024 * 1024 * 1024,
        }
    }

    /// The budget in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The number of bytes a dense `num_qubits`-qubit state vector needs.
    #[must_use]
    pub fn state_vector_bytes(num_qubits: u16) -> u128 {
        AMPLITUDE_BYTES << num_qubits
    }

    /// The number of bytes the prefix-sum array (one `f64` per amplitude)
    /// needs on top of the state vector.
    #[must_use]
    pub fn prefix_array_bytes(num_qubits: u16) -> u128 {
        8u128 << num_qubits
    }

    /// Returns `true` if an allocation of `required` bytes fits the budget.
    #[must_use]
    pub fn allows(&self, required: u128) -> bool {
        required <= u128::from(self.bytes)
    }
}

impl Default for MemoryBudget {
    /// The default budget mirrors the paper's testbed: 32 GiB of RAM.
    fn default() -> Self {
        Self::from_gib(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_vector_sizes() {
        assert_eq!(MemoryBudget::state_vector_bytes(0), 16);
        assert_eq!(MemoryBudget::state_vector_bytes(10), 16 * 1024);
        assert_eq!(
            MemoryBudget::state_vector_bytes(32),
            64 * 1024 * 1024 * 1024
        );
    }

    #[test]
    fn paper_machine_thresholds() {
        // With 32 GiB, 31 qubits fit (32 GiB exactly) but 32 qubits do not.
        let budget = MemoryBudget::default();
        assert!(budget.allows(MemoryBudget::state_vector_bytes(31)));
        assert!(!budget.allows(MemoryBudget::state_vector_bytes(32)));
    }

    #[test]
    fn unlimited_always_allows() {
        assert!(MemoryBudget::unlimited().allows(MemoryBudget::state_vector_bytes(59)));
        assert!(!MemoryBudget::default().allows(MemoryBudget::state_vector_bytes(59)));
    }

    #[test]
    fn explicit_byte_budgets() {
        let b = MemoryBudget::from_bytes(1000);
        assert_eq!(b.bytes(), 1000);
        assert!(b.allows(1000));
        assert!(!b.allows(1001));
    }

    #[test]
    fn prefix_array_is_half_the_state_vector() {
        assert_eq!(
            MemoryBudget::prefix_array_bytes(20) * 2,
            MemoryBudget::state_vector_bytes(20)
        );
    }
}

//! Linear-traversal sampling and sampling conveniences.

use crate::StateVector;
use rand::Rng;
use std::collections::BTreeMap;

/// A sampler that draws each sample by a linear traversal of the probability
/// array (no precomputation).
///
/// This is the paper's "direct (linear) traversal, which takes `2^(n-1)`
/// steps on average" — it exists as the slowest baseline and because it can
/// stream over amplitudes that never fit in memory all at once.
///
/// # Examples
///
/// ```
/// use statevector::{LinearSampler, StateVector};
/// use rand::SeedableRng;
///
/// let sampler = LinearSampler::new(&StateVector::basis_state(3, 6));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert_eq!(sampler.sample(&mut rng), 6);
/// ```
#[derive(Debug, Clone)]
pub struct LinearSampler {
    probabilities: Vec<f64>,
    /// Total probability mass, summed once at construction.  Recomputing it
    /// per shot would silently turn `sample_many` from `O(shots * 2^(n-1))`
    /// average work into `O(shots * 3 * 2^(n-1))`.
    total: f64,
    /// Probability-array elements touched so far (construction + scans) —
    /// the hook for the complexity regression test.
    #[cfg(test)]
    visits: std::cell::Cell<u64>,
}

impl LinearSampler {
    /// Builds the sampler from a state vector (stores only probabilities).
    #[must_use]
    pub fn new(state: &StateVector) -> Self {
        Self::from_probabilities(state.probabilities())
    }

    /// Builds the sampler directly from a probability vector.
    #[must_use]
    pub fn from_probabilities(probabilities: Vec<f64>) -> Self {
        let total = probabilities.iter().sum();
        #[cfg(test)]
        let construction_visits = probabilities.len() as u64;
        Self {
            probabilities,
            total,
            #[cfg(test)]
            visits: std::cell::Cell::new(construction_visits),
        }
    }

    /// Draws one sample by scanning the probability array until the running
    /// sum exceeds a uniformly drawn threshold.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let threshold: f64 = rng.gen::<f64>() * self.total;
        let mut running = 0.0;
        for (i, &p) in self.probabilities.iter().enumerate() {
            #[cfg(test)]
            self.visits.set(self.visits.get() + 1);
            running += p;
            if running > threshold {
                return i as u64;
            }
        }
        (self.probabilities.len() - 1) as u64
    }

    /// Draws `shots` samples.
    #[must_use = "the samples are the result of the weak simulation"]
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, shots: usize) -> Vec<u64> {
        (0..shots).map(|_| self.sample(rng)).collect()
    }
}

/// Draws `shots` samples from `state` using the prefix-sum sampler and
/// returns them in draw order.
///
/// This is the convenience entry point for "vector-based weak simulation" as
/// evaluated in Table I of the paper.
#[must_use = "the samples are the result of the weak simulation"]
pub fn sample_many<R: Rng + ?Sized>(state: &StateVector, rng: &mut R, shots: usize) -> Vec<u64> {
    crate::PrefixSampler::new(state).sample_many(rng, shots)
}

/// Draws `shots` samples and aggregates them into a histogram keyed by basis
/// state index.
#[must_use = "the histogram is the result of the weak simulation"]
pub fn sample_counts<R: Rng + ?Sized>(
    state: &StateVector,
    rng: &mut R,
    shots: usize,
) -> BTreeMap<u64, u64> {
    let sampler = crate::PrefixSampler::new(state);
    let mut counts = BTreeMap::new();
    for _ in 0..shots {
        *counts.entry(sampler.sample(rng)).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use circuit::{Circuit, Qubit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_sampler_matches_prefix_sampler_distribution() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        c.h(Qubit(2));
        let state = simulate(&c).unwrap();
        let linear = LinearSampler::new(&state);
        let prefix = crate::PrefixSampler::new(&state);

        let shots = 50_000;
        let mut rng = StdRng::seed_from_u64(3);
        let mut linear_counts = [0u64; 8];
        for _ in 0..shots {
            linear_counts[linear.sample(&mut rng) as usize] += 1;
        }
        let mut prefix_counts = [0u64; 8];
        for _ in 0..shots {
            prefix_counts[prefix.sample(&mut rng) as usize] += 1;
        }
        for i in 0..8 {
            let expected = state.probability(i as u64);
            let lf = linear_counts[i] as f64 / shots as f64;
            let pf = prefix_counts[i] as f64 / shots as f64;
            assert!((lf - expected).abs() < 0.02, "linear index {i}");
            assert!((pf - expected).abs() < 0.02, "prefix index {i}");
        }
    }

    #[test]
    fn sample_counts_aggregates_all_shots() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        let state = simulate(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let counts = sample_counts(&state, &mut rng, 1000);
        assert_eq!(counts.values().sum::<u64>(), 1000);
        // Only |00> and |01> can appear.
        assert!(counts.keys().all(|&k| k == 0 || k == 1));
    }

    #[test]
    fn sample_many_returns_requested_number_of_shots() {
        let state = crate::StateVector::basis_state(2, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let samples = sample_many(&state, &mut rng, 37);
        assert_eq!(samples.len(), 37);
        assert!(samples.iter().all(|&s| s == 2));
    }

    #[test]
    fn linear_sampler_from_probabilities() {
        let sampler = LinearSampler::from_probabilities(vec![0.0, 0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            assert_eq!(sampler.sample(&mut rng), 2);
        }
    }

    #[test]
    fn linear_sampler_does_not_recompute_the_total_per_shot() {
        // Complexity regression: `sample_many` must do `O(2^n)` work once
        // (the constructor's total) plus an *average* of `2^(n-1)` scan
        // steps per shot.  The old behaviour — recomputing `total` inside
        // `sample` — adds a full `2^n` sweep per shot, pushing the count
        // past `shots * 2^n` and tripping the bound below.
        let len = 1u64 << 10;
        let sampler = LinearSampler::from_probabilities(vec![1.0 / len as f64; len as usize]);
        assert_eq!(sampler.visits.get(), len, "constructor sums once");

        let shots = 200u64;
        let mut rng = StdRng::seed_from_u64(17);
        let samples = sampler.sample_many(&mut rng, shots as usize);
        assert_eq!(samples.len(), shots as usize);

        let visits = sampler.visits.get();
        let budget = len + shots * (3 * len / 4);
        assert!(
            visits <= budget,
            "sample_many visited {visits} elements, budget {budget}: \
             the O(2^n) total recomputation is back in the per-shot path"
        );
    }
}

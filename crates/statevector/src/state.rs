//! The dense state vector.

use mathkit::{Complex, KahanSum};
use std::fmt;

/// A dense array of `2^n` complex amplitudes describing an `n`-qubit pure
/// state.
///
/// Qubit `k` is the `k`-th least significant bit of a basis-state index, so
/// basis state `|q_{n-1} ... q_1 q_0>` lives at index
/// `sum_k q_k * 2^k`.
///
/// # Examples
///
/// ```
/// use statevector::StateVector;
///
/// let state = StateVector::zero_state(2);
/// assert_eq!(state.amplitude(0).re, 1.0);
/// assert_eq!(state.probability(3), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: u16,
    amplitudes: Vec<Complex>,
}

impl StateVector {
    /// Creates the all-zeros computational basis state `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `2^num_qubits` entries do not fit in memory addressable by
    /// `usize` (i.e. `num_qubits >= 64` on 64-bit targets).
    #[must_use]
    pub fn zero_state(num_qubits: u16) -> Self {
        Self::basis_state(num_qubits, 0)
    }

    /// Creates the computational basis state `|index>`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_qubits` or the vector does not fit in
    /// addressable memory.
    #[must_use]
    pub fn basis_state(num_qubits: u16, index: u64) -> Self {
        let len = 1usize
            .checked_shl(u32::from(num_qubits))
            .expect("state vector too large for address space");
        assert!(
            (index as u128) < (1u128 << num_qubits),
            "basis state index {index} out of range for {num_qubits} qubits"
        );
        let mut amplitudes = vec![Complex::ZERO; len];
        amplitudes[usize::try_from(index).expect("index checked against range")] = Complex::ONE;
        Self {
            num_qubits,
            amplitudes,
        }
    }

    /// Creates a state from an explicit amplitude vector.
    ///
    /// # Panics
    ///
    /// Panics if the length of `amplitudes` is not a power of two.
    #[must_use]
    pub fn from_amplitudes(amplitudes: Vec<Complex>) -> Self {
        assert!(
            amplitudes.len().is_power_of_two(),
            "amplitude vector length must be a power of two, got {}",
            amplitudes.len()
        );
        let num_qubits = amplitudes.len().trailing_zeros() as u16;
        Self {
            num_qubits,
            amplitudes,
        }
    }

    /// The number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// The number of amplitudes (`2^n`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.amplitudes.len()
    }

    /// Returns `true` for the (degenerate) zero-qubit state of length 1.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    #[must_use]
    pub fn amplitude(&self, index: u64) -> Complex {
        self.amplitudes[usize::try_from(index).expect("index out of range")]
    }

    /// The measurement probability of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    #[must_use]
    pub fn probability(&self, index: u64) -> f64 {
        self.amplitude(index).norm_sqr()
    }

    /// A view of all amplitudes.
    #[must_use]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// A mutable view of all amplitudes (used by gate application).
    pub(crate) fn amplitudes_mut(&mut self) -> &mut [Complex] {
        &mut self.amplitudes
    }

    /// Replaces the amplitude storage (used by permutation application).
    pub(crate) fn replace_amplitudes(&mut self, amplitudes: Vec<Complex>) {
        debug_assert_eq!(amplitudes.len(), self.amplitudes.len());
        self.amplitudes = amplitudes;
    }

    /// The squared 2-norm of the state (1 for a valid quantum state).
    #[must_use]
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes
            .iter()
            .map(Complex::norm_sqr)
            .collect::<KahanSum>()
            .value()
    }

    /// Rescales the state to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the state is exactly zero.
    pub fn normalize(&mut self) {
        let norm = self.norm_sqr().sqrt();
        assert!(norm > 0.0, "cannot normalize the zero vector");
        for amp in &mut self.amplitudes {
            *amp = *amp / norm;
        }
    }

    /// The inner product `<self|other>`.
    ///
    /// # Panics
    ///
    /// Panics if the two states have different qubit counts.
    #[must_use]
    pub fn inner_product(&self, other: &StateVector) -> Complex {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "inner product requires equal qubit counts"
        );
        self.amplitudes
            .iter()
            .zip(&other.amplitudes)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// The fidelity `|<self|other>|^2`.
    ///
    /// # Panics
    ///
    /// Panics if the two states have different qubit counts.
    #[must_use]
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// The probability vector `p_i = |alpha_i|^2` as a fresh allocation.
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(Complex::norm_sqr).collect()
    }

    /// The marginal probability of measuring `1` on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    #[must_use]
    pub fn marginal_one_probability(&self, qubit: u16) -> f64 {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        let mask = 1usize << qubit;
        let mut sum = KahanSum::new();
        for (i, amp) in self.amplitudes.iter().enumerate() {
            if i & mask != 0 {
                sum.add(amp.norm_sqr());
            }
        }
        sum.value()
    }

    /// Overwrites this state with the contents of `other`, reusing the
    /// existing allocation (the per-shot reset of trajectory simulation,
    /// which would otherwise allocate a fresh `2^n` vector per shot).
    ///
    /// # Panics
    ///
    /// Panics if the two states have different qubit counts.
    pub fn copy_from(&mut self, other: &StateVector) {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "copy_from requires equal qubit counts"
        );
        self.amplitudes.copy_from_slice(&other.amplitudes);
    }

    /// Collapses `qubit` to `outcome` in place: zeroes the amplitudes of the
    /// other subspace and renormalizes the surviving projection to unit norm
    /// (the post-measurement state).
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range or the projected subspace carries
    /// no probability mass (the outcome is impossible).
    pub fn collapse_qubit(&mut self, qubit: u16, outcome: u8) {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        let mask = 1usize << qubit;
        let keep_set = outcome != 0;
        let mut mass = KahanSum::new();
        for (i, amp) in self.amplitudes.iter_mut().enumerate() {
            if (i & mask != 0) == keep_set {
                mass.add(amp.norm_sqr());
            } else {
                *amp = Complex::ZERO;
            }
        }
        let mass = mass.value();
        assert!(
            mass > 0.0,
            "measurement produced an outcome of probability zero"
        );
        let scale = 1.0 / mass.sqrt();
        for amp in &mut self.amplitudes {
            *amp = *amp * scale;
        }
    }

    /// Applies the amplitude-damping *no-decay* Kraus operator
    /// `K0 = diag(1, sqrt(1 - gamma))` to `qubit` in place and renormalizes
    /// to unit norm — the post-channel state of the branch in which the
    /// qubit did not relax.  (The decay branch is [`collapse_qubit`]
    /// (Self::collapse_qubit) to `1` followed by an `X` flip.)
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range, `gamma` is not a probability, or
    /// the no-decay branch carries no mass.
    pub fn damp_qubit_keep(&mut self, qubit: u16, gamma: f64) {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        assert!(
            (0.0..=1.0).contains(&gamma),
            "damping parameter {gamma} is not a probability"
        );
        let mask = 1usize << qubit;
        let keep = (1.0 - gamma).sqrt();
        let mut mass = KahanSum::new();
        for (i, amp) in self.amplitudes.iter_mut().enumerate() {
            if i & mask != 0 {
                *amp = *amp * keep;
            }
            mass.add(amp.norm_sqr());
        }
        let mass = mass.value();
        assert!(
            mass > 0.0,
            "amplitude-damping no-decay branch has zero mass"
        );
        let scale = 1.0 / mass.sqrt();
        for amp in &mut self.amplitudes {
            *amp = *amp * scale;
        }
    }
}

impl fmt::Display for StateVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "StateVector({} qubits)", self.num_qubits)?;
        for (i, amp) in self.amplitudes.iter().enumerate() {
            if amp.norm_sqr() > 1e-18 {
                writeln!(
                    f,
                    "  |{:0width$b}> : {amp}",
                    i,
                    width = usize::from(self.num_qubits)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_is_normalized_basis_zero() {
        let s = StateVector::zero_state(3);
        assert_eq!(s.len(), 8);
        assert_eq!(s.num_qubits(), 3);
        assert_eq!(s.amplitude(0), Complex::ONE);
        assert_eq!(s.probability(5), 0.0);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn basis_state_places_amplitude() {
        let s = StateVector::basis_state(3, 5);
        assert_eq!(s.amplitude(5), Complex::ONE);
        assert_eq!(s.probability(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_state_index_out_of_range_panics() {
        let _ = StateVector::basis_state(2, 4);
    }

    #[test]
    fn from_amplitudes_infers_qubits() {
        let h = mathkit::SQRT1_2;
        let s = StateVector::from_amplitudes(vec![
            Complex::from_real(h),
            Complex::ZERO,
            Complex::ZERO,
            Complex::from_real(h),
        ]);
        assert_eq!(s.num_qubits(), 2);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_amplitudes_rejects_non_power_of_two() {
        let _ = StateVector::from_amplitudes(vec![Complex::ONE; 3]);
    }

    #[test]
    fn normalize_rescales() {
        let mut s =
            StateVector::from_amplitudes(vec![Complex::new(3.0, 0.0), Complex::new(0.0, 4.0)]);
        s.normalize();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
        assert!((s.probability(0) - 0.36).abs() < 1e-12);
        assert!((s.probability(1) - 0.64).abs() < 1e-12);
    }

    #[test]
    fn inner_product_and_fidelity() {
        let a = StateVector::basis_state(2, 1);
        let b = StateVector::basis_state(2, 1);
        let c = StateVector::basis_state(2, 2);
        assert_eq!(a.inner_product(&b), Complex::ONE);
        assert_eq!(a.fidelity(&c), 0.0);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn marginal_probability() {
        let h = mathkit::SQRT1_2;
        // (|00> + |11>)/sqrt(2): each qubit is 1 with probability 1/2.
        let s = StateVector::from_amplitudes(vec![
            Complex::from_real(h),
            Complex::ZERO,
            Complex::ZERO,
            Complex::from_real(h),
        ]);
        assert!((s.marginal_one_probability(0) - 0.5).abs() < 1e-12);
        assert!((s.marginal_one_probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn collapse_qubit_projects_and_renormalizes() {
        let h = mathkit::SQRT1_2;
        // Bell pair: collapsing either qubit collapses its partner.
        for outcome in [0u8, 1u8] {
            let mut s = StateVector::from_amplitudes(vec![
                Complex::from_real(h),
                Complex::ZERO,
                Complex::ZERO,
                Complex::from_real(h),
            ]);
            s.collapse_qubit(0, outcome);
            let expected = if outcome == 1 { 3 } else { 0 };
            assert!((s.probability(expected) - 1.0).abs() < 1e-12);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn collapse_renormalizes_drifted_norm_states() {
        // Squared norm 0.25; collapse must still give a unit-norm state.
        let mut s =
            StateVector::from_amplitudes(vec![Complex::from_real(0.3), Complex::from_real(0.4)]);
        s.collapse_qubit(0, 1);
        assert!((s.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability zero")]
    fn collapsing_to_an_impossible_outcome_panics() {
        let mut s = StateVector::basis_state(2, 0);
        s.collapse_qubit(1, 1);
    }

    #[test]
    fn damp_qubit_keep_scales_the_one_branch_and_renormalizes() {
        let h = mathkit::SQRT1_2;
        // (|0> + |1>)/sqrt(2), gamma = 0.36: K0 -> (|0> + 0.8|1>)/sqrt(1.64).
        let mut s =
            StateVector::from_amplitudes(vec![Complex::from_real(h), Complex::from_real(h)]);
        s.damp_qubit_keep(0, 0.36);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert!((s.probability(1) - 0.64 / 1.64).abs() < 1e-12);

        // Entangled case mirrors the decision-diagram primitive.
        let mut bell = StateVector::from_amplitudes(vec![
            Complex::from_real(h),
            Complex::ZERO,
            Complex::ZERO,
            Complex::from_real(h),
        ]);
        bell.damp_qubit_keep(0, 0.5);
        assert!((bell.probability(0b00) - 0.5 / 0.75).abs() < 1e-12);
        assert!((bell.probability(0b11) - 0.25 / 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero mass")]
    fn fully_damping_a_pure_one_keep_branch_panics() {
        let mut s = StateVector::basis_state(1, 1);
        s.damp_qubit_keep(0, 1.0);
    }

    #[test]
    fn display_shows_nonzero_amplitudes() {
        let s = StateVector::basis_state(2, 2);
        let text = s.to_string();
        assert!(text.contains("|10>"));
        assert!(!text.contains("|01>"));
    }

    #[test]
    fn probabilities_vector() {
        let s = StateVector::basis_state(2, 3);
        assert_eq!(s.probabilities(), vec![0.0, 0.0, 0.0, 1.0]);
    }
}

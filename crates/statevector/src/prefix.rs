//! Prefix-sum construction and binary-search sampling (Section III of the
//! paper, Fig. 3).

use crate::StateVector;
use mathkit::KahanSum;
use rand::Rng;

/// A sampler that precomputes the prefix sums `r_i = sum_{k<=i} p_k` of the
/// output probability distribution and answers each sample with a binary
/// search, exactly as described in Section III of the paper.
///
/// Precomputation is `O(2^n)`; each sample costs `O(n)` comparisons.
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Qubit};
/// use statevector::{simulate, PrefixSampler};
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(1);
/// c.x(Qubit(0));
/// let sampler = PrefixSampler::new(&simulate(&c)?);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert_eq!(sampler.sample(&mut rng), 1); // the state is |1> with certainty
/// # Ok::<(), statevector::SimulateError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PrefixSampler {
    prefix: Vec<f64>,
    num_qubits: u16,
}

impl PrefixSampler {
    /// Builds the prefix-sum array from a state vector.
    ///
    /// The construction mirrors Fig. 3 of the paper: squared magnitudes of
    /// the amplitudes are accumulated left to right (with compensated
    /// summation so the final entry stays at 1 even for huge arrays).
    #[must_use]
    pub fn new(state: &StateVector) -> Self {
        let mut prefix = Vec::with_capacity(state.len());
        let mut running = KahanSum::new();
        for amp in state.amplitudes() {
            running.add(amp.norm_sqr());
            prefix.push(running.value());
        }
        Self {
            prefix,
            num_qubits: state.num_qubits(),
        }
    }

    /// Builds a sampler directly from a probability vector.
    ///
    /// # Panics
    ///
    /// Panics if `probabilities` is empty or its length is not a power of
    /// two.
    #[must_use]
    pub fn from_probabilities(probabilities: &[f64]) -> Self {
        assert!(
            probabilities.len().is_power_of_two(),
            "probability vector length must be a power of two"
        );
        let mut prefix = Vec::with_capacity(probabilities.len());
        let mut running = KahanSum::new();
        for &p in probabilities {
            running.add(p);
            prefix.push(running.value());
        }
        Self {
            prefix,
            num_qubits: probabilities.len().trailing_zeros() as u16,
        }
    }

    /// The number of qubits of the sampled register.
    #[must_use]
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// The prefix-sum array (monotonically non-decreasing, last entry ~1).
    #[must_use]
    pub fn prefix_sums(&self) -> &[f64] {
        &self.prefix
    }

    /// The total probability mass (should be 1 for a normalized state).
    #[must_use]
    pub fn total_mass(&self) -> f64 {
        self.prefix.last().copied().unwrap_or(0.0)
    }

    /// Heap bytes held by the prefix-sum array — what an artifact cache
    /// charges against its byte budget for a retained sampler.  Dense: the
    /// array has `2^n` entries regardless of the state's structure.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.prefix.len() * std::mem::size_of::<f64>()
    }

    /// Draws one basis-state index using the supplied random number
    /// generator (one uniform variate plus a binary search).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let p_hat: f64 = rng.gen::<f64>() * self.total_mass();
        self.locate(p_hat)
    }

    /// Draws `shots` samples.
    #[must_use = "the samples are the result of the weak simulation"]
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, shots: usize) -> Vec<u64> {
        (0..shots).map(|_| self.sample(rng)).collect()
    }

    /// Locates the output index for a given cumulative probability value
    /// `p_hat` in `[0, 1)`: the smallest index whose prefix sum exceeds
    /// `p_hat`.  Exposed so tests (and the figure generator) can reproduce
    /// the worked example of Fig. 3.
    #[must_use]
    pub fn locate(&self, p_hat: f64) -> u64 {
        let idx = self.prefix.partition_point(|&r| r <= p_hat);
        // Guard against p_hat == total mass (can only happen through rounding).
        idx.min(self.prefix.len() - 1) as u64
    }

    /// Serializes the prefix-sum array into `out` as little-endian plain
    /// data — the payload format of the `weaksim` artifact-cache snapshot.
    pub fn encode_snapshot(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.num_qubits.to_le_bytes());
        out.extend_from_slice(&(self.prefix.len() as u64).to_le_bytes());
        for &value in &self.prefix {
            out.extend_from_slice(&value.to_bits().to_le_bytes());
        }
    }

    /// Reconstructs a sampler from [`encode_snapshot`](Self::encode_snapshot)
    /// bytes, validating everything [`locate`](Self::locate) relies on: the
    /// array has exactly `2^n` entries, every entry is finite and
    /// non-negative, and the sequence is monotonically non-decreasing.
    /// Returns `None` for any truncated or inconsistent payload — a
    /// corrupted snapshot section must never panic a loader.
    #[must_use]
    pub fn decode_snapshot(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 10 {
            return None;
        }
        let (header, body) = bytes.split_at(10);
        let num_qubits = u16::from_le_bytes([header[0], header[1]]);
        let len = usize::try_from(u64::from_le_bytes(header[2..10].try_into().ok()?)).ok()?;
        if num_qubits >= 48
            || len != 1usize.checked_shl(u32::from(num_qubits))?
            || body.len() != len.checked_mul(8)?
        {
            return None;
        }
        let mut prefix = Vec::with_capacity(len);
        let mut previous = 0.0f64;
        for chunk in body.chunks_exact(8) {
            let value = f64::from_bits(u64::from_le_bytes(chunk.try_into().ok()?));
            if !value.is_finite() || value < previous {
                return None;
            }
            prefix.push(value);
            previous = value;
        }
        Some(Self { prefix, num_qubits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::Complex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_example_state() -> StateVector {
        // Fig. 3 of the paper: amplitudes [0, -0.612i, 0, -0.612i, 0.354, 0, 0, 0.354].
        let a = Complex::new(0.0, -(3.0_f64 / 8.0).sqrt());
        let b = Complex::from_real((1.0_f64 / 8.0).sqrt());
        StateVector::from_amplitudes(vec![
            Complex::ZERO,
            a,
            Complex::ZERO,
            a,
            b,
            Complex::ZERO,
            Complex::ZERO,
            b,
        ])
    }

    #[test]
    fn prefix_sums_match_fig_3() {
        let sampler = PrefixSampler::new(&paper_example_state());
        let expected = [
            0.0,
            3.0 / 8.0,
            3.0 / 8.0,
            6.0 / 8.0,
            7.0 / 8.0,
            7.0 / 8.0,
            7.0 / 8.0,
            1.0,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert!(
                (sampler.prefix_sums()[i] - e).abs() < 1e-12,
                "prefix[{i}] = {} expected {e}",
                sampler.prefix_sums()[i]
            );
        }
    }

    #[test]
    fn example_8_of_the_paper() {
        // With p_hat = 1/2 the sample is |011> (index 3).
        let sampler = PrefixSampler::new(&paper_example_state());
        assert_eq!(sampler.locate(0.5), 3);
    }

    #[test]
    fn locate_edge_cases() {
        let sampler = PrefixSampler::from_probabilities(&[0.25, 0.25, 0.25, 0.25]);
        assert_eq!(sampler.locate(0.0), 0);
        assert_eq!(sampler.locate(0.24), 0);
        assert_eq!(sampler.locate(0.25), 1);
        assert_eq!(sampler.locate(0.99), 3);
        assert_eq!(sampler.locate(1.0), 3); // clamped
    }

    #[test]
    fn deterministic_state_always_samples_the_same_index() {
        let sampler = PrefixSampler::new(&StateVector::basis_state(4, 11));
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 11);
        }
    }

    #[test]
    fn samples_follow_the_distribution() {
        let sampler = PrefixSampler::new(&paper_example_state());
        let mut rng = StdRng::seed_from_u64(7);
        let shots = 200_000;
        let samples = sampler.sample_many(&mut rng, shots);
        let mut counts = [0u64; 8];
        for s in samples {
            counts[s as usize] += 1;
        }
        // Zero-probability outcomes never appear.
        for i in [0usize, 2, 5, 6] {
            assert_eq!(counts[i], 0);
        }
        // Nonzero outcomes appear with roughly the right frequency.
        let freq = |i: usize| counts[i] as f64 / shots as f64;
        assert!((freq(1) - 0.375).abs() < 0.01);
        assert!((freq(3) - 0.375).abs() < 0.01);
        assert!((freq(4) - 0.125).abs() < 0.01);
        assert!((freq(7) - 0.125).abs() < 0.01);
    }

    #[test]
    fn total_mass_is_one_for_normalized_states() {
        let sampler = PrefixSampler::new(&paper_example_state());
        assert!((sampler.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(sampler.num_qubits(), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_probabilities_requires_power_of_two() {
        let _ = PrefixSampler::from_probabilities(&[0.5, 0.25, 0.25]);
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let sampler = PrefixSampler::new(&paper_example_state());
        let mut bytes = Vec::new();
        sampler.encode_snapshot(&mut bytes);
        let decoded = PrefixSampler::decode_snapshot(&bytes).expect("round trip");
        assert_eq!(decoded.num_qubits(), sampler.num_qubits());
        assert_eq!(decoded.prefix_sums(), sampler.prefix_sums());
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(
            sampler.sample_many(&mut a, 4096),
            decoded.sample_many(&mut b, 4096)
        );
    }

    #[test]
    fn snapshot_decode_rejects_corruption_without_panicking() {
        let sampler = PrefixSampler::new(&paper_example_state());
        let mut bytes = Vec::new();
        sampler.encode_snapshot(&mut bytes);
        for len in 0..bytes.len() {
            assert!(PrefixSampler::decode_snapshot(&bytes[..len]).is_none());
        }
        // Breaking monotonicity must be rejected.
        let mut bad = bytes.clone();
        bad[10..18].copy_from_slice(&5.0f64.to_bits().to_le_bytes());
        assert!(PrefixSampler::decode_snapshot(&bad).is_none());
        // A NaN entry must be rejected.
        let mut nan = bytes;
        nan[10..18].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(PrefixSampler::decode_snapshot(&nan).is_none());
    }
}

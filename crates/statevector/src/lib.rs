//! Dense statevector simulation and prefix-sum sampling.
//!
//! This crate implements the *baseline* of the reproduced paper (Section
//! III): strong simulation into an explicit array of `2^n` amplitudes,
//! followed by weak simulation using either
//!
//! * a **linear traversal** of the probability array per sample, or
//! * a precomputed **prefix-sum array** and **binary search** per sample
//!   (`O(n)` per sample after an `O(2^n)` precomputation).
//!
//! The memory wall that motivates the paper's decision-diagram sampler is
//! modelled by [`MemoryBudget`]: requesting a simulation whose amplitude
//! array would exceed the budget reports a *memory-out* instead of thrashing
//! the host machine.
//!
//! # Examples
//!
//! ```
//! use circuit::{Circuit, Qubit};
//! use statevector::{simulate, PrefixSampler};
//! use rand::SeedableRng;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(Qubit(0));
//! bell.cx(Qubit(0), Qubit(1));
//!
//! let state = simulate(&bell)?;
//! let sampler = PrefixSampler::new(&state);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let sample = sampler.sample(&mut rng);
//! assert!(sample == 0 || sample == 3); // |00> or |11>
//! # Ok::<(), statevector::SimulateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
mod memory;
mod prefix;
mod sample;
mod state;

pub use apply::{apply_circuit, apply_operation, simulate, simulate_with_budget, SimulateError};
pub use memory::MemoryBudget;
pub use prefix::PrefixSampler;
pub use sample::{sample_counts, sample_many, LinearSampler};
pub use state::StateVector;

//! Gate application (strong simulation) on dense state vectors.

use crate::{MemoryBudget, StateVector};
use circuit::{Circuit, Operation, Qubit};
use mathkit::Complex;
use std::fmt;

/// Error returned by the dense simulation entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulateError {
    /// The circuit failed validation (out-of-range qubits, overlapping
    /// controls and targets).
    InvalidCircuit(circuit::ValidateCircuitError),
    /// The amplitude array would exceed the configured memory budget.  This
    /// models the "MO" entries of Table I in the paper.
    MemoryOut {
        /// Number of qubits requested.
        num_qubits: u16,
        /// Bytes the amplitude array would need.
        required_bytes: u128,
        /// Bytes allowed by the budget.
        budget_bytes: u64,
    },
    /// The circuit contains a non-unitary or classically-conditioned
    /// operation (measurement, reset or `if (c==k)` gate); strong simulation
    /// into a single state is undefined for dynamic circuits — use the
    /// trajectory engine of the `weaksim` crate.
    NonUnitaryOperation {
        /// Index of the offending operation.
        op_index: usize,
    },
}

impl fmt::Display for SimulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulateError::InvalidCircuit(e) => write!(f, "invalid circuit: {e}"),
            SimulateError::MemoryOut {
                num_qubits,
                required_bytes,
                budget_bytes,
            } => write!(
                f,
                "memory out: {num_qubits}-qubit state vector needs {required_bytes} bytes, budget is {budget_bytes}"
            ),
            SimulateError::NonUnitaryOperation { op_index } => write!(
                f,
                "operation {op_index} is non-unitary or classically conditioned (measure/reset/if); strong simulation requires a unitary circuit — use trajectory simulation"
            ),
        }
    }
}

impl std::error::Error for SimulateError {}

impl From<circuit::ValidateCircuitError> for SimulateError {
    fn from(e: circuit::ValidateCircuitError) -> Self {
        SimulateError::InvalidCircuit(e)
    }
}

/// Builds the bitmask with a 1 at every control qubit position.
fn control_mask(controls: &[Qubit]) -> usize {
    controls
        .iter()
        .fold(0usize, |m, q| m | (1usize << q.index()))
}

/// Applies a single lowered *unitary* [`Operation`] to the state in place.
///
/// # Panics
///
/// Panics if the operation references qubits outside the state (call
/// [`Circuit::validate`] — or use [`simulate`] — to get a proper error
/// instead), or on the non-unitary operations [`Operation::Measure`] and
/// [`Operation::Reset`], whose effect depends on a sampled outcome (use
/// [`StateVector::collapse_qubit`] and the trajectory engine of the
/// `weaksim` crate).
pub fn apply_operation(state: &mut StateVector, op: &Operation) {
    match op {
        Operation::Unitary {
            gate,
            target,
            controls,
        } => apply_controlled_unitary(state, gate.matrix(), *target, controls),
        Operation::Swap { a, b, controls } => apply_controlled_swap(state, *a, *b, controls),
        Operation::Permute {
            permutation,
            controls,
        } => apply_controlled_permutation(state, permutation, controls),
        Operation::Measure { .. } | Operation::Reset { .. } => {
            panic!("non-unitary operation '{op}' cannot be applied as a gate; use collapse_qubit")
        }
        Operation::Conditioned { .. } => {
            panic!("classically-conditioned operation '{op}' depends on the classical record; resolve the condition (trajectory engine) before applying")
        }
    }
}

fn apply_controlled_unitary(
    state: &mut StateVector,
    matrix: [[Complex; 2]; 2],
    target: Qubit,
    controls: &[Qubit],
) {
    let t_mask = 1usize << target.index();
    let c_mask = control_mask(controls);
    assert_eq!(
        c_mask & t_mask,
        0,
        "control qubits must not overlap the target"
    );
    let amps = state.amplitudes_mut();
    let len = amps.len();
    let mut base = 0usize;
    while base < len {
        // Visit each index with target bit = 0 exactly once.
        if base & t_mask == 0 {
            if base & c_mask == c_mask {
                let partner = base | t_mask;
                let a0 = amps[base];
                let a1 = amps[partner];
                amps[base] = matrix[0][0] * a0 + matrix[0][1] * a1;
                amps[partner] = matrix[1][0] * a0 + matrix[1][1] * a1;
            }
            base += 1;
        } else {
            // Skip the whole block where the target bit is set.
            base += 1;
        }
    }
}

fn apply_controlled_swap(state: &mut StateVector, a: Qubit, b: Qubit, controls: &[Qubit]) {
    if a == b {
        return;
    }
    let a_mask = 1usize << a.index();
    let b_mask = 1usize << b.index();
    let c_mask = control_mask(controls);
    let amps = state.amplitudes_mut();
    for i in 0..amps.len() {
        // Swap amplitude pairs where qubit a is 1 and qubit b is 0 (visiting
        // each unordered pair exactly once) and all controls are set.
        if i & a_mask != 0 && i & b_mask == 0 && i & c_mask == c_mask {
            let j = (i & !a_mask) | b_mask;
            amps.swap(i, j);
        }
    }
}

fn apply_controlled_permutation(
    state: &mut StateVector,
    permutation: &circuit::Permutation,
    controls: &[Qubit],
) {
    let c_mask = control_mask(controls);
    let qubits = permutation.qubits();
    let len = state.len();
    let old = state.amplitudes().to_vec();
    let mut new = vec![Complex::ZERO; len];

    for (index, amp) in old.iter().enumerate() {
        if amp.is_zero() {
            continue;
        }
        if index & c_mask != c_mask {
            new[index] += *amp;
            continue;
        }
        // Extract the register value.
        let mut value = 0u64;
        for (bit, q) in qubits.iter().enumerate() {
            if index & (1usize << q.index()) != 0 {
                value |= 1 << bit;
            }
        }
        let mapped = permutation.apply(value);
        // Scatter the register value back into the index.
        let mut new_index = index;
        for (bit, q) in qubits.iter().enumerate() {
            let mask = 1usize << q.index();
            if mapped & (1 << bit) != 0 {
                new_index |= mask;
            } else {
                new_index &= !mask;
            }
        }
        new[new_index] += *amp;
    }
    state.replace_amplitudes(new);
}

/// Applies every operation of `circuit` to the state in place.
///
/// # Panics
///
/// Panics if the circuit touches qubits outside the state; validate first or
/// use [`simulate`].
pub fn apply_circuit(state: &mut StateVector, circuit: &Circuit) {
    for op in circuit.operations() {
        apply_operation(state, op);
    }
}

/// Strong-simulates `circuit` from `|0...0>` with an unlimited memory budget.
///
/// # Errors
///
/// Returns [`SimulateError::InvalidCircuit`] if the circuit fails validation.
pub fn simulate(circuit: &Circuit) -> Result<StateVector, SimulateError> {
    simulate_with_budget(circuit, MemoryBudget::unlimited())
}

/// Strong-simulates `circuit` from `|0...0>` unless the amplitude array would
/// exceed `budget`.
///
/// # Errors
///
/// Returns [`SimulateError::MemoryOut`] when the dense representation does
/// not fit the budget and [`SimulateError::InvalidCircuit`] when validation
/// fails.
pub fn simulate_with_budget(
    circuit: &Circuit,
    budget: MemoryBudget,
) -> Result<StateVector, SimulateError> {
    circuit.validate()?;
    if let Some(op_index) = circuit
        .iter()
        .position(|op| op.is_non_unitary() || op.is_conditioned())
    {
        return Err(SimulateError::NonUnitaryOperation { op_index });
    }
    let required = MemoryBudget::state_vector_bytes(circuit.num_qubits());
    if !budget.allows(required) {
        return Err(SimulateError::MemoryOut {
            num_qubits: circuit.num_qubits(),
            required_bytes: required,
            budget_bytes: budget.bytes(),
        });
    }
    let mut state = StateVector::zero_state(circuit.num_qubits());
    apply_circuit(&mut state, circuit);
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Permutation;
    use mathkit::{Angle, SQRT1_2};

    const EPS: f64 = 1e-12;

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0));
        let s = simulate(&c).unwrap();
        assert!((s.probability(0) - 0.5).abs() < EPS);
        assert!((s.probability(1) - 0.5).abs() < EPS);
    }

    #[test]
    fn bell_state_from_example_2() {
        // Example 2 of the paper: H on the control, then CNOT.
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        let s = simulate(&c).unwrap();
        assert!((s.amplitude(0).re - SQRT1_2).abs() < EPS);
        assert!((s.amplitude(3).re - SQRT1_2).abs() < EPS);
        assert!(s.amplitude(1).norm() < EPS);
        assert!(s.amplitude(2).norm() < EPS);
    }

    #[test]
    fn x_gate_flips_basis_state() {
        let mut c = Circuit::new(2);
        c.x(Qubit(1));
        let s = simulate(&c).unwrap();
        assert_eq!(s.probability(2), 1.0);
    }

    #[test]
    fn controlled_gate_only_fires_when_control_set() {
        let mut c = Circuit::new(2);
        c.cx(Qubit(0), Qubit(1)); // control |0> -> no effect
        let s = simulate(&c).unwrap();
        assert_eq!(s.probability(0), 1.0);

        let mut c = Circuit::new(2);
        c.x(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        let s = simulate(&c).unwrap();
        assert_eq!(s.probability(3), 1.0);
    }

    #[test]
    fn toffoli_truth_table() {
        for input in 0u64..8 {
            let mut c = Circuit::new(3);
            for bit in 0..3 {
                if input & (1 << bit) != 0 {
                    c.x(Qubit(bit));
                }
            }
            c.ccx(Qubit(0), Qubit(1), Qubit(2));
            let s = simulate(&c).unwrap();
            let expected = if input & 0b011 == 0b011 {
                input ^ 0b100
            } else {
                input
            };
            assert!((s.probability(expected) - 1.0).abs() < EPS, "input {input}");
        }
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut c = Circuit::new(2);
        c.x(Qubit(0));
        c.swap(Qubit(0), Qubit(1));
        let s = simulate(&c).unwrap();
        assert_eq!(s.probability(2), 1.0);
    }

    #[test]
    fn controlled_swap_respects_control() {
        let mut c = Circuit::new(3);
        c.x(Qubit(0));
        c.cswap(Qubit(2), Qubit(0), Qubit(1)); // control q2=0: no swap
        let s = simulate(&c).unwrap();
        assert_eq!(s.probability(0b001), 1.0);

        let mut c = Circuit::new(3);
        c.x(Qubit(0));
        c.x(Qubit(2));
        c.cswap(Qubit(2), Qubit(0), Qubit(1));
        let s = simulate(&c).unwrap();
        assert_eq!(s.probability(0b110), 1.0);
    }

    #[test]
    fn permutation_shifts_basis_states() {
        // Increment modulo 4 on two qubits.
        let perm = Permutation::new(vec![Qubit(0), Qubit(1)], vec![1, 2, 3, 0]).unwrap();
        let mut c = Circuit::new(2);
        c.x(Qubit(1)); // |10> = value 2
        c.permute(perm);
        let s = simulate(&c).unwrap();
        assert_eq!(s.probability(3), 1.0);
    }

    #[test]
    fn controlled_permutation_respects_control() {
        let perm = Permutation::new(vec![Qubit(0), Qubit(1)], vec![1, 2, 3, 0]).unwrap();
        let mut c = Circuit::new(3);
        c.controlled_permute(vec![Qubit(2)], perm);
        let s = simulate(&c).unwrap();
        // Control is |0>, so the state is unchanged.
        assert_eq!(s.probability(0), 1.0);
    }

    #[test]
    fn permutation_preserves_superposition_norm() {
        let perm = Permutation::new(vec![Qubit(0), Qubit(1)], vec![3, 0, 2, 1]).unwrap();
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.h(Qubit(1));
        c.permute(perm);
        let s = simulate(&c).unwrap();
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
        for i in 0..4 {
            assert!((s.probability(i) - 0.25).abs() < EPS);
        }
    }

    #[test]
    fn running_example_of_the_paper() {
        // A circuit producing exactly the state of Fig. 4a of the paper:
        // amplitudes [0, -0.612i, 0, -0.612i, 0.354, 0, 0, 0.354] in bit
        // order q2 q1 q0 (probabilities [0, 3/8, 0, 3/8, 1/8, 0, 0, 1/8]).
        let mut c = Circuit::new(3);
        c.rx(Angle::Radians(2.0 * std::f64::consts::PI / 3.0), Qubit(2));
        c.x(Qubit(2));
        c.h(Qubit(1));
        c.ccx(Qubit(2), Qubit(1), Qubit(0));
        c.x(Qubit(0));
        c.cx(Qubit(2), Qubit(0));
        let s = simulate(&c).unwrap();
        let expected = [
            0.0,
            3.0 / 8.0,
            0.0,
            3.0 / 8.0,
            1.0 / 8.0,
            0.0,
            0.0,
            1.0 / 8.0,
        ];
        for (i, &p) in expected.iter().enumerate() {
            assert!(
                (s.probability(i as u64) - p).abs() < EPS,
                "index {i}: expected {p}, got {}",
                s.probability(i as u64)
            );
        }
        // The nonzero amplitudes match -sqrt(3)/8 i and sqrt(1/8).
        let minus_i_sqrt38 = Complex::new(0.0, -(3.0_f64 / 8.0).sqrt());
        let sqrt18 = Complex::from_real((1.0_f64 / 8.0).sqrt());
        assert!((s.amplitude(1) - minus_i_sqrt38).norm() < EPS);
        assert!((s.amplitude(3) - minus_i_sqrt38).norm() < EPS);
        assert!((s.amplitude(4) - sqrt18).norm() < EPS);
        assert!((s.amplitude(7) - sqrt18).norm() < EPS);
    }

    #[test]
    fn memory_budget_produces_memory_out() {
        let mut c = Circuit::new(20);
        c.h(Qubit(0));
        let result = simulate_with_budget(&c, MemoryBudget::from_bytes(1024));
        assert!(matches!(result, Err(SimulateError::MemoryOut { .. })));
    }

    #[test]
    fn invalid_circuit_is_rejected() {
        let mut c = Circuit::new(1);
        c.h(Qubit(3));
        assert!(matches!(
            simulate(&c),
            Err(SimulateError::InvalidCircuit(_))
        ));
    }

    #[test]
    fn dynamic_circuits_are_rejected_by_strong_simulation() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0)).reset(Qubit(0));
        assert_eq!(
            simulate(&c),
            Err(SimulateError::NonUnitaryOperation { op_index: 1 })
        );
    }

    #[test]
    fn diagonal_gates_only_change_phases() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0))
            .h(Qubit(1))
            .t(Qubit(0))
            .s(Qubit(1))
            .cz(Qubit(0), Qubit(1));
        let s = simulate(&c).unwrap();
        for i in 0..4 {
            assert!((s.probability(i) - 0.25).abs() < EPS);
        }
    }

    #[test]
    fn circuit_followed_by_adjoint_is_identity() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0))
            .cx(Qubit(0), Qubit(1))
            .t(Qubit(2))
            .rx(Angle::Radians(0.3), Qubit(2))
            .swap(Qubit(1), Qubit(2))
            .cp(Angle::Radians(0.9), Qubit(0), Qubit(2));
        let mut state = StateVector::zero_state(3);
        apply_circuit(&mut state, &c);
        apply_circuit(&mut state, &c.adjoint());
        assert!((state.probability(0) - 1.0).abs() < EPS);
    }
}

//! Entangled-state preparation circuits used by examples and tests.

use circuit::{Circuit, OneQubitGate, Qubit};
use mathkit::Angle;

/// Builds the Bell-pair preparation circuit `H(0); CX(0, 1)` — the state of
/// Example 2 of the paper.
///
/// # Examples
///
/// ```
/// let c = algorithms::bell_pair();
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.len(), 2);
/// ```
#[must_use]
pub fn bell_pair() -> Circuit {
    let mut c = Circuit::with_name(2, "bell");
    c.h(Qubit(0));
    c.cx(Qubit(0), Qubit(1));
    c
}

/// Builds the GHZ-state preparation circuit on `n` qubits:
/// `(|0...0> + |1...1>)/sqrt(2)`.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Examples
///
/// ```
/// let c = algorithms::ghz(5);
/// assert_eq!(c.len(), 5); // one H plus a CNOT chain
/// ```
#[must_use]
pub fn ghz(n: u16) -> Circuit {
    assert!(n > 0, "GHZ state needs at least one qubit");
    let mut c = Circuit::with_name(n, format!("ghz_{n}"));
    c.h(Qubit(0));
    for i in 1..n {
        c.cx(Qubit(i - 1), Qubit(i));
    }
    c
}

/// Builds the W-state preparation circuit on `n` qubits: the uniform
/// superposition of all computational basis states with exactly one `1`.
///
/// The construction cascades controlled rotations: qubit `k` receives the
/// excitation with amplitude `sqrt(1/(n-k))` of the remaining mass, followed
/// by a CNOT that moves the "excitation still unplaced" marker.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Examples
///
/// ```
/// let c = algorithms::w_state(4);
/// assert_eq!(c.num_qubits(), 4);
/// ```
#[must_use]
pub fn w_state(n: u16) -> Circuit {
    assert!(n > 0, "W state needs at least one qubit");
    let mut c = Circuit::with_name(n, format!("w_{n}"));
    // Start with the excitation on qubit 0.
    c.x(Qubit(0));
    // Distribute it: for each k, rotate part of the amplitude from qubit k
    // onto qubit k+1.
    for k in 0..n - 1 {
        let remaining = f64::from(n - k);
        // We want P(move on) = (remaining-1)/remaining.
        let theta = 2.0 * ((remaining - 1.0) / remaining).sqrt().asin();
        c.controlled_gate(
            OneQubitGate::Ry(Angle::Radians(theta)),
            vec![Qubit(k)],
            Qubit(k + 1),
        );
        c.cx(Qubit(k + 1), Qubit(k));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_and_ghz_structure() {
        assert_eq!(bell_pair().stats().counts["h"], 1);
        let g = ghz(8);
        assert_eq!(g.len(), 8);
        assert!(g.validate().is_ok());
        assert_eq!(g.name(), "ghz_8");
    }

    #[test]
    fn w_state_gate_count_is_linear() {
        let w = w_state(6);
        assert_eq!(w.len(), 1 + 2 * 5);
        assert!(w.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn ghz_zero_panics() {
        let _ = ghz(0);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn w_zero_panics() {
        let _ = w_state(0);
    }

    #[test]
    fn single_qubit_edge_cases() {
        assert_eq!(ghz(1).len(), 1);
        assert_eq!(w_state(1).len(), 1);
    }
}

//! Iterative phase estimation — the canonical classically-controlled
//! qubit-reuse workload.

use circuit::{Circuit, OneQubitGate, Qubit};
use mathkit::Angle;

/// Builds the single-ancilla iterative-phase-estimation circuit estimating
/// the eigenphase of the phase gate `P(phase)` to `num_bits` binary digits.
///
/// Qubit 1 is prepared in `|1>`, the `e^{i*phase}` eigenstate of `P(phase)`.
/// Round `j` (for `j = 0..num_bits`) reuses the single ancilla qubit 0:
///
/// 1. reset the ancilla (after the first round) and put it in `|+>`,
/// 2. kick back the phase of `P(phase)^(2^(num_bits-1-j))` with a controlled
///    phase gate,
/// 3. rotate the already-extracted bits back out with classically
///    conditioned phase corrections — one `if (c==v) p(-pi*v/2^j)` per
///    possible register value `v` (OpenQASM 2.0 conditions compare the whole
///    register, so the correction is enumerated per value),
/// 4. measure the ancilla in the X basis into `c[j]`.
///
/// When `phase = 2*pi*m / 2^num_bits` for an integer `m`, every round is
/// deterministic and the classical register ends holding exactly `m`
/// (least-significant bit measured first).  The circuit uses 2 qubits,
/// `num_bits` classical bits and `Θ(2^num_bits)` conditioned corrections.
///
/// # Panics
///
/// Panics if `num_bits` is 0 or greater than 16 (the conditioned-correction
/// count grows as `2^num_bits`).
///
/// # Examples
///
/// ```
/// let c = algorithms::ipe(3, 2.0 * std::f64::consts::PI * 5.0 / 8.0);
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.num_clbits(), 3);
/// assert!(c.is_dynamic());
/// assert!(c.validate().is_ok());
/// ```
#[must_use]
pub fn ipe(num_bits: u16, phase: f64) -> Circuit {
    assert!(
        (1..=16).contains(&num_bits),
        "ipe supports 1..=16 bits, got {num_bits}"
    );
    let mut c = Circuit::with_name(2, format!("ipe_{num_bits}"));
    c.set_num_clbits(num_bits);
    // The |1> eigenstate of the phase gate.
    c.x(Qubit(1));
    for j in 0..num_bits {
        if j > 0 {
            c.reset(Qubit(0));
        }
        c.h(Qubit(0));
        // Controlled-P(phase)^(2^e): phase gates compose by angle addition.
        let exponent = num_bits - 1 - j;
        c.cp(
            Angle::Radians(phase * (1u64 << exponent) as f64),
            Qubit(0),
            Qubit(1),
        );
        // Feed-forward corrections: with bits m_0..m_{j-1} already in the
        // register (value v), the kicked-back phase carries an extra
        // pi*v/2^j that must be rotated away before the X-basis read-out.
        for v in 1..(1u64 << j) {
            let correction = -std::f64::consts::PI * v as f64 / (1u64 << j) as f64;
            c.conditioned_gate(v, OneQubitGate::Phase(Angle::Radians(correction)), Qubit(0));
        }
        c.h(Qubit(0)).measure(Qubit(0), j);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipe_has_the_documented_shape() {
        let c = ipe(3, 2.0 * std::f64::consts::PI * 3.0 / 8.0);
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.num_clbits(), 3);
        assert!(c.is_dynamic());
        assert!(c.validate().is_ok());
        let stats = c.stats();
        assert_eq!(stats.counts["measure"], 3);
        assert_eq!(stats.counts["reset"], 2);
        // 2^1 - 1 + 2^2 - 1 = 4 conditioned corrections.
        assert_eq!(stats.counts["if p"], 4);
    }

    #[test]
    fn ipe_survives_a_qasm_round_trip() {
        let c = ipe(3, 2.0 * std::f64::consts::PI * 5.0 / 8.0);
        let text = circuit::qasm::to_qasm(&c).unwrap();
        assert!(text.contains("if (c=="));
        let parsed = circuit::qasm::parse(&text).unwrap();
        assert_eq!(parsed.operations(), c.operations());
        assert_eq!(parsed.num_clbits(), c.num_clbits());
    }

    #[test]
    #[should_panic(expected = "ipe supports 1..=16 bits")]
    fn ipe_rejects_zero_bits() {
        let _ = ipe(0, 1.0);
    }
}

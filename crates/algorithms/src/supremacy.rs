//! Random grid circuits in the style of the Google quantum-supremacy
//! benchmarks (`supremacy_AxB_C`).
//!
//! The generator follows the construction rules published by Boixo et al.
//! (Nature Physics 14, 2018) for the GRCS circuit family the paper samples
//! from: an initial layer of Hadamards on a rectangular qubit grid, followed
//! by `depth` cycles that each activate one of eight staggered controlled-Z
//! coupler patterns and place random single-qubit gates from
//! `{T, sqrt(X), sqrt(Y)}` on qubits that idled out of a CZ, with the usual
//! constraints (the first non-Clifford gate on a qubit is a `T`, the same
//! gate is never repeated back-to-back).  See `DESIGN.md` for the
//! substitution note — the original GRCS instance files are not vendored,
//! but the generated circuits have the same structure and entangling power.

use circuit::{Circuit, OneQubitGate, Qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a generated supremacy-style circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupremacySpec {
    /// Grid rows.
    pub rows: u16,
    /// Grid columns.
    pub cols: u16,
    /// Number of CZ cycles after the initial Hadamard layer.
    pub depth: u16,
    /// Total qubits (`rows * cols`).
    pub qubits: u16,
}

/// Builds a supremacy-style random circuit on a `rows x cols` grid with the
/// given depth and seed.
///
/// # Panics
///
/// Panics if the grid is empty.
///
/// # Examples
///
/// ```
/// let (c, spec) = algorithms::supremacy(4, 4, 10, 0);
/// assert_eq!(spec.qubits, 16);
/// assert_eq!(c.name(), "supremacy_4x4_10");
/// ```
#[must_use]
pub fn supremacy(rows: u16, cols: u16, depth: u16, seed: u64) -> (Circuit, SupremacySpec) {
    assert!(rows > 0 && cols > 0, "grid must be non-empty");
    let qubits = rows * cols;
    let spec = SupremacySpec {
        rows,
        cols,
        depth,
        qubits,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(qubits, format!("supremacy_{rows}x{cols}_{depth}"));
    let qubit = |r: u16, col: u16| Qubit(r * cols + col);

    // Cycle 0: Hadamard on every qubit.
    for q in 0..qubits {
        c.h(Qubit(q));
    }

    // Per-qubit bookkeeping for the single-qubit gate rules.
    let mut had_t = vec![false; usize::from(qubits)];
    let mut last_gate: Vec<Option<OneQubitGate>> = vec![None; usize::from(qubits)];
    let mut in_cz_prev = vec![true; usize::from(qubits)]; // H counts as activity

    for cycle in 0..depth {
        // Select the coupler pattern for this cycle (8 staggered layouts,
        // alternating horizontal and vertical bonds).
        let pattern = cycle % 8;
        let mut in_cz_now = vec![false; usize::from(qubits)];
        let mut pairs: Vec<(Qubit, Qubit)> = Vec::new();
        if pattern % 2 == 0 {
            // Horizontal bonds (r, c)-(r, c+1).
            let col_parity = (pattern / 2) % 2;
            let row_parity = (pattern / 4) % 2;
            for r in 0..rows {
                for col in 0..cols.saturating_sub(1) {
                    if col % 2 == col_parity && r % 2 == row_parity {
                        pairs.push((qubit(r, col), qubit(r, col + 1)));
                    }
                }
            }
        } else {
            // Vertical bonds (r, c)-(r+1, c).
            let row_parity = (pattern / 2) % 2;
            let col_parity = (pattern / 4) % 2;
            for r in 0..rows.saturating_sub(1) {
                for col in 0..cols {
                    if r % 2 == row_parity && col % 2 == col_parity {
                        pairs.push((qubit(r, col), qubit(r + 1, col)));
                    }
                }
            }
        }
        for (a, b) in &pairs {
            c.cz(*a, *b);
            in_cz_now[a.index()] = true;
            in_cz_now[b.index()] = true;
        }

        // Single-qubit gates on qubits that were in a CZ last cycle but not
        // in this one.
        for q in 0..usize::from(qubits) {
            if in_cz_prev[q] && !in_cz_now[q] {
                let gate = if !had_t[q] {
                    had_t[q] = true;
                    OneQubitGate::T
                } else {
                    // Choose sqrt(X) or sqrt(Y), never repeating the previous gate.
                    let candidates = [OneQubitGate::SqrtX, OneQubitGate::SqrtY, OneQubitGate::T];
                    loop {
                        let pick = candidates[rng.gen_range(0..candidates.len())];
                        if last_gate[q] != Some(pick) {
                            break pick;
                        }
                    }
                };
                c.gate(gate, Qubit(u16::try_from(q).expect("qubit index fits")));
                last_gate[q] = Some(gate);
            }
        }
        in_cz_prev = in_cz_now;
    }

    (c, spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_counts_match_the_paper() {
        assert_eq!(supremacy(4, 4, 10, 0).1.qubits, 16);
        assert_eq!(supremacy(5, 4, 10, 0).1.qubits, 20);
        assert_eq!(supremacy(5, 5, 10, 0).1.qubits, 25);
    }

    #[test]
    fn circuits_validate_and_are_seed_deterministic() {
        let a = supremacy(4, 4, 10, 7).0;
        let b = supremacy(4, 4, 10, 7).0;
        assert_eq!(a, b);
        assert!(a.validate().is_ok());
        let c = supremacy(4, 4, 10, 8).0;
        assert_ne!(a, c);
    }

    #[test]
    fn every_qubit_gets_an_initial_hadamard() {
        let (c, spec) = supremacy(3, 3, 4, 1);
        let hadamards = c
            .operations()
            .iter()
            .take(usize::from(spec.qubits))
            .filter(|op| {
                matches!(
                    op,
                    circuit::Operation::Unitary {
                        gate: OneQubitGate::H,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(hadamards, usize::from(spec.qubits));
    }

    #[test]
    fn depth_zero_is_only_the_hadamard_layer() {
        let (c, _) = supremacy(3, 3, 0, 0);
        assert_eq!(c.len(), 9);
    }

    #[test]
    fn deeper_circuits_have_more_cz_gates() {
        let shallow = supremacy(4, 4, 4, 0).0.stats();
        let deep = supremacy(4, 4, 12, 0).0.stats();
        assert!(
            deep.counts.get("z").copied().unwrap_or(0)
                > shallow.counts.get("z").copied().unwrap_or(0)
        );
    }

    #[test]
    fn first_single_qubit_gate_after_cz_is_t() {
        let (c, _) = supremacy(2, 2, 6, 3);
        // Find the first non-H single-qubit unitary; by the construction rule
        // it must be a T gate.
        let first = c.operations().iter().find_map(|op| match op {
            circuit::Operation::Unitary { gate, controls, .. }
                if controls.is_empty() && !matches!(gate, OneQubitGate::H | OneQubitGate::Z) =>
            {
                Some(*gate)
            }
            _ => None,
        });
        assert_eq!(first, Some(OneQubitGate::T));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_panics() {
        let _ = supremacy(0, 3, 1, 0);
    }
}

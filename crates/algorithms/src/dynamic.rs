//! Dynamic-circuit (mid-circuit measurement) workload generators.

use circuit::{Circuit, Qubit};
use mathkit::Angle;

/// Builds the quantum-teleportation circuit with real mid-circuit
/// measurement — the reference dynamic-circuit workload shared by the
/// example, the trajectory bench and the integration tests.
///
/// Qubit 0 carries the payload `ry(theta)|0>`, qubits 1 and 2 share a Bell
/// pair.  After the Bell-basis rotation, qubits 0 and 1 are measured
/// mid-circuit into `c[0]`/`c[1]`; the corrections are applied as CX/CZ from
/// the *collapsed* qubits (equivalent to classically controlled X/Z) and
/// the teleported state is read out of qubit 2 into `c[2]`, so
/// `P(c2 = 1) = sin^2(theta / 2)`.
///
/// # Examples
///
/// ```
/// let c = algorithms::teleportation(1.2);
/// assert_eq!(c.num_qubits(), 3);
/// assert_eq!(c.num_clbits(), 3);
/// assert!(c.is_dynamic());
/// assert!(c.validate().is_ok());
/// ```
#[must_use]
pub fn teleportation(theta: f64) -> Circuit {
    let mut c = Circuit::with_name(3, "teleportation");
    c.ry(Angle::Radians(theta), Qubit(0))
        .h(Qubit(1))
        .cx(Qubit(1), Qubit(2))
        .cx(Qubit(0), Qubit(1))
        .h(Qubit(0))
        .measure(Qubit(0), 0)
        .measure(Qubit(1), 1)
        .cx(Qubit(1), Qubit(2))
        .cz(Qubit(0), Qubit(2))
        .measure(Qubit(2), 2);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teleportation_has_the_documented_shape() {
        let c = teleportation(0.7);
        assert_eq!(c.len(), 10);
        assert_eq!(c.stats().counts["measure"], 3);
        assert!(c.is_dynamic());
        // The whole circuit survives a QASM round trip.
        let text = circuit::qasm::to_qasm(&c).unwrap();
        let parsed = circuit::qasm::parse(&text).unwrap();
        assert_eq!(parsed.operations(), c.operations());
    }
}

//! Shor order-finding circuits (`shor_N_a` benchmarks).
//!
//! The paper's `shor_33_2`, `shor_221_4`, … benchmarks are the
//! order-finding circuits at the heart of Shor's factoring algorithm.  The
//! substitution documented in `DESIGN.md` applies: the controlled modular
//! multiplications are expressed as controlled basis-state
//! [`Permutation`](circuit::Permutation)s of the work register rather than
//! as adder networks.  This keeps the generator self-contained while
//! exercising exactly the same simulation and sampling code paths, and it
//! reproduces the qubit counts of Table I (`3 * ceil(log2(N))`).

use circuit::{Circuit, Permutation, Qubit};

/// Parameters of a generated Shor order-finding circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShorSpec {
    /// The number to factor.
    pub modulus: u64,
    /// The coprime base whose multiplicative order is estimated.
    pub base: u64,
    /// Bits of the work register (`ceil(log2(modulus))`).
    pub work_bits: u16,
    /// Bits of the counting register (`2 * work_bits`).
    pub counting_bits: u16,
    /// The multiplicative order of `base` modulo `modulus` (computed
    /// classically for validation).
    pub order: u64,
}

impl ShorSpec {
    /// Total number of qubits of the circuit.
    #[must_use]
    pub fn total_qubits(&self) -> u16 {
        self.work_bits + self.counting_bits
    }
}

/// Builds the order-finding circuit for factoring `modulus` with the coprime
/// `base` (the `shor_<modulus>_<base>` benchmarks of the paper).
///
/// Layout: the work register occupies qubits `0..n`, the counting register
/// qubits `n..3n` where `n = ceil(log2(modulus))`.  The circuit is
///
/// 1. `X` on work qubit 0 (work register starts in `|1>`),
/// 2. `H` on every counting qubit,
/// 3. for counting qubit `k`: a controlled multiplication by
///    `base^(2^k) mod modulus` on the work register,
/// 4. the inverse QFT on the counting register.
///
/// # Panics
///
/// Panics if `modulus < 3`, `base < 2`, or `base` shares a factor with
/// `modulus` (in which case factoring is classical and order finding is
/// undefined).
///
/// # Examples
///
/// ```
/// let (c, spec) = algorithms::shor(15, 2);
/// assert_eq!(spec.work_bits, 4);
/// assert_eq!(c.num_qubits(), 12);
/// assert_eq!(spec.order, 4); // 2^4 = 16 = 1 mod 15
/// ```
#[must_use]
pub fn shor(modulus: u64, base: u64) -> (Circuit, ShorSpec) {
    assert!(modulus >= 3, "modulus must be at least 3");
    assert!(base >= 2, "base must be at least 2");
    assert_eq!(
        gcd(modulus, base),
        1,
        "base {base} must be coprime to modulus {modulus}"
    );

    let work_bits = u16::try_from(64 - (modulus - 1).leading_zeros()).expect("small");
    let counting_bits = 2 * work_bits;
    let spec = ShorSpec {
        modulus,
        base,
        work_bits,
        counting_bits,
        order: multiplicative_order(base, modulus),
    };

    let n = work_bits;
    let total = spec.total_qubits();
    let work: Vec<Qubit> = (0..n).map(Qubit).collect();
    let counting: Vec<Qubit> = (n..total).map(Qubit).collect();

    let mut c = Circuit::with_name(total, format!("shor_{modulus}_{base}"));

    // Work register starts in |1>.
    c.x(work[0]);
    // Counting register in uniform superposition.
    for &q in &counting {
        c.h(q);
    }
    // Controlled modular multiplications by base^(2^k).
    let mut factor = base % modulus;
    for &control in &counting {
        let perm = modular_multiplication(&work, factor, modulus);
        c.controlled_permute(vec![control], perm);
        factor = (factor * factor) % modulus;
    }
    // Inverse QFT on the counting register (phase estimation readout).
    append_inverse_qft(&mut c, &counting);

    (c, spec)
}

/// Builds the permutation `|v> -> |v * factor mod modulus>` on the work
/// register (identity on values `>= modulus`).
fn modular_multiplication(work: &[Qubit], factor: u64, modulus: u64) -> Permutation {
    let size = 1u64 << work.len();
    let mapping: Vec<u64> = (0..size)
        .map(|v| {
            if v < modulus {
                (v * factor) % modulus
            } else {
                v
            }
        })
        .collect();
    Permutation::new(work.to_vec(), mapping)
        .expect("modular multiplication by a coprime is a bijection")
}

/// Appends the inverse QFT on the counting register, including the
/// qubit-reversal swaps, so the phase estimate can be read directly from the
/// register value (register\[0\] is the least significant bit).
///
/// The gate sequence is the adjoint of [`crate::qft`] remapped onto the
/// counting qubits, which keeps the two generators consistent by
/// construction.
fn append_inverse_qft(c: &mut Circuit, register: &[Qubit]) {
    let m = u16::try_from(register.len()).expect("counting register fits in u16");
    let inverse = crate::qft(m, true).adjoint();
    for op in inverse.operations() {
        match op {
            circuit::Operation::Unitary {
                gate,
                target,
                controls,
            } => {
                let mapped: Vec<Qubit> = controls.iter().map(|q| register[q.index()]).collect();
                c.controlled_gate(*gate, mapped, register[target.index()]);
            }
            circuit::Operation::Swap { a, b, controls } => {
                debug_assert!(controls.is_empty());
                c.swap(register[a.index()], register[b.index()]);
            }
            other => unreachable!("the QFT contains no {other}"),
        }
    }
}

/// Greatest common divisor.
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The multiplicative order of `base` modulo `modulus`.
fn multiplicative_order(base: u64, modulus: u64) -> u64 {
    let mut value = base % modulus;
    let mut order = 1;
    while value != 1 {
        value = (value * base) % modulus;
        order += 1;
        assert!(order <= modulus, "order computation diverged");
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_counts_match_table_1() {
        // shor_33_2 and shor_55_2 use 18 qubits; shor_69_4 uses 21;
        // shor_221_4 and shor_247_4 use 24.
        assert_eq!(shor(33, 2).0.num_qubits(), 18);
        assert_eq!(shor(55, 2).0.num_qubits(), 18);
        assert_eq!(shor(69, 4).0.num_qubits(), 21);
        assert_eq!(shor(221, 4).0.num_qubits(), 24);
        assert_eq!(shor(247, 4).0.num_qubits(), 24);
    }

    #[test]
    fn circuits_validate() {
        let (c, spec) = shor(15, 7);
        assert!(c.validate().is_ok());
        assert_eq!(spec.counting_bits, 8);
        assert_eq!(spec.total_qubits(), 12);
        assert_eq!(c.name(), "shor_15_7");
    }

    #[test]
    fn orders_are_correct() {
        assert_eq!(shor(15, 2).1.order, 4);
        assert_eq!(shor(15, 7).1.order, 4);
        assert_eq!(shor(21, 2).1.order, 6);
        assert_eq!(shor(33, 2).1.order, 10);
    }

    #[test]
    fn modular_multiplication_is_a_bijection() {
        let work: Vec<Qubit> = (0..4).map(Qubit).collect();
        let perm = modular_multiplication(&work, 7, 15);
        let mut seen = [false; 16];
        for v in 0..16 {
            let m = perm.apply(v);
            assert!(!seen[m as usize]);
            seen[m as usize] = true;
        }
        // Values at or above the modulus stay put.
        assert_eq!(perm.apply(15), 15);
        assert_eq!(perm.apply(1), 7);
        assert_eq!(perm.apply(2), 14);
    }

    #[test]
    #[should_panic(expected = "coprime")]
    fn non_coprime_base_panics() {
        let _ = shor(15, 5);
    }

    #[test]
    fn gcd_and_order_helpers() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(multiplicative_order(2, 7), 3);
        assert_eq!(multiplicative_order(3, 7), 6);
    }

    #[test]
    fn gate_structure_counts() {
        let (c, spec) = shor(15, 2);
        let stats = c.stats();
        // One controlled permutation per counting qubit.
        assert_eq!(stats.counts["permute"], usize::from(spec.counting_bits));
        // One initial X plus Hadamards on counting qubits and the inverse QFT.
        assert_eq!(stats.counts["x"], 1);
        assert_eq!(stats.counts["h"], 2 * usize::from(spec.counting_bits));
    }
}

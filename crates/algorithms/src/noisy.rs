//! Noisy-hardware emulation workloads: reference noise models and
//! error-rate sweeps over the dynamic-circuit benchmarks.

use circuit::{Circuit, NoiseChannel, NoiseModel};

/// A uniform "hardware" noise model at error rate `p`: depolarizing noise of
/// strength `p` after every gate (on every qubit the gate touches) plus a
/// bit-flip read-out error of probability `p` before every measurement —
/// the standard first-order device model used by the noisy benchmarks.
///
/// `hardware_noise(0.0)` has no non-trivial channel, so simulating under it
/// is bit-identical to the noiseless run.
///
/// # Examples
///
/// ```
/// let model = algorithms::hardware_noise(0.01);
/// assert!(model.has_noise());
/// assert!(!algorithms::hardware_noise(0.0).has_noise());
/// ```
#[must_use]
pub fn hardware_noise(p: f64) -> NoiseModel {
    NoiseModel::new()
        .with_gate_noise(NoiseChannel::depolarizing(p))
        .with_measurement_noise(NoiseChannel::bit_flip(p))
}

/// Builds the noisy-teleportation error-rate sweep: the teleportation
/// circuit for payload angle `theta` plus `steps + 1` [`hardware_noise`]
/// models at rates linearly spaced over `[0, max_p]` (the first point is
/// the ideal device).
///
/// As `p` grows, the teleported qubit's marginal `P(c2 = 1)` drifts from the
/// ideal `sin^2(theta/2)` towards the fully mixed `1/2` — the decay curve
/// the noisy-teleportation example and tests sweep out.
///
/// # Panics
///
/// Panics if `steps` is zero or `max_p` is not a probability in `(0, 1]`.
///
/// # Examples
///
/// ```
/// let (circuit, sweep) = algorithms::teleportation_noise_sweep(1.2, 4, 0.2);
/// assert!(circuit.is_dynamic());
/// assert_eq!(sweep.len(), 5);
/// assert_eq!(sweep[0].0, 0.0);
/// assert_eq!(sweep[4].0, 0.2);
/// ```
#[must_use]
pub fn teleportation_noise_sweep(
    theta: f64,
    steps: usize,
    max_p: f64,
) -> (Circuit, Vec<(f64, NoiseModel)>) {
    (crate::teleportation(theta), noise_sweep(steps, max_p))
}

/// Builds the noisy iterative-phase-estimation error-rate sweep: the
/// `ipe(num_bits, phase)` circuit plus `steps + 1` [`hardware_noise`] models
/// at rates linearly spaced over `[0, max_p]`.
///
/// For an exact `num_bits`-bit phase the ideal device recovers the phase
/// deterministically, so the sweep directly measures how fast noise erodes
/// the recovery probability.
///
/// # Panics
///
/// Panics if `steps` is zero, `max_p` is not a probability in `(0, 1]`, or
/// `num_bits` is outside [`ipe`](crate::ipe)'s supported range.
#[must_use]
pub fn ipe_noise_sweep(
    num_bits: u16,
    phase: f64,
    steps: usize,
    max_p: f64,
) -> (Circuit, Vec<(f64, NoiseModel)>) {
    (crate::ipe(num_bits, phase), noise_sweep(steps, max_p))
}

/// `steps + 1` hardware models at rates linearly spaced over `[0, max_p]`.
fn noise_sweep(steps: usize, max_p: f64) -> Vec<(f64, NoiseModel)> {
    assert!(steps > 0, "a sweep needs at least one step");
    assert!(
        max_p > 0.0 && max_p <= 1.0,
        "sweep ceiling {max_p} is not a probability in (0, 1]"
    );
    (0..=steps)
        .map(|i| {
            let p = max_p * i as f64 / steps as f64;
            (p, hardware_noise(p))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_cover_the_requested_range() {
        let (circuit, sweep) = teleportation_noise_sweep(0.7, 5, 0.1);
        assert_eq!(circuit.num_qubits(), 3);
        assert_eq!(sweep.len(), 6);
        assert_eq!(sweep[0].0, 0.0);
        assert!((sweep[5].0 - 0.1).abs() < 1e-15);
        assert!(!sweep[0].1.has_noise(), "the first point is noiseless");
        assert!(sweep[1].1.has_noise());
        for (p, model) in &sweep {
            assert!(model.validate_for(circuit.num_qubits()).is_ok(), "p = {p}");
        }

        let (ipe_circuit, ipe_sweep) = ipe_noise_sweep(3, 1.0, 2, 0.05);
        assert!(ipe_circuit.is_dynamic());
        assert_eq!(ipe_sweep.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_step_sweeps_are_rejected() {
        let _ = teleportation_noise_sweep(0.7, 0, 0.1);
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn out_of_range_sweep_ceilings_are_rejected() {
        let _ = ipe_noise_sweep(3, 1.0, 2, 1.5);
    }
}

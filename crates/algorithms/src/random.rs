//! Unstructured random circuits used for property tests and scaling sweeps.

use circuit::{Circuit, OneQubitGate, Qubit};
use mathkit::Angle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random circuit of `layers` layers on `n` qubits.
///
/// Each layer applies a random single-qubit gate (from a Clifford+T+rotation
/// alphabet) to every qubit, followed by CNOTs between a random pairing of
/// qubits.  The generator is deterministic for a given `(n, layers, seed)`.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Examples
///
/// ```
/// let c = algorithms::random_circuit(5, 4, 99);
/// assert_eq!(c.num_qubits(), 5);
/// assert!(c.validate().is_ok());
/// ```
#[must_use]
pub fn random_circuit(n: u16, layers: u16, seed: u64) -> Circuit {
    assert!(n > 0, "random circuit needs at least one qubit");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("random_{n}_{layers}"));

    for _ in 0..layers {
        for q in 0..n {
            let gate = match rng.gen_range(0..8) {
                0 => OneQubitGate::H,
                1 => OneQubitGate::X,
                2 => OneQubitGate::S,
                3 => OneQubitGate::T,
                4 => OneQubitGate::SqrtX,
                5 => OneQubitGate::Rz(Angle::Radians(rng.gen_range(0.0..std::f64::consts::TAU))),
                6 => OneQubitGate::Ry(Angle::Radians(rng.gen_range(0.0..std::f64::consts::TAU))),
                _ => OneQubitGate::Phase(Angle::Radians(rng.gen_range(0.0..std::f64::consts::TAU))),
            };
            c.gate(gate, Qubit(q));
        }
        // Random pairing for the entangling sub-layer.
        let mut order: Vec<u16> = (0..n).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for pair in order.chunks_exact(2) {
            c.cx(Qubit(pair[0]), Qubit(pair[1]));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        assert_eq!(random_circuit(6, 5, 1), random_circuit(6, 5, 1));
        assert_ne!(random_circuit(6, 5, 1), random_circuit(6, 5, 2));
    }

    #[test]
    fn layer_count_controls_size() {
        let small = random_circuit(4, 2, 0).len();
        let large = random_circuit(4, 8, 0).len();
        assert!(large > 3 * small);
    }

    #[test]
    fn circuits_validate() {
        for seed in 0..5 {
            assert!(random_circuit(7, 6, seed).validate().is_ok());
        }
    }

    #[test]
    fn single_qubit_circuits_have_no_entanglers() {
        let c = random_circuit(1, 4, 3);
        assert!(c.stats().two_qubit_ops == 0);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_qubits_panics() {
        let _ = random_circuit(0, 1, 0);
    }
}

//! Quantum Fourier Transform circuits (`qft_A` benchmarks).

use circuit::{Circuit, Qubit};
use mathkit::Angle;

/// Builds the Quantum Fourier Transform on `n` qubits.
///
/// The construction is the textbook one: for each qubit from the most
/// significant down, a Hadamard followed by controlled phase rotations
/// `R_k = diag(1, e^{2 pi i / 2^k})` conditioned on the less significant
/// qubits, optionally followed by the qubit-reversal swaps.
///
/// Applied to the all-zeros input state (as in the paper's `qft_A`
/// benchmarks) the output is a uniform-superposition product state, so its
/// decision diagram has exactly one node per qubit — this is what makes the
/// DD-based sampler scale to `qft_48` while the dense vector runs out of
/// memory at `qft_32`.
///
/// # Examples
///
/// ```
/// let c = algorithms::qft(16, true);
/// assert_eq!(c.num_qubits(), 16);
/// assert_eq!(c.name(), "qft_16");
/// ```
#[must_use]
pub fn qft(n: u16, with_swaps: bool) -> Circuit {
    let mut c = Circuit::with_name(n, format!("qft_{n}"));
    for target in (0..n).rev() {
        c.h(Qubit(target));
        for (k, control) in (0..target).rev().enumerate() {
            // The rotation angle halves with the distance between the qubits.
            let rotation = Angle::qft_rotation(k as u32 + 2);
            c.cp(rotation, Qubit(control), Qubit(target));
        }
    }
    if with_swaps {
        for i in 0..n / 2 {
            c.swap(Qubit(i), Qubit(n - 1 - i));
        }
    }
    c
}

/// Builds the inverse Quantum Fourier Transform on `n` qubits.
///
/// # Examples
///
/// ```
/// let c = algorithms::inverse_qft(4, true);
/// assert_eq!(c.len(), algorithms::qft(4, true).len());
/// ```
#[must_use]
pub fn inverse_qft(n: u16, with_swaps: bool) -> Circuit {
    let mut c = qft(n, with_swaps).adjoint();
    c.set_name(format!("iqft_{n}"));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Operation;

    #[test]
    fn qft_gate_count_is_quadratic() {
        for n in [1u16, 2, 4, 8] {
            let c = qft(n, false);
            let expected = usize::from(n) * (usize::from(n) + 1) / 2;
            assert_eq!(c.len(), expected, "n = {n}");
            assert!(c.validate().is_ok());
        }
    }

    #[test]
    fn qft_with_swaps_appends_reversal() {
        let c = qft(6, true);
        let without = qft(6, false);
        assert_eq!(c.len(), without.len() + 3);
        assert!(matches!(
            c.operations().last(),
            Some(Operation::Swap { .. })
        ));
    }

    #[test]
    fn qft_names_match_the_paper() {
        assert_eq!(qft(32, true).name(), "qft_32");
        assert_eq!(qft(48, true).name(), "qft_48");
    }

    #[test]
    fn inverse_qft_reverses_the_qft() {
        let f = qft(3, true);
        let i = inverse_qft(3, true);
        assert_eq!(f.len(), i.len());
        // The first op of the inverse is the adjoint of the last op of the QFT.
        match (f.operations().last(), i.operations().first()) {
            (Some(Operation::Swap { a, b, .. }), Some(Operation::Swap { a: ia, b: ib, .. })) => {
                assert_eq!((a, b), (ia, ib));
            }
            other => panic!("unexpected op pair {other:?}"),
        }
    }

    #[test]
    fn rotation_angles_shrink_geometrically() {
        let c = qft(4, false);
        // The first rotation targeting the top qubit uses angle pi/2, the
        // next pi/4, then pi/8.
        let mut angles = Vec::new();
        for op in c.operations() {
            if let Operation::Unitary {
                gate: circuit::OneQubitGate::Phase(a),
                target,
                controls,
            } = op
            {
                if target.index() == 3 && !controls.is_empty() {
                    angles.push(a.radians());
                }
            }
        }
        assert_eq!(angles.len(), 3);
        assert!((angles[0] - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((angles[1] - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        assert!((angles[2] - std::f64::consts::FRAC_PI_8).abs() < 1e-12);
    }
}

//! Stabilizer-code syndrome-extraction cycles — fully-Clifford dynamic
//! circuits that scale to thousands of qubits.

use circuit::{Circuit, Qubit};

/// Builds `rounds` syndrome-extraction cycles of the distance-`n`
/// repetition code: the canonical fully-Clifford *dynamic* benchmark for
/// the stabilizer-tableau engine.
///
/// The register holds `n` data qubits (`0..n`) in a GHZ chain — the logical
/// `|+>` of the bit-flip repetition code, stabilized by every neighbouring
/// `Z_i Z_{i+1}` parity — and `n - 1` syndrome ancillas (`n..2n-1`), one
/// per parity.  Each round extracts every parity onto its ancilla with two
/// CNOTs and recycles the ancilla with a `reset` (the extraction is
/// deterministic in the noiseless code space, so discarding the outcome
/// loses nothing, and the classical record stays narrow at any distance).
/// A trailing block then measures the first `min(n, 64)` data qubits —
/// the cap keeps the record inside the simulators' 64-bit registers — so a
/// noiseless run reports only the all-zeros and all-ones records, each with
/// probability one half.
///
/// The circuit contains resets, hence is dynamic
/// ([`Circuit::is_dynamic`]), yet every operation is Clifford: it runs on
/// a stabilizer tableau in polynomial time at sizes far beyond any dense
/// backend.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Examples
///
/// ```
/// let c = algorithms::stabilizer_cycle(5, 2);
/// assert_eq!(c.num_qubits(), 9); // 5 data + 4 ancillas
/// assert!(c.is_dynamic());
/// assert!(c.clifford_segments().is_fully_clifford());
/// ```
#[must_use]
pub fn stabilizer_cycle(n: u16, rounds: u16) -> Circuit {
    assert!(n > 0, "the repetition code needs at least one data qubit");
    let ancillas = n - 1;
    let mut c = Circuit::with_name(n + ancillas, format!("stabilizer_cycle_{n}x{rounds}"));
    // Logical |+>: a GHZ chain over the data qubits.
    c.h(Qubit(0));
    for i in 1..n {
        c.cx(Qubit(i - 1), Qubit(i));
    }
    for _ in 0..rounds {
        for a in 0..ancillas {
            let ancilla = Qubit(n + a);
            c.cx(Qubit(a), ancilla);
            c.cx(Qubit(a + 1), ancilla);
            c.reset(ancilla);
        }
    }
    for q in 0..n.min(64) {
        c.measure(Qubit(q), q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_structure_scales_linearly() {
        let c = stabilizer_cycle(7, 3);
        assert_eq!(c.num_qubits(), 13);
        assert_eq!(c.num_clbits(), 7);
        // GHZ prep + 3 rounds of (2 CX + reset) per parity + 7 measures.
        assert_eq!(c.len(), 7 + 3 * 3 * 6 + 7);
        assert!(c.validate().is_ok());
        assert!(c.is_dynamic());
        assert!(c.clifford_segments().is_fully_clifford());
        assert_eq!(c.name(), "stabilizer_cycle_7x3");
    }

    #[test]
    fn readout_is_capped_at_the_record_width() {
        let c = stabilizer_cycle(100, 1);
        assert_eq!(c.num_clbits(), 64);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn single_qubit_code_has_no_ancillas() {
        let c = stabilizer_cycle(1, 5);
        assert_eq!(c.num_qubits(), 1);
        // Just the H and the readout: no parities to extract.
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one data qubit")]
    fn zero_data_qubits_panic() {
        let _ = stabilizer_cycle(0, 1);
    }
}

//! Benchmark circuit generators for the weak-simulation evaluation.
//!
//! The reproduced paper evaluates its samplers on five circuit families
//! (Section V); this crate generates all of them, plus a few extra
//! entangled-state preparations used by examples and tests:
//!
//! * [`qft`] — the Quantum Fourier Transform (`qft_A` benchmarks),
//! * [`grover`] — Grover's search with a random oracle (`grover_A`),
//! * [`shor`] — Shor's order-finding circuit for factoring (`shor_A_B`),
//! * [`jellium`] — Trotterized uniform-electron-gas circuits
//!   (`jellium_AxA`; see `DESIGN.md` for the substitution notes),
//! * [`supremacy`] — random grid circuits in the style of the Google
//!   quantum-supremacy benchmarks (`supremacy_AxB_C`),
//! * [`ghz`], [`w_state`], [`random_circuit`] — auxiliary workloads,
//! * [`teleportation`] — the dynamic-circuit (mid-circuit measurement)
//!   reference workload,
//! * [`ipe`] — single-ancilla iterative phase estimation, the
//!   classically-controlled (`if (c==k)`) qubit-reuse reference workload,
//! * [`stabilizer_cycle`] — repetition-code syndrome-extraction rounds,
//!   the fully-Clifford dynamic workload for the stabilizer-tableau
//!   engine (scales to thousands of qubits),
//! * [`hardware_noise`], [`teleportation_noise_sweep`], [`ipe_noise_sweep`]
//!   — reference noise models and error-rate sweeps for noisy-hardware
//!   emulation through the trajectory engine.
//!
//! Every generator is deterministic given its parameters (and seed, where
//! randomness is involved), so experiments are reproducible.
//!
//! # Examples
//!
//! ```
//! let qft = algorithms::qft(8, true);
//! assert_eq!(qft.num_qubits(), 8);
//! assert!(qft.validate().is_ok());
//!
//! let grover = algorithms::grover(6, 42);
//! assert_eq!(grover.num_qubits(), 7); // 6 search qubits + 1 ancilla
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dynamic;
mod entangle;
mod grover;
mod ipe;
mod jellium;
mod noisy;
mod qft;
mod random;
mod shor;
mod stabilizer;
mod supremacy;

pub use dynamic::teleportation;
pub use entangle::{bell_pair, ghz, w_state};
pub use grover::{grover, grover_with_iterations, GroverSpec};
pub use ipe::ipe;
pub use jellium::{jellium, JelliumSpec};
pub use noisy::{hardware_noise, ipe_noise_sweep, teleportation_noise_sweep};
pub use qft::{inverse_qft, qft};
pub use random::random_circuit;
pub use shor::{shor, ShorSpec};
pub use stabilizer::stabilizer_cycle;
pub use supremacy::{supremacy, SupremacySpec};

/// Returns the running example of the paper (Figs. 2–4): a 3-qubit circuit
/// whose final state has amplitudes
/// `[0, -0.612i, 0, -0.612i, 0.354, 0, 0, 0.354]` and therefore measurement
/// probabilities `[0, 3/8, 0, 3/8, 1/8, 0, 0, 1/8]`.
///
/// # Examples
///
/// ```
/// let c = algorithms::running_example();
/// assert_eq!(c.num_qubits(), 3);
/// ```
#[must_use]
pub fn running_example() -> circuit::Circuit {
    use circuit::Qubit;
    use mathkit::Angle;
    let mut c = circuit::Circuit::with_name(3, "running_example");
    c.rx(Angle::Radians(2.0 * std::f64::consts::PI / 3.0), Qubit(2));
    c.x(Qubit(2));
    c.h(Qubit(1));
    c.ccx(Qubit(2), Qubit(1), Qubit(0));
    c.x(Qubit(0));
    c.cx(Qubit(2), Qubit(0));
    c
}

#[cfg(test)]
mod tests {
    #[test]
    fn running_example_is_valid() {
        let c = super::running_example();
        assert!(c.validate().is_ok());
        assert_eq!(c.len(), 6);
        assert_eq!(c.name(), "running_example");
    }
}

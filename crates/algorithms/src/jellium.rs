//! Trotterized uniform-electron-gas (jellium) circuits (`jellium_AxA`
//! benchmarks).
//!
//! The paper simulates the low-depth jellium circuits of Babbush et al.
//! (Phys. Rev. X 8, 011044).  As documented in `DESIGN.md`, this generator
//! builds the closest self-contained equivalent: a Trotterized
//! plane-wave-dual-basis Hamiltonian on an `A x A` grid of sites with two
//! spin-orbitals per site — Givens-rotation hopping layers between
//! neighbouring orbitals, `CPHASE` interaction layers between spin pairs,
//! and single-qubit `Rz` potential terms.  The state it produces is
//! comparably entangled and exercises the identical simulation and sampling
//! code paths.

use circuit::{Circuit, OneQubitGate, Qubit};
use mathkit::Angle;

/// Parameters of a generated jellium circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JelliumSpec {
    /// Grid side length (the benchmark name is `jellium_AxA`).
    pub side: u16,
    /// Trotter steps.
    pub steps: u16,
    /// Total qubits: two spin-orbitals per grid site.
    pub qubits: u16,
}

/// Builds a Trotterized jellium circuit on an `side x side` grid with the
/// given number of Trotter steps.
///
/// Each grid site carries two qubits (spin up/down), matching the qubit
/// counts of the paper's benchmarks: `jellium_2x2` has 8 qubits,
/// `jellium_3x3` has 18.
///
/// # Panics
///
/// Panics if `side` is zero.
///
/// # Examples
///
/// ```
/// let (c, spec) = algorithms::jellium(2, 2);
/// assert_eq!(spec.qubits, 8);
/// assert_eq!(c.name(), "jellium_2x2");
/// ```
#[must_use]
pub fn jellium(side: u16, steps: u16) -> (Circuit, JelliumSpec) {
    assert!(side > 0, "grid side must be positive");
    let sites = side * side;
    let qubits = 2 * sites;
    let spec = JelliumSpec {
        side,
        steps,
        qubits,
    };
    let mut c = Circuit::with_name(qubits, format!("jellium_{side}x{side}"));

    // Spin-orbital index: site (r, col), spin s in {0, 1}.
    let orbital = |r: u16, col: u16, s: u16| Qubit(2 * (r * side + col) + s);

    // Prepare a half-filled Fock state: occupy the spin-up orbital of every
    // other site (checkerboard), then rotate into the plane-wave basis with a
    // layer of Hadamards on the empty orbitals.
    for r in 0..side {
        for col in 0..side {
            if (r + col) % 2 == 0 {
                c.x(orbital(r, col, 0));
            } else {
                c.h(orbital(r, col, 0));
            }
            c.h(orbital(r, col, 1));
        }
    }

    // Deterministic pseudo-couplings derived from the lattice geometry so the
    // circuit needs no external data.
    let hop_angle = |i: u16| Angle::Radians(0.3 + 0.07 * f64::from(i % 11));
    let int_angle = |i: u16| Angle::Radians(0.2 + 0.05 * f64::from(i % 13));
    let pot_angle = |i: u16| Angle::Radians(0.1 + 0.03 * f64::from(i % 17));

    for step in 0..steps {
        // Hopping terms: Givens rotations between horizontally and vertically
        // neighbouring orbitals of the same spin.
        let mut bond = step;
        for s in 0..2u16 {
            for r in 0..side {
                for col in 0..side {
                    if col + 1 < side {
                        append_givens(
                            &mut c,
                            orbital(r, col, s),
                            orbital(r, col + 1, s),
                            hop_angle(bond),
                        );
                        bond += 1;
                    }
                    if r + 1 < side {
                        append_givens(
                            &mut c,
                            orbital(r, col, s),
                            orbital(r + 1, col, s),
                            hop_angle(bond),
                        );
                        bond += 1;
                    }
                }
            }
        }
        // Interaction terms: controlled phases between the two spins of a
        // site and between neighbouring sites.
        let mut pair = step;
        for r in 0..side {
            for col in 0..side {
                c.cp(int_angle(pair), orbital(r, col, 0), orbital(r, col, 1));
                pair += 1;
                if col + 1 < side {
                    c.cp(int_angle(pair), orbital(r, col, 0), orbital(r, col + 1, 0));
                    pair += 1;
                }
                if r + 1 < side {
                    c.cp(int_angle(pair), orbital(r, col, 1), orbital(r + 1, col, 1));
                    pair += 1;
                }
            }
        }
        // Potential terms: single-qubit Rz on every orbital.
        for q in 0..qubits {
            c.rz(pot_angle(q + step), Qubit(q));
        }
    }

    (c, spec)
}

/// Appends a Givens rotation (number-preserving hopping gate) between two
/// orbitals: `CX(b, a); controlled-Ry(2 theta) a->b; CX(b, a)`.
fn append_givens(c: &mut Circuit, a: Qubit, b: Qubit, theta: Angle) {
    c.cx(b, a);
    c.controlled_gate(
        OneQubitGate::Ry(Angle::Radians(2.0 * theta.radians())),
        vec![a],
        b,
    );
    c.cx(b, a);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_counts_match_the_paper() {
        assert_eq!(jellium(2, 1).1.qubits, 8);
        assert_eq!(jellium(3, 1).1.qubits, 18);
        assert_eq!(jellium(2, 1).0.num_qubits(), 8);
    }

    #[test]
    fn circuits_validate() {
        for side in 1..=3 {
            let (c, spec) = jellium(side, 2);
            assert!(c.validate().is_ok(), "side {side}");
            assert_eq!(spec.side, side);
        }
    }

    #[test]
    fn more_steps_mean_more_gates() {
        let one = jellium(2, 1).0.len();
        let three = jellium(2, 3).0.len();
        assert!(three > 2 * one);
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(jellium(3, 2).0, jellium(3, 2).0);
    }

    #[test]
    fn givens_rotation_structure() {
        let mut c = Circuit::new(2);
        append_givens(&mut c, Qubit(0), Qubit(1), Angle::Radians(0.4));
        assert_eq!(c.len(), 3);
        let stats = c.stats();
        assert_eq!(stats.counts["x"], 2);
        assert_eq!(stats.counts["ry"], 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_side_panics() {
        let _ = jellium(0, 1);
    }
}

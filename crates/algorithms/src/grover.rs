//! Grover search circuits with a random oracle (`grover_A` benchmarks).

use circuit::{Circuit, OneQubitGate, Qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a generated Grover circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroverSpec {
    /// Number of search qubits (the circuit adds one oracle ancilla).
    pub search_qubits: u16,
    /// The marked element the random oracle recognises.
    pub marked: u64,
    /// Number of Grover iterations in the circuit.
    pub iterations: usize,
}

impl GroverSpec {
    /// The total number of qubits of the circuit (search register + ancilla).
    #[must_use]
    pub fn total_qubits(&self) -> u16 {
        self.search_qubits + 1
    }
}

/// Builds Grover's search over `n` search qubits with an oracle marking a
/// random element drawn from `seed`, using the standard
/// `floor(pi/4 * sqrt(2^n))` iteration count.
///
/// The circuit uses `n + 1` qubits (one oracle ancilla prepared in `|->`),
/// matching the qubit counts of the paper's `grover_A` benchmarks
/// (e.g. `grover_20` has 21 qubits).
///
/// # Examples
///
/// ```
/// let c = algorithms::grover(10, 7);
/// assert_eq!(c.num_qubits(), 11);
/// assert!(c.name().starts_with("grover_10"));
/// ```
#[must_use]
pub fn grover(n: u16, seed: u64) -> Circuit {
    let iterations = default_iterations(n);
    grover_with_iterations(n, seed, iterations).0
}

/// Builds Grover's search with an explicit iteration count, returning the
/// circuit together with the [`GroverSpec`] describing the marked element.
///
/// # Panics
///
/// Panics if `n` is zero or larger than 63.
#[must_use]
pub fn grover_with_iterations(n: u16, seed: u64, iterations: usize) -> (Circuit, GroverSpec) {
    assert!(n > 0 && n < 64, "search register must have 1..=63 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let marked: u64 = rng.gen_range(0..(1u64 << n));

    let spec = GroverSpec {
        search_qubits: n,
        marked,
        iterations,
    };
    let ancilla = Qubit(n);
    let search: Vec<Qubit> = (0..n).map(Qubit).collect();

    let mut c = Circuit::with_name(n + 1, format!("grover_{n}"));

    // Ancilla in |->, search register in uniform superposition.
    c.x(ancilla);
    c.h(ancilla);
    for &q in &search {
        c.h(q);
    }

    for _ in 0..iterations {
        append_oracle(&mut c, &search, ancilla, marked);
        append_diffusion(&mut c, &search);
    }
    (c, spec)
}

/// The standard optimal iteration count `floor(pi/4 * sqrt(2^n))`.
#[must_use]
fn default_iterations(n: u16) -> usize {
    let space = (1u64 << n.min(62)) as f64;
    (std::f64::consts::FRAC_PI_4 * space.sqrt())
        .floor()
        .max(1.0) as usize
}

/// Appends the phase oracle: flips the ancilla (in `|->`) iff the search
/// register equals the marked element.
fn append_oracle(c: &mut Circuit, search: &[Qubit], ancilla: Qubit, marked: u64) {
    // Map the marked element to the all-ones pattern, apply a multi-controlled
    // X onto the ancilla, and undo the mapping.
    for (bit, &q) in search.iter().enumerate() {
        if marked & (1 << bit) == 0 {
            c.x(q);
        }
    }
    c.mcx(search.to_vec(), ancilla);
    for (bit, &q) in search.iter().enumerate() {
        if marked & (1 << bit) == 0 {
            c.x(q);
        }
    }
}

/// Appends the diffusion operator (inversion about the mean) on the search
/// register.
fn append_diffusion(c: &mut Circuit, search: &[Qubit]) {
    for &q in search {
        c.h(q);
        c.x(q);
    }
    // Multi-controlled Z on the all-ones state.
    let (last, controls) = search.split_last().expect("search register is non-empty");
    c.controlled_gate(OneQubitGate::Z, controls.to_vec(), *last);
    for &q in search {
        c.x(q);
        c.h(q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_counts_match_the_paper() {
        // Table I: grover_20 has 21 qubits, grover_35 has 36.
        assert_eq!(grover(20, 0).num_qubits(), 21);
        assert_eq!(grover_with_iterations(35, 0, 1).0.num_qubits(), 36);
    }

    #[test]
    fn circuit_is_valid_and_deterministic_per_seed() {
        let a = grover_with_iterations(8, 123, 3);
        let b = grover_with_iterations(8, 123, 3);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert!(a.0.validate().is_ok());
        let c = grover_with_iterations(8, 124, 3);
        // A different seed almost surely marks a different element.
        assert_ne!(a.1.marked, c.1.marked);
    }

    #[test]
    fn iteration_count_scales_with_square_root() {
        let (c1, s1) = grover_with_iterations(4, 0, default_iterations(4));
        let (c2, s2) = grover_with_iterations(8, 0, default_iterations(8));
        assert_eq!(s1.iterations, 3); // floor(pi/4 * 4)
        assert_eq!(s2.iterations, 12); // floor(pi/4 * 16)
        assert!(c2.len() > c1.len());
    }

    #[test]
    fn marked_element_is_within_range() {
        for seed in 0..20 {
            let (_, spec) = grover_with_iterations(6, seed, 1);
            assert!(spec.marked < 64);
            assert_eq!(spec.total_qubits(), 7);
        }
    }

    #[test]
    fn oracle_and_diffusion_gate_structure() {
        let (c, _) = grover_with_iterations(3, 5, 1);
        let stats = c.stats();
        // 1 oracle MCX + 1 diffusion MCZ with 3-qubit support each.
        assert!(stats.counts["x"] >= 1);
        assert!(stats.counts["h"] >= 8);
        assert!(stats.multi_qubit_ops >= 2);
    }

    #[test]
    #[should_panic(expected = "1..=63")]
    fn zero_search_qubits_panics() {
        let _ = grover_with_iterations(0, 0, 1);
    }
}

//! Property-based tests of the numeric substrate.
//!
//! Written as seeded randomized tests (the offline build cannot fetch
//! `proptest`): each property draws a few hundred random cases from a
//! deterministic RNG, so failures reproduce exactly.

use mathkit::{approx_eq_with, CTable, Complex, KahanSum, Tolerance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;

/// Complex multiplication is commutative and associative up to round-off,
/// and conjugation distributes over it.
#[test]
fn complex_field_axioms() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..CASES {
        let mut draw = || Complex::new(rng.gen_range(-1e3..1e3), rng.gen_range(-1e3..1e3));
        let (a, b, c) = (draw(), draw(), draw());
        assert!((a * b - b * a).norm() < 1e-6);
        assert!(((a * b) * c - a * (b * c)).norm() < 1e-3);
        assert!((a * (b + c) - (a * b + a * c)).norm() < 1e-3);
        assert!(((a * b).conj() - a.conj() * b.conj()).norm() < 1e-6);
    }
}

/// `norm_sqr` equals `z * conj(z)` and is preserved by phases.
#[test]
fn norms_behave() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..CASES {
        let z = Complex::new(rng.gen_range(-1e3..1e3), rng.gen_range(-1e3..1e3));
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        assert!((z.norm_sqr() - (z * z.conj()).re).abs() < 1e-6);
        let rotated = z * Complex::phase(theta);
        assert!(approx_eq_with(
            z.norm_sqr(),
            rotated.norm_sqr(),
            1e-6 * (1.0 + z.norm_sqr())
        ));
    }
}

/// Division inverts multiplication away from zero.
#[test]
fn division_inverts() {
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    for _ in 0..CASES {
        let divisor = Complex::new(rng.gen_range(0.001..1e3), rng.gen_range(0.001..1e3));
        let value = Complex::new(rng.gen_range(-1e3..1e3), rng.gen_range(-1e3..1e3));
        let back = (value / divisor) * divisor;
        assert!((back - value).norm() < 1e-6 * (1.0 + value.norm()));
    }
}

/// The Kahan sum of split values matches the sum of the halves far better
/// than the naive order-dependent drift bound.
#[test]
fn kahan_sum_is_accurate() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..64 {
        let len = rng.gen_range(1..2000usize);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let compensated: KahanSum = values.iter().copied().collect();
        // Compare against summation in two halves, which would expose
        // catastrophic error accumulation if compensation were broken.
        let mid = values.len() / 2;
        let left: KahanSum = values[..mid].iter().copied().collect();
        let right: KahanSum = values[mid..].iter().copied().collect();
        assert!((compensated.value() - (left.value() + right.value())).abs() < 1e-9);
    }
}

/// Interning is idempotent and respects the tolerance: re-interning an
/// interned value (or anything within epsilon of it) returns the same id.
#[test]
fn ctable_interning_is_stable() {
    let mut rng = StdRng::seed_from_u64(0x7AB1E);
    for _ in 0..64 {
        let len = rng.gen_range(1..200usize);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let mut table = CTable::new();
        let ids: Vec<_> = values.iter().map(|&v| table.intern(v)).collect();
        for (&v, &id) in values.iter().zip(&ids) {
            assert_eq!(table.intern(v), id);
            assert_eq!(table.intern(v + 1e-12), id);
            assert!((table.value(id) - v).abs() <= 1e-10 + 1e-12);
        }
    }
}

/// Distinct values far apart never collide in the table.
#[test]
fn ctable_separates_distinct_values() {
    let mut rng = StdRng::seed_from_u64(0xFA4);
    for _ in 0..CASES {
        let a = rng.gen_range(-10.0..10.0);
        let delta = rng.gen_range(0.001..10.0);
        let mut table = CTable::with_tolerance(Tolerance::new(1e-10));
        let x = table.intern(a);
        let y = table.intern(a + delta);
        assert_ne!(x, y);
    }
}

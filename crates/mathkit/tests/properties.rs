//! Property-based tests of the numeric substrate.

use mathkit::{approx_eq_with, CTable, Complex, KahanSum, Tolerance};
use proptest::prelude::*;

proptest! {
    /// Complex multiplication is commutative and associative up to round-off,
    /// and conjugation distributes over it.
    #[test]
    fn complex_field_axioms(a in (-1e3..1e3f64, -1e3..1e3f64),
                            b in (-1e3..1e3f64, -1e3..1e3f64),
                            c in (-1e3..1e3f64, -1e3..1e3f64)) {
        let a = Complex::new(a.0, a.1);
        let b = Complex::new(b.0, b.1);
        let c = Complex::new(c.0, c.1);
        prop_assert!((a * b - b * a).norm() < 1e-6);
        prop_assert!(((a * b) * c - a * (b * c)).norm() < 1e-3);
        prop_assert!((a * (b + c) - (a * b + a * c)).norm() < 1e-3);
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).norm() < 1e-6);
    }

    /// `norm_sqr` equals `z * conj(z)` and is preserved by phases.
    #[test]
    fn norms_behave(re in -1e3..1e3f64, im in -1e3..1e3f64, theta in 0.0..std::f64::consts::TAU) {
        let z = Complex::new(re, im);
        prop_assert!((z.norm_sqr() - (z * z.conj()).re).abs() < 1e-6);
        let rotated = z * Complex::phase(theta);
        prop_assert!(approx_eq_with(z.norm_sqr(), rotated.norm_sqr(), 1e-6 * (1.0 + z.norm_sqr())));
    }

    /// Division inverts multiplication away from zero.
    #[test]
    fn division_inverts(re in 0.001..1e3f64, im in 0.001..1e3f64,
                        wre in -1e3..1e3f64, wim in -1e3..1e3f64) {
        let divisor = Complex::new(re, im);
        let value = Complex::new(wre, wim);
        let back = (value / divisor) * divisor;
        prop_assert!((back - value).norm() < 1e-6 * (1.0 + value.norm()));
    }

    /// The Kahan sum of shuffled values matches the exact rational total far
    /// better than the naive order-dependent drift bound.
    #[test]
    fn kahan_sum_is_accurate(values in proptest::collection::vec(-1.0..1.0f64, 1..2000)) {
        let compensated: KahanSum = values.iter().copied().collect();
        // Compare against summation in two halves, which would expose
        // catastrophic error accumulation if compensation were broken.
        let mid = values.len() / 2;
        let left: KahanSum = values[..mid].iter().copied().collect();
        let right: KahanSum = values[mid..].iter().copied().collect();
        prop_assert!((compensated.value() - (left.value() + right.value())).abs() < 1e-9);
    }

    /// Interning is idempotent and respects the tolerance: re-interning an
    /// interned value (or anything within epsilon of it) returns the same id.
    #[test]
    fn ctable_interning_is_stable(values in proptest::collection::vec(-10.0..10.0f64, 1..200)) {
        let mut table = CTable::new();
        let ids: Vec<_> = values.iter().map(|&v| table.intern(v)).collect();
        for (&v, &id) in values.iter().zip(&ids) {
            prop_assert_eq!(table.intern(v), id);
            prop_assert_eq!(table.intern(v + 1e-12), id);
            prop_assert!((table.value(id) - v).abs() <= 1e-10 + 1e-12);
        }
    }

    /// Distinct values far apart never collide in the table.
    #[test]
    fn ctable_separates_distinct_values(a in -10.0..10.0f64, delta in 0.001..10.0f64) {
        let mut table = CTable::with_tolerance(Tolerance::new(1e-10));
        let x = table.intern(a);
        let y = table.intern(a + delta);
        prop_assert_ne!(x, y);
    }
}

//! A minimal `f64` complex number type.
//!
//! The simulator only needs a handful of operations (addition,
//! multiplication, conjugation, squared magnitude), so a small local type is
//! preferable to pulling in an external numeric crate.  The type is `Copy`
//! and `#[repr(C)]` so it can be stored densely in state vectors.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use mathkit::Complex;
///
/// let i = Complex::I;
/// assert_eq!(i * i, -Complex::ONE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    ///
    /// # Examples
    ///
    /// ```
    /// let z = mathkit::Complex::new(3.0, -4.0);
    /// assert_eq!(z.norm(), 5.0);
    /// ```
    #[inline]
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    #[must_use]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mathkit::Complex;
    /// let z = Complex::from_polar(1.0, std::f64::consts::PI);
    /// assert!((z - Complex::new(-1.0, 0.0)).norm() < 1e-15);
    /// ```
    #[inline]
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Returns `e^{i theta}`, a unit-magnitude phase factor.
    #[inline]
    #[must_use]
    pub fn phase(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The squared magnitude `|z|^2 = re^2 + im^2`.
    ///
    /// This is the quantity that quantum measurement probabilities are made
    /// of, so it has a dedicated, division-free accessor.
    #[inline]
    #[must_use]
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `|z|`.
    #[inline]
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// The argument (angle) of the complex number in radians, in `(-pi, pi]`.
    #[inline]
    #[must_use]
    pub fn arg(&self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The complex conjugate `re - i*im`.
    #[inline]
    #[must_use]
    pub fn conj(&self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// The multiplicative inverse `1/z`.
    ///
    /// Returns [`Complex::ZERO`] when `self` is exactly zero rather than
    /// producing NaNs; callers in the simulator never divide by an exact
    /// zero, but benchmark-generated circuits should not be able to poison
    /// the numeric state.
    #[inline]
    #[must_use]
    pub fn recip(&self) -> Self {
        let d = self.norm_sqr();
        if d == 0.0 {
            return Self::ZERO;
        }
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Multiplies by a real scalar.
    #[inline]
    #[must_use]
    pub fn scale(&self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` if both parts are exactly zero.
    #[inline]
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.re == 0.0 && self.im == 0.0
    }

    /// Returns `true` if either part is NaN.
    #[inline]
    #[must_use]
    pub fn is_nan(&self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both parts are finite.
    #[inline]
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Returns `true` if the number is within `tol` of zero in both parts.
    #[inline]
    #[must_use]
    pub fn is_approx_zero(&self, tol: f64) -> bool {
        self.re.abs() <= tol && self.im.abs() <= tol
    }

    /// Returns `true` if `self` and `other` agree within `tol` componentwise.
    #[inline]
    #[must_use]
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// The square root of the complex number (principal branch).
    #[must_use]
    pub fn sqrt(&self) -> Self {
        let r = self.norm();
        let theta = self.arg();
        Self::from_polar(r.sqrt(), theta / 2.0)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im == 0.0 {
            write!(f, "{}", self.re)
        } else if self.re == 0.0 {
            write!(f, "{}i", self.im)
        } else if self.im < 0.0 {
            write!(f, "{}{}i", self.re, self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl From<(f64, f64)> for Complex {
    fn from((re, im): (f64, f64)) -> Self {
        Self::new(re, im)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, Add::add)
    }
}

impl Product for Complex {
    fn product<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ONE, Mul::mul)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn constructors_and_accessors() {
        let z = Complex::new(1.5, -2.5);
        assert_eq!(z.re, 1.5);
        assert_eq!(z.im, -2.5);
        assert_eq!(Complex::from_real(3.0), Complex::new(3.0, 0.0));
        assert_eq!(Complex::from(2.0), Complex::new(2.0, 0.0));
        assert_eq!(Complex::from((1.0, 2.0)), Complex::new(1.0, 2.0));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 0.25);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a - a, Complex::ZERO);
        assert!((a * b - b * a).norm() < EPS);
        assert!(((a + b) - (b + a)).norm() < EPS);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(0.3, -0.7);
        let b = Complex::new(1.1, 0.9);
        let c = a * b;
        assert!((c / b - a).norm() < EPS);
        assert!((b * b.recip() - Complex::ONE).norm() < EPS);
    }

    #[test]
    fn recip_of_zero_is_zero() {
        assert_eq!(Complex::ZERO.recip(), Complex::ZERO);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.norm() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn phase_has_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            assert!((Complex::phase(theta).norm() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex::new(0.6, 0.8);
        assert!((z * z.conj() - Complex::from_real(z.norm_sqr())).norm() < EPS);
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-1.0, 0.5);
        let s = z.sqrt();
        assert!((s * s - z).norm() < 1e-10);
    }

    #[test]
    fn norm_sqr_matches_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Complex::new(1.0, 0.0).to_string(), "1");
        assert_eq!(Complex::new(0.0, -1.0).to_string(), "-1i");
        assert_eq!(Complex::new(1.0, 1.0).to_string(), "1+1i");
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1-1i");
    }

    #[test]
    fn sum_and_product_impls() {
        let v = [Complex::ONE, Complex::I, Complex::new(2.0, 0.0)];
        let s: Complex = v.iter().copied().sum();
        assert_eq!(s, Complex::new(3.0, 1.0));
        let p: Complex = v.iter().copied().product();
        assert_eq!(p, Complex::new(0.0, 2.0));
    }

    #[test]
    fn approx_helpers() {
        let a = Complex::new(1.0, 1.0);
        let b = Complex::new(1.0 + 1e-14, 1.0 - 1e-14);
        assert!(a.approx_eq(&b, 1e-12));
        assert!(!a.approx_eq(&b, 1e-16));
        assert!(Complex::new(1e-15, -1e-15).is_approx_zero(1e-12));
        assert!(!Complex::new(1e-3, 0.0).is_approx_zero(1e-12));
    }

    #[test]
    fn scalar_multiplication() {
        let z = Complex::new(1.0, -2.0);
        assert_eq!(z * 2.0, Complex::new(2.0, -4.0));
        assert_eq!(2.0 * z, Complex::new(2.0, -4.0));
        assert_eq!(z / 2.0, Complex::new(0.5, -1.0));
    }

    #[test]
    fn nan_and_finite_checks() {
        assert!(Complex::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex::ONE.is_nan());
        assert!(Complex::ONE.is_finite());
        assert!(!Complex::new(f64::INFINITY, 0.0).is_finite());
    }
}

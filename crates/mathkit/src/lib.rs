//! Numeric substrate for the weak-simulation reproduction.
//!
//! This crate provides the low-level numeric machinery shared by the
//! decision-diagram engine ([`dd`](https://docs.rs/dd)) and the dense
//! statevector engine:
//!
//! * [`Complex`] — a small, `Copy`, `f64`-based complex number type with the
//!   operations needed by quantum-circuit simulation (no external numeric
//!   dependency).
//! * [`CTable`] — a canonical *complex value table* that interns complex
//!   numbers under a numerical tolerance, following the implementation
//!   strategy of Zulehner, Hillmich and Wille (ICCAD 2019, reference \[24\]
//!   of the paper).  Interning is what allows structurally equal
//!   decision-diagram nodes to be detected by hashing even in the presence of
//!   floating-point round-off.
//! * [`KahanSum`] — compensated summation used when accumulating probability
//!   mass over exponentially many amplitudes (prefix sums) so that the total
//!   stays close to 1 even for billions of additions.
//! * [`FxHasher`]/[`FxHashMap`] — a tiny, fast, deterministic hash function
//!   (in the spirit of the Firefox/rustc `FxHash`) so the hot unique-table and
//!   compute-table lookups do not pay SipHash costs and no external hashing
//!   crate is required.
//!
//! # Examples
//!
//! ```
//! use mathkit::Complex;
//!
//! let h = Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
//! let one = h * h + h * h;
//! assert!((one - Complex::ONE).norm() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod angle;
mod complex;
mod ctable;
mod hash;
mod kahan;
mod tolerance;

pub use angle::{binary_angle, Angle};
pub use complex::Complex;
pub use ctable::{CTable, CTableStats, ValueId};
pub use hash::{
    hash_f64, hash_finish, hash_mix, hash_u64, FxBuildHasher, FxHashMap, FxHashSet, FxHasher,
    HASH_AVALANCHE,
};
pub use kahan::{compensated_sum, KahanSum};
pub use tolerance::{approx_eq, approx_eq_with, Tolerance, DEFAULT_TOLERANCE};

/// The square root of one half, `1/sqrt(2)`, the most common amplitude
/// magnitude in quantum computing (produced by the Hadamard gate).
pub const SQRT1_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

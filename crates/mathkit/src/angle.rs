//! Rotation-angle helpers.
//!
//! Quantum-Fourier-transform style circuits use controlled phase rotations by
//! dyadic fractions of `2*pi`; representing these angles exactly (as a dyadic
//! fraction) rather than as a pre-computed `f64` keeps gate matrices
//! reproducible and lets the circuit printer emit readable angles.

use std::f64::consts::PI;
use std::fmt;

/// An angle in radians, stored exactly when it is a dyadic multiple of `pi`.
///
/// # Examples
///
/// ```
/// use mathkit::Angle;
///
/// let quarter_turn = Angle::pi_over(2);
/// assert!((quarter_turn.radians() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Angle {
    /// `numerator * pi / 2^k` — exact representation used by QFT-style gates.
    DyadicPi {
        /// The numerator multiplying `pi`.
        numerator: i64,
        /// The power-of-two denominator exponent.
        power: u32,
    },
    /// An arbitrary angle in radians.
    Radians(f64),
}

impl Angle {
    /// An angle of zero radians.
    pub const ZERO: Angle = Angle::DyadicPi {
        numerator: 0,
        power: 0,
    };

    /// Creates the angle `pi / 2^(k-1)`, i.e. the controlled-rotation angle
    /// `R_k` used by the Quantum Fourier Transform (`k = 1` is `pi`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn qft_rotation(k: u32) -> Self {
        assert!(k >= 1, "QFT rotation index starts at 1");
        Angle::DyadicPi {
            numerator: 1,
            power: k - 1,
        }
    }

    /// Creates the angle `pi / d` for a power-of-two-friendly divisor.
    ///
    /// For divisors that are not powers of two the angle falls back to the
    /// floating-point representation.
    #[must_use]
    pub fn pi_over(d: u32) -> Self {
        if d.is_power_of_two() {
            Angle::DyadicPi {
                numerator: 1,
                power: d.trailing_zeros(),
            }
        } else {
            Angle::Radians(PI / f64::from(d))
        }
    }

    /// Creates an angle directly from radians.
    #[must_use]
    pub fn radians_value(theta: f64) -> Self {
        Angle::Radians(theta)
    }

    /// The angle in radians.
    #[must_use]
    pub fn radians(&self) -> f64 {
        match *self {
            Angle::DyadicPi { numerator, power } => {
                numerator as f64 * PI / (1u64 << power.min(62)) as f64
            }
            Angle::Radians(theta) => theta,
        }
    }

    /// Returns `Some(k)` if the angle equals `k * pi/2` for an integer `k`
    /// (within [`DEFAULT_TOLERANCE`](crate::DEFAULT_TOLERANCE) for
    /// floating-point angles; exact for dyadic angles).
    ///
    /// These are precisely the rotation angles whose `Rz`/`Phase` gates are
    /// Clifford, so this is the primitive behind gate classification for
    /// stabilizer routing.
    ///
    /// # Examples
    ///
    /// ```
    /// use mathkit::Angle;
    ///
    /// assert_eq!(Angle::pi_over(2).half_pi_multiple(), Some(1));
    /// assert_eq!(Angle::pi_over(4).half_pi_multiple(), None);
    /// assert_eq!(Angle::Radians(std::f64::consts::PI).half_pi_multiple(), Some(2));
    /// ```
    #[must_use]
    pub fn half_pi_multiple(&self) -> Option<i64> {
        match *self {
            Angle::DyadicPi { numerator, power } => {
                // numerator * pi / 2^power = k * pi/2  <=>  k = numerator * 2^(1-power).
                if numerator == 0 {
                    Some(0)
                } else if power == 0 {
                    numerator.checked_mul(2)
                } else if power <= 63 && numerator % (1i64 << (power - 1)) == 0 {
                    Some(numerator >> (power - 1))
                } else {
                    None
                }
            }
            Angle::Radians(theta) => {
                let k = (theta / std::f64::consts::FRAC_PI_2).round();
                let residue = theta - k * std::f64::consts::FRAC_PI_2;
                if residue.abs() <= crate::DEFAULT_TOLERANCE && k.abs() < 9.0e15 {
                    Some(k as i64)
                } else {
                    None
                }
            }
        }
    }

    /// Returns `true` if the angle is an integer multiple of `pi/2` (see
    /// [`half_pi_multiple`](Self::half_pi_multiple)).
    #[must_use]
    pub fn is_half_pi_multiple(&self) -> bool {
        self.half_pi_multiple().is_some()
    }

    /// Returns `true` if the angle is an integer multiple of `pi` — the
    /// angles whose `Rz`/`Rx`/`Ry`/`Phase` gates are Pauli operators up to a
    /// global phase.
    #[must_use]
    pub fn is_pi_multiple(&self) -> bool {
        self.half_pi_multiple().is_some_and(|k| k % 2 == 0)
    }

    /// The negated angle.
    #[must_use]
    pub fn negated(&self) -> Self {
        match *self {
            Angle::DyadicPi { numerator, power } => Angle::DyadicPi {
                numerator: -numerator,
                power,
            },
            Angle::Radians(theta) => Angle::Radians(-theta),
        }
    }
}

impl Default for Angle {
    fn default() -> Self {
        Angle::ZERO
    }
}

impl From<f64> for Angle {
    fn from(theta: f64) -> Self {
        Angle::Radians(theta)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Angle::DyadicPi { numerator: 0, .. } => write!(f, "0"),
            Angle::DyadicPi {
                numerator,
                power: 0,
            } => write!(f, "{numerator}*pi"),
            Angle::DyadicPi { numerator, power } => {
                write!(f, "{numerator}*pi/{}", 1u64 << power)
            }
            Angle::Radians(theta) => write!(f, "{theta}"),
        }
    }
}

/// Returns the phase angle `2*pi * 0.b_1 b_2 ... b_m` encoded by the binary
/// fraction given as a slice of bits (most significant first).
///
/// This is the phase accumulated on a QFT counting register and is used by
/// tests to validate the QFT circuit generator.
///
/// # Examples
///
/// ```
/// // 0.1 in binary is one half, so the angle is pi.
/// let theta = mathkit::binary_angle(&[true]);
/// assert!((theta - std::f64::consts::PI).abs() < 1e-15);
/// ```
#[must_use]
pub fn binary_angle(bits: &[bool]) -> f64 {
    let mut frac = 0.0;
    let mut scale = 0.5;
    for &b in bits {
        if b {
            frac += scale;
        }
        scale *= 0.5;
    }
    2.0 * PI * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft_rotation_angles() {
        assert!((Angle::qft_rotation(1).radians() - PI).abs() < 1e-15);
        assert!((Angle::qft_rotation(2).radians() - PI / 2.0).abs() < 1e-15);
        assert!((Angle::qft_rotation(3).radians() - PI / 4.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "starts at 1")]
    fn qft_rotation_zero_panics() {
        let _ = Angle::qft_rotation(0);
    }

    #[test]
    fn pi_over_power_of_two_is_exact() {
        match Angle::pi_over(8) {
            Angle::DyadicPi { numerator, power } => {
                assert_eq!(numerator, 1);
                assert_eq!(power, 3);
            }
            Angle::Radians(_) => panic!("expected exact representation"),
        }
        assert!((Angle::pi_over(3).radians() - PI / 3.0).abs() < 1e-15);
    }

    #[test]
    fn negation_and_default() {
        assert_eq!(Angle::default().radians(), 0.0);
        assert!((Angle::pi_over(2).negated().radians() + PI / 2.0).abs() < 1e-15);
        assert_eq!(Angle::Radians(1.5).negated(), Angle::Radians(-1.5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Angle::ZERO.to_string(), "0");
        assert_eq!(Angle::qft_rotation(1).to_string(), "1*pi");
        assert_eq!(Angle::qft_rotation(3).to_string(), "1*pi/4");
        assert_eq!(Angle::Radians(0.5).to_string(), "0.5");
    }

    #[test]
    fn binary_angle_examples() {
        assert_eq!(binary_angle(&[]), 0.0);
        assert!((binary_angle(&[true]) - PI).abs() < 1e-15);
        assert!((binary_angle(&[false, true]) - PI / 2.0).abs() < 1e-15);
        assert!((binary_angle(&[true, true]) - 3.0 * PI / 2.0).abs() < 1e-15);
    }

    #[test]
    fn half_pi_multiple_classification() {
        // Exact dyadic angles.
        assert_eq!(Angle::ZERO.half_pi_multiple(), Some(0));
        assert_eq!(Angle::pi_over(2).half_pi_multiple(), Some(1));
        assert_eq!(Angle::qft_rotation(1).half_pi_multiple(), Some(2)); // pi
        assert_eq!(Angle::pi_over(4).half_pi_multiple(), None);
        assert_eq!(Angle::pi_over(8).half_pi_multiple(), None);
        assert_eq!(
            Angle::DyadicPi {
                numerator: -3,
                power: 1
            }
            .half_pi_multiple(),
            Some(-3)
        );
        assert_eq!(
            Angle::DyadicPi {
                numerator: 6,
                power: 2
            }
            .half_pi_multiple(),
            Some(3)
        );
        assert_eq!(
            Angle::DyadicPi {
                numerator: 0,
                power: 40
            }
            .half_pi_multiple(),
            Some(0)
        );
        // Floating-point angles within the default tolerance.
        assert_eq!(Angle::Radians(PI / 2.0).half_pi_multiple(), Some(1));
        assert_eq!(Angle::Radians(-PI).half_pi_multiple(), Some(-2));
        assert_eq!(
            Angle::Radians(3.0 * PI / 2.0 + 1e-12).half_pi_multiple(),
            Some(3)
        );
        assert_eq!(Angle::Radians(PI / 4.0).half_pi_multiple(), None);
        assert_eq!(Angle::Radians(0.7).half_pi_multiple(), None);
    }

    #[test]
    fn pi_multiple_classification() {
        assert!(Angle::ZERO.is_pi_multiple());
        assert!(Angle::qft_rotation(1).is_pi_multiple()); // pi
        assert!(Angle::Radians(-2.0 * PI).is_pi_multiple());
        assert!(!Angle::pi_over(2).is_pi_multiple());
        assert!(!Angle::Radians(0.3).is_pi_multiple());
        assert!(Angle::pi_over(2).is_half_pi_multiple());
        assert!(!Angle::pi_over(4).is_half_pi_multiple());
    }

    #[test]
    fn from_f64_conversion() {
        let a: Angle = 0.25.into();
        assert_eq!(a.radians(), 0.25);
    }
}

//! A small, fast, deterministic hasher for hot lookup tables.
//!
//! The decision-diagram unique table and compute table perform a hash lookup
//! per recursive call; the default SipHash hasher of `std::collections`
//! dominates profiles there.  This module provides an `FxHash`-style
//! multiply-xor hasher (the same construction used inside rustc) so no
//! external hashing crate is needed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// The `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A multiply-xor hasher in the style of Firefox/rustc `FxHash`.
///
/// Not cryptographically secure; intended purely for in-memory tables keyed
/// by small integers and packed structs.
///
/// # Examples
///
/// ```
/// use mathkit::FxHashMap;
///
/// let mut m: FxHashMap<u64, &str> = FxHashMap::default();
/// m.insert(42, "answer");
/// assert_eq!(m.get(&42), Some(&"answer"));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Hashes a single `u64` with the Fx mixing function.
///
/// Useful for building composite hash keys by hand (e.g. compute-table keys).
#[inline]
#[must_use]
pub fn hash_u64(x: u64) -> u64 {
    x.rotate_left(5).wrapping_mul(SEED)
}

/// Folds one word into a running Fx hash state (the stateful form of
/// [`hash_u64`], identical to the internal mixing step of [`FxHasher`]).
///
/// This is the building block for hashing small packed structs by hand —
/// e.g. decision-diagram node payloads and compute-table keys — without
/// going through the `Hasher` trait machinery: start from `0` (or any
/// constant) and fold each field in order.
#[inline]
#[must_use]
pub fn hash_mix(state: u64, word: u64) -> u64 {
    (state.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// The avalanche word folded in as the final [`hash_mix`] step of a
/// hand-rolled struct hash (see [`hash_finish`]).
pub const HASH_AVALANCHE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Finalises a running Fx hash state built with [`hash_mix`] by folding in
/// one avalanche constant, so the low bits — the ones an open-addressing
/// table actually indexes with — depend on every field folded so far.
///
/// Every table that keys on the same payload layout must use the same
/// finaliser: the decision-diagram unique tables and the per-worker overlay
/// tables of parallel construction hash node payloads with `hash_mix` +
/// `hash_finish` so a precomputed hash can be carried across table
/// boundaries without rehashing.
#[inline]
#[must_use]
pub fn hash_finish(state: u64) -> u64 {
    hash_mix(state, HASH_AVALANCHE)
}

/// Hashes an `f64` by its bit pattern after normalising `-0.0` to `+0.0`.
///
/// Interned complex values are compared by tolerance before hashing, so two
/// values that should share a hash bucket are first snapped to a canonical
/// representative; this function then gives a stable bucket for that
/// representative.
#[inline]
#[must_use]
pub fn hash_f64(x: f64) -> u64 {
    let canonical = if x == 0.0 { 0.0_f64 } else { x };
    hash_u64(canonical.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_one(&12345u64), hash_one(&12345u64));
        assert_eq!(hash_one(&"hello"), hash_one(&"hello"));
    }

    #[test]
    fn different_keys_usually_differ() {
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(hash_one(&(1u32, 2u32)), hash_one(&(2u32, 1u32)));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i + 1), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(10, 11)], 10);

        let s: FxHashSet<u64> = (0..100).collect();
        assert!(s.contains(&99));
        assert!(!s.contains(&100));
    }

    #[test]
    fn negative_zero_hashes_like_positive_zero() {
        assert_eq!(hash_f64(0.0), hash_f64(-0.0));
        assert_ne!(hash_f64(0.0), hash_f64(1.0));
    }

    #[test]
    fn write_paths_cover_all_widths() {
        let mut h = FxHasher::default();
        h.write_u8(1);
        h.write_u16(2);
        h.write_u32(3);
        h.write_u64(4);
        h.write_usize(5);
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_ne!(h.finish(), 0);
    }
}

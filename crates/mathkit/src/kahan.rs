//! Compensated (Kahan–Babuška) summation.
//!
//! The vector-based sampler builds a prefix-sum array over up to `2^n`
//! probabilities; naive accumulation drifts enough that the final prefix can
//! differ noticeably from 1.0, which would bias samples drawn near the end of
//! the array.  [`KahanSum`] keeps a running compensation term so the error is
//! bounded independently of the number of additions.

/// A running compensated sum.
///
/// # Examples
///
/// ```
/// use mathkit::KahanSum;
///
/// let mut sum = KahanSum::new();
/// for _ in 0..1_000_000 {
///     sum.add(1e-6);
/// }
/// assert!((sum.value() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Creates an empty sum.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sum starting from `value`.
    #[must_use]
    pub fn with_value(value: f64) -> Self {
        Self {
            sum: value,
            compensation: 0.0,
        }
    }

    /// Adds `x` to the running sum with compensation (Neumaier variant, which
    /// stays accurate even when the addend is larger than the running sum).
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The current compensated value of the sum.
    #[inline]
    #[must_use]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl From<f64> for KahanSum {
    fn from(value: f64) -> Self {
        Self::with_value(value)
    }
}

impl Extend<f64> for KahanSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Sums a slice of `f64` with compensation and returns the total.
///
/// # Examples
///
/// ```
/// let xs = vec![0.1_f64; 10];
/// assert!((mathkit::KahanSum::from_iter(xs.iter().copied()).value() - 1.0).abs() < 1e-15);
/// ```
#[must_use]
pub fn compensated_sum(values: &[f64]) -> f64 {
    values.iter().copied().collect::<KahanSum>().value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(KahanSum::new().value(), 0.0);
    }

    #[test]
    fn matches_exact_sum_for_small_inputs() {
        let mut s = KahanSum::new();
        s.add(1.0);
        s.add(2.0);
        s.add(3.0);
        assert_eq!(s.value(), 6.0);
    }

    #[test]
    fn compensates_catastrophic_cancellation() {
        // Classic Neumaier example: naive summation loses the small terms.
        let mut s = KahanSum::new();
        s.add(1.0);
        s.add(1e100);
        s.add(1.0);
        s.add(-1e100);
        assert_eq!(s.value(), 2.0);
    }

    #[test]
    fn many_tiny_terms_stay_accurate() {
        let n = 10_000_000_u64;
        let term = 1.0 / n as f64;
        let mut s = KahanSum::new();
        for _ in 0..n {
            s.add(term);
        }
        assert!((s.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: KahanSum = (0..100).map(|i| i as f64).collect();
        assert_eq!(s.value(), 4950.0);
        s.extend([1.0, 2.0]);
        assert_eq!(s.value(), 4953.0);
        assert_eq!(compensated_sum(&[0.5, 0.25, 0.25]), 1.0);
    }

    #[test]
    fn with_value_starts_from_given_total() {
        let mut s = KahanSum::with_value(10.0);
        s.add(5.0);
        assert_eq!(s.value(), 15.0);
        assert_eq!(KahanSum::from(3.0).value(), 3.0);
    }
}

//! Canonical complex-value interning.
//!
//! Decision-diagram node sharing requires that edge weights which are "the
//! same number up to floating-point round-off" compare equal and hash to the
//! same bucket.  Following the implementation strategy of Zulehner, Hillmich
//! and Wille ("How to efficiently handle complex values?", ICCAD 2019 —
//! reference \[24\] of the reproduced paper), the [`CTable`] interns `f64`
//! values under an absolute tolerance and hands out stable [`ValueId`]s.
//! Two interned values are equal if and only if their ids are equal, so
//! downstream hash tables can key on the ids directly.

use crate::tolerance::Tolerance;
use crate::Complex;
use crate::FxHashMap;

/// A stable identifier for an interned real value in a [`CTable`].
///
/// Ids are never reused; comparing ids is equivalent to comparing the
/// underlying values under the table's tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(u32);

impl ValueId {
    /// The id of the pre-interned value `0.0`.
    pub const ZERO: ValueId = ValueId(0);
    /// The id of the pre-interned value `1.0`.
    pub const ONE: ValueId = ValueId(1);

    /// The raw index of this id (useful for dense side tables).
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Occupancy statistics of a [`CTable`], useful when reporting memory use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CTableStats {
    /// Number of distinct interned values.
    pub entries: usize,
    /// Number of lookups that found an existing entry.
    pub hits: u64,
    /// Number of lookups that inserted a new entry.
    pub misses: u64,
}

/// A tolerance-based interning table for real values.
///
/// # Examples
///
/// ```
/// use mathkit::CTable;
///
/// let mut table = CTable::new();
/// let a = table.intern(std::f64::consts::FRAC_1_SQRT_2);
/// let b = table.intern(1.0 / 2.0_f64.sqrt());
/// assert_eq!(a, b); // same value up to round-off, same id
/// ```
#[derive(Debug, Clone)]
pub struct CTable {
    values: Vec<f64>,
    buckets: FxHashMap<i64, Vec<ValueId>>,
    tolerance: Tolerance,
    hits: u64,
    misses: u64,
}

impl CTable {
    /// Creates a table with the [default tolerance](crate::DEFAULT_TOLERANCE),
    /// pre-populated with `0.0` and `1.0` (ids [`ValueId::ZERO`] and
    /// [`ValueId::ONE`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_tolerance(Tolerance::default())
    }

    /// Creates a table with an explicit tolerance.
    #[must_use]
    pub fn with_tolerance(tolerance: Tolerance) -> Self {
        let mut table = Self {
            values: Vec::with_capacity(64),
            buckets: FxHashMap::default(),
            tolerance,
            hits: 0,
            misses: 0,
        };
        let zero = table.intern(0.0);
        let one = table.intern(1.0);
        debug_assert_eq!(zero, ValueId::ZERO);
        debug_assert_eq!(one, ValueId::ONE);
        table.hits = 0;
        table.misses = 0;
        table
    }

    /// The tolerance used for equality.
    #[must_use]
    pub fn tolerance(&self) -> Tolerance {
        self.tolerance
    }

    fn bucket_of(&self, value: f64) -> i64 {
        // Bucket width is 2x the tolerance so a value and anything within
        // tolerance of it land in the same or an adjacent bucket.
        let width = (self.tolerance.eps() * 2.0).max(f64::MIN_POSITIVE);
        (value / width).round() as i64
    }

    /// Interns `value`, returning the id of an existing entry within
    /// tolerance or inserting a new entry.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or infinite — non-finite amplitudes always
    /// indicate a bug further up the stack and must not be silently interned.
    pub fn intern(&mut self, value: f64) -> ValueId {
        assert!(value.is_finite(), "cannot intern non-finite value {value}");
        let value = if value == 0.0 { 0.0 } else { value };
        let bucket = self.bucket_of(value);
        for b in [bucket, bucket - 1, bucket + 1] {
            if let Some(ids) = self.buckets.get(&b) {
                for &id in ids {
                    if self.tolerance.eq(self.values[id.index()], value) {
                        self.hits += 1;
                        return id;
                    }
                }
            }
        }
        let id = ValueId(u32::try_from(self.values.len()).expect("complex table overflow"));
        self.values.push(value);
        self.buckets.entry(bucket).or_default().push(id);
        self.misses += 1;
        id
    }

    /// Interns both components of a complex number.
    pub fn intern_complex(&mut self, z: Complex) -> (ValueId, ValueId) {
        (self.intern(z.re), self.intern(z.im))
    }

    /// Read-only lookup: the id of an existing entry within tolerance of
    /// `value`, or `None` without interning anything.
    ///
    /// This is the concurrent-interning primitive used by parallel
    /// decision-diagram construction: worker threads probe a *frozen* master
    /// table through a shared reference (no lock needed — the table is not
    /// mutated during the parallel region) and only values the master does
    /// not know yet go into a worker-private table, to be canonically
    /// re-interned at the sync point.  The search is exactly the lookup
    /// phase of [`intern`](Self::intern), so `probe(x).is_none()` guarantees
    /// a subsequent `intern(x)` on the same (unmodified) table would insert.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or infinite, like [`intern`](Self::intern).
    #[must_use]
    pub fn probe(&self, value: f64) -> Option<ValueId> {
        assert!(value.is_finite(), "cannot probe non-finite value {value}");
        let value = if value == 0.0 { 0.0 } else { value };
        let bucket = self.bucket_of(value);
        for b in [bucket, bucket - 1, bucket + 1] {
            if let Some(ids) = self.buckets.get(&b) {
                for &id in ids {
                    if self.tolerance.eq(self.values[id.index()], value) {
                        return Some(id);
                    }
                }
            }
        }
        None
    }

    /// The interned values as a dense slice, indexed by
    /// [`ValueId::index`].  Useful for offset-coded side tables that address
    /// a frozen table's values without constructing ids.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The id addressing the entry at `index` — the inverse of
    /// [`ValueId::index`], validated against this table so ids cannot be
    /// fabricated for slots that do not exist.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn id_at(&self, index: usize) -> ValueId {
        assert!(
            index < self.values.len(),
            "value index {index} out of range (table has {} entries)",
            self.values.len()
        );
        ValueId(index as u32)
    }

    /// The value stored under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    #[must_use]
    pub fn value(&self, id: ValueId) -> f64 {
        self.values[id.index()]
    }

    /// Reconstructs a complex number from a pair of interned components.
    #[must_use]
    pub fn complex(&self, re: ValueId, im: ValueId) -> Complex {
        Complex::new(self.value(re), self.value(im))
    }

    /// The number of distinct interned values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if only the pre-populated constants are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.len() <= 2
    }

    /// Lookup statistics.
    #[must_use]
    pub fn stats(&self) -> CTableStats {
        CTableStats {
            entries: self.values.len(),
            hits: self.hits,
            misses: self.misses,
        }
    }
}

impl Default for CTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preinterned_constants() {
        let mut t = CTable::new();
        assert_eq!(t.intern(0.0), ValueId::ZERO);
        assert_eq!(t.intern(1.0), ValueId::ONE);
        assert_eq!(t.value(ValueId::ZERO), 0.0);
        assert_eq!(t.value(ValueId::ONE), 1.0);
    }

    #[test]
    fn values_within_tolerance_share_an_id() {
        let mut t = CTable::new();
        let a = t.intern(0.5);
        let b = t.intern(0.5 + 1e-12);
        let c = t.intern(0.5 - 1e-12);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(t.len(), 3); // 0, 1, 0.5
    }

    #[test]
    fn values_outside_tolerance_get_fresh_ids() {
        let mut t = CTable::new();
        let a = t.intern(0.5);
        let b = t.intern(0.5001);
        assert_ne!(a, b);
    }

    #[test]
    fn negative_zero_is_zero() {
        let mut t = CTable::new();
        assert_eq!(t.intern(-0.0), ValueId::ZERO);
    }

    #[test]
    fn complex_roundtrip() {
        let mut t = CTable::new();
        let z = Complex::new(0.25, -0.75);
        let (re, im) = t.intern_complex(z);
        assert_eq!(t.complex(re, im), z);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut t = CTable::new();
        t.intern(0.3);
        t.intern(0.3);
        t.intern(0.7);
        let s = t.stats();
        assert_eq!(s.entries, 4);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn boundary_values_near_bucket_edges_still_match() {
        let mut t = CTable::new();
        // Construct values straddling a bucket boundary but within tolerance.
        let eps = t.tolerance().eps();
        let base = 123.0 * (2.0 * eps) + eps; // sits exactly on a boundary
        let a = t.intern(base - 0.4 * eps);
        let b = t.intern(base + 0.4 * eps);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn interning_nan_panics() {
        let mut t = CTable::new();
        let _ = t.intern(f64::NAN);
    }

    #[test]
    fn many_distinct_values() {
        let mut t = CTable::new();
        let ids: Vec<_> = (0..1000).map(|i| t.intern(i as f64 * 0.001)).collect();
        // Re-interning returns the identical ids.
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(t.intern(i as f64 * 0.001), id);
        }
    }
}

//! Numerical tolerance handling.
//!
//! Decision-diagram node sharing relies on recognising that two
//! floating-point amplitudes are "the same value up to round-off".  All such
//! comparisons in the workspace go through the [`Tolerance`] type so that the
//! comparison policy is defined in exactly one place.

/// The default absolute tolerance used when interning complex values and
/// comparing amplitudes, matching the magnitude used by DD-based simulators
/// in the literature.
pub const DEFAULT_TOLERANCE: f64 = 1e-10;

/// An absolute comparison tolerance.
///
/// # Examples
///
/// ```
/// use mathkit::Tolerance;
///
/// let tol = Tolerance::default();
/// assert!(tol.eq(1.0, 1.0 + 1e-13));
/// assert!(!tol.eq(1.0, 1.001));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Tolerance(f64);

impl Tolerance {
    /// Creates a tolerance from an absolute epsilon.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative or not finite.
    #[must_use]
    pub fn new(eps: f64) -> Self {
        assert!(
            eps.is_finite() && eps >= 0.0,
            "tolerance must be a non-negative finite number"
        );
        Self(eps)
    }

    /// The absolute epsilon of this tolerance.
    #[inline]
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.0
    }

    /// Returns `true` if `a` and `b` differ by at most the tolerance.
    #[inline]
    #[must_use]
    pub fn eq(&self, a: f64, b: f64) -> bool {
        (a - b).abs() <= self.0
    }

    /// Returns `true` if `x` is within the tolerance of zero.
    #[inline]
    #[must_use]
    pub fn is_zero(&self, x: f64) -> bool {
        x.abs() <= self.0
    }

    /// Returns `true` if `x` is within the tolerance of one.
    #[inline]
    #[must_use]
    pub fn is_one(&self, x: f64) -> bool {
        (x - 1.0).abs() <= self.0
    }
}

impl Default for Tolerance {
    fn default() -> Self {
        Self(DEFAULT_TOLERANCE)
    }
}

/// Compares two floats under the [`DEFAULT_TOLERANCE`].
///
/// # Examples
///
/// ```
/// assert!(mathkit::approx_eq(0.1 + 0.2, 0.3));
/// ```
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= DEFAULT_TOLERANCE
}

/// Compares two floats under an explicit absolute tolerance.
#[inline]
#[must_use]
pub fn approx_eq_with(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tolerance_accepts_roundoff() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(approx_eq(1.0, 1.0));
        assert!(!approx_eq(1.0, 1.0001));
    }

    #[test]
    fn explicit_tolerance() {
        assert!(approx_eq_with(1.0, 1.01, 0.1));
        assert!(!approx_eq_with(1.0, 1.01, 0.001));
    }

    #[test]
    fn tolerance_type_behaviour() {
        let t = Tolerance::new(1e-6);
        assert_eq!(t.eps(), 1e-6);
        assert!(t.eq(2.0, 2.0 + 5e-7));
        assert!(t.is_zero(-5e-7));
        assert!(t.is_one(1.0 - 5e-7));
        assert!(!t.is_one(1.1));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_panics() {
        let _ = Tolerance::new(-1.0);
    }
}

//! The single-qubit gate alphabet.

use mathkit::{Angle, Complex, SQRT1_2};
use std::fmt;

/// A single-qubit gate with an exact 2×2 unitary matrix.
///
/// The alphabet covers everything the benchmark generators need: the
/// Pauli gates, Hadamard, the phase-gate family (`S`, `T`, arbitrary
/// [`Phase`](OneQubitGate::Phase)), square roots of `X`/`Y` (used by the
/// supremacy circuits), and the rotation gates `Rx`, `Ry`, `Rz`.
///
/// # Examples
///
/// ```
/// use circuit::OneQubitGate;
///
/// let h = OneQubitGate::H.matrix();
/// // H is its own inverse: H*H = I.
/// let m00 = h[0][0] * h[0][0] + h[0][1] * h[1][0];
/// assert!((m00.re - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OneQubitGate {
    /// The identity gate.
    I,
    /// The Pauli-X (NOT) gate.
    X,
    /// The Pauli-Y gate.
    Y,
    /// The Pauli-Z gate.
    Z,
    /// The Hadamard gate.
    H,
    /// The S gate (`sqrt(Z)`).
    S,
    /// The inverse S gate.
    Sdg,
    /// The T gate (`Z^(1/4)`).
    T,
    /// The inverse T gate.
    Tdg,
    /// The square root of X (`sqrt(X)`), used by supremacy circuits.
    SqrtX,
    /// The inverse square root of X.
    SqrtXdg,
    /// The square root of Y (`sqrt(Y)`), used by supremacy circuits.
    SqrtY,
    /// The inverse square root of Y.
    SqrtYdg,
    /// A phase gate `diag(1, e^{i theta})`.
    Phase(Angle),
    /// A rotation about the X axis by the given angle.
    Rx(Angle),
    /// A rotation about the Y axis by the given angle.
    Ry(Angle),
    /// A rotation about the Z axis by the given angle.
    Rz(Angle),
    /// The generic single-qubit gate `U(theta, phi, lambda)` of OpenQASM.
    U {
        /// Polar rotation angle.
        theta: Angle,
        /// Phase applied to the |1> component of the input.
        phi: Angle,
        /// Phase applied to the |1> component of the output.
        lambda: Angle,
    },
}

/// A 2×2 complex matrix in row-major order: `m[row][column]`.
pub type Matrix2 = [[Complex; 2]; 2];

impl OneQubitGate {
    /// The 2×2 unitary matrix of the gate.
    #[must_use]
    pub fn matrix(&self) -> Matrix2 {
        let zero = Complex::ZERO;
        let one = Complex::ONE;
        let i = Complex::I;
        let h = Complex::from_real(SQRT1_2);
        match *self {
            OneQubitGate::I => [[one, zero], [zero, one]],
            OneQubitGate::X => [[zero, one], [one, zero]],
            OneQubitGate::Y => [[zero, -i], [i, zero]],
            OneQubitGate::Z => [[one, zero], [zero, -one]],
            OneQubitGate::H => [[h, h], [h, -h]],
            OneQubitGate::S => [[one, zero], [zero, i]],
            OneQubitGate::Sdg => [[one, zero], [zero, -i]],
            OneQubitGate::T => [
                [one, zero],
                [zero, Complex::phase(std::f64::consts::FRAC_PI_4)],
            ],
            OneQubitGate::Tdg => [
                [one, zero],
                [zero, Complex::phase(-std::f64::consts::FRAC_PI_4)],
            ],
            OneQubitGate::SqrtX => {
                let p = Complex::new(0.5, 0.5);
                let m = Complex::new(0.5, -0.5);
                [[p, m], [m, p]]
            }
            OneQubitGate::SqrtXdg => {
                let p = Complex::new(0.5, 0.5);
                let m = Complex::new(0.5, -0.5);
                [[m, p], [p, m]]
            }
            OneQubitGate::SqrtY => {
                let p = Complex::new(0.5, 0.5);
                let m = Complex::new(-0.5, -0.5);
                [[p, m], [-m, p]]
            }
            OneQubitGate::SqrtYdg => {
                let p = Complex::new(0.5, -0.5);
                let m = Complex::new(0.5, -0.5);
                [[p, m], [-m, p]]
            }
            OneQubitGate::Phase(theta) => [[one, zero], [zero, Complex::phase(theta.radians())]],
            OneQubitGate::Rx(theta) => {
                let half = theta.radians() / 2.0;
                let c = Complex::from_real(half.cos());
                let s = Complex::new(0.0, -half.sin());
                [[c, s], [s, c]]
            }
            OneQubitGate::Ry(theta) => {
                let half = theta.radians() / 2.0;
                let c = Complex::from_real(half.cos());
                let s = Complex::from_real(half.sin());
                [[c, -s], [s, c]]
            }
            OneQubitGate::Rz(theta) => {
                let half = theta.radians() / 2.0;
                [[Complex::phase(-half), zero], [zero, Complex::phase(half)]]
            }
            OneQubitGate::U { theta, phi, lambda } => {
                let t = theta.radians() / 2.0;
                let (c, s) = (t.cos(), t.sin());
                let phi = phi.radians();
                let lambda = lambda.radians();
                [
                    [Complex::from_real(c), -Complex::phase(lambda) * s],
                    [Complex::phase(phi) * s, Complex::phase(phi + lambda) * c],
                ]
            }
        }
    }

    /// The adjoint (inverse) gate.
    #[must_use]
    pub fn adjoint(&self) -> OneQubitGate {
        match *self {
            OneQubitGate::S => OneQubitGate::Sdg,
            OneQubitGate::Sdg => OneQubitGate::S,
            OneQubitGate::T => OneQubitGate::Tdg,
            OneQubitGate::Tdg => OneQubitGate::T,
            OneQubitGate::SqrtX => OneQubitGate::SqrtXdg,
            OneQubitGate::SqrtXdg => OneQubitGate::SqrtX,
            OneQubitGate::SqrtY => OneQubitGate::SqrtYdg,
            OneQubitGate::SqrtYdg => OneQubitGate::SqrtY,
            OneQubitGate::Phase(a) => OneQubitGate::Phase(a.negated()),
            OneQubitGate::Rx(a) => OneQubitGate::Rx(a.negated()),
            OneQubitGate::Ry(a) => OneQubitGate::Ry(a.negated()),
            OneQubitGate::Rz(a) => OneQubitGate::Rz(a.negated()),
            OneQubitGate::U { theta, phi, lambda } => OneQubitGate::U {
                theta: theta.negated(),
                phi: lambda.negated(),
                lambda: phi.negated(),
            },
            g @ (OneQubitGate::I
            | OneQubitGate::X
            | OneQubitGate::Y
            | OneQubitGate::Z
            | OneQubitGate::H) => g,
        }
    }

    /// Returns `true` if the gate matrix is diagonal, which lets simulators
    /// skip work (diagonal gates never change the branching structure of a
    /// decision diagram).
    #[must_use]
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            OneQubitGate::I
                | OneQubitGate::Z
                | OneQubitGate::S
                | OneQubitGate::Sdg
                | OneQubitGate::T
                | OneQubitGate::Tdg
                | OneQubitGate::Phase(_)
                | OneQubitGate::Rz(_)
        )
    }

    /// Returns `true` if the gate is a member of the single-qubit Clifford
    /// group (it maps Pauli operators to Pauli operators under conjugation),
    /// so a stabilizer-tableau simulator can execute it.
    ///
    /// The named gates are classified structurally; the parametric gates
    /// (`Phase`, `Rx`, `Ry`, `Rz`, `U`) are Clifford exactly when their
    /// angles are integer multiples of `pi/2`, decided by
    /// [`mathkit::Angle::is_half_pi_multiple`] (exact for dyadic angles,
    /// within the `mathkit` default tolerance for floating-point ones).  For
    /// `U(theta, phi, lambda)` the check requires all three Euler angles to
    /// be multiples of `pi/2`; this is sufficient but not necessary (angle
    /// combinations that cancel into a Clifford are reported as
    /// non-Clifford), which errs on the safe side for routing: a false
    /// `false` only costs dense simulation, a false `true` would corrupt
    /// stabilizer results.
    ///
    /// # Examples
    ///
    /// ```
    /// use circuit::OneQubitGate;
    /// use mathkit::Angle;
    ///
    /// assert!(OneQubitGate::H.is_clifford());
    /// assert!(OneQubitGate::Rz(Angle::pi_over(2)).is_clifford());
    /// assert!(!OneQubitGate::Rz(Angle::pi_over(4)).is_clifford());
    /// assert!(!OneQubitGate::T.is_clifford());
    /// ```
    #[must_use]
    pub fn is_clifford(&self) -> bool {
        match self {
            OneQubitGate::I
            | OneQubitGate::X
            | OneQubitGate::Y
            | OneQubitGate::Z
            | OneQubitGate::H
            | OneQubitGate::S
            | OneQubitGate::Sdg
            | OneQubitGate::SqrtX
            | OneQubitGate::SqrtXdg
            | OneQubitGate::SqrtY
            | OneQubitGate::SqrtYdg => true,
            OneQubitGate::T | OneQubitGate::Tdg => false,
            OneQubitGate::Phase(a)
            | OneQubitGate::Rx(a)
            | OneQubitGate::Ry(a)
            | OneQubitGate::Rz(a) => a.is_half_pi_multiple(),
            OneQubitGate::U { theta, phi, lambda } => {
                theta.is_half_pi_multiple()
                    && phi.is_half_pi_multiple()
                    && lambda.is_half_pi_multiple()
            }
        }
    }

    /// Returns `true` if the gate equals a Pauli operator (`I`, `X`, `Y` or
    /// `Z`) up to a global phase that is a power of `i`.
    ///
    /// This is exactly the condition under which the *controlled* version of
    /// the gate is Clifford (`CX`, `CY`, `CZ` are Clifford; `CS`, `CH`,
    /// controlled rotations by other angles are not), so
    /// [`Operation`](crate::Operation)-level classification builds on it.
    /// Parametric gates qualify when their angle is an integer multiple of
    /// `pi` (e.g. `Rz(pi) = -iZ`); like [`is_clifford`](Self::is_clifford)
    /// the `U` check is conservative.
    #[must_use]
    pub fn is_pauli_up_to_phase(&self) -> bool {
        match self {
            OneQubitGate::I | OneQubitGate::X | OneQubitGate::Y | OneQubitGate::Z => true,
            OneQubitGate::H
            | OneQubitGate::S
            | OneQubitGate::Sdg
            | OneQubitGate::T
            | OneQubitGate::Tdg
            | OneQubitGate::SqrtX
            | OneQubitGate::SqrtXdg
            | OneQubitGate::SqrtY
            | OneQubitGate::SqrtYdg => false,
            OneQubitGate::Phase(a)
            | OneQubitGate::Rx(a)
            | OneQubitGate::Ry(a)
            | OneQubitGate::Rz(a) => a.is_pi_multiple(),
            OneQubitGate::U { theta, phi, lambda } => {
                // U(theta, phi, lambda) ∝ Rz(phi) Ry(theta) Rz(lambda):
                // a product of Paulis is a Pauli up to phase.
                theta.is_pi_multiple() && phi.is_pi_multiple() && lambda.is_pi_multiple()
            }
        }
    }

    /// The lowercase OpenQASM-style mnemonic of the gate.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            OneQubitGate::I => "id",
            OneQubitGate::X => "x",
            OneQubitGate::Y => "y",
            OneQubitGate::Z => "z",
            OneQubitGate::H => "h",
            OneQubitGate::S => "s",
            OneQubitGate::Sdg => "sdg",
            OneQubitGate::T => "t",
            OneQubitGate::Tdg => "tdg",
            OneQubitGate::SqrtX => "sx",
            OneQubitGate::SqrtXdg => "sxdg",
            OneQubitGate::SqrtY => "sy",
            OneQubitGate::SqrtYdg => "sydg",
            OneQubitGate::Phase(_) => "p",
            OneQubitGate::Rx(_) => "rx",
            OneQubitGate::Ry(_) => "ry",
            OneQubitGate::Rz(_) => "rz",
            OneQubitGate::U { .. } => "u",
        }
    }
}

impl fmt::Display for OneQubitGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OneQubitGate::Phase(a)
            | OneQubitGate::Rx(a)
            | OneQubitGate::Ry(a)
            | OneQubitGate::Rz(a) => {
                write!(f, "{}({})", self.name(), a)
            }
            OneQubitGate::U { theta, phi, lambda } => {
                write!(f, "u({theta},{phi},{lambda})")
            }
            _ => write!(f, "{}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::Angle;

    const EPS: f64 = 1e-12;

    fn mat_mul(a: &Matrix2, b: &Matrix2) -> Matrix2 {
        let mut out = [[Complex::ZERO; 2]; 2];
        for r in 0..2 {
            for c in 0..2 {
                out[r][c] = a[r][0] * b[0][c] + a[r][1] * b[1][c];
            }
        }
        out
    }

    fn adjoint_mat(a: &Matrix2) -> Matrix2 {
        [
            [a[0][0].conj(), a[1][0].conj()],
            [a[0][1].conj(), a[1][1].conj()],
        ]
    }

    fn assert_identity(m: &Matrix2) {
        assert!((m[0][0] - Complex::ONE).norm() < EPS, "m00 = {}", m[0][0]);
        assert!((m[1][1] - Complex::ONE).norm() < EPS, "m11 = {}", m[1][1]);
        assert!(m[0][1].norm() < EPS, "m01 = {}", m[0][1]);
        assert!(m[1][0].norm() < EPS, "m10 = {}", m[1][0]);
    }

    fn all_gates() -> Vec<OneQubitGate> {
        vec![
            OneQubitGate::I,
            OneQubitGate::X,
            OneQubitGate::Y,
            OneQubitGate::Z,
            OneQubitGate::H,
            OneQubitGate::S,
            OneQubitGate::Sdg,
            OneQubitGate::T,
            OneQubitGate::Tdg,
            OneQubitGate::SqrtX,
            OneQubitGate::SqrtXdg,
            OneQubitGate::SqrtY,
            OneQubitGate::SqrtYdg,
            OneQubitGate::Phase(Angle::pi_over(8)),
            OneQubitGate::Rx(Angle::Radians(0.37)),
            OneQubitGate::Ry(Angle::Radians(1.2)),
            OneQubitGate::Rz(Angle::Radians(-0.9)),
            OneQubitGate::U {
                theta: Angle::Radians(0.4),
                phi: Angle::Radians(0.8),
                lambda: Angle::Radians(-1.3),
            },
        ]
    }

    #[test]
    fn every_gate_is_unitary() {
        for g in all_gates() {
            let m = g.matrix();
            let prod = mat_mul(&adjoint_mat(&m), &m);
            assert_identity(&prod);
        }
    }

    #[test]
    fn adjoint_inverts_every_gate() {
        for g in all_gates() {
            let prod = mat_mul(&g.adjoint().matrix(), &g.matrix());
            assert_identity(&prod);
        }
    }

    #[test]
    fn sqrt_gates_square_to_paulis() {
        let sx2 = mat_mul(&OneQubitGate::SqrtX.matrix(), &OneQubitGate::SqrtX.matrix());
        let x = OneQubitGate::X.matrix();
        for r in 0..2 {
            for c in 0..2 {
                assert!((sx2[r][c] - x[r][c]).norm() < EPS);
            }
        }
        let sy2 = mat_mul(&OneQubitGate::SqrtY.matrix(), &OneQubitGate::SqrtY.matrix());
        let y = OneQubitGate::Y.matrix();
        for r in 0..2 {
            for c in 0..2 {
                assert!((sy2[r][c] - y[r][c]).norm() < EPS);
            }
        }
    }

    #[test]
    fn s_is_z_to_the_half_and_t_is_z_to_the_quarter() {
        let s2 = mat_mul(&OneQubitGate::S.matrix(), &OneQubitGate::S.matrix());
        let z = OneQubitGate::Z.matrix();
        for r in 0..2 {
            for c in 0..2 {
                assert!((s2[r][c] - z[r][c]).norm() < EPS);
            }
        }
        let t2 = mat_mul(&OneQubitGate::T.matrix(), &OneQubitGate::T.matrix());
        let s = OneQubitGate::S.matrix();
        for r in 0..2 {
            for c in 0..2 {
                assert!((t2[r][c] - s[r][c]).norm() < EPS);
            }
        }
    }

    #[test]
    fn phase_gate_matches_rz_up_to_global_phase() {
        let theta = 0.77;
        let p = OneQubitGate::Phase(Angle::Radians(theta)).matrix();
        let rz = OneQubitGate::Rz(Angle::Radians(theta)).matrix();
        // p = e^{i theta/2} rz
        let global = Complex::phase(theta / 2.0);
        for r in 0..2 {
            for c in 0..2 {
                assert!((p[r][c] - global * rz[r][c]).norm() < EPS);
            }
        }
    }

    #[test]
    fn u_gate_special_cases() {
        // U(0, 0, lambda) is a phase gate.
        let lambda = 0.3;
        let u = OneQubitGate::U {
            theta: Angle::ZERO,
            phi: Angle::ZERO,
            lambda: Angle::Radians(lambda),
        }
        .matrix();
        let p = OneQubitGate::Phase(Angle::Radians(lambda)).matrix();
        for r in 0..2 {
            for c in 0..2 {
                assert!((u[r][c] - p[r][c]).norm() < EPS);
            }
        }
        // U(pi/2, 0, pi) is Hadamard.
        let u = OneQubitGate::U {
            theta: Angle::pi_over(2),
            phi: Angle::ZERO,
            lambda: Angle::DyadicPi {
                numerator: 1,
                power: 0,
            },
        }
        .matrix();
        let h = OneQubitGate::H.matrix();
        for r in 0..2 {
            for c in 0..2 {
                assert!((u[r][c] - h[r][c]).norm() < EPS);
            }
        }
    }

    #[test]
    fn diagonal_classification() {
        assert!(OneQubitGate::Z.is_diagonal());
        assert!(OneQubitGate::T.is_diagonal());
        assert!(OneQubitGate::Rz(Angle::Radians(0.1)).is_diagonal());
        assert!(!OneQubitGate::X.is_diagonal());
        assert!(!OneQubitGate::H.is_diagonal());
    }

    /// Checks `is_clifford` against the definition: `U` is Clifford iff
    /// `U P U†` is a Pauli with a `±1` sign for both generators `P ∈ {X, Z}`.
    fn is_clifford_by_conjugation(g: &OneQubitGate) -> bool {
        let m = g.matrix();
        let mdg = adjoint_mat(&m);
        let paulis = [
            OneQubitGate::I.matrix(),
            OneQubitGate::X.matrix(),
            OneQubitGate::Y.matrix(),
            OneQubitGate::Z.matrix(),
        ];
        ['x', 'z'].iter().all(|axis| {
            let p = if *axis == 'x' {
                OneQubitGate::X.matrix()
            } else {
                OneQubitGate::Z.matrix()
            };
            let conj = mat_mul(&mat_mul(&m, &p), &mdg);
            // conj must equal ±Q for some Pauli Q.
            paulis.iter().any(|q| {
                [1.0, -1.0].iter().any(|sign| {
                    (0..2).all(|r| (0..2).all(|c| (conj[r][c] - q[r][c] * *sign).norm() < 1e-9))
                })
            })
        })
    }

    #[test]
    fn clifford_classification_of_named_gates() {
        let clifford = [
            OneQubitGate::I,
            OneQubitGate::X,
            OneQubitGate::Y,
            OneQubitGate::Z,
            OneQubitGate::H,
            OneQubitGate::S,
            OneQubitGate::Sdg,
            OneQubitGate::SqrtX,
            OneQubitGate::SqrtXdg,
            OneQubitGate::SqrtY,
            OneQubitGate::SqrtYdg,
        ];
        for g in clifford {
            assert!(g.is_clifford(), "{g} must be Clifford");
            assert!(is_clifford_by_conjugation(&g), "{g} conjugation check");
        }
        for g in [OneQubitGate::T, OneQubitGate::Tdg] {
            assert!(!g.is_clifford(), "{g} must not be Clifford");
            assert!(!is_clifford_by_conjugation(&g), "{g} conjugation check");
        }
    }

    #[test]
    fn clifford_classification_of_parametric_gates() {
        // rz(pi/2) is Clifford, rz(pi/4) is not — both as exact dyadic
        // angles and as floating-point radians within mathkit tolerance.
        assert!(OneQubitGate::Rz(Angle::pi_over(2)).is_clifford());
        assert!(!OneQubitGate::Rz(Angle::pi_over(4)).is_clifford());
        assert!(OneQubitGate::Rz(Angle::Radians(std::f64::consts::FRAC_PI_2)).is_clifford());
        assert!(
            OneQubitGate::Rz(Angle::Radians(std::f64::consts::FRAC_PI_2 + 1e-12)).is_clifford()
        );
        assert!(!OneQubitGate::Rz(Angle::Radians(std::f64::consts::FRAC_PI_4)).is_clifford());

        for k in -4i64..=4 {
            let angle = Angle::Radians(k as f64 * std::f64::consts::FRAC_PI_2);
            for g in [
                OneQubitGate::Phase(angle),
                OneQubitGate::Rx(angle),
                OneQubitGate::Ry(angle),
                OneQubitGate::Rz(angle),
            ] {
                assert!(g.is_clifford(), "{g} at k={k} must be Clifford");
                assert!(is_clifford_by_conjugation(&g), "{g} at k={k}");
            }
        }
        for theta in [0.3, std::f64::consts::FRAC_PI_4, 2.0] {
            let angle = Angle::Radians(theta);
            for g in [
                OneQubitGate::Phase(angle),
                OneQubitGate::Rx(angle),
                OneQubitGate::Ry(angle),
                OneQubitGate::Rz(angle),
            ] {
                assert!(!g.is_clifford(), "{g} must not be Clifford");
                assert!(!is_clifford_by_conjugation(&g), "{g}");
            }
        }

        // U with all Euler angles on the pi/2 grid is Clifford; one off-grid
        // angle disqualifies it.
        let u = |t: Angle, p: Angle, l: Angle| OneQubitGate::U {
            theta: t,
            phi: p,
            lambda: l,
        };
        let half = Angle::pi_over(2);
        assert!(u(half, Angle::ZERO, Angle::qft_rotation(1)).is_clifford()); // H
        assert!(!u(half, Angle::ZERO, Angle::pi_over(4)).is_clifford());
        assert!(!u(Angle::Radians(0.5), Angle::ZERO, Angle::ZERO).is_clifford());
    }

    #[test]
    fn pauli_up_to_phase_classification() {
        for g in [
            OneQubitGate::I,
            OneQubitGate::X,
            OneQubitGate::Y,
            OneQubitGate::Z,
        ] {
            assert!(g.is_pauli_up_to_phase(), "{g}");
        }
        for g in [
            OneQubitGate::H,
            OneQubitGate::S,
            OneQubitGate::Sdg,
            OneQubitGate::T,
            OneQubitGate::SqrtX,
            OneQubitGate::SqrtY,
        ] {
            assert!(!g.is_pauli_up_to_phase(), "{g}");
        }
        // Rotations by pi are Paulis up to phase (Rz(pi) = -iZ); rotations
        // by pi/2 are not (Rz(pi/2) ∝ S).
        let pi = Angle::qft_rotation(1);
        assert!(OneQubitGate::Rz(pi).is_pauli_up_to_phase());
        assert!(OneQubitGate::Rx(pi).is_pauli_up_to_phase());
        assert!(OneQubitGate::Phase(pi).is_pauli_up_to_phase()); // = Z
        assert!(!OneQubitGate::Rz(Angle::pi_over(2)).is_pauli_up_to_phase());
        assert!(!OneQubitGate::Phase(Angle::pi_over(2)).is_pauli_up_to_phase()); // = S
        assert!(OneQubitGate::Phase(Angle::ZERO).is_pauli_up_to_phase()); // = I
    }

    #[test]
    fn names_and_display() {
        assert_eq!(OneQubitGate::H.name(), "h");
        assert_eq!(OneQubitGate::H.to_string(), "h");
        assert_eq!(
            OneQubitGate::Phase(Angle::pi_over(4)).to_string(),
            "p(1*pi/4)"
        );
        assert_eq!(OneQubitGate::SqrtX.name(), "sx");
    }
}

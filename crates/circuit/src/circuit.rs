//! The [`Circuit`] container and its builder methods.

use crate::{CircuitStats, Condition, OneQubitGate, Operation, Permutation, Qubit};
use mathkit::Angle;
use std::fmt;

/// An ordered sequence of [`Operation`]s on a fixed number of qubits.
///
/// All qubits start in `|0>`.  A circuit without explicit
/// [`Operation::Measure`] operations is followed by a computational-basis
/// measurement of every qubit (performed by the simulators, not represented
/// as an operation).  Circuits may also contain explicit measurements that
/// record into a classical register of [`num_clbits`](Self::num_clbits)
/// bits, and [`Operation::Reset`] operations; see [`is_dynamic`]
/// (Self::is_dynamic) for how simulators route such circuits.
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Qubit};
///
/// let mut ghz = Circuit::with_name(3, "ghz_3");
/// ghz.h(Qubit(0));
/// ghz.cx(Qubit(0), Qubit(1));
/// ghz.cx(Qubit(1), Qubit(2));
/// assert_eq!(ghz.num_qubits(), 3);
/// assert_eq!(ghz.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    name: String,
    num_qubits: u16,
    num_clbits: u16,
    ops: Vec<Operation>,
}

/// The three-way split computed by [`Circuit::clifford_segments`]: a maximal
/// Clifford prefix, a non-Clifford core scored by T-count, and a maximal
/// Clifford suffix.
///
/// For a fully-Clifford circuit the prefix covers everything and the core
/// and suffix are empty.  Otherwise the three segments partition the
/// operation list: `prefix_len + core_len + suffix_len == len`, with the
/// core containing at least one (non-Clifford) operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliffordSegments {
    /// Total number of operations in the analysed circuit.
    pub len: usize,
    /// Number of leading operations that are all Clifford
    /// ([`Operation::is_clifford`]).
    pub prefix_len: usize,
    /// Number of trailing Clifford operations after the core (zero when the
    /// circuit is fully Clifford — the prefix already covers everything).
    pub suffix_len: usize,
    /// Number of non-Clifford operations inside the core: `T`/`Tdg` gates
    /// plus any other operation outside the Clifford alphabet (non-dyadic
    /// rotations, multi-controlled gates, permutations), each counted once.
    pub core_t_count: usize,
}

impl CliffordSegments {
    /// Returns `true` when every operation is Clifford, so the whole circuit
    /// can run on a stabilizer-tableau engine.
    #[must_use]
    pub fn is_fully_clifford(&self) -> bool {
        self.prefix_len == self.len
    }

    /// The index range of the non-Clifford core (empty for fully-Clifford
    /// circuits).
    #[must_use]
    pub fn core_range(&self) -> std::ops::Range<usize> {
        self.prefix_len..self.len - self.suffix_len
    }

    /// Number of operations in the non-Clifford core.
    #[must_use]
    pub fn core_len(&self) -> usize {
        self.core_range().len()
    }
}

/// Error returned by [`Circuit::validate`] when an operation references
/// qubits outside the circuit or overlaps controls with targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateCircuitError {
    /// An operation references a qubit index `>= num_qubits`.
    QubitOutOfRange {
        /// Index of the offending operation.
        op_index: usize,
        /// The out-of-range qubit.
        qubit: Qubit,
        /// Number of qubits in the circuit.
        num_qubits: u16,
    },
    /// An operation uses the same qubit as both control and target.
    ControlOverlapsTarget {
        /// Index of the offending operation.
        op_index: usize,
        /// The qubit that appears on both sides.
        qubit: Qubit,
    },
    /// A measurement records into a classical bit index `>= num_clbits`.
    ClbitOutOfRange {
        /// Index of the offending operation.
        op_index: usize,
        /// The out-of-range classical bit.
        cbit: u16,
        /// Number of classical bits in the circuit.
        num_clbits: u16,
    },
    /// The classical register is wider than the 64-bit records the
    /// simulators produce (`1 << cbit` must fit a `u64`).
    ClassicalRegisterTooWide {
        /// The declared classical register width.
        num_clbits: u16,
    },
    /// A classical condition compares the register against a value that does
    /// not fit in [`num_clbits`](Circuit::num_clbits) bits — the condition
    /// could never be satisfied.
    ConditionValueTooWide {
        /// Index of the offending operation.
        op_index: usize,
        /// The compared value.
        value: u64,
        /// Number of classical bits in the circuit.
        num_clbits: u16,
    },
    /// A [`Operation::Conditioned`] wraps another conditioned operation;
    /// nested classical conditions are not supported (OpenQASM 2.0 has no
    /// syntax for them either).
    NestedCondition {
        /// Index of the offending operation.
        op_index: usize,
    },
}

impl fmt::Display for ValidateCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateCircuitError::QubitOutOfRange {
                op_index,
                qubit,
                num_qubits,
            } => write!(
                f,
                "operation {op_index} references {qubit} but the circuit has only {num_qubits} qubits"
            ),
            ValidateCircuitError::ControlOverlapsTarget { op_index, qubit } => write!(
                f,
                "operation {op_index} uses {qubit} as both control and target"
            ),
            ValidateCircuitError::ClbitOutOfRange {
                op_index,
                cbit,
                num_clbits,
            } => write!(
                f,
                "operation {op_index} records into classical bit {cbit} but the circuit has only {num_clbits} classical bits"
            ),
            ValidateCircuitError::ClassicalRegisterTooWide { num_clbits } => write!(
                f,
                "classical register of {num_clbits} bits does not fit the 64-bit measurement records"
            ),
            ValidateCircuitError::ConditionValueTooWide {
                op_index,
                value,
                num_clbits,
            } => write!(
                f,
                "operation {op_index} compares the classical register against {value}, which does not fit in {num_clbits} classical bits"
            ),
            ValidateCircuitError::NestedCondition { op_index } => write!(
                f,
                "operation {op_index} nests one classical condition inside another; conditions cannot be nested"
            ),
        }
    }
}

impl std::error::Error for ValidateCircuitError {}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    #[must_use]
    pub fn new(num_qubits: u16) -> Self {
        Self::with_name(num_qubits, "circuit")
    }

    /// Creates an empty, named circuit (names show up in reports and QASM
    /// headers).
    #[must_use]
    pub fn with_name(num_qubits: u16, name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            num_qubits,
            num_clbits: 0,
            ops: Vec::new(),
        }
    }

    /// The circuit name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// The number of classical bits (the size of the classical register that
    /// [`Operation::Measure`] operations record into).
    #[must_use]
    pub fn num_clbits(&self) -> u16 {
        self.num_clbits
    }

    /// Declares the classical register size explicitly (e.g. from a QASM
    /// `creg` declaration).  The size never shrinks below what recorded
    /// measurements already use.
    pub fn set_num_clbits(&mut self, num_clbits: u16) -> &mut Self {
        self.num_clbits = self.num_clbits.max(num_clbits);
        self
    }

    /// The number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the circuit contains no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in program order.
    #[must_use]
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }

    /// Iterates over the operations in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Operation> {
        self.ops.iter()
    }

    /// Appends a raw operation.
    pub fn push(&mut self, op: Operation) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Appends all operations of `other` (qubit and classical-bit indices
    /// are kept as-is; the classical register grows to cover `other`'s).
    pub fn extend_from(&mut self, other: &Circuit) -> &mut Self {
        self.num_clbits = self.num_clbits.max(other.num_clbits);
        self.ops.extend_from_slice(&other.ops);
        self
    }

    /// Appends a single-qubit gate.
    pub fn gate(&mut self, gate: OneQubitGate, target: Qubit) -> &mut Self {
        self.push(Operation::Unitary {
            gate,
            target,
            controls: Vec::new(),
        })
    }

    /// Appends a controlled single-qubit gate with arbitrarily many controls.
    pub fn controlled_gate(
        &mut self,
        gate: OneQubitGate,
        controls: Vec<Qubit>,
        target: Qubit,
    ) -> &mut Self {
        self.push(Operation::Unitary {
            gate,
            target,
            controls,
        })
    }

    /// Appends a Hadamard gate.
    pub fn h(&mut self, q: Qubit) -> &mut Self {
        self.gate(OneQubitGate::H, q)
    }

    /// Appends a Pauli-X gate.
    pub fn x(&mut self, q: Qubit) -> &mut Self {
        self.gate(OneQubitGate::X, q)
    }

    /// Appends a Pauli-Y gate.
    pub fn y(&mut self, q: Qubit) -> &mut Self {
        self.gate(OneQubitGate::Y, q)
    }

    /// Appends a Pauli-Z gate.
    pub fn z(&mut self, q: Qubit) -> &mut Self {
        self.gate(OneQubitGate::Z, q)
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: Qubit) -> &mut Self {
        self.gate(OneQubitGate::S, q)
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: Qubit) -> &mut Self {
        self.gate(OneQubitGate::T, q)
    }

    /// Appends a phase gate `diag(1, e^{i theta})`.
    pub fn p(&mut self, theta: Angle, q: Qubit) -> &mut Self {
        self.gate(OneQubitGate::Phase(theta), q)
    }

    /// Appends an X-rotation.
    pub fn rx(&mut self, theta: Angle, q: Qubit) -> &mut Self {
        self.gate(OneQubitGate::Rx(theta), q)
    }

    /// Appends a Y-rotation.
    pub fn ry(&mut self, theta: Angle, q: Qubit) -> &mut Self {
        self.gate(OneQubitGate::Ry(theta), q)
    }

    /// Appends a Z-rotation.
    pub fn rz(&mut self, theta: Angle, q: Qubit) -> &mut Self {
        self.gate(OneQubitGate::Rz(theta), q)
    }

    /// Appends a CNOT gate.
    pub fn cx(&mut self, control: Qubit, target: Qubit) -> &mut Self {
        self.controlled_gate(OneQubitGate::X, vec![control], target)
    }

    /// Appends a controlled-Z gate.
    pub fn cz(&mut self, control: Qubit, target: Qubit) -> &mut Self {
        self.controlled_gate(OneQubitGate::Z, vec![control], target)
    }

    /// Appends a controlled phase gate.
    pub fn cp(&mut self, theta: Angle, control: Qubit, target: Qubit) -> &mut Self {
        self.controlled_gate(OneQubitGate::Phase(theta), vec![control], target)
    }

    /// Appends a Toffoli (CCX) gate.
    pub fn ccx(&mut self, c0: Qubit, c1: Qubit, target: Qubit) -> &mut Self {
        self.controlled_gate(OneQubitGate::X, vec![c0, c1], target)
    }

    /// Appends a multi-controlled X gate.
    pub fn mcx(&mut self, controls: Vec<Qubit>, target: Qubit) -> &mut Self {
        self.controlled_gate(OneQubitGate::X, controls, target)
    }

    /// Appends a multi-controlled Z gate.
    pub fn mcz(&mut self, controls: Vec<Qubit>, target: Qubit) -> &mut Self {
        self.controlled_gate(OneQubitGate::Z, controls, target)
    }

    /// Appends a multi-controlled phase gate.
    pub fn mcp(&mut self, theta: Angle, controls: Vec<Qubit>, target: Qubit) -> &mut Self {
        self.controlled_gate(OneQubitGate::Phase(theta), controls, target)
    }

    /// Appends a swap of two qubits.
    pub fn swap(&mut self, a: Qubit, b: Qubit) -> &mut Self {
        self.push(Operation::Swap {
            a,
            b,
            controls: Vec::new(),
        })
    }

    /// Appends a controlled swap (Fredkin) gate.
    pub fn cswap(&mut self, control: Qubit, a: Qubit, b: Qubit) -> &mut Self {
        self.push(Operation::Swap {
            a,
            b,
            controls: vec![control],
        })
    }

    /// Appends an uncontrolled basis-state permutation.
    pub fn permute(&mut self, permutation: Permutation) -> &mut Self {
        self.push(Operation::Permute {
            permutation,
            controls: Vec::new(),
        })
    }

    /// Appends a controlled basis-state permutation.
    pub fn controlled_permute(
        &mut self,
        controls: Vec<Qubit>,
        permutation: Permutation,
    ) -> &mut Self {
        self.push(Operation::Permute {
            permutation,
            controls,
        })
    }

    /// Appends a measurement of `qubit` into classical bit `cbit`, growing
    /// the classical register to cover `cbit` if necessary.
    pub fn measure(&mut self, qubit: Qubit, cbit: u16) -> &mut Self {
        self.num_clbits = self.num_clbits.max(cbit.saturating_add(1));
        self.push(Operation::Measure { qubit, cbit })
    }

    /// Appends a measurement of every qubit, qubit `k` into classical bit
    /// `k` (the QASM `measure q -> c;` broadcast form).
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.num_qubits {
            self.measure(Qubit(q), q);
        }
        self
    }

    /// Appends a reset of `qubit` to `|0>`.
    pub fn reset(&mut self, qubit: Qubit) -> &mut Self {
        self.push(Operation::Reset { qubit })
    }

    /// Appends `op` guarded by the classical condition `creg == value`
    /// (QASM `if (c==value) gate;`): during trajectory simulation the
    /// operation is applied only when the classical register currently holds
    /// `value`.  The inner operation may be a unitary gate, a
    /// [`Measure`](Operation::Measure) or a [`Reset`](Operation::Reset) —
    /// anything but another condition; see [`validate`](Self::validate).
    ///
    /// Like [`measure`](Self::measure), this grows the classical register to
    /// cover the compared value (at least one bit) and, for a conditioned
    /// measurement, its recorded classical bit — so the circuit always
    /// carries the `creg` its conditions read and write.
    pub fn conditioned(&mut self, value: u64, op: Operation) -> &mut Self {
        let width = u16::try_from(64 - value.leading_zeros())
            .expect("width is at most 64")
            .max(1);
        self.num_clbits = self.num_clbits.max(width);
        if let Operation::Measure { cbit, .. } = op {
            self.num_clbits = self.num_clbits.max(cbit.saturating_add(1));
        }
        self.push(Operation::Conditioned {
            condition: Condition::equals(value),
            op: Box::new(op),
        })
    }

    /// Appends a single-qubit gate guarded by `creg == value` — the common
    /// case of classically-conditioned corrections (e.g. the phase feedback
    /// of iterative phase estimation).
    pub fn conditioned_gate(&mut self, value: u64, gate: OneQubitGate, target: Qubit) -> &mut Self {
        self.conditioned(
            value,
            Operation::Unitary {
                gate,
                target,
                controls: Vec::new(),
            },
        )
    }

    /// Returns `true` if the circuit contains at least one
    /// [`Operation::Measure`], standalone or under a classical condition
    /// (`if (c==k) measure ...;`) — either kind writes the classical
    /// register.
    #[must_use]
    pub fn has_measurements(&self) -> bool {
        self.ops.iter().any(|op| {
            let inner = match op {
                Operation::Conditioned { op, .. } => op.as_ref(),
                other => other,
            };
            matches!(inner, Operation::Measure { .. })
        })
    }

    /// Returns `true` if the circuit needs trajectory-style (per-shot)
    /// simulation: it contains a [`Operation::Reset`] or
    /// [`Operation::Conditioned`] anywhere, or a [`Operation::Measure`] that
    /// is followed by any non-measurement operation.
    ///
    /// Circuits whose measurements all sit in one trailing block are *not*
    /// dynamic: they are equivalent to a unitary circuit followed by one
    /// terminal read-out, so simulators can route them through the fast
    /// one-pass sampling path.
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        let mut seen_measure = false;
        for op in &self.ops {
            match op {
                Operation::Reset { .. } | Operation::Conditioned { .. } => return true,
                Operation::Measure { .. } => seen_measure = true,
                _ if seen_measure => return true,
                _ => {}
            }
        }
        false
    }

    /// Splits a *non-dynamic* circuit into its unitary prefix and the
    /// `(qubit, cbit)` pairs of the trailing measurement block.
    ///
    /// Returns `None` if the circuit [`is_dynamic`](Self::is_dynamic); for a
    /// circuit without measurements the mapping is empty and the prefix is a
    /// clone of the whole circuit.
    #[must_use]
    pub fn split_terminal_measurements(&self) -> Option<(Circuit, Vec<(Qubit, u16)>)> {
        if self.is_dynamic() {
            return None;
        }
        let prefix_len = self
            .ops
            .iter()
            .position(|op| matches!(op, Operation::Measure { .. }))
            .unwrap_or(self.ops.len());
        let prefix = Circuit {
            name: self.name.clone(),
            num_qubits: self.num_qubits,
            num_clbits: self.num_clbits,
            ops: self.ops[..prefix_len].to_vec(),
        };
        let mapping = self.ops[prefix_len..]
            .iter()
            .map(|op| match op {
                Operation::Measure { qubit, cbit } => (*qubit, *cbit),
                other => unreachable!("non-measure op {other} after the terminal block"),
            })
            .collect();
        Some((prefix, mapping))
    }

    /// Checks that every operation only references qubits inside the circuit
    /// and never overlaps controls with targets.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, identifying the operation index.
    pub fn validate(&self) -> Result<(), ValidateCircuitError> {
        if self.num_clbits > 64 {
            return Err(ValidateCircuitError::ClassicalRegisterTooWide {
                num_clbits: self.num_clbits,
            });
        }
        for (op_index, op) in self.ops.iter().enumerate() {
            for q in op.support() {
                if q.index() >= usize::from(self.num_qubits) {
                    return Err(ValidateCircuitError::QubitOutOfRange {
                        op_index,
                        qubit: q,
                        num_qubits: self.num_qubits,
                    });
                }
            }
            let targets = op.targets();
            for c in op.controls() {
                if targets.contains(c) {
                    return Err(ValidateCircuitError::ControlOverlapsTarget {
                        op_index,
                        qubit: *c,
                    });
                }
            }
            if let Operation::Conditioned { condition, op } = op {
                if op.is_conditioned() {
                    return Err(ValidateCircuitError::NestedCondition { op_index });
                }
                // The register-width cap above guarantees the shift is in
                // range whenever num_clbits < 64; a full 64-bit register
                // admits every u64 value.
                if self.num_clbits < 64 && condition.value >> self.num_clbits != 0 {
                    return Err(ValidateCircuitError::ConditionValueTooWide {
                        op_index,
                        value: condition.value,
                        num_clbits: self.num_clbits,
                    });
                }
            }
            // Classical-bit range checks apply to measurements whether they
            // stand alone or sit under a classical guard.
            let inner = match op {
                Operation::Conditioned { op, .. } => op.as_ref(),
                other => other,
            };
            if let Operation::Measure { cbit, .. } = inner {
                if *cbit >= self.num_clbits {
                    return Err(ValidateCircuitError::ClbitOutOfRange {
                        op_index,
                        cbit: *cbit,
                        num_clbits: self.num_clbits,
                    });
                }
            }
        }
        Ok(())
    }

    /// Computes gate counts and depth.
    #[must_use]
    pub fn stats(&self) -> CircuitStats {
        CircuitStats::of(self)
    }

    /// Decomposes the operation list into a maximal Clifford prefix, a
    /// non-Clifford core and a maximal Clifford suffix (see
    /// [`Operation::is_clifford`] for what counts as Clifford — including
    /// measurements and resets, which the stabilizer formalism handles).
    ///
    /// The split drives segmented routing: Clifford segments can run on a
    /// polynomial-time stabilizer-tableau engine at thousands of qubits,
    /// while only the core needs a dense (decision-diagram or statevector)
    /// backend.  The core is scored by its T-count so routers can judge
    /// whether dense simulation of the core is worthwhile.
    ///
    /// # Examples
    ///
    /// ```
    /// use circuit::{Circuit, Qubit};
    ///
    /// let mut c = Circuit::new(2);
    /// c.h(Qubit(0)).cx(Qubit(0), Qubit(1)).t(Qubit(1)).h(Qubit(0));
    /// let seg = c.clifford_segments();
    /// assert_eq!(seg.prefix_len, 2);
    /// assert_eq!(seg.core_range(), 2..3);
    /// assert_eq!(seg.suffix_len, 1);
    /// assert_eq!(seg.core_t_count, 1);
    /// assert!(!seg.is_fully_clifford());
    /// ```
    #[must_use]
    pub fn clifford_segments(&self) -> CliffordSegments {
        let len = self.ops.len();
        let prefix_len = self
            .ops
            .iter()
            .position(|op| !op.is_clifford())
            .unwrap_or(len);
        if prefix_len == len {
            return CliffordSegments {
                len,
                prefix_len,
                suffix_len: 0,
                core_t_count: 0,
            };
        }
        let suffix_len = self.ops[prefix_len..]
            .iter()
            .rev()
            .position(|op| !op.is_clifford())
            .unwrap_or(0);
        let core_t_count = self.ops[prefix_len..len - suffix_len]
            .iter()
            .filter(|op| !op.is_clifford())
            .count();
        CliffordSegments {
            len,
            prefix_len,
            suffix_len,
            core_t_count,
        }
    }

    /// Returns the circuit with every operation replaced by its inverse, in
    /// reverse order (the adjoint circuit).
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains a non-unitary operation
    /// ([`Operation::Measure`] or [`Operation::Reset`]): measurements and
    /// resets have no inverse.
    #[must_use]
    pub fn adjoint(&self) -> Circuit {
        fn inverted(op: &Operation) -> Operation {
            match op {
                Operation::Unitary {
                    gate,
                    target,
                    controls,
                } => Operation::Unitary {
                    gate: gate.adjoint(),
                    target: *target,
                    controls: controls.clone(),
                },
                Operation::Swap { .. } => op.clone(),
                Operation::Permute {
                    permutation,
                    controls,
                } => Operation::Permute {
                    permutation: permutation.inverse(),
                    controls: controls.clone(),
                },
                // A condition reads only the classical register, which no
                // unitary circuit ever writes, so inverting the guarded gate
                // under the same guard inverts the conditioned operation.
                Operation::Conditioned { condition, op } => Operation::Conditioned {
                    condition: *condition,
                    op: Box::new(inverted(op)),
                },
                Operation::Measure { .. } | Operation::Reset { .. } => {
                    panic!("cannot invert the non-unitary operation '{op}'")
                }
            }
        }
        let mut out = Circuit::with_name(self.num_qubits, format!("{}_dg", self.name));
        for op in self.ops.iter().rev() {
            out.push(inverted(op));
        }
        out
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} qubits, {} ops)",
            self.name,
            self.num_qubits,
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl Extend<Operation> for Circuit {
    fn extend<T: IntoIterator<Item = Operation>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_append_operations() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0))
            .x(Qubit(1))
            .cx(Qubit(0), Qubit(1))
            .ccx(Qubit(0), Qubit(1), Qubit(2))
            .swap(Qubit(0), Qubit(2))
            .cp(Angle::pi_over(2), Qubit(0), Qubit(1));
        assert_eq!(c.len(), 6);
        assert!(c.validate().is_ok());
        assert!(!c.is_empty());
    }

    #[test]
    fn validation_catches_out_of_range_qubits() {
        let mut c = Circuit::new(2);
        c.h(Qubit(5));
        assert!(matches!(
            c.validate(),
            Err(ValidateCircuitError::QubitOutOfRange {
                qubit: Qubit(5),
                ..
            })
        ));
    }

    #[test]
    fn validation_catches_control_target_overlap() {
        let mut c = Circuit::new(2);
        c.controlled_gate(OneQubitGate::X, vec![Qubit(1)], Qubit(1));
        assert!(matches!(
            c.validate(),
            Err(ValidateCircuitError::ControlOverlapsTarget {
                qubit: Qubit(1),
                ..
            })
        ));
    }

    #[test]
    fn adjoint_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).s(Qubit(1)).cx(Qubit(0), Qubit(1));
        let adj = c.adjoint();
        assert_eq!(adj.len(), 3);
        // Last op of adjoint is the inverse of the first op of the original.
        match &adj.operations()[2] {
            Operation::Unitary { gate, .. } => assert_eq!(*gate, OneQubitGate::H),
            other => panic!("unexpected op {other:?}"),
        }
        match &adj.operations()[1] {
            Operation::Unitary { gate, .. } => assert_eq!(*gate, OneQubitGate::Sdg),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn extend_and_iterate() {
        let mut a = Circuit::new(2);
        a.h(Qubit(0));
        let mut b = Circuit::new(2);
        b.x(Qubit(1));
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.iter().count(), 2);
        assert_eq!((&a).into_iter().count(), 2);
    }

    #[test]
    fn measure_grows_the_classical_register() {
        let mut c = Circuit::new(3);
        assert_eq!(c.num_clbits(), 0);
        c.h(Qubit(0)).measure(Qubit(0), 2);
        assert_eq!(c.num_clbits(), 3);
        c.set_num_clbits(5);
        assert_eq!(c.num_clbits(), 5);
        c.set_num_clbits(1); // never shrinks
        assert_eq!(c.num_clbits(), 5);
        assert!(c.validate().is_ok());
        assert!(c.has_measurements());
    }

    #[test]
    fn measure_all_maps_qubit_k_to_clbit_k() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0)).measure_all();
        assert_eq!(c.num_clbits(), 3);
        assert_eq!(c.len(), 4);
        match &c.operations()[2] {
            Operation::Measure { qubit, cbit } => {
                assert_eq!(*qubit, Qubit(1));
                assert_eq!(*cbit, 1);
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn validation_catches_clbit_out_of_range() {
        let mut c = Circuit::new(2);
        c.push(Operation::Measure {
            qubit: Qubit(0),
            cbit: 3,
        });
        assert!(matches!(
            c.validate(),
            Err(ValidateCircuitError::ClbitOutOfRange { cbit: 3, .. })
        ));
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("classical bit 3"));
    }

    #[test]
    fn validation_rejects_classical_registers_wider_than_64_bits() {
        // Records are u64 bitstrings: `1 << cbit` must never overflow.
        let mut c = Circuit::new(1);
        c.measure(Qubit(0), 64);
        assert!(matches!(
            c.validate(),
            Err(ValidateCircuitError::ClassicalRegisterTooWide { num_clbits: 65 })
        ));
        let mut ok = Circuit::new(1);
        ok.measure(Qubit(0), 63);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn dynamic_detection_and_terminal_split() {
        // No measurements at all: static, empty mapping, full prefix.
        let mut unitary = Circuit::new(2);
        unitary.h(Qubit(0)).cx(Qubit(0), Qubit(1));
        assert!(!unitary.is_dynamic());
        let (prefix, mapping) = unitary.split_terminal_measurements().unwrap();
        assert_eq!(prefix.len(), 2);
        assert!(mapping.is_empty());

        // Trailing measurement block: static with a mapping.
        let mut terminal = unitary.clone();
        terminal.measure(Qubit(1), 0).measure(Qubit(0), 1);
        assert!(!terminal.is_dynamic());
        let (prefix, mapping) = terminal.split_terminal_measurements().unwrap();
        assert_eq!(prefix.len(), 2);
        assert_eq!(prefix.num_clbits(), 2);
        assert_eq!(mapping, vec![(Qubit(1), 0), (Qubit(0), 1)]);

        // A gate after a measurement makes the circuit dynamic.
        let mut dynamic = Circuit::new(2);
        dynamic.h(Qubit(0)).measure(Qubit(0), 0).x(Qubit(1));
        assert!(dynamic.is_dynamic());
        assert!(dynamic.split_terminal_measurements().is_none());

        // A reset anywhere makes the circuit dynamic.
        let mut with_reset = Circuit::new(1);
        with_reset.h(Qubit(0)).reset(Qubit(0));
        assert!(with_reset.is_dynamic());
    }

    #[test]
    fn conditioned_gates_make_circuits_dynamic_and_validate() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0))
            .measure(Qubit(0), 0)
            .conditioned_gate(1, OneQubitGate::X, Qubit(1));
        assert!(c.is_dynamic());
        assert!(c.split_terminal_measurements().is_none());
        assert!(c.validate().is_ok());
        assert_eq!(c.stats().counts["if x"], 1);

        // The builder grows the classical register to cover the compared
        // value (and to at least one bit), like `measure` does for its cbit.
        let mut growing = Circuit::new(1);
        growing.conditioned_gate(0, OneQubitGate::X, Qubit(0));
        assert_eq!(growing.num_clbits(), 1);
        growing.conditioned_gate(5, OneQubitGate::X, Qubit(0));
        assert_eq!(growing.num_clbits(), 3);
        assert!(growing.validate().is_ok());

        // A condition value wider than the classical register (reachable via
        // raw `push`, never via the growing builder) can never fire.
        let mut wide = Circuit::new(1);
        wide.measure(Qubit(0), 0).push(Operation::Conditioned {
            condition: Condition::equals(2),
            op: Box::new(Operation::Unitary {
                gate: OneQubitGate::X,
                target: Qubit(0),
                controls: vec![],
            }),
        });
        assert!(matches!(
            wide.validate(),
            Err(ValidateCircuitError::ConditionValueTooWide {
                value: 2,
                num_clbits: 1,
                ..
            })
        ));
        let msg = wide.validate().unwrap_err().to_string();
        assert!(msg.contains("does not fit in 1 classical bits"));

        // Conditioned qubits still go through the range check.
        let mut bad_qubit = Circuit::new(1);
        bad_qubit.conditioned_gate(0, OneQubitGate::X, Qubit(7));
        assert!(matches!(
            bad_qubit.validate(),
            Err(ValidateCircuitError::QubitOutOfRange { .. })
        ));
    }

    #[test]
    fn conditioned_measure_and_reset_validate_but_nesting_is_rejected() {
        // `if (c==k) measure;` and `if (c==k) reset;` are part of the
        // OpenQASM 2.0 subset and validate fine.
        let mut c = Circuit::new(1);
        c.measure(Qubit(0), 0)
            .conditioned(
                1,
                Operation::Measure {
                    qubit: Qubit(0),
                    cbit: 1,
                },
            )
            .conditioned(0, Operation::Reset { qubit: Qubit(0) });
        assert_eq!(c.num_clbits(), 2, "conditioned measure grows the creg");
        assert!(c.validate().is_ok(), "{c}");
        assert!(c.has_measurements());
        assert_eq!(c.stats().counts["if measure"], 1);
        assert_eq!(c.stats().counts["if reset"], 1);

        // Nested conditions stay outside the subset.
        let mut nested = Circuit::new(1);
        nested.measure(Qubit(0), 0).conditioned(
            0,
            Operation::Conditioned {
                condition: Condition::equals(0),
                op: Box::new(Operation::Reset { qubit: Qubit(0) }),
            },
        );
        assert!(
            matches!(
                nested.validate(),
                Err(ValidateCircuitError::NestedCondition { op_index: 1 })
            ),
            "{nested}"
        );

        // A conditioned measurement's classical bit is still range-checked
        // (reachable via raw `push`, never via the growing builder).
        let mut wide = Circuit::new(1);
        wide.measure(Qubit(0), 0).push(Operation::Conditioned {
            condition: Condition::equals(0),
            op: Box::new(Operation::Measure {
                qubit: Qubit(0),
                cbit: 9,
            }),
        });
        assert!(matches!(
            wide.validate(),
            Err(ValidateCircuitError::ClbitOutOfRange { cbit: 9, .. })
        ));
    }

    #[test]
    fn adjoint_inverts_conditioned_gates_under_the_same_guard() {
        let mut c = Circuit::new(1);
        c.conditioned_gate(1, OneQubitGate::S, Qubit(0));
        let adj = c.adjoint();
        match &adj.operations()[0] {
            Operation::Conditioned { condition, op } => {
                assert_eq!(condition.value, 1);
                assert!(matches!(
                    op.as_ref(),
                    Operation::Unitary {
                        gate: OneQubitGate::Sdg,
                        ..
                    }
                ));
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "cannot invert")]
    fn adjoint_rejects_measurements() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0)).measure(Qubit(0), 0);
        let _ = c.adjoint();
    }

    #[test]
    fn extend_from_merges_classical_registers() {
        let mut a = Circuit::new(2);
        a.h(Qubit(0));
        let mut b = Circuit::new(2);
        b.measure(Qubit(1), 4);
        a.extend_from(&b);
        assert_eq!(a.num_clbits(), 5);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn clifford_segments_cover_the_whole_circuit() {
        // Fully Clifford, including a trailing measurement block.
        let mut ghz = Circuit::new(3);
        ghz.h(Qubit(0))
            .cx(Qubit(0), Qubit(1))
            .cx(Qubit(1), Qubit(2))
            .measure_all();
        let seg = ghz.clifford_segments();
        assert!(seg.is_fully_clifford());
        assert_eq!(seg.prefix_len, ghz.len());
        assert_eq!(seg.suffix_len, 0);
        assert_eq!(seg.core_t_count, 0);
        assert!(seg.core_range().is_empty());

        // Clifford prefix, T-heavy core, Clifford suffix.
        let mut c = Circuit::new(2);
        c.h(Qubit(0))
            .cx(Qubit(0), Qubit(1))
            .t(Qubit(0))
            .cx(Qubit(0), Qubit(1))
            .gate(OneQubitGate::Tdg, Qubit(1))
            .h(Qubit(1))
            .s(Qubit(0));
        let seg = c.clifford_segments();
        assert_eq!(seg.prefix_len, 2);
        assert_eq!(seg.suffix_len, 2);
        assert_eq!(seg.core_range(), 2..5);
        assert_eq!(seg.core_len(), 3);
        assert_eq!(seg.core_t_count, 2, "the CX inside the core is Clifford");
        assert_eq!(seg.prefix_len + seg.core_len() + seg.suffix_len, c.len());

        // A circuit that opens non-Clifford has an empty prefix.
        let mut t_first = Circuit::new(1);
        t_first.t(Qubit(0)).h(Qubit(0));
        let seg = t_first.clifford_segments();
        assert_eq!(seg.prefix_len, 0);
        assert_eq!(seg.suffix_len, 1);
        assert_eq!(seg.core_t_count, 1);

        // Empty circuits are (vacuously) fully Clifford.
        assert!(Circuit::new(1).clifford_segments().is_fully_clifford());
    }

    #[test]
    fn naming() {
        let mut c = Circuit::with_name(1, "test");
        assert_eq!(c.name(), "test");
        c.set_name("renamed");
        assert_eq!(c.name(), "renamed");
        assert!(c.to_string().contains("renamed"));
    }

    #[test]
    fn display_lists_operations() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).cx(Qubit(0), Qubit(1));
        let text = c.to_string();
        assert!(text.contains("h q[0]"));
        assert!(text.contains("x q[1] ctrl[q[0]]"));
    }
}

//! Circuit statistics: gate counts and depth.

use crate::{Circuit, Operation};
use std::collections::BTreeMap;
use std::fmt;

/// Summary statistics of a [`Circuit`], used by experiment reports.
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Qubit};
///
/// let mut c = Circuit::new(2);
/// c.h(Qubit(0));
/// c.cx(Qubit(0), Qubit(1));
/// let stats = c.stats();
/// assert_eq!(stats.total_ops, 2);
/// assert_eq!(stats.two_qubit_ops, 1);
/// assert_eq!(stats.depth, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// Total number of operations.
    pub total_ops: usize,
    /// Operations acting on a single qubit with no controls.
    pub single_qubit_ops: usize,
    /// Operations touching exactly two qubits (controls included).
    pub two_qubit_ops: usize,
    /// Operations touching three or more qubits (controls included).
    pub multi_qubit_ops: usize,
    /// Circuit depth: length of the longest chain of operations that share a
    /// qubit (each operation occupies one layer on every qubit it touches).
    pub depth: usize,
    /// Gate counts keyed by mnemonic (`"h"`, `"x"`, `"swap"`, `"permute"`, …).
    pub counts: BTreeMap<String, usize>,
}

impl CircuitStats {
    /// Computes the statistics of a circuit.
    #[must_use]
    pub fn of(circuit: &Circuit) -> Self {
        let mut stats = CircuitStats {
            total_ops: circuit.len(),
            ..CircuitStats::default()
        };
        let mut layer_of_qubit = vec![0usize; usize::from(circuit.num_qubits())];
        for op in circuit.operations() {
            let support = op.support();
            match support.len() {
                0 | 1 => stats.single_qubit_ops += 1,
                2 => stats.two_qubit_ops += 1,
                _ => stats.multi_qubit_ops += 1,
            }
            *stats.counts.entry(mnemonic(op)).or_insert(0) += 1;

            let layer = support
                .iter()
                .map(|q| layer_of_qubit.get(q.index()).copied().unwrap_or(0))
                .max()
                .unwrap_or(0)
                + 1;
            for q in &support {
                if let Some(slot) = layer_of_qubit.get_mut(q.index()) {
                    *slot = layer;
                }
            }
            stats.depth = stats.depth.max(layer);
        }
        stats
    }
}

/// The gate-count key of one operation (`"h"`, `"swap"`, `"if h"`, …).
fn mnemonic(op: &Operation) -> String {
    match op {
        Operation::Unitary { gate, .. } => gate.name().to_string(),
        Operation::Swap { .. } => "swap".to_string(),
        Operation::Permute { .. } => "permute".to_string(),
        Operation::Measure { .. } => "measure".to_string(),
        Operation::Reset { .. } => "reset".to_string(),
        Operation::Conditioned { op, .. } => format!("if {}", mnemonic(op)),
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops (1q: {}, 2q: {}, 3q+: {}), depth {}",
            self.total_ops,
            self.single_qubit_ops,
            self.two_qubit_ops,
            self.multi_qubit_ops,
            self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Qubit;

    #[test]
    fn empty_circuit_has_zero_stats() {
        let s = Circuit::new(4).stats();
        assert_eq!(s.total_ops, 0);
        assert_eq!(s.depth, 0);
        assert!(s.counts.is_empty());
    }

    #[test]
    fn counts_by_mnemonic() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0))
            .h(Qubit(1))
            .cx(Qubit(0), Qubit(1))
            .swap(Qubit(1), Qubit(2));
        let s = c.stats();
        assert_eq!(s.counts["h"], 2);
        assert_eq!(s.counts["x"], 1);
        assert_eq!(s.counts["swap"], 1);
        assert_eq!(s.single_qubit_ops, 2);
        assert_eq!(s.two_qubit_ops, 2);
    }

    #[test]
    fn depth_accounts_for_parallel_gates() {
        let mut c = Circuit::new(4);
        // Two disjoint CNOTs can share a layer; a following CNOT on q1,q2
        // must come after both.
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(2), Qubit(3));
        c.cx(Qubit(1), Qubit(2));
        let s = c.stats();
        assert_eq!(s.depth, 2);
    }

    #[test]
    fn depth_of_serial_chain() {
        let mut c = Circuit::new(1);
        for _ in 0..5 {
            c.h(Qubit(0));
        }
        assert_eq!(c.stats().depth, 5);
    }

    #[test]
    fn measure_and_reset_are_counted() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0))
            .measure(Qubit(0), 0)
            .reset(Qubit(0))
            .h(Qubit(0))
            .measure(Qubit(0), 1);
        let s = c.stats();
        assert_eq!(s.counts["measure"], 2);
        assert_eq!(s.counts["reset"], 1);
        assert_eq!(s.depth, 5);
    }

    #[test]
    fn multi_qubit_ops_counted() {
        let mut c = Circuit::new(3);
        c.ccx(Qubit(0), Qubit(1), Qubit(2));
        let s = c.stats();
        assert_eq!(s.multi_qubit_ops, 1);
        assert!(s.to_string().contains("3q+: 1"));
    }
}

//! Stochastic noise channels and the [`NoiseModel`] describing where they
//! act in a circuit.
//!
//! Real devices are noisy: every gate, idle period and read-out perturbs the
//! state.  This module describes that noise at the circuit level so the
//! trajectory engine (the `weaksim` crate) can emulate noisy hardware by
//! *stochastic channel insertion*: each shot realizes every noise site as a
//! random Kraus branch — a Pauli error, an amplitude decay, or no error —
//! drawn from the shot's RNG stream, exactly the Monte-Carlo trajectory
//! method for mixed-state simulation.
//!
//! A [`NoiseChannel`] is one single-qubit channel; a [`NoiseModel`] attaches
//! channels to gate sites (after every unitary operation, on every qubit it
//! touches), to specific qubits, and to measurements (read-out error,
//! applied just before the qubit is read).  The model is *descriptive* —
//! realizing the channels is the simulator's job — so circuits stay exact
//! and a single circuit can be swept over many error rates.
//!
//! # Examples
//!
//! ```
//! use circuit::{NoiseChannel, NoiseModel, Qubit};
//!
//! let model = NoiseModel::new()
//!     .with_gate_noise(NoiseChannel::depolarizing(0.01))
//!     .with_qubit_noise(Qubit(2), NoiseChannel::amplitude_damping(0.05))
//!     .with_measurement_noise(NoiseChannel::bit_flip(0.02));
//! assert!(model.has_noise());
//! assert!(model.validate_for(3).is_ok());
//! ```

use crate::{OneQubitGate, Qubit};
use std::fmt;

/// A single-qubit noise channel, parameterized by its error strength.
///
/// The first three channels are *Pauli channels*: every Kraus operator is a
/// scaled Pauli, so the stochastic realization applies a Pauli error with a
/// state-independent probability.  [`AmplitudeDamping`]
/// (NoiseChannel::AmplitudeDamping) is non-unital: its branch probabilities
/// depend on the state (a qubit in `|0>` never decays), so the trajectory
/// engine draws its branch from the measured-one probability, like a
/// generalized measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseChannel {
    /// With probability `probability`, apply `X` (a classical bit flip).
    BitFlip {
        /// The flip probability, in `[0, 1]`.
        probability: f64,
    },
    /// With probability `probability`, apply `Z` (a phase flip).
    PhaseFlip {
        /// The flip probability, in `[0, 1]`.
        probability: f64,
    },
    /// With probability `probability`, replace the qubit by the maximally
    /// mixed state: `rho -> (1-p) rho + p I/2`, realized as applying each of
    /// `I`, `X`, `Y`, `Z` with probability `p/4` (so `p = 1` is the fully
    /// depolarizing channel and any marginal becomes uniform).
    Depolarizing {
        /// The depolarization probability, in `[0, 1]`.
        probability: f64,
    },
    /// Amplitude damping (energy relaxation, `T1` decay) with decay
    /// probability `gamma`: Kraus operators `K0 = diag(1, sqrt(1-gamma))`
    /// and `K1 = sqrt(gamma) |0><1|`.
    AmplitudeDamping {
        /// The decay probability of the `|1>` population, in `[0, 1]`.
        gamma: f64,
    },
}

impl NoiseChannel {
    /// The bit-flip channel: `X` with probability `p`.
    #[must_use]
    pub fn bit_flip(p: f64) -> Self {
        NoiseChannel::BitFlip { probability: p }
    }

    /// The phase-flip channel: `Z` with probability `p`.
    #[must_use]
    pub fn phase_flip(p: f64) -> Self {
        NoiseChannel::PhaseFlip { probability: p }
    }

    /// The depolarizing channel: the maximally mixed state with
    /// probability `p`.
    #[must_use]
    pub fn depolarizing(p: f64) -> Self {
        NoiseChannel::Depolarizing { probability: p }
    }

    /// The amplitude-damping channel with decay probability `gamma`.
    #[must_use]
    pub fn amplitude_damping(gamma: f64) -> Self {
        NoiseChannel::AmplitudeDamping { gamma }
    }

    /// The channel's error-strength parameter (`p` or `gamma`).
    #[must_use]
    pub fn parameter(&self) -> f64 {
        match *self {
            NoiseChannel::BitFlip { probability }
            | NoiseChannel::PhaseFlip { probability }
            | NoiseChannel::Depolarizing { probability } => probability,
            NoiseChannel::AmplitudeDamping { gamma } => gamma,
        }
    }

    /// Returns `true` for a channel that never produces an error
    /// (`parameter == 0`): trivial channels are dropped at planning time, so
    /// a zero-strength noise model is bit-identical to the noiseless run.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.parameter() == 0.0
    }

    /// Returns `true` if the branch probabilities do not depend on the
    /// quantum state (every channel except amplitude damping).
    #[must_use]
    pub fn is_state_independent(&self) -> bool {
        !matches!(self, NoiseChannel::AmplitudeDamping { .. })
    }

    /// The number of Kraus branches of the stochastic realization (branch 0
    /// is always "no error").
    #[must_use]
    pub fn branch_count(&self) -> usize {
        match self {
            NoiseChannel::Depolarizing { .. } => 4,
            _ => 2,
        }
    }

    /// The branch probabilities of a state-*independent* channel, padded to
    /// four entries (branch 0 first).  Amplitude damping has no fixed
    /// distribution — its branch is drawn from the state's measured-one
    /// probability — so it returns `None`.
    #[must_use]
    pub fn branch_probabilities(&self) -> Option<[f64; 4]> {
        match *self {
            NoiseChannel::BitFlip { probability } | NoiseChannel::PhaseFlip { probability } => {
                Some([1.0 - probability, probability, 0.0, 0.0])
            }
            NoiseChannel::Depolarizing { probability } => {
                let q = probability / 4.0;
                Some([1.0 - 3.0 * q, q, q, q])
            }
            NoiseChannel::AmplitudeDamping { .. } => None,
        }
    }

    /// The Pauli applied by error branch `branch` of a state-independent
    /// channel (`None` for branch 0, the identity).
    ///
    /// # Panics
    ///
    /// Panics for amplitude damping (whose branches are not unitary) or a
    /// branch index outside [`branch_count`](Self::branch_count).
    #[must_use]
    pub fn branch_gate(&self, branch: u8) -> Option<OneQubitGate> {
        assert!(
            usize::from(branch) < self.branch_count(),
            "channel {self} has no branch {branch}"
        );
        match (self, branch) {
            (_, 0) => None,
            (NoiseChannel::BitFlip { .. }, 1) => Some(OneQubitGate::X),
            (NoiseChannel::PhaseFlip { .. }, 1) => Some(OneQubitGate::Z),
            (NoiseChannel::Depolarizing { .. }, 1) => Some(OneQubitGate::X),
            (NoiseChannel::Depolarizing { .. }, 2) => Some(OneQubitGate::Y),
            (NoiseChannel::Depolarizing { .. }, 3) => Some(OneQubitGate::Z),
            _ => panic!("channel {self} has no unitary branch {branch}"),
        }
    }

    /// Checks that the channel parameter is a probability.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseModelError::InvalidParameter`] when the parameter is
    /// not a finite number in `[0, 1]`.
    pub fn validate(&self) -> Result<(), NoiseModelError> {
        let p = self.parameter();
        if p.is_finite() && (0.0..=1.0).contains(&p) {
            Ok(())
        } else {
            Err(NoiseModelError::InvalidParameter {
                channel: *self,
                value: p,
            })
        }
    }

    /// The lowercase mnemonic of the channel family.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            NoiseChannel::BitFlip { .. } => "bit_flip",
            NoiseChannel::PhaseFlip { .. } => "phase_flip",
            NoiseChannel::Depolarizing { .. } => "depolarizing",
            NoiseChannel::AmplitudeDamping { .. } => "amplitude_damping",
        }
    }
}

impl fmt::Display for NoiseChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name(), self.parameter())
    }
}

/// Error returned when a [`NoiseModel`] is malformed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseModelError {
    /// A channel parameter is not a probability.
    InvalidParameter {
        /// The offending channel.
        channel: NoiseChannel,
        /// The out-of-range parameter value.
        value: f64,
    },
    /// A qubit-specific channel references a qubit outside the circuit.
    QubitOutOfRange {
        /// The out-of-range qubit.
        qubit: Qubit,
        /// Number of qubits in the circuit the model was checked against.
        num_qubits: u16,
    },
}

impl fmt::Display for NoiseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseModelError::InvalidParameter { channel, value } => write!(
                f,
                "noise channel {channel} has parameter {value}, which is not a probability in [0, 1]"
            ),
            NoiseModelError::QubitOutOfRange { qubit, num_qubits } => write!(
                f,
                "noise model attaches a channel to {qubit} but the circuit has only {num_qubits} qubits"
            ),
        }
    }
}

impl std::error::Error for NoiseModelError {}

/// A description of where noise channels act in a circuit.
///
/// Three attachment points:
///
/// * **gate noise** — applied after every unitary operation, once per qubit
///   the operation touches (targets *and* controls: a two-qubit gate
///   perturbs both wires);
/// * **qubit noise** — like gate noise, but only on the listed qubit
///   (modelling one bad wire);
/// * **measurement noise** — applied to the measured qubit immediately
///   before each explicit measurement (classical read-out error when the
///   channel is a bit flip).
///
/// Noise attached to a classically-conditioned gate fires only when the gate
/// itself fires (an idle wire is noiseless under gate noise).
///
/// Channel order is deterministic: gate-wide channels first (insertion
/// order), then qubit-specific channels (insertion order), which is what
/// makes noisy runs seed-reproducible.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NoiseModel {
    gate: Vec<NoiseChannel>,
    qubit: Vec<(Qubit, NoiseChannel)>,
    measurement: Vec<NoiseChannel>,
}

impl NoiseModel {
    /// Creates an empty (noiseless) model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a channel applied after every unitary operation, on every qubit
    /// the operation touches.
    #[must_use]
    pub fn with_gate_noise(mut self, channel: NoiseChannel) -> Self {
        self.gate.push(channel);
        self
    }

    /// Adds a channel applied after every unitary operation touching
    /// `qubit`, on that qubit only.
    #[must_use]
    pub fn with_qubit_noise(mut self, qubit: Qubit, channel: NoiseChannel) -> Self {
        self.qubit.push((qubit, channel));
        self
    }

    /// Adds a channel applied to the measured qubit immediately before every
    /// explicit measurement (read-out error).
    #[must_use]
    pub fn with_measurement_noise(mut self, channel: NoiseChannel) -> Self {
        self.measurement.push(channel);
        self
    }

    /// Returns `true` if the model contains at least one non-trivial
    /// channel, i.e. simulating under it can differ from the ideal circuit.
    #[must_use]
    pub fn has_noise(&self) -> bool {
        self.gate
            .iter()
            .chain(self.qubit.iter().map(|(_, c)| c))
            .chain(self.measurement.iter())
            .any(|c| !c.is_trivial())
    }

    /// The channels inserted after a unitary operation, for one touched
    /// `qubit`, in deterministic order; trivial (`p = 0`) channels are
    /// skipped so a zero-strength model inserts no noise sites at all.
    pub fn channels_after_gate(&self, qubit: Qubit) -> impl Iterator<Item = NoiseChannel> + '_ {
        self.gate
            .iter()
            .copied()
            .chain(
                self.qubit
                    .iter()
                    .filter(move |(q, _)| *q == qubit)
                    .map(|(_, c)| *c),
            )
            .filter(|c| !c.is_trivial())
    }

    /// The channels inserted before a measurement of `qubit`, in
    /// deterministic order (trivial channels skipped).
    pub fn channels_before_measurement(
        &self,
        _qubit: Qubit,
    ) -> impl Iterator<Item = NoiseChannel> + '_ {
        self.measurement.iter().copied().filter(|c| !c.is_trivial())
    }

    /// The three channel sections (gate-wide, per-qubit, read-out) in
    /// insertion order, for the fingerprint fold.
    pub(crate) fn sections(&self) -> (&[NoiseChannel], &[(Qubit, NoiseChannel)], &[NoiseChannel]) {
        (&self.gate, &self.qubit, &self.measurement)
    }

    /// Checks every channel parameter and every qubit reference against a
    /// circuit of `num_qubits` qubits.
    ///
    /// # Errors
    ///
    /// Returns the first [`NoiseModelError`] found.
    pub fn validate_for(&self, num_qubits: u16) -> Result<(), NoiseModelError> {
        for channel in self
            .gate
            .iter()
            .chain(self.qubit.iter().map(|(_, c)| c))
            .chain(self.measurement.iter())
        {
            channel.validate()?;
        }
        for &(qubit, _) in &self.qubit {
            if qubit.0 >= num_qubits {
                return Err(NoiseModelError::QubitOutOfRange { qubit, num_qubits });
            }
        }
        Ok(())
    }
}

impl fmt::Display for NoiseModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "noise[")?;
        let mut first = true;
        let mut item = |f: &mut fmt::Formatter<'_>, text: String| -> fmt::Result {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{text}")
        };
        for c in &self.gate {
            item(f, format!("gate: {c}"))?;
        }
        for (q, c) in &self.qubit {
            item(f, format!("{q}: {c}"))?;
        }
        for c in &self.measurement {
            item(f, format!("readout: {c}"))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_parameters_and_triviality() {
        assert_eq!(NoiseChannel::bit_flip(0.25).parameter(), 0.25);
        assert_eq!(NoiseChannel::amplitude_damping(0.5).parameter(), 0.5);
        assert!(NoiseChannel::depolarizing(0.0).is_trivial());
        assert!(!NoiseChannel::phase_flip(0.1).is_trivial());
    }

    #[test]
    fn branch_probabilities_sum_to_one() {
        for channel in [
            NoiseChannel::bit_flip(0.3),
            NoiseChannel::phase_flip(0.7),
            NoiseChannel::depolarizing(0.4),
        ] {
            let probs = channel.branch_probabilities().unwrap();
            let total: f64 = probs.iter().sum();
            assert!((total - 1.0).abs() < 1e-15, "{channel}: {probs:?}");
            assert!(probs.iter().all(|&p| p >= 0.0));
        }
        assert!(NoiseChannel::amplitude_damping(0.2)
            .branch_probabilities()
            .is_none());
        assert!(!NoiseChannel::amplitude_damping(0.2).is_state_independent());
    }

    #[test]
    fn fully_depolarizing_draws_every_pauli_uniformly() {
        let probs = NoiseChannel::depolarizing(1.0)
            .branch_probabilities()
            .unwrap();
        for p in probs {
            assert!((p - 0.25).abs() < 1e-15, "{probs:?}");
        }
    }

    #[test]
    fn branch_gates_match_the_channel_family() {
        assert_eq!(NoiseChannel::bit_flip(0.1).branch_gate(0), None);
        assert_eq!(
            NoiseChannel::bit_flip(0.1).branch_gate(1),
            Some(OneQubitGate::X)
        );
        assert_eq!(
            NoiseChannel::phase_flip(0.1).branch_gate(1),
            Some(OneQubitGate::Z)
        );
        let dep = NoiseChannel::depolarizing(0.1);
        assert_eq!(dep.branch_gate(1), Some(OneQubitGate::X));
        assert_eq!(dep.branch_gate(2), Some(OneQubitGate::Y));
        assert_eq!(dep.branch_gate(3), Some(OneQubitGate::Z));
    }

    #[test]
    #[should_panic(expected = "has no branch")]
    fn out_of_range_branch_panics() {
        let _ = NoiseChannel::bit_flip(0.1).branch_gate(2);
    }

    #[test]
    fn validation_rejects_non_probabilities() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let channel = NoiseChannel::bit_flip(bad);
            assert!(matches!(
                channel.validate(),
                Err(NoiseModelError::InvalidParameter { .. })
            ));
        }
        assert!(NoiseChannel::bit_flip(0.0).validate().is_ok());
        assert!(NoiseChannel::bit_flip(1.0).validate().is_ok());
    }

    #[test]
    fn model_collects_channels_per_site() {
        let model = NoiseModel::new()
            .with_gate_noise(NoiseChannel::depolarizing(0.01))
            .with_qubit_noise(Qubit(1), NoiseChannel::amplitude_damping(0.05))
            .with_measurement_noise(NoiseChannel::bit_flip(0.02));

        let on_q0: Vec<_> = model.channels_after_gate(Qubit(0)).collect();
        assert_eq!(on_q0, vec![NoiseChannel::depolarizing(0.01)]);
        let on_q1: Vec<_> = model.channels_after_gate(Qubit(1)).collect();
        assert_eq!(
            on_q1,
            vec![
                NoiseChannel::depolarizing(0.01),
                NoiseChannel::amplitude_damping(0.05)
            ]
        );
        let readout: Vec<_> = model.channels_before_measurement(Qubit(0)).collect();
        assert_eq!(readout, vec![NoiseChannel::bit_flip(0.02)]);
        assert!(model.has_noise());
    }

    #[test]
    fn trivial_channels_are_dropped_everywhere() {
        let model = NoiseModel::new()
            .with_gate_noise(NoiseChannel::depolarizing(0.0))
            .with_qubit_noise(Qubit(0), NoiseChannel::bit_flip(0.0))
            .with_measurement_noise(NoiseChannel::phase_flip(0.0));
        assert!(!model.has_noise());
        assert_eq!(model.channels_after_gate(Qubit(0)).count(), 0);
        assert_eq!(model.channels_before_measurement(Qubit(0)).count(), 0);
        assert!(!NoiseModel::new().has_noise());
    }

    #[test]
    fn model_validation_checks_parameters_and_qubits() {
        let bad_param = NoiseModel::new().with_gate_noise(NoiseChannel::bit_flip(2.0));
        assert!(matches!(
            bad_param.validate_for(2),
            Err(NoiseModelError::InvalidParameter { .. })
        ));

        let bad_qubit = NoiseModel::new().with_qubit_noise(Qubit(5), NoiseChannel::bit_flip(0.1));
        assert!(matches!(
            bad_qubit.validate_for(2),
            Err(NoiseModelError::QubitOutOfRange {
                qubit: Qubit(5),
                num_qubits: 2
            })
        ));
        assert!(bad_qubit.validate_for(6).is_ok());

        let msg = bad_qubit.validate_for(2).unwrap_err().to_string();
        assert!(msg.contains("only 2 qubits"));
    }

    #[test]
    fn display_is_compact() {
        let model = NoiseModel::new()
            .with_gate_noise(NoiseChannel::depolarizing(0.01))
            .with_measurement_noise(NoiseChannel::bit_flip(0.02));
        let text = model.to_string();
        assert!(text.contains("gate: depolarizing(0.01)"));
        assert!(text.contains("readout: bit_flip(0.02)"));
    }
}

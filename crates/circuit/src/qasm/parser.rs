//! OpenQASM 2.0 subset parser.
//!
//! The parser is a hand-written recursive-descent parser over a small token
//! stream; it supports the statements listed in the [module docs](super).

use crate::{Circuit, Condition, OneQubitGate, Operation, Qubit};
use mathkit::Angle;
use std::fmt;

/// Error returned by [`parse`] with a line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQasmError {
    /// 1-based line number of the offending statement.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QASM parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseQasmError {}

fn err(line: usize, message: impl Into<String>) -> ParseQasmError {
    ParseQasmError {
        line,
        message: message.into(),
    }
}

/// Evaluates a restricted arithmetic expression used for gate angles:
/// numbers, `pi`, unary minus, `+`, `-`, `*`, `/` and parentheses.
fn eval_expr(text: &str, line: usize) -> Result<f64, ParseQasmError> {
    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
        line: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
                self.chars.next();
            }
        }

        /// Rejects NaN and infinite intermediate results (e.g. `pi/0` or an
        /// overflowing literal) so no garbage angle reaches a gate.
        fn ensure_finite(&self, value: f64) -> Result<f64, ParseQasmError> {
            if value.is_finite() {
                Ok(value)
            } else {
                Err(err(
                    self.line,
                    "angle expression evaluates to a non-finite value",
                ))
            }
        }

        fn parse_sum(&mut self) -> Result<f64, ParseQasmError> {
            let mut value = self.parse_product()?;
            loop {
                self.skip_ws();
                match self.chars.peek() {
                    Some('+') => {
                        self.chars.next();
                        value += self.parse_product()?;
                    }
                    Some('-') => {
                        self.chars.next();
                        value -= self.parse_product()?;
                    }
                    _ => return self.ensure_finite(value),
                }
            }
        }

        fn parse_product(&mut self) -> Result<f64, ParseQasmError> {
            let mut value = self.parse_atom()?;
            loop {
                self.skip_ws();
                match self.chars.peek() {
                    Some('*') => {
                        self.chars.next();
                        value *= self.parse_atom()?;
                    }
                    Some('/') => {
                        self.chars.next();
                        value /= self.parse_atom()?;
                    }
                    _ => return self.ensure_finite(value),
                }
            }
        }

        fn parse_atom(&mut self) -> Result<f64, ParseQasmError> {
            self.skip_ws();
            match self.chars.peek().copied() {
                Some('-') => {
                    self.chars.next();
                    Ok(-self.parse_atom()?)
                }
                Some('+') => {
                    self.chars.next();
                    self.parse_atom()
                }
                Some('(') => {
                    self.chars.next();
                    let value = self.parse_sum()?;
                    self.skip_ws();
                    if self.chars.next() != Some(')') {
                        return Err(err(self.line, "expected ')' in angle expression"));
                    }
                    Ok(value)
                }
                Some(c) if c.is_ascii_digit() || c == '.' => {
                    let mut num = String::new();
                    let mut seen_dot = false;
                    while let Some(&c) = self.chars.peek() {
                        let in_exponent = num.contains(['e', 'E']);
                        let take = c.is_ascii_digit()
                            || c == 'e'
                            || c == 'E'
                            // A sign is part of the number only directly
                            // after the exponent marker (`2e+3`, `2e-3`).
                            || ((c == '-' || c == '+') && num.ends_with(['e', 'E']))
                            || (c == '.' && !in_exponent);
                        if !take {
                            break;
                        }
                        if c == '.' {
                            if seen_dot {
                                return Err(err(
                                    self.line,
                                    format!("invalid number '{num}.': unexpected second '.'"),
                                ));
                            }
                            seen_dot = true;
                        }
                        num.push(c);
                        self.chars.next();
                    }
                    let value = num
                        .parse::<f64>()
                        .map_err(|_| err(self.line, format!("invalid number '{num}'")))?;
                    self.ensure_finite(value)
                }
                Some(c) if c.is_ascii_alphabetic() => {
                    let mut ident = String::new();
                    while matches!(self.chars.peek(), Some(c) if c.is_ascii_alphanumeric() || *c == '_')
                    {
                        ident.push(self.chars.next().expect("peeked"));
                    }
                    if ident.eq_ignore_ascii_case("pi") {
                        Ok(std::f64::consts::PI)
                    } else {
                        Err(err(
                            self.line,
                            format!("unknown identifier '{ident}' in angle"),
                        ))
                    }
                }
                other => Err(err(
                    self.line,
                    format!("unexpected character {other:?} in angle expression"),
                )),
            }
        }
    }

    let mut parser = Parser {
        chars: text.chars().peekable(),
        line,
    };
    let value = parser.parse_sum()?;
    parser.skip_ws();
    if parser.chars.next().is_some() {
        return Err(err(
            line,
            format!("trailing characters in expression '{text}'"),
        ));
    }
    Ok(value)
}

/// Splits a `name[index]` token into its name and bracketed index text,
/// rejecting tokens where the brackets are missing or out of order.
fn split_indexed(token: &str, line: usize) -> Result<(&str, &str), ParseQasmError> {
    let open = token
        .find('[')
        .ok_or_else(|| err(line, format!("expected indexed operand, got '{token}'")))?;
    let close = token
        .find(']')
        .filter(|&close| close > open)
        .ok_or_else(|| err(line, format!("missing ']' in operand '{token}'")))?;
    Ok((&token[..open], &token[open + 1..close]))
}

/// Parses a `name[size]` register declaration body.
fn parse_declaration(rest: &str, line: usize, what: &str) -> Result<(String, u16), ParseQasmError> {
    let (name, size_text) =
        split_indexed(rest, line).map_err(|_| err(line, format!("malformed {what}")))?;
    let size: u16 = size_text
        .parse()
        .map_err(|_| err(line, format!("invalid {what} size")))?;
    Ok((name.trim().to_string(), size))
}

/// Parses a qubit operand of the form `name[index]`.
fn parse_operand(token: &str, line: usize, register: &str) -> Result<Qubit, ParseQasmError> {
    let token = token.trim();
    let (name, index_text) = split_indexed(token, line)?;
    if name != register {
        return Err(err(
            line,
            format!("operand register '{name}' does not match declared register '{register}'"),
        ));
    }
    let index: u16 = index_text
        .parse()
        .map_err(|_| err(line, format!("invalid qubit index in '{token}'")))?;
    Ok(Qubit(index))
}

/// Parses OpenQASM 2.0 text into a [`Circuit`].
///
/// # Errors
///
/// Returns a [`ParseQasmError`] with a line number for statements outside the
/// supported subset, undeclared registers, malformed operands or angles.
///
/// # Examples
///
/// ```
/// let source = r#"
///     OPENQASM 2.0;
///     include "qelib1.inc";
///     qreg q[2];
///     h q[0];
///     cx q[0],q[1];
/// "#;
/// let circuit = circuit::qasm::parse(source)?;
/// assert_eq!(circuit.num_qubits(), 2);
/// assert_eq!(circuit.len(), 2);
/// # Ok::<(), circuit::qasm::ParseQasmError>(())
/// ```
pub fn parse(source: &str) -> Result<Circuit, ParseQasmError> {
    let mut state = ParserState {
        circuit: None,
        register: String::from("q"),
        creg: None,
    };

    // Statements are ';'-terminated; track line numbers for diagnostics.
    let mut line_no = 1usize;
    for raw_line in source.lines() {
        let line = raw_line.split("//").next().unwrap_or("").trim();
        let current_line = line_no;
        line_no += 1;
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            parse_statement(stmt, current_line, &mut state)?;
        }
    }

    state
        .circuit
        .ok_or_else(|| err(line_no, "no qreg declaration found"))
}

/// Mutable parsing context threaded through the statements.
struct ParserState {
    circuit: Option<Circuit>,
    /// The declared quantum register name.
    register: String,
    /// The declared classical register, if any: `(name, size)`.
    creg: Option<(String, u16)>,
}

/// Parses a `name[index]` classical-bit operand against the declared creg.
fn parse_cbit(token: &str, line: usize, creg: &(String, u16)) -> Result<u16, ParseQasmError> {
    let token = token.trim();
    let (name, size) = creg;
    let (operand_name, index_text) = split_indexed(token, line).map_err(|_| {
        err(
            line,
            format!("expected indexed classical operand, got '{token}'"),
        )
    })?;
    if operand_name != name {
        return Err(err(
            line,
            format!("classical register '{operand_name}' does not match declared creg '{name}'"),
        ));
    }
    let index: u16 = index_text
        .parse()
        .map_err(|_| err(line, format!("invalid classical bit index in '{token}'")))?;
    if index >= *size {
        return Err(err(
            line,
            format!("classical bit index {index} outside creg {name}[{size}]"),
        ));
    }
    Ok(index)
}

/// Parses the operand part of a `measure` statement (`q[i] -> c[j]` or the
/// broadcast `q -> c`) into [`Operation::Measure`] operations, checking both
/// operands against the declared registers.
fn parse_measure_ops(
    rest: &str,
    line: usize,
    register: &str,
    creg: &(String, u16),
    num_qubits: u16,
) -> Result<Vec<Operation>, ParseQasmError> {
    let (qubit_text, cbit_text) = rest
        .split_once("->")
        .ok_or_else(|| err(line, "measure statement requires 'qubit -> clbit'"))?;
    let qubit_text = qubit_text.trim();
    let cbit_text = cbit_text.trim();
    if qubit_text.contains('[') {
        let qubit = parse_operand(qubit_text, line, register)?;
        let cbit = parse_cbit(cbit_text, line, creg)?;
        return Ok(vec![Operation::Measure { qubit, cbit }]);
    }
    // Broadcast form `measure q -> c;`: qubit k into clbit k.
    if qubit_text != register {
        return Err(err(
            line,
            format!(
                "operand register '{qubit_text}' does not match declared register '{register}'"
            ),
        ));
    }
    if cbit_text != creg.0 {
        return Err(err(
            line,
            format!(
                "classical register '{cbit_text}' does not match declared creg '{}'",
                creg.0
            ),
        ));
    }
    if creg.1 < num_qubits {
        return Err(err(
            line,
            format!(
                "broadcast measure needs creg size >= {num_qubits} qubits, got {}",
                creg.1
            ),
        ));
    }
    Ok((0..num_qubits)
        .map(|q| Operation::Measure {
            qubit: Qubit(q),
            cbit: q,
        })
        .collect())
}

/// Parses the operand part of a `reset` statement (`q[i]` or the broadcast
/// `q`) into [`Operation::Reset`] operations.
fn parse_reset_ops(
    rest: &str,
    line: usize,
    register: &str,
    num_qubits: u16,
) -> Result<Vec<Operation>, ParseQasmError> {
    let target = rest.trim();
    if target.contains('[') {
        let qubit = parse_operand(target, line, register)?;
        return Ok(vec![Operation::Reset { qubit }]);
    }
    if target != register {
        return Err(err(
            line,
            format!("operand register '{target}' does not match declared register '{register}'"),
        ));
    }
    Ok((0..num_qubits)
        .map(|q| Operation::Reset { qubit: Qubit(q) })
        .collect())
}

fn parse_statement(stmt: &str, line: usize, state: &mut ParserState) -> Result<(), ParseQasmError> {
    let (head, rest) = match stmt.find(|c: char| c.is_whitespace() || c == '(') {
        Some(pos) => (&stmt[..pos], stmt[pos..].trim_start()),
        None => (stmt, ""),
    };

    // Disjoint borrows of the parser state, so statement handlers can read
    // the register names while mutating the circuit without cloning.
    let ParserState {
        circuit: parsed_circuit,
        register,
        creg: parsed_creg,
    } = state;

    match head {
        "OPENQASM" | "include" | "barrier" => Ok(()),
        "qreg" => {
            let (name, size) = parse_declaration(rest, line, "qreg")?;
            if let Some(existing) = parsed_circuit {
                return Err(err(
                    line,
                    format!(
                        "multiple qreg declarations are not supported (already have {} qubits)",
                        existing.num_qubits()
                    ),
                ));
            }
            *register = name;
            let mut circuit = Circuit::new(size);
            if let Some((_, creg_size)) = parsed_creg {
                circuit.set_num_clbits(*creg_size);
            }
            *parsed_circuit = Some(circuit);
            Ok(())
        }
        "creg" => {
            let (name, size) = parse_declaration(rest, line, "creg")?;
            if parsed_creg.is_some() {
                return Err(err(line, "multiple creg declarations are not supported"));
            }
            if let Some(circuit) = parsed_circuit.as_mut() {
                circuit.set_num_clbits(size);
            }
            *parsed_creg = Some((name, size));
            Ok(())
        }
        "measure" => {
            let creg = parsed_creg
                .as_ref()
                .ok_or_else(|| err(line, "measure statement before creg declaration"))?;
            let circuit = parsed_circuit
                .as_mut()
                .ok_or_else(|| err(line, "statement before qreg declaration"))?;
            for op in parse_measure_ops(rest, line, register, creg, circuit.num_qubits())? {
                circuit.push(op);
            }
            Ok(())
        }
        "reset" => {
            let circuit = parsed_circuit
                .as_mut()
                .ok_or_else(|| err(line, "statement before qreg declaration"))?;
            for op in parse_reset_ops(rest, line, register, circuit.num_qubits())? {
                circuit.push(op);
            }
            Ok(())
        }
        "if" => {
            let creg = parsed_creg
                .as_ref()
                .ok_or_else(|| err(line, "if statement before creg declaration"))?;
            let circuit = parsed_circuit
                .as_mut()
                .ok_or_else(|| err(line, "statement before qreg declaration"))?;
            let rest = rest.trim_start();
            let inner = rest
                .strip_prefix('(')
                .ok_or_else(|| err(line, "if statement requires a '(creg==value)' condition"))?;
            let close = inner
                .find(')')
                .ok_or_else(|| err(line, "missing ')' in if condition"))?;
            let (condition_text, guarded_stmt) = (&inner[..close], inner[close + 1..].trim());
            let (name, value_text) = condition_text
                .split_once("==")
                .ok_or_else(|| err(line, "if condition must be of the form 'creg==value'"))?;
            let (name, value_text) = (name.trim(), value_text.trim());
            if name != creg.0 {
                return Err(err(
                    line,
                    format!(
                        "condition register '{name}' does not match declared creg '{}'",
                        creg.0
                    ),
                ));
            }
            let value: u64 = value_text
                .parse()
                .map_err(|_| err(line, format!("invalid condition value '{value_text}'")))?;
            if creg.1 < 64 && value >> creg.1 != 0 {
                return Err(err(
                    line,
                    format!(
                        "condition value {value} does not fit creg {}[{}]",
                        creg.0, creg.1
                    ),
                ));
            }
            if guarded_stmt.is_empty() {
                return Err(err(
                    line,
                    "if condition must be followed by a gate statement",
                ));
            }
            let guarded_head = guarded_stmt
                .split(|c: char| c.is_whitespace() || c == '(')
                .next()
                .unwrap_or("");
            if matches!(
                guarded_head,
                "if" | "barrier" | "qreg" | "creg" | "OPENQASM" | "include"
            ) {
                return Err(err(
                    line,
                    format!(
                        "only gate, measure and reset statements can be conditioned, got '{guarded_head}'"
                    ),
                ));
            }
            // Parse the guarded statement (a gate, a measure or a reset),
            // then wrap every operation it produced in the condition.
            //
            // The per-operation guards re-evaluate against the *current*
            // register, which matches OpenQASM 2.0's condition-once-per-
            // statement semantics for everything we expand — except a
            // broadcast measure, where an earlier guarded measure could
            // rewrite the compared register and disable the rest of the
            // expansion.  (Broadcast resets are fine: resets never write the
            // register, so the guard cannot change mid-expansion.)
            let guarded_ops: Vec<Operation> = match guarded_head {
                "measure" => {
                    let guarded_rest = guarded_stmt["measure".len()..].trim_start();
                    let is_broadcast = guarded_rest
                        .split_once("->")
                        .is_some_and(|(qubit_text, _)| !qubit_text.contains('['));
                    if is_broadcast {
                        return Err(err(
                            line,
                            "broadcast measure cannot be conditioned: an earlier guarded \
                             measure would rewrite the compared register; condition each \
                             'measure q[i] -> c[j]' individually",
                        ));
                    }
                    parse_measure_ops(guarded_rest, line, register, creg, circuit.num_qubits())?
                }
                "reset" => {
                    let guarded_rest = guarded_stmt["reset".len()..].trim_start();
                    parse_reset_ops(guarded_rest, line, register, circuit.num_qubits())?
                }
                _ => {
                    let mut scratch = Circuit::new(circuit.num_qubits());
                    parse_gate(guarded_stmt, line, &mut scratch, register)?;
                    scratch.operations().to_vec()
                }
            };
            for op in guarded_ops {
                circuit.push(Operation::Conditioned {
                    condition: Condition::equals(value),
                    op: Box::new(op),
                });
            }
            Ok(())
        }
        _ => {
            let circuit = parsed_circuit
                .as_mut()
                .ok_or_else(|| err(line, "statement before qreg declaration"))?;
            parse_gate(stmt, line, circuit, register)
        }
    }
}

fn parse_gate(
    stmt: &str,
    line: usize,
    circuit: &mut Circuit,
    register: &str,
) -> Result<(), ParseQasmError> {
    // Split "name(args) operands" into name, optional args, operands.
    let (name_and_args, operands_text) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(pos) if !stmt[..pos].contains('(') || stmt[..pos].contains(')') => {
            (&stmt[..pos], &stmt[pos..])
        }
        _ => {
            // The gate has parenthesised args that may contain spaces.
            let close = stmt
                .find(')')
                .ok_or_else(|| err(line, format!("malformed gate statement '{stmt}'")))?;
            (&stmt[..=close], &stmt[close + 1..])
        }
    };
    let (name, args) = match name_and_args.find('(') {
        Some(open) => {
            let close = name_and_args
                .rfind(')')
                .ok_or_else(|| err(line, "missing ')' in gate arguments"))?;
            (
                &name_and_args[..open],
                Some(&name_and_args[open + 1..close]),
            )
        }
        None => (name_and_args, None),
    };
    let operands: Vec<Qubit> = operands_text
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| parse_operand(t, line, register))
        .collect::<Result<_, _>>()?;

    let angle = |args: Option<&str>| -> Result<Angle, ParseQasmError> {
        let text = args.ok_or_else(|| err(line, format!("gate '{name}' requires an angle")))?;
        Ok(Angle::Radians(eval_expr(text, line)?))
    };
    let expect = |n: usize| -> Result<(), ParseQasmError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("gate '{name}' expects {n} operands, got {}", operands.len()),
            ))
        }
    };

    match name {
        "id" => {
            expect(1)?;
            // Preserved, not dropped: the round trip must keep the operation
            // list (and hence the fingerprint) exactly.
            circuit.gate(OneQubitGate::I, operands[0]);
            Ok(())
        }
        "x" | "y" | "z" | "h" | "s" | "sdg" | "t" | "tdg" | "sx" | "sxdg" | "sy" | "sydg" => {
            expect(1)?;
            let gate = match name {
                "x" => OneQubitGate::X,
                "y" => OneQubitGate::Y,
                "z" => OneQubitGate::Z,
                "h" => OneQubitGate::H,
                "s" => OneQubitGate::S,
                "sdg" => OneQubitGate::Sdg,
                "t" => OneQubitGate::T,
                "tdg" => OneQubitGate::Tdg,
                "sx" => OneQubitGate::SqrtX,
                "sxdg" => OneQubitGate::SqrtXdg,
                "sy" => OneQubitGate::SqrtY,
                _ => OneQubitGate::SqrtYdg,
            };
            circuit.gate(gate, operands[0]);
            Ok(())
        }
        "p" | "u1" => {
            expect(1)?;
            let a = angle(args)?;
            circuit.p(a, operands[0]);
            Ok(())
        }
        "rx" | "ry" | "rz" => {
            expect(1)?;
            let a = angle(args)?;
            match name {
                "rx" => circuit.rx(a, operands[0]),
                "ry" => circuit.ry(a, operands[0]),
                _ => circuit.rz(a, operands[0]),
            };
            Ok(())
        }
        "u" | "u3" => {
            expect(1)?;
            let text = args.ok_or_else(|| err(line, "u gate requires three angles"))?;
            let parts: Vec<&str> = text.split(',').collect();
            if parts.len() != 3 {
                return Err(err(line, "u gate requires three angles"));
            }
            let theta = Angle::Radians(eval_expr(parts[0], line)?);
            let phi = Angle::Radians(eval_expr(parts[1], line)?);
            let lambda = Angle::Radians(eval_expr(parts[2], line)?);
            circuit.gate(OneQubitGate::U { theta, phi, lambda }, operands[0]);
            Ok(())
        }
        "cx" | "CX" => {
            expect(2)?;
            circuit.cx(operands[0], operands[1]);
            Ok(())
        }
        "cz" => {
            expect(2)?;
            circuit.cz(operands[0], operands[1]);
            Ok(())
        }
        "cp" | "cu1" => {
            expect(2)?;
            let a = angle(args)?;
            circuit.cp(a, operands[0], operands[1]);
            Ok(())
        }
        "swap" => {
            expect(2)?;
            circuit.swap(operands[0], operands[1]);
            Ok(())
        }
        "cswap" => {
            expect(3)?;
            circuit.cswap(operands[0], operands[1], operands[2]);
            Ok(())
        }
        "ccx" => {
            expect(3)?;
            circuit.ccx(operands[0], operands[1], operands[2]);
            Ok(())
        }
        other => Err(err(line, format!("unsupported gate '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Operation;

    #[test]
    fn parses_bell_circuit_with_terminal_measurement() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q -> c;\n";
        let c = parse(src).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.num_clbits(), 2);
        // h, cx, plus one broadcast measurement per qubit.
        assert_eq!(c.len(), 4);
        assert!(c.has_measurements());
        assert!(!c.is_dynamic());
        let (prefix, mapping) = c.split_terminal_measurements().unwrap();
        assert_eq!(prefix.len(), 2);
        assert_eq!(mapping, vec![(Qubit(0), 0), (Qubit(1), 1)]);
    }

    #[test]
    fn parses_mid_circuit_measure_and_reset() {
        let src = "qreg q[2];\ncreg c[2];\nh q[0];\nmeasure q[0] -> c[1];\nreset q[0];\nh q[0];\nmeasure q[0] -> c[0];\n";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 5);
        assert!(c.is_dynamic());
        assert_eq!(c.num_clbits(), 2);
        match &c.operations()[1] {
            Operation::Measure { qubit, cbit } => {
                assert_eq!(*qubit, Qubit(0));
                assert_eq!(*cbit, 1);
            }
            other => panic!("unexpected op {other:?}"),
        }
        assert!(matches!(
            c.operations()[2],
            Operation::Reset { qubit: Qubit(0) }
        ));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn reset_broadcast_covers_every_qubit() {
        let c = parse("qreg q[3]; reset q;").unwrap();
        assert_eq!(c.len(), 3);
        assert!(c
            .operations()
            .iter()
            .all(|op| matches!(op, Operation::Reset { .. })));
    }

    #[test]
    fn creg_before_qreg_is_honoured() {
        let c = parse("creg c[3]; qreg q[2]; measure q[1] -> c[2];").unwrap();
        assert_eq!(c.num_clbits(), 3);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn measure_without_creg_is_rejected() {
        let e = parse("qreg q[1]; measure q[0] -> c[0];").unwrap_err();
        assert!(e.message.contains("before creg"));
    }

    #[test]
    fn measure_rejects_out_of_range_clbit() {
        let e = parse("qreg q[1]; creg c[1]; measure q[0] -> c[4];").unwrap_err();
        assert!(e.message.contains("outside creg"));
    }

    #[test]
    fn measure_rejects_mismatched_registers() {
        let e = parse("qreg q[1]; creg c[1]; measure q[0] -> d[0];").unwrap_err();
        assert!(e.message.contains("does not match declared creg"));
        let e = parse("qreg q[2]; creg c[1]; measure q -> c;").unwrap_err();
        assert!(e.message.contains("creg size"));
    }

    #[test]
    fn duplicate_creg_is_rejected() {
        let e = parse("qreg q[1]; creg c[1]; creg d[1];").unwrap_err();
        assert!(e.message.contains("multiple creg"));
    }

    #[test]
    fn out_of_order_brackets_error_instead_of_panicking() {
        // `]` before `[` used to slice with start > end and panic.
        for src in [
            "creg c]1[4]; qreg q[2];",
            "qreg q]1[4];",
            "qreg q[2]; h q]0[;",
            "qreg q[1]; creg c[1]; measure q[0] -> c]0[;",
            "qreg q[2]; reset q]0[;",
        ] {
            let e = parse(src).unwrap_err();
            assert!(
                e.message.contains("malformed")
                    || e.message.contains("missing ']'")
                    || e.message.contains("expected indexed"),
                "unexpected message for {src:?}: {}",
                e.message
            );
        }
    }

    #[test]
    fn parses_angles_with_pi_expressions() {
        let src = "qreg q[1]; p(pi/2) q[0]; rz(-pi/4) q[0]; rx(2*pi/3) q[0]; ry(0.5) q[0];";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 4);
        match &c.operations()[0] {
            Operation::Unitary {
                gate: OneQubitGate::Phase(a),
                ..
            } => assert!((a.radians() - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        match &c.operations()[2] {
            Operation::Unitary {
                gate: OneQubitGate::Rx(a),
                ..
            } => assert!((a.radians() - 2.0 * std::f64::consts::PI / 3.0).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_gate() {
        let e = parse("qreg q[1]; frobnicate q[0];").unwrap_err();
        assert!(e.message.contains("unsupported gate"));
    }

    #[test]
    fn rejects_gate_before_qreg() {
        let e = parse("h q[0];").unwrap_err();
        assert!(e.message.contains("before qreg"));
    }

    #[test]
    fn rejects_wrong_operand_count() {
        let e = parse("qreg q[2]; cx q[0];").unwrap_err();
        assert!(e.message.contains("expects 2 operands"));
    }

    #[test]
    fn rejects_out_of_register_name() {
        let e = parse("qreg q[2]; h r[0];").unwrap_err();
        assert!(e.message.contains("does not match"));
    }

    #[test]
    fn ignores_barriers_and_comments() {
        let src = "// a comment\nqreg q[2];\nbarrier q;\nh q[0]; // trailing comment\n";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn parses_u_gate() {
        let c = parse("qreg q[1]; u(pi/2,0,pi) q[0];").unwrap();
        match &c.operations()[0] {
            Operation::Unitary {
                gate: OneQubitGate::U { theta, .. },
                ..
            } => assert!((theta.radians() - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expression_evaluator_handles_precedence() {
        assert!((eval_expr("1+2*3", 0).unwrap() - 7.0).abs() < 1e-12);
        assert!((eval_expr("(1+2)*3", 0).unwrap() - 9.0).abs() < 1e-12);
        assert!((eval_expr("-pi/2", 0).unwrap() + std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((eval_expr("1e-3", 0).unwrap() - 1e-3).abs() < 1e-15);
        assert!(eval_expr("1++", 0).is_err());
        assert!(eval_expr("foo", 0).is_err());
    }

    #[test]
    fn rejects_double_qreg() {
        let e = parse("qreg q[2]; qreg r[2];").unwrap_err();
        assert!(e.message.contains("multiple qreg"));
    }

    #[test]
    fn scientific_notation_with_explicit_plus_exponent_parses() {
        // Regression: the number lexer only admitted '-' after 'e'/'E', so
        // `2e+3` lexed as `2e` and errored as an invalid number.
        let c = parse("qreg q[1]; rz(2e+3) q[0]; rz(1E+2) q[0];").unwrap();
        match &c.operations()[0] {
            Operation::Unitary {
                gate: OneQubitGate::Rz(a),
                ..
            } => assert!((a.radians() - 2e3).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        match &c.operations()[1] {
            Operation::Unitary {
                gate: OneQubitGate::Rz(a),
                ..
            } => assert!((a.radians() - 1e2).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        assert!((eval_expr("2e+3", 0).unwrap() - 2000.0).abs() < 1e-9);
        assert!((eval_expr("-1.5e+2", 0).unwrap() + 150.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_angle_expressions_are_rejected() {
        // Regression: `pi/0` silently produced an infinite angle and built a
        // garbage gate instead of erroring.
        for src in [
            "qreg q[1]; rz(pi/0) q[0];",
            "qreg q[1]; p(0/0) q[0];",
            "qreg q[1]; rx(1e308*10) q[0];",
            "qreg q[1]; ry(1e999) q[0];",
        ] {
            let e = parse(src).unwrap_err();
            assert!(
                e.message.contains("non-finite"),
                "unexpected message for {src:?}: {}",
                e.message
            );
            assert_eq!(e.line, 1);
        }
        assert!(eval_expr("pi/0", 7).is_err());
        assert_eq!(eval_expr("pi/0", 7).unwrap_err().line, 7);
    }

    #[test]
    fn multi_dot_literals_are_rejected_with_a_clear_message() {
        // Regression: `1.2.3` was consumed whole and surfaced as a confusing
        // f64 parse failure.
        let e = parse("qreg q[1]; rz(1.2.3) q[0];").unwrap_err();
        assert!(
            e.message.contains("unexpected second '.'"),
            "unexpected message: {}",
            e.message
        );
        // A dot inside the exponent is not part of the number either.
        assert!(eval_expr("1e3.5", 0).is_err());
        // Plain decimals still work.
        assert!((eval_expr(".5", 0).unwrap() - 0.5).abs() < 1e-12);
        assert!((eval_expr("1.25", 0).unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn parses_classically_conditioned_gates() {
        let src = "qreg q[2]; creg c[2];\nh q[0];\nmeasure q[0] -> c[0];\nif (c==1) x q[1];\nif(c==3)rz(pi/2) q[0];\nif (c == 2) cx q[0],q[1];";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 5);
        assert!(c.is_dynamic());
        assert!(c.validate().is_ok());
        match &c.operations()[2] {
            Operation::Conditioned { condition, op } => {
                assert_eq!(condition.value, 1);
                assert!(matches!(
                    op.as_ref(),
                    Operation::Unitary {
                        gate: OneQubitGate::X,
                        target: Qubit(1),
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.operations()[3].condition().unwrap().value, 3);
        match &c.operations()[4] {
            Operation::Conditioned { condition, op } => {
                assert_eq!(condition.value, 2);
                assert_eq!(op.controls(), &[Qubit(0)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_statement_requires_a_declared_matching_creg() {
        let e = parse("qreg q[1]; if (c==0) x q[0];").unwrap_err();
        assert!(e.message.contains("before creg"));
        let e = parse("qreg q[1]; creg c[1]; if (d==0) x q[0];").unwrap_err();
        assert!(e.message.contains("does not match declared creg"));
        let e = parse("qreg q[1]; creg c[1]; if (c==5) x q[0];").unwrap_err();
        assert!(e.message.contains("does not fit creg"));
        let e = parse("qreg q[1]; creg c[1]; if (c==x) x q[0];").unwrap_err();
        assert!(e.message.contains("invalid condition value"));
        let e = parse("qreg q[1]; creg c[1]; if c==0 x q[0];").unwrap_err();
        assert!(e.message.contains("requires a '(creg==value)'"));
        let e = parse("qreg q[1]; creg c[1]; if (c==0;").unwrap_err();
        assert!(e.message.contains("missing ')'"));
        let e = parse("qreg q[1]; creg c[1]; if (c=0) x q[0];").unwrap_err();
        assert!(e.message.contains("'creg==value'"));
        let e = parse("qreg q[1]; creg c[1]; if (c==0);").unwrap_err();
        assert!(e.message.contains("followed by a gate statement"));
    }

    #[test]
    fn parses_conditioned_measure_and_reset() {
        let src = "qreg q[2]; creg c[2];\nh q[0];\nmeasure q[0] -> c[0];\nif (c==1) reset q[0];\nif (c==1) measure q[1] -> c[1];";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 4);
        assert!(c.is_dynamic());
        assert!(c.validate().is_ok());
        match &c.operations()[2] {
            Operation::Conditioned { condition, op } => {
                assert_eq!(condition.value, 1);
                assert!(matches!(op.as_ref(), Operation::Reset { qubit: Qubit(0) }));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &c.operations()[3] {
            Operation::Conditioned { condition, op } => {
                assert_eq!(condition.value, 1);
                assert!(matches!(
                    op.as_ref(),
                    Operation::Measure {
                        qubit: Qubit(1),
                        cbit: 1
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn conditioned_broadcast_reset_expands_per_qubit() {
        // Resets never write the register, so guarding each qubit's reset
        // individually is exactly the condition-once statement semantics.
        let c = parse("qreg q[2]; creg c[2]; if (c==0) reset q;").unwrap();
        assert_eq!(c.len(), 2);
        for (i, op) in c.operations().iter().enumerate() {
            let Operation::Conditioned { op, .. } = op else {
                panic!("op {i} is not conditioned: {op}");
            };
            assert!(matches!(op.as_ref(), Operation::Reset { .. }));
        }
    }

    #[test]
    fn conditioned_broadcast_measure_is_rejected() {
        // An earlier guarded measure of the expansion would rewrite the
        // compared register and disable the later ones, diverging from the
        // spec's evaluate-the-condition-once semantics — so the form errors
        // instead of silently changing meaning.
        let e = parse("qreg q[2]; creg c[2]; if (c==3) measure q -> c;").unwrap_err();
        assert!(
            e.message
                .contains("broadcast measure cannot be conditioned"),
            "unexpected message: {}",
            e.message
        );
    }

    #[test]
    fn conditioned_measure_checks_its_operands() {
        let e = parse("qreg q[1]; creg c[1]; if (c==0) measure q[0] -> c[4];").unwrap_err();
        assert!(e.message.contains("outside creg"));
        let e = parse("qreg q[1]; creg c[1]; if (c==0) measure q[0] -> d[0];").unwrap_err();
        assert!(e.message.contains("does not match declared creg"));
        let e = parse("qreg q[1]; creg c[1]; if (c==0) reset r[0];").unwrap_err();
        assert!(e.message.contains("does not match declared register"));
        let e = parse("qreg q[1]; creg c[1]; if (c==0) measure q[0];").unwrap_err();
        assert!(e.message.contains("requires 'qubit -> clbit'"));
    }

    #[test]
    fn declarations_and_nested_ifs_cannot_be_conditioned() {
        for (src, head) in [
            ("qreg q[1]; creg c[1]; if (c==0) if (c==0) x q[0];", "if"),
            ("qreg q[1]; creg c[1]; if (c==0) barrier q;", "barrier"),
            ("qreg q[1]; creg c[1]; if (c==0) creg d[1];", "creg"),
        ] {
            let e = parse(src).unwrap_err();
            assert!(
                e.message
                    .contains("only gate, measure and reset statements can be conditioned")
                    && e.message.contains(head),
                "unexpected message for {src:?}: {}",
                e.message
            );
        }
    }
}

//! OpenQASM 2.0 subset reader and writer.
//!
//! The supported subset covers the gate alphabet used by the benchmark
//! generators, so circuits can be exported to (and re-imported from) other
//! simulators for cross-validation:
//!
//! * header: `OPENQASM 2.0;` and `include "qelib1.inc";`
//! * declarations: `qreg`, `creg`
//! * gates: `id, x, y, z, h, s, sdg, t, tdg, sx, sxdg, p, u1, rx, ry, rz,
//!   cx, cz, cp, cu1, swap, cswap, ccx`
//! * non-unitary statements: `measure q[i] -> c[j];` (and the broadcast form
//!   `measure q -> c;`) become [`Operation::Measure`](crate::Operation)
//!   operations recording into the `creg`, and `reset q[i];` / `reset q;`
//!   become [`Operation::Reset`](crate::Operation) operations — mid-circuit
//!   placements are preserved, which is what makes dynamic circuits
//!   (teleportation, measure-and-reset qubit reuse) expressible
//! * classically-controlled statements: `if (c==k) gate ...;`, `if (c==k)
//!   measure ...;` and `if (c==k) reset ...;` become an
//!   [`Operation::Conditioned`](crate::Operation) wrapping the statement's
//!   operation, guarded by the whole-register equality `c == k` — the
//!   feed-forward primitives that make iterative phase estimation and
//!   conditional read-out/discard expressible.  Conditions cannot be nested,
//!   the compared value must fit the declared `creg`, and the broadcast
//!   `if (c==k) measure q -> c;` is rejected (its per-qubit expansion would
//!   let an earlier guarded measure rewrite the compared register, breaking
//!   the spec's condition-once statement semantics; broadcast `reset` is
//!   accepted — resets never write the register)
//! * `barrier` statements are accepted and ignored
//!
//! Basis-state [`Permutation`](crate::Permutation) operations have no QASM
//! counterpart; exporting a circuit containing one returns
//! [`WriteQasmError::UnsupportedOperation`].
//!
//! # Examples
//!
//! ```
//! use circuit::{Circuit, Qubit, qasm};
//!
//! let mut bell = Circuit::new(2);
//! bell.h(Qubit(0));
//! bell.cx(Qubit(0), Qubit(1));
//!
//! let text = qasm::to_qasm(&bell)?;
//! let parsed = qasm::parse(&text)?;
//! assert_eq!(parsed.num_qubits(), 2);
//! assert_eq!(parsed.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod parser;
mod writer;

pub use parser::{parse, ParseQasmError};
pub use writer::{to_qasm, WriteQasmError};

#[cfg(test)]
mod tests {
    use crate::{Circuit, OneQubitGate, Qubit};
    use mathkit::Angle;

    #[test]
    fn roundtrip_preserves_gate_sequence() {
        let mut c = Circuit::with_name(3, "roundtrip");
        c.h(Qubit(0))
            .x(Qubit(1))
            .s(Qubit(2))
            .t(Qubit(0))
            .rx(Angle::Radians(0.5), Qubit(1))
            .cp(Angle::pi_over(4), Qubit(0), Qubit(2))
            .cx(Qubit(0), Qubit(1))
            .cz(Qubit(1), Qubit(2))
            .swap(Qubit(0), Qubit(2))
            .ccx(Qubit(0), Qubit(1), Qubit(2));
        let text = super::to_qasm(&c).unwrap();
        let parsed = super::parse(&text).unwrap();
        assert_eq!(parsed.num_qubits(), c.num_qubits());
        assert_eq!(parsed.len(), c.len());
        // Gate mnemonics survive the roundtrip in order.
        let names: Vec<_> = parsed
            .operations()
            .iter()
            .map(|op| match op {
                crate::Operation::Unitary { gate, .. } => gate.name().to_string(),
                crate::Operation::Swap { .. } => "swap".into(),
                crate::Operation::Permute { .. } => "permute".into(),
                crate::Operation::Measure { .. } => "measure".into(),
                crate::Operation::Reset { .. } => "reset".into(),
                crate::Operation::Conditioned { .. } => "if".into(),
            })
            .collect();
        assert_eq!(names[0], "h");
        assert_eq!(names[9], "x"); // ccx parses as controlled x
    }

    #[test]
    fn roundtrip_preserves_measure_reset_and_conditions() {
        let mut c = Circuit::with_name(3, "dynamic_roundtrip");
        c.h(Qubit(0))
            .measure(Qubit(0), 2)
            .reset(Qubit(0))
            .conditioned_gate(0b100, OneQubitGate::X, Qubit(0))
            .h(Qubit(0))
            .cx(Qubit(0), Qubit(1))
            .measure(Qubit(1), 0)
            .measure(Qubit(2), 1);
        let text = super::to_qasm(&c).unwrap();
        let parsed = super::parse(&text).unwrap();
        assert_eq!(parsed.num_qubits(), c.num_qubits());
        assert_eq!(parsed.num_clbits(), c.num_clbits());
        assert_eq!(parsed.operations(), c.operations());
        assert!(parsed.is_dynamic());
        // A second round trip is a fixed point (modulo the `// name` header,
        // which the parser does not recover).
        let strip_name = |t: &str| t.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(
            strip_name(&super::to_qasm(&parsed).unwrap()),
            strip_name(&text)
        );
    }

    #[test]
    fn roundtrip_preserves_conditioned_measure_and_reset() {
        // `if (c==k) measure;` / `if (c==k) reset;` — the QASM 2.0 forms the
        // subset previously rejected — survive write → parse → write.
        let mut c = Circuit::with_name(2, "conditioned_events");
        c.h(Qubit(0))
            .measure(Qubit(0), 0)
            .conditioned(1, crate::Operation::Reset { qubit: Qubit(0) })
            .conditioned(
                1,
                crate::Operation::Measure {
                    qubit: Qubit(1),
                    cbit: 1,
                },
            )
            .measure(Qubit(0), 1);
        let text = super::to_qasm(&c).unwrap();
        assert!(text.contains("if (c==1) reset q[0];"));
        assert!(text.contains("if (c==1) measure q[1] -> c[1];"));
        let parsed = super::parse(&text).unwrap();
        assert_eq!(parsed.operations(), c.operations());
        assert_eq!(parsed.num_clbits(), c.num_clbits());
        let strip_name = |t: &str| t.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(
            strip_name(&super::to_qasm(&parsed).unwrap()),
            strip_name(&text)
        );
    }

    #[test]
    fn conditioned_only_circuits_roundtrip_with_a_creg() {
        // Regression: `conditioned` must grow the classical register, or a
        // measure-free conditioned circuit would write an `if (c==0)` with
        // no creg declaration and fail to parse back.
        let mut c = Circuit::new(1);
        c.conditioned_gate(0, OneQubitGate::X, Qubit(0));
        let text = super::to_qasm(&c).unwrap();
        assert!(text.contains("creg c[1];"));
        let parsed = super::parse(&text).unwrap();
        assert_eq!(parsed.operations(), c.operations());
        assert_eq!(parsed.num_clbits(), 1);
    }

    #[test]
    fn permutation_cannot_be_exported() {
        let mut c = Circuit::new(2);
        let perm = crate::Permutation::new(vec![Qubit(0), Qubit(1)], vec![1, 2, 3, 0]).unwrap();
        c.permute(perm);
        assert!(super::to_qasm(&c).is_err());
    }

    #[test]
    fn parsed_angles_match_written_angles() {
        let mut c = Circuit::new(1);
        c.rz(Angle::Radians(1.234_567_890_1), Qubit(0));
        let text = super::to_qasm(&c).unwrap();
        let parsed = super::parse(&text).unwrap();
        match &parsed.operations()[0] {
            crate::Operation::Unitary {
                gate: OneQubitGate::Rz(a),
                ..
            } => assert!((a.radians() - 1.234_567_890_1).abs() < 1e-9),
            other => panic!("unexpected op {other:?}"),
        }
    }
}

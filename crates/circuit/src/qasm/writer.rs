//! OpenQASM 2.0 writer.

use crate::{Circuit, OneQubitGate, Operation, Qubit};
use std::fmt;
use std::fmt::Write as _;

/// Error returned by [`to_qasm`] when the circuit contains an operation that
/// has no OpenQASM 2.0 representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteQasmError {
    /// The operation at this index cannot be expressed in the QASM subset.
    UnsupportedOperation {
        /// Index of the offending operation.
        op_index: usize,
        /// Human-readable description of the operation.
        description: String,
    },
}

impl fmt::Display for WriteQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteQasmError::UnsupportedOperation {
                op_index,
                description,
            } => write!(
                f,
                "operation {op_index} ({description}) cannot be written as OpenQASM 2.0"
            ),
        }
    }
}

impl std::error::Error for WriteQasmError {}

fn q(qubit: Qubit) -> String {
    format!("q[{}]", qubit.index())
}

/// Renders a gate call with **round-trip-exact** angles: Rust's default
/// `f64` formatting is shortest-round-trip (the emitted decimal parses back
/// to the identical bit pattern), so a write→parse cycle preserves every
/// angle bit-for-bit and [`Circuit::fingerprint`] is a fixed point of the
/// QASM round trip — the property the artifact cache keys rely on (see the
/// `qasm_fingerprint_roundtrip` integration test).
fn gate_call(gate: &OneQubitGate) -> String {
    match gate {
        OneQubitGate::Phase(a) => format!("p({})", a.radians()),
        OneQubitGate::Rx(a) => format!("rx({})", a.radians()),
        OneQubitGate::Ry(a) => format!("ry({})", a.radians()),
        OneQubitGate::Rz(a) => format!("rz({})", a.radians()),
        OneQubitGate::U { theta, phi, lambda } => format!(
            "u({},{},{})",
            theta.radians(),
            phi.radians(),
            lambda.radians()
        ),
        other => other.name().to_string(),
    }
}

/// Serialises a circuit to OpenQASM 2.0 text.
///
/// Explicit [`Operation::Measure`] and [`Operation::Reset`] operations are
/// written in place (`measure q[i] -> c[j];` / `reset q[i];`), and a `creg`
/// declaration is emitted whenever the circuit has classical bits.  A
/// circuit without measurements is written as a pure gate sequence — the
/// simulators of this workspace measure every qubit at the end implicitly,
/// so the round trip [`parse`](super::parse)∘[`to_qasm`] preserves the
/// operation list exactly.  Gate angles are emitted with shortest-round-trip
/// `f64` precision, so the round trip also preserves every angle bit
/// pattern and hence the circuit's [`Circuit::fingerprint`].
///
/// # Errors
///
/// Returns [`WriteQasmError::UnsupportedOperation`] for operations outside
/// the QASM subset: basis-state permutations, gates with three or more
/// controls, controlled gates whose base gate has no standard controlled
/// form (anything other than `X`, `Z`, phase and swap), and nested classical
/// conditions.  Conditioned gates, measurements and resets are written as
/// `if (c==k) ...;` statements.
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Qubit, qasm::to_qasm};
/// let mut c = Circuit::new(1);
/// c.h(Qubit(0));
/// assert!(to_qasm(&c)?.contains("h q[0];"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_qasm(circuit: &Circuit) -> Result<String, WriteQasmError> {
    let mut out = String::new();
    let _ = writeln!(out, "// {}", circuit.name());
    let _ = writeln!(out, "OPENQASM 2.0;");
    let _ = writeln!(out, "include \"qelib1.inc\";");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    if circuit.num_clbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.num_clbits());
    }

    for (op_index, op) in circuit.operations().iter().enumerate() {
        let _ = writeln!(out, "{}", op_statement(op, op_index)?);
    }
    Ok(out)
}

/// Renders one operation as a `;`-terminated QASM statement, recursing into
/// classically-conditioned operations (`if (c==k) gate ...;`).
fn op_statement(op: &Operation, op_index: usize) -> Result<String, WriteQasmError> {
    let unsupported = |description: &str| WriteQasmError::UnsupportedOperation {
        op_index,
        description: description.to_string(),
    };
    Ok(match op {
        Operation::Unitary {
            gate,
            target,
            controls,
        } => match controls.len() {
            0 => format!("{} {};", gate_call(gate), q(*target)),
            1 => {
                let c = controls[0];
                match gate {
                    OneQubitGate::X => format!("cx {},{};", q(c), q(*target)),
                    OneQubitGate::Z => format!("cz {},{};", q(c), q(*target)),
                    OneQubitGate::Phase(a) => {
                        format!("cp({}) {},{};", a.radians(), q(c), q(*target))
                    }
                    other => {
                        return Err(unsupported(&format!(
                            "controlled {} has no OpenQASM 2.0 form in the supported subset",
                            other.name()
                        )))
                    }
                }
            }
            2 => match gate {
                OneQubitGate::X => {
                    format!("ccx {},{},{};", q(controls[0]), q(controls[1]), q(*target))
                }
                other => {
                    return Err(unsupported(&format!(
                        "doubly-controlled {} is not in the supported subset",
                        other.name()
                    )))
                }
            },
            n => {
                return Err(unsupported(&format!(
                    "gate with {n} controls is not expressible in OpenQASM 2.0 without ancillas"
                )))
            }
        },
        Operation::Swap { a, b, controls } => match controls.len() {
            0 => format!("swap {},{};", q(*a), q(*b)),
            1 => format!("cswap {},{},{};", q(controls[0]), q(*a), q(*b)),
            n => {
                return Err(unsupported(&format!(
                    "swap with {n} controls is not expressible in the supported subset"
                )))
            }
        },
        Operation::Permute { .. } => {
            return Err(unsupported(
                "basis-state permutations have no OpenQASM representation",
            ))
        }
        Operation::Measure { qubit, cbit } => format!("measure {} -> c[{cbit}];", q(*qubit)),
        Operation::Reset { qubit } => format!("reset {};", q(*qubit)),
        Operation::Conditioned { condition, op } => {
            if op.is_conditioned() {
                return Err(unsupported(
                    "nested classical conditions have no OpenQASM 2.0 form",
                ));
            }
            format!(
                "if (c=={}) {}",
                condition.value,
                op_statement(op, op_index)?
            )
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::Angle;

    #[test]
    fn header_and_registers_are_emitted() {
        let c = Circuit::with_name(4, "header_test");
        let text = to_qasm(&c).unwrap();
        assert!(text.contains("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[4];"));
        assert!(text.contains("// header_test"));
        // No measurements and no classical bits: no creg, no measure.
        assert!(!text.contains("creg"));
        assert!(!text.contains("measure"));
    }

    #[test]
    fn measure_and_reset_are_emitted_in_place() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0))
            .measure(Qubit(0), 1)
            .reset(Qubit(0))
            .h(Qubit(0))
            .measure(Qubit(1), 0);
        let text = to_qasm(&c).unwrap();
        assert!(text.contains("creg c[2];"));
        let h = text.find("h q[0];").unwrap();
        let m = text.find("measure q[0] -> c[1];").unwrap();
        let r = text.find("reset q[0];").unwrap();
        assert!(h < m && m < r, "statements must appear in program order");
        assert!(text.contains("measure q[1] -> c[0];"));
    }

    #[test]
    fn standard_gates_are_emitted() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0))
            .cx(Qubit(0), Qubit(1))
            .cz(Qubit(1), Qubit(2))
            .cp(Angle::pi_over(2), Qubit(0), Qubit(2))
            .swap(Qubit(0), Qubit(1))
            .cswap(Qubit(2), Qubit(0), Qubit(1))
            .ccx(Qubit(0), Qubit(1), Qubit(2));
        let text = to_qasm(&c).unwrap();
        assert!(text.contains("h q[0];"));
        assert!(text.contains("cx q[0],q[1];"));
        assert!(text.contains("cz q[1],q[2];"));
        assert!(text.contains("cp(1.5707963267948966) q[0],q[2];"));
        assert!(text.contains("swap q[0],q[1];"));
        assert!(text.contains("cswap q[2],q[0],q[1];"));
        assert!(text.contains("ccx q[0],q[1],q[2];"));
    }

    #[test]
    fn conditioned_gates_are_emitted_with_an_if_prefix() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0))
            .measure(Qubit(0), 0)
            .conditioned_gate(1, OneQubitGate::X, Qubit(1))
            .conditioned(
                2,
                Operation::Unitary {
                    gate: OneQubitGate::Phase(Angle::Radians(0.25)),
                    target: Qubit(1),
                    controls: vec![Qubit(0)],
                },
            )
            .measure(Qubit(1), 1);
        let text = to_qasm(&c).unwrap();
        assert!(text.contains("if (c==1) x q[1];"));
        assert!(text.contains("if (c==2) cp(0.25) q[0],q[1];"));
    }

    #[test]
    fn conditioned_measure_and_reset_are_emitted_with_an_if_prefix() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0))
            .measure(Qubit(0), 0)
            .conditioned(1, Operation::Reset { qubit: Qubit(0) })
            .conditioned(
                0,
                Operation::Measure {
                    qubit: Qubit(0),
                    cbit: 1,
                },
            );
        let text = to_qasm(&c).unwrap();
        assert!(text.contains("if (c==1) reset q[0];"));
        assert!(text.contains("if (c==0) measure q[0] -> c[1];"));
        assert!(text.contains("creg c[2];"));
    }

    #[test]
    fn unwritable_conditioned_operations_error() {
        // Nested conditions have no QASM syntax.
        let mut c = Circuit::new(1);
        c.conditioned(
            0,
            Operation::Conditioned {
                condition: crate::Condition::equals(1),
                op: Box::new(Operation::Reset { qubit: Qubit(0) }),
            },
        );
        assert!(matches!(
            to_qasm(&c),
            Err(WriteQasmError::UnsupportedOperation { op_index: 0, .. })
        ));
        // An inner gate outside the subset surfaces the inner error.
        let mut c = Circuit::new(2);
        c.conditioned(
            0,
            Operation::Unitary {
                gate: OneQubitGate::H,
                target: Qubit(1),
                controls: vec![Qubit(0)],
            },
        );
        assert!(to_qasm(&c).is_err());
    }

    #[test]
    fn unsupported_controlled_gate_errors() {
        let mut c = Circuit::new(2);
        c.controlled_gate(OneQubitGate::H, vec![Qubit(0)], Qubit(1));
        assert!(matches!(
            to_qasm(&c),
            Err(WriteQasmError::UnsupportedOperation { op_index: 0, .. })
        ));
    }

    #[test]
    fn many_controls_error() {
        let mut c = Circuit::new(4);
        c.mcx(vec![Qubit(0), Qubit(1), Qubit(2)], Qubit(3));
        assert!(to_qasm(&c).is_err());
    }
}

//! Canonical 128-bit fingerprints of circuits and noise models.
//!
//! A fingerprint is the cache key of the artifact layer (the `weaksim`
//! crate's `ArtifactCache`): two requests may share one prepared sampler
//! exactly when their fingerprints agree, so the hash must be *canonical* —
//! derived from the validated IR itself, not from any textual rendering —
//! and *exact* — gate angles enter as `f64` bit patterns
//! ([`f64::to_bits`]), never through rounding or formatting.  Because the
//! QASM writer emits angles with shortest-round-trip precision, a
//! write→parse round trip is a fingerprint fixed point (see the
//! `qasm_fingerprint_roundtrip` integration test).
//!
//! What is hashed: register widths (qubits *and* classical bits — a creg
//! relabelling changes the sampled records), every operation in order with
//! its full field set (gate kind and parameter bits, target, control list,
//! permutation tables, measure/reset wiring, condition values), and for
//! [`NoiseModel::fingerprint`] every channel with its attachment point and
//! parameter bits.  The circuit *name* is deliberately excluded: it is
//! presentation metadata (the router derives `{name}__stitched` circuits,
//! the adjoint builder `{name}_dg`), and renaming a circuit must not evict
//! its artifact.
//!
//! The hash itself is two independent [`mathkit::hash_mix`] lanes folded
//! over the same word stream from distinct initial states — the
//! `gate_fingerprint` idiom of `dd::package` widened to 128 bits so that
//! accidental collisions are out of reach for any realistic cache
//! population.

use crate::{Circuit, NoiseModel, Operation};
use mathkit::hash_mix;

/// Two independent 64-bit fold lanes over one word stream.
///
/// Lane 1 sees every word XOR-rotated by a constant so the lanes stay
/// decorrelated even though they fold the same stream.
pub(crate) struct FingerprintLanes {
    lanes: [u64; 2],
}

impl FingerprintLanes {
    /// Starts the two lanes from distinct constants mixed with a
    /// domain-separation tag (circuits and noise models must not collide
    /// even on identical word streams).
    pub(crate) fn new(domain: u64) -> Self {
        Self {
            lanes: [
                hash_mix(0x6a09_e667_f3bc_c908, domain),
                hash_mix(0xbb67_ae85_84ca_a73b, domain),
            ],
        }
    }

    /// Folds one word into both lanes.
    pub(crate) fn mix(&mut self, word: u64) {
        self.lanes[0] = hash_mix(self.lanes[0], word);
        self.lanes[1] = hash_mix(self.lanes[1], word ^ 0x9e37_79b9_7f4a_7c15);
    }

    /// The folded 128-bit fingerprint as two words.
    pub(crate) fn finish(self) -> [u64; 2] {
        self.lanes
    }
}

/// Discriminant + parameter fingerprint of a gate: exact for the fixed
/// alphabet, bit pattern of the radian value for parametrized gates.  This
/// mirrors the `gate_fingerprint` of `dd::package` (same discriminants,
/// same `to_bits` convention) so both layers key on identical gate
/// identity: two angles are "the same gate" exactly when their `f64` bit
/// patterns agree.
fn gate_fingerprint(gate: crate::OneQubitGate) -> (u8, [u64; 3]) {
    use crate::OneQubitGate as G;
    match gate {
        G::I => (0, [0; 3]),
        G::X => (1, [0; 3]),
        G::Y => (2, [0; 3]),
        G::Z => (3, [0; 3]),
        G::H => (4, [0; 3]),
        G::S => (5, [0; 3]),
        G::Sdg => (6, [0; 3]),
        G::T => (7, [0; 3]),
        G::Tdg => (8, [0; 3]),
        G::SqrtX => (9, [0; 3]),
        G::SqrtXdg => (10, [0; 3]),
        G::SqrtY => (11, [0; 3]),
        G::SqrtYdg => (12, [0; 3]),
        G::Phase(a) => (13, [a.radians().to_bits(), 0, 0]),
        G::Rx(a) => (14, [a.radians().to_bits(), 0, 0]),
        G::Ry(a) => (15, [a.radians().to_bits(), 0, 0]),
        G::Rz(a) => (16, [a.radians().to_bits(), 0, 0]),
        G::U { theta, phi, lambda } => (
            17,
            [
                theta.radians().to_bits(),
                phi.radians().to_bits(),
                lambda.radians().to_bits(),
            ],
        ),
    }
}

/// Folds one operation (tag byte, then every field) into the lanes.
/// Variable-length fields are length-prefixed so adjacent operations cannot
/// alias across the boundary.
fn mix_operation(fp: &mut FingerprintLanes, op: &Operation) {
    match op {
        Operation::Unitary {
            gate,
            target,
            controls,
        } => {
            fp.mix(1);
            let (kind, params) = gate_fingerprint(*gate);
            fp.mix(u64::from(kind));
            for param in params {
                fp.mix(param);
            }
            fp.mix(u64::from(target.0));
            fp.mix(controls.len() as u64);
            for control in controls {
                fp.mix(u64::from(control.0));
            }
        }
        Operation::Swap { a, b, controls } => {
            fp.mix(2);
            fp.mix(u64::from(a.0));
            fp.mix(u64::from(b.0));
            fp.mix(controls.len() as u64);
            for control in controls {
                fp.mix(u64::from(control.0));
            }
        }
        Operation::Permute {
            permutation,
            controls,
        } => {
            fp.mix(3);
            fp.mix(permutation.qubits().len() as u64);
            for qubit in permutation.qubits() {
                fp.mix(u64::from(qubit.0));
            }
            for &image in permutation.mapping() {
                fp.mix(image);
            }
            fp.mix(controls.len() as u64);
            for control in controls {
                fp.mix(u64::from(control.0));
            }
        }
        Operation::Measure { qubit, cbit } => {
            fp.mix(4);
            fp.mix(u64::from(qubit.0));
            fp.mix(u64::from(*cbit));
        }
        Operation::Reset { qubit } => {
            fp.mix(5);
            fp.mix(u64::from(qubit.0));
        }
        Operation::Conditioned { condition, op } => {
            fp.mix(6);
            fp.mix(condition.value);
            mix_operation(fp, op);
        }
    }
}

impl Circuit {
    /// The canonical 128-bit fingerprint of this circuit.
    ///
    /// Covers the register widths (qubits and classical bits) and every
    /// operation in order with all of its fields; gate angles enter as
    /// `f64` *bit patterns*, so two circuits fingerprint equal exactly when
    /// they are operationally identical down to the last bit.  The circuit
    /// [`name`](Self::name) is excluded — it is presentation metadata, and
    /// derived names (`__stitched`, `_dg`) must not change cache identity.
    ///
    /// Used by the `weaksim` artifact cache as (part of) its key; see the
    /// [module docs](self) for the full contract.
    ///
    /// # Examples
    ///
    /// ```
    /// use circuit::{Circuit, Qubit};
    ///
    /// let mut a = Circuit::new(2);
    /// a.h(Qubit(0)).cx(Qubit(0), Qubit(1));
    /// let mut b = Circuit::with_name(2, "same ops, other name");
    /// b.h(Qubit(0)).cx(Qubit(0), Qubit(1));
    /// assert_eq!(a.fingerprint(), b.fingerprint());
    ///
    /// let mut c = Circuit::new(2);
    /// c.h(Qubit(0)).cx(Qubit(1), Qubit(0)); // swapped wires
    /// assert_ne!(a.fingerprint(), c.fingerprint());
    /// ```
    #[must_use]
    pub fn fingerprint(&self) -> [u64; 2] {
        let mut fp = FingerprintLanes::new(u64::from_le_bytes(*b"CIRCUIT\0"));
        fp.mix(u64::from(self.num_qubits()));
        fp.mix(u64::from(self.num_clbits()));
        fp.mix(self.operations().len() as u64);
        for op in self.operations() {
            mix_operation(&mut fp, op);
        }
        fp.finish()
    }
}

impl NoiseModel {
    /// The canonical 128-bit fingerprint of this noise model: every channel
    /// with its attachment point (gate-wide, per-qubit with the qubit
    /// index, or read-out) and its parameter as an `f64` bit pattern, in
    /// insertion order — the order is part of the model's semantics (it
    /// fixes the per-shot realization sequence), so it is part of the key.
    ///
    /// Combined with [`Circuit::fingerprint`] by the `weaksim` artifact
    /// cache so that noisy and noiseless requests for one circuit never
    /// share an artifact.
    #[must_use]
    pub fn fingerprint(&self) -> [u64; 2] {
        fn mix_channel(fp: &mut FingerprintLanes, channel: crate::NoiseChannel) {
            use crate::NoiseChannel as C;
            let discriminant: u64 = match channel {
                C::BitFlip { .. } => 0,
                C::PhaseFlip { .. } => 1,
                C::Depolarizing { .. } => 2,
                C::AmplitudeDamping { .. } => 3,
            };
            fp.mix(discriminant);
            fp.mix(channel.parameter().to_bits());
        }

        let mut fp = FingerprintLanes::new(u64::from_le_bytes(*b"NOISEMD\0"));
        let (gate, qubit, measurement) = self.sections();
        fp.mix(gate.len() as u64);
        for &channel in gate {
            mix_channel(&mut fp, channel);
        }
        fp.mix(qubit.len() as u64);
        for &(q, channel) in qubit {
            fp.mix(u64::from(q.0));
            mix_channel(&mut fp, channel);
        }
        fp.mix(measurement.len() as u64);
        for &channel in measurement {
            mix_channel(&mut fp, channel);
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Circuit, NoiseChannel, NoiseModel, OneQubitGate, Qubit};
    use mathkit::Angle;

    #[test]
    fn name_is_excluded_but_registers_and_ops_are_covered() {
        let mut a = Circuit::with_name(3, "alpha");
        a.h(Qubit(0)).cx(Qubit(0), Qubit(1));
        let mut b = Circuit::with_name(3, "beta");
        b.h(Qubit(0)).cx(Qubit(0), Qubit(1));
        assert_eq!(a.fingerprint(), b.fingerprint());

        // One more qubit, same ops: different key.
        let mut wider = Circuit::new(4);
        wider.h(Qubit(0)).cx(Qubit(0), Qubit(1));
        assert_ne!(a.fingerprint(), wider.fingerprint());

        // A wider classical register relabels the records: different key.
        let mut creg = a.clone();
        creg.set_num_clbits(5);
        assert_ne!(a.fingerprint(), creg.fingerprint());
    }

    #[test]
    fn operation_order_and_roles_matter() {
        let mut hx = Circuit::new(2);
        hx.h(Qubit(0)).x(Qubit(1));
        let mut xh = Circuit::new(2);
        xh.x(Qubit(1)).h(Qubit(0));
        assert_ne!(hx.fingerprint(), xh.fingerprint());

        // Control and target are not interchangeable.
        let mut cx = Circuit::new(2);
        cx.cx(Qubit(0), Qubit(1));
        let mut xc = Circuit::new(2);
        xc.cx(Qubit(1), Qubit(0));
        assert_ne!(cx.fingerprint(), xc.fingerprint());
    }

    #[test]
    fn a_single_angle_bit_flip_changes_the_fingerprint() {
        let theta = 0.731_f64;
        let flipped = f64::from_bits(theta.to_bits() ^ 1);
        let mut a = Circuit::new(1);
        a.gate(OneQubitGate::Rz(Angle::Radians(theta)), Qubit(0));
        let mut b = Circuit::new(1);
        b.gate(OneQubitGate::Rz(Angle::Radians(flipped)), Qubit(0));
        assert_ne!(a.fingerprint(), b.fingerprint());

        // Symbolic and radian forms of the *same* value agree: the key is
        // the bit pattern of the angle, not the Angle representation.
        let mut sym = Circuit::new(1);
        sym.gate(OneQubitGate::Rz(Angle::pi_over(2)), Qubit(0));
        let mut num = Circuit::new(1);
        num.gate(
            OneQubitGate::Rz(Angle::Radians(std::f64::consts::FRAC_PI_2)),
            Qubit(0),
        );
        assert_eq!(sym.fingerprint(), num.fingerprint());
    }

    #[test]
    fn dynamic_operations_are_covered() {
        let mut base = Circuit::new(2);
        base.h(Qubit(0)).measure(Qubit(0), 0);
        let mut other_cbit = Circuit::new(2);
        other_cbit.h(Qubit(0)).measure(Qubit(0), 1);
        assert_ne!(base.fingerprint(), other_cbit.fingerprint());

        let mut cond_a = Circuit::new(2);
        cond_a
            .h(Qubit(0))
            .measure(Qubit(0), 0)
            .conditioned_gate(1, OneQubitGate::X, Qubit(1));
        let mut cond_b = Circuit::new(2);
        cond_b
            .h(Qubit(0))
            .measure(Qubit(0), 0)
            .conditioned_gate(0, OneQubitGate::X, Qubit(1));
        assert_ne!(cond_a.fingerprint(), cond_b.fingerprint());

        let mut reset = Circuit::new(2);
        reset.h(Qubit(0)).reset(Qubit(0));
        let mut reset_other = Circuit::new(2);
        reset_other.h(Qubit(0)).reset(Qubit(1));
        assert_ne!(reset.fingerprint(), reset_other.fingerprint());
    }

    #[test]
    fn noise_model_fingerprints_cover_sections_and_parameters() {
        let empty = NoiseModel::new();
        let gate = NoiseModel::new().with_gate_noise(NoiseChannel::depolarizing(0.01));
        assert_ne!(empty.fingerprint(), gate.fingerprint());

        // Same parameter, different channel family.
        let flip = NoiseModel::new().with_gate_noise(NoiseChannel::bit_flip(0.01));
        assert_ne!(gate.fingerprint(), flip.fingerprint());

        // Same channel, different attachment point.
        let readout = NoiseModel::new().with_measurement_noise(NoiseChannel::depolarizing(0.01));
        assert_ne!(gate.fingerprint(), readout.fingerprint());

        // Same channel, different qubit.
        let q0 = NoiseModel::new().with_qubit_noise(Qubit(0), NoiseChannel::bit_flip(0.1));
        let q1 = NoiseModel::new().with_qubit_noise(Qubit(1), NoiseChannel::bit_flip(0.1));
        assert_ne!(q0.fingerprint(), q1.fingerprint());

        // Parameter bit patterns are exact.
        let a = NoiseModel::new().with_gate_noise(NoiseChannel::bit_flip(0.1));
        let b = NoiseModel::new()
            .with_gate_noise(NoiseChannel::bit_flip(f64::from_bits(0.1f64.to_bits() ^ 1)));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn lanes_are_decorrelated() {
        // A fingerprint whose two lanes always agreed would be a 64-bit
        // hash in disguise; check a simple circuit produces distinct lanes.
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).cx(Qubit(0), Qubit(1));
        let [lo, hi] = c.fingerprint();
        assert_ne!(lo, hi);
    }
}

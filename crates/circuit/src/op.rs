//! The lowered operation set.

use crate::{OneQubitGate, Qubit};
use std::fmt;

/// A basis-state permutation acting on an ordered register of qubits.
///
/// The permutation maps the register value `v` (with `qubits[0]` as the least
/// significant bit) to `mapping[v]`.  Permutations are unitary, so they are a
/// legitimate circuit operation; they are used by the Shor benchmark
/// generator to express controlled modular multiplication without expanding
/// it into an adder network (see `DESIGN.md`, substitutions).
///
/// # Examples
///
/// ```
/// use circuit::{Permutation, Qubit};
///
/// // A 2-qubit cyclic increment: |v> -> |v+1 mod 4>.
/// let perm = Permutation::new(vec![Qubit(0), Qubit(1)], vec![1, 2, 3, 0]).unwrap();
/// assert_eq!(perm.apply(3), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    qubits: Vec<Qubit>,
    mapping: Vec<u64>,
}

/// Error returned when a [`Permutation`] description is not a bijection of
/// the right size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildPermutationError {
    /// The mapping length is not `2^k` for `k` register qubits.
    WrongLength {
        /// Number of qubits in the register.
        qubits: usize,
        /// Length of the provided mapping.
        len: usize,
    },
    /// The mapping is not a bijection on `0..2^k`.
    NotBijective,
    /// The register mentions the same qubit twice.
    DuplicateQubit(Qubit),
}

impl fmt::Display for BuildPermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildPermutationError::WrongLength { qubits, len } => write!(
                f,
                "permutation over {qubits} qubits must have 2^{qubits} entries, got {len}"
            ),
            BuildPermutationError::NotBijective => {
                write!(f, "permutation mapping is not a bijection")
            }
            BuildPermutationError::DuplicateQubit(q) => {
                write!(f, "duplicate qubit {q} in permutation register")
            }
        }
    }
}

impl std::error::Error for BuildPermutationError {}

impl Permutation {
    /// Creates a permutation over the given register.
    ///
    /// # Errors
    ///
    /// Returns an error if the mapping length is not `2^qubits.len()`, the
    /// mapping is not a bijection, or the register repeats a qubit.
    pub fn new(qubits: Vec<Qubit>, mapping: Vec<u64>) -> Result<Self, BuildPermutationError> {
        let expected = 1usize
            .checked_shl(u32::try_from(qubits.len()).unwrap_or(u32::MAX))
            .unwrap_or(0);
        if expected == 0 || mapping.len() != expected {
            return Err(BuildPermutationError::WrongLength {
                qubits: qubits.len(),
                len: mapping.len(),
            });
        }
        let mut seen_qubits = std::collections::HashSet::new();
        for &q in &qubits {
            if !seen_qubits.insert(q) {
                return Err(BuildPermutationError::DuplicateQubit(q));
            }
        }
        let mut seen = vec![false; mapping.len()];
        for &m in &mapping {
            let idx = usize::try_from(m).ok().filter(|&i| i < mapping.len());
            match idx {
                Some(i) if !seen[i] => seen[i] = true,
                _ => return Err(BuildPermutationError::NotBijective),
            }
        }
        Ok(Self { qubits, mapping })
    }

    /// The register the permutation acts on (least-significant qubit first).
    #[must_use]
    pub fn qubits(&self) -> &[Qubit] {
        &self.qubits
    }

    /// The full mapping table.
    #[must_use]
    pub fn mapping(&self) -> &[u64] {
        &self.mapping
    }

    /// Applies the permutation to a register value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `0..2^k`.
    #[must_use]
    pub fn apply(&self, value: u64) -> u64 {
        self.mapping[usize::try_from(value).expect("register value out of range")]
    }

    /// The inverse permutation.
    #[must_use]
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u64; self.mapping.len()];
        for (src, &dst) in self.mapping.iter().enumerate() {
            inv[usize::try_from(dst).expect("bijection checked at construction")] = src as u64;
        }
        Permutation {
            qubits: self.qubits.clone(),
            mapping: inv,
        }
    }
}

/// A classical equality condition guarding an operation: the full classical
/// register compared against a constant, the semantics of OpenQASM 2.0
/// `if (c==k) ...` statements.
///
/// # Examples
///
/// ```
/// use circuit::Condition;
///
/// let cond = Condition::equals(0b101);
/// assert!(cond.is_satisfied_by(0b101));
/// assert!(!cond.is_satisfied_by(0b001));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Condition {
    /// The value the classical register must equal for the guarded operation
    /// to fire.
    pub value: u64,
}

impl Condition {
    /// Creates the condition `creg == value`.
    #[must_use]
    pub fn equals(value: u64) -> Self {
        Self { value }
    }

    /// Evaluates the condition against a classical-register record.
    #[must_use]
    pub fn is_satisfied_by(self, record: u64) -> bool {
        record == self.value
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c=={}", self.value)
    }
}

/// A lowered circuit operation.
///
/// Every unitary operation optionally carries *positive controls*: the
/// operation is applied to the targets only on the subspace where all
/// control qubits are in state `|1>`.
///
/// [`Measure`](Operation::Measure) and [`Reset`](Operation::Reset) are the
/// two *non-unitary* members of the alphabet.  They make circuits *dynamic*:
/// the state evolution after one of them depends on a sampled outcome, so
/// such circuits are simulated trajectory-by-trajectory (see the `weaksim`
/// crate) instead of by a single strong-simulation pass.
///
/// [`Conditioned`](Operation::Conditioned) wraps an operation in a classical
/// [`Condition`]: the inner operation is applied only when the classical
/// register currently equals the compared value.  The inner operation may be
/// a unitary gate or one of the non-unitary operations (`if (c==k) measure`
/// and `if (c==k) reset` are legal OpenQASM 2.0), but never another
/// condition.  Conditioned operations also make a circuit dynamic — which
/// operations fire depends on earlier measurement outcomes.
#[derive(Debug, Clone, PartialEq)]
pub enum Operation {
    /// A (multi-)controlled single-qubit unitary.
    Unitary {
        /// The single-qubit gate to apply.
        gate: OneQubitGate,
        /// The target qubit.
        target: Qubit,
        /// Positive control qubits (may be empty).
        controls: Vec<Qubit>,
    },
    /// A (multi-)controlled swap of two qubits.
    Swap {
        /// First swapped qubit.
        a: Qubit,
        /// Second swapped qubit.
        b: Qubit,
        /// Positive control qubits (may be empty).
        controls: Vec<Qubit>,
    },
    /// A (multi-)controlled basis-state permutation of a register.
    Permute {
        /// The permutation to apply.
        permutation: Permutation,
        /// Positive control qubits (may be empty).
        controls: Vec<Qubit>,
    },
    /// A computational-basis measurement of one qubit, recording the outcome
    /// into a classical bit and collapsing the state.
    Measure {
        /// The measured qubit.
        qubit: Qubit,
        /// Index of the classical bit receiving the outcome.
        cbit: u16,
    },
    /// A reset of one qubit to `|0>` (measure, then flip on outcome `1`).
    Reset {
        /// The qubit forced back to `|0>`.
        qubit: Qubit,
    },
    /// A classically-conditioned operation (QASM `if (c==k) gate;`, `if
    /// (c==k) measure ...;` or `if (c==k) reset ...;`): `op` is applied only
    /// when the classical register equals `condition.value`.  The inner
    /// operation may be any non-conditioned operation; [`Circuit::validate`]
    /// (crate::Circuit::validate) rejects nested conditions.
    Conditioned {
        /// The classical guard.
        condition: Condition,
        /// The guarded operation (never itself conditioned).
        op: Box<Operation>,
    },
}

impl Operation {
    /// The qubits written by this operation (targets, not controls).
    #[must_use]
    pub fn targets(&self) -> Vec<Qubit> {
        match self {
            Operation::Unitary { target, .. } => vec![*target],
            Operation::Swap { a, b, .. } => vec![*a, *b],
            Operation::Permute { permutation, .. } => permutation.qubits().to_vec(),
            Operation::Measure { qubit, .. } | Operation::Reset { qubit } => vec![*qubit],
            Operation::Conditioned { op, .. } => op.targets(),
        }
    }

    /// The control qubits of this operation.
    #[must_use]
    pub fn controls(&self) -> &[Qubit] {
        match self {
            Operation::Unitary { controls, .. }
            | Operation::Swap { controls, .. }
            | Operation::Permute { controls, .. } => controls,
            Operation::Measure { .. } | Operation::Reset { .. } => &[],
            Operation::Conditioned { op, .. } => op.controls(),
        }
    }

    /// Returns `true` for the non-unitary operations ([`Measure`] and
    /// [`Reset`]) that require trajectory-style simulation.
    ///
    /// [`Measure`]: Operation::Measure
    /// [`Reset`]: Operation::Reset
    #[must_use]
    pub fn is_non_unitary(&self) -> bool {
        matches!(self, Operation::Measure { .. } | Operation::Reset { .. })
    }

    /// Returns `true` for [`Conditioned`](Operation::Conditioned) operations,
    /// whose effect depends on the classical register and which therefore
    /// require trajectory-style simulation (like the non-unitary operations,
    /// they have no meaning in a single strong-simulation pass).
    #[must_use]
    pub fn is_conditioned(&self) -> bool {
        matches!(self, Operation::Conditioned { .. })
    }

    /// The classical guard of a [`Conditioned`](Operation::Conditioned)
    /// operation, or `None` for unconditioned operations.
    #[must_use]
    pub fn condition(&self) -> Option<Condition> {
        match self {
            Operation::Conditioned { condition, .. } => Some(*condition),
            _ => None,
        }
    }

    /// All qubits touched by this operation (controls and targets).
    #[must_use]
    pub fn support(&self) -> Vec<Qubit> {
        let mut qs = self.targets();
        qs.extend_from_slice(self.controls());
        qs
    }

    /// The highest qubit index touched, or `None` for an operation on an
    /// empty register.
    #[must_use]
    pub fn max_qubit(&self) -> Option<Qubit> {
        self.support().into_iter().max()
    }

    /// Returns `true` if the operation has at least one control.
    #[must_use]
    pub fn is_controlled(&self) -> bool {
        !self.controls().is_empty()
    }

    /// Returns `true` if the operation can be executed within the stabilizer
    /// formalism, i.e. by a Gottesman–Knill tableau simulator:
    ///
    /// * uncontrolled unitaries that are single-qubit Clifford gates
    ///   ([`OneQubitGate::is_clifford`]);
    /// * singly-controlled unitaries whose base gate is a Pauli up to a
    ///   power-of-`i` phase ([`OneQubitGate::is_pauli_up_to_phase`]) — this
    ///   covers `CX`, `CY`, `CZ` and phase-equivalent rotations like
    ///   controlled-`Rz(pi)`, while correctly rejecting `CS`, `CH` and
    ///   `CCX`;
    /// * uncontrolled [`Swap`](Operation::Swap)s;
    /// * computational-basis [`Measure`](Operation::Measure)s and
    ///   [`Reset`](Operation::Reset)s (non-unitary, but exactly the
    ///   operations the stabilizer measurement rules implement);
    /// * [`Conditioned`](Operation::Conditioned) operations whose inner
    ///   operation qualifies — the guard reads only the classical record.
    ///
    /// Multi-controlled gates, controlled swaps and basis permutations are
    /// reported as non-Clifford.  The check is conservative: `false` only
    /// routes the operation to a dense backend, while `true` is a guarantee
    /// the tableau engine honours.
    #[must_use]
    pub fn is_clifford(&self) -> bool {
        match self {
            Operation::Unitary { gate, controls, .. } => match controls.len() {
                0 => gate.is_clifford(),
                1 => gate.is_pauli_up_to_phase(),
                _ => false,
            },
            Operation::Swap { controls, .. } => controls.is_empty(),
            Operation::Permute { .. } => false,
            Operation::Measure { .. } | Operation::Reset { .. } => true,
            Operation::Conditioned { op, .. } => op.is_clifford(),
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let controls = |cs: &[Qubit]| -> String {
            if cs.is_empty() {
                String::new()
            } else {
                let list: Vec<String> = cs.iter().map(|q| q.to_string()).collect();
                format!(" ctrl[{}]", list.join(","))
            }
        };
        match self {
            Operation::Unitary {
                gate,
                target,
                controls: cs,
            } => write!(f, "{gate} {target}{}", controls(cs)),
            Operation::Swap { a, b, controls: cs } => {
                write!(f, "swap {a},{b}{}", controls(cs))
            }
            Operation::Permute {
                permutation,
                controls: cs,
            } => write!(
                f,
                "permute[{} qubits]{}",
                permutation.qubits().len(),
                controls(cs)
            ),
            Operation::Measure { qubit, cbit } => write!(f, "measure {qubit} -> c[{cbit}]"),
            Operation::Reset { qubit } => write!(f, "reset {qubit}"),
            Operation::Conditioned { condition, op } => write!(f, "if ({condition}) {op}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_validation() {
        assert!(Permutation::new(vec![Qubit(0)], vec![1, 0]).is_ok());
        assert!(matches!(
            Permutation::new(vec![Qubit(0)], vec![0, 1, 2]),
            Err(BuildPermutationError::WrongLength { .. })
        ));
        assert!(matches!(
            Permutation::new(vec![Qubit(0)], vec![0, 0]),
            Err(BuildPermutationError::NotBijective)
        ));
        assert!(matches!(
            Permutation::new(vec![Qubit(0), Qubit(0)], vec![0, 1, 2, 3]),
            Err(BuildPermutationError::DuplicateQubit(_))
        ));
        assert!(matches!(
            Permutation::new(vec![Qubit(0)], vec![0, 5]),
            Err(BuildPermutationError::NotBijective)
        ));
    }

    #[test]
    fn permutation_apply_and_inverse() {
        let p = Permutation::new(vec![Qubit(0), Qubit(1)], vec![2, 3, 0, 1]).unwrap();
        assert_eq!(p.apply(0), 2);
        assert_eq!(p.apply(2), 0);
        let inv = p.inverse();
        for v in 0..4 {
            assert_eq!(inv.apply(p.apply(v)), v);
        }
    }

    #[test]
    fn operation_accessors() {
        let op = Operation::Unitary {
            gate: OneQubitGate::X,
            target: Qubit(2),
            controls: vec![Qubit(0), Qubit(1)],
        };
        assert_eq!(op.targets(), vec![Qubit(2)]);
        assert_eq!(op.controls(), &[Qubit(0), Qubit(1)]);
        assert_eq!(op.max_qubit(), Some(Qubit(2)));
        assert!(op.is_controlled());

        let swap = Operation::Swap {
            a: Qubit(4),
            b: Qubit(1),
            controls: vec![],
        };
        assert_eq!(swap.targets(), vec![Qubit(4), Qubit(1)]);
        assert_eq!(swap.max_qubit(), Some(Qubit(4)));
        assert!(!swap.is_controlled());
    }

    #[test]
    fn measure_and_reset_accessors() {
        let m = Operation::Measure {
            qubit: Qubit(3),
            cbit: 1,
        };
        assert_eq!(m.targets(), vec![Qubit(3)]);
        assert!(m.controls().is_empty());
        assert!(m.is_non_unitary());
        assert!(!m.is_controlled());
        assert_eq!(m.max_qubit(), Some(Qubit(3)));
        assert_eq!(m.to_string(), "measure q[3] -> c[1]");

        let r = Operation::Reset { qubit: Qubit(0) };
        assert_eq!(r.targets(), vec![Qubit(0)]);
        assert!(r.is_non_unitary());
        assert_eq!(r.to_string(), "reset q[0]");

        let u = Operation::Unitary {
            gate: OneQubitGate::H,
            target: Qubit(0),
            controls: vec![],
        };
        assert!(!u.is_non_unitary());
    }

    #[test]
    fn conditioned_accessors_delegate_to_the_inner_operation() {
        let op = Operation::Conditioned {
            condition: Condition::equals(3),
            op: Box::new(Operation::Unitary {
                gate: OneQubitGate::X,
                target: Qubit(2),
                controls: vec![Qubit(0)],
            }),
        };
        assert_eq!(op.targets(), vec![Qubit(2)]);
        assert_eq!(op.controls(), &[Qubit(0)]);
        assert_eq!(op.max_qubit(), Some(Qubit(2)));
        assert!(op.is_conditioned());
        assert!(!op.is_non_unitary());
        assert_eq!(op.condition(), Some(Condition::equals(3)));
        assert_eq!(op.to_string(), "if (c==3) x q[2] ctrl[q[0]]");

        let plain = Operation::Reset { qubit: Qubit(0) };
        assert!(!plain.is_conditioned());
        assert_eq!(plain.condition(), None);
    }

    #[test]
    fn condition_evaluates_whole_register_equality() {
        let cond = Condition::equals(0b10);
        assert!(cond.is_satisfied_by(0b10));
        assert!(!cond.is_satisfied_by(0b11));
        assert!(!cond.is_satisfied_by(0));
        assert_eq!(cond.to_string(), "c==2");
    }

    #[test]
    fn operation_clifford_classification() {
        use mathkit::Angle;
        let unitary = |gate, controls: Vec<Qubit>| Operation::Unitary {
            gate,
            target: Qubit(0),
            controls,
        };
        // Uncontrolled single-qubit Cliffords qualify, T does not.
        assert!(unitary(OneQubitGate::H, vec![]).is_clifford());
        assert!(unitary(OneQubitGate::S, vec![]).is_clifford());
        assert!(unitary(OneQubitGate::Rz(Angle::pi_over(2)), vec![]).is_clifford());
        assert!(!unitary(OneQubitGate::T, vec![]).is_clifford());
        assert!(!unitary(OneQubitGate::Rz(Angle::pi_over(4)), vec![]).is_clifford());

        // Singly-controlled Paulis are Clifford: CX, CY, CZ, and the
        // phase-equivalent controlled-Rz(pi); CS, CH and CCX are not.
        assert!(unitary(OneQubitGate::X, vec![Qubit(1)]).is_clifford());
        assert!(unitary(OneQubitGate::Y, vec![Qubit(1)]).is_clifford());
        assert!(unitary(OneQubitGate::Z, vec![Qubit(1)]).is_clifford());
        assert!(unitary(OneQubitGate::Rz(Angle::qft_rotation(1)), vec![Qubit(1)]).is_clifford());
        assert!(unitary(OneQubitGate::Phase(Angle::qft_rotation(1)), vec![Qubit(1)]).is_clifford());
        assert!(!unitary(OneQubitGate::S, vec![Qubit(1)]).is_clifford());
        assert!(!unitary(OneQubitGate::H, vec![Qubit(1)]).is_clifford());
        assert!(!unitary(OneQubitGate::Phase(Angle::pi_over(2)), vec![Qubit(1)]).is_clifford());
        assert!(!unitary(OneQubitGate::X, vec![Qubit(1), Qubit(2)]).is_clifford());

        // Swap yes, Fredkin no, permutations no.
        assert!(Operation::Swap {
            a: Qubit(0),
            b: Qubit(1),
            controls: vec![]
        }
        .is_clifford());
        assert!(!Operation::Swap {
            a: Qubit(0),
            b: Qubit(1),
            controls: vec![Qubit(2)]
        }
        .is_clifford());
        let p = Permutation::new(vec![Qubit(0)], vec![1, 0]).unwrap();
        assert!(!Operation::Permute {
            permutation: p,
            controls: vec![]
        }
        .is_clifford());

        // Measure and reset are stabilizer operations.
        assert!(Operation::Measure {
            qubit: Qubit(0),
            cbit: 0
        }
        .is_clifford());
        assert!(Operation::Reset { qubit: Qubit(0) }.is_clifford());

        // Conditioned operations delegate to the inner operation.
        let guarded = |op: Operation| Operation::Conditioned {
            condition: Condition::equals(1),
            op: Box::new(op),
        };
        assert!(guarded(unitary(OneQubitGate::X, vec![])).is_clifford());
        assert!(!guarded(unitary(OneQubitGate::T, vec![])).is_clifford());
    }

    #[test]
    fn display_of_operations() {
        let op = Operation::Unitary {
            gate: OneQubitGate::H,
            target: Qubit(0),
            controls: vec![Qubit(3)],
        };
        assert_eq!(op.to_string(), "h q[0] ctrl[q[3]]");
        let p = Permutation::new(vec![Qubit(0)], vec![1, 0]).unwrap();
        let op = Operation::Permute {
            permutation: p,
            controls: vec![],
        };
        assert_eq!(op.to_string(), "permute[1 qubits]");
    }
}

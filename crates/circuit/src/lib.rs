//! Quantum circuit intermediate representation.
//!
//! This crate defines the circuit format consumed by both simulation engines
//! of the workspace (the decision-diagram engine in `dd` and the dense
//! statevector engine in `statevector`):
//!
//! * [`Qubit`] — a typed index of a wire in a circuit.
//! * [`OneQubitGate`] — the single-qubit gate alphabet with exact 2×2
//!   matrices.
//! * [`Operation`] — the lowered operation set every engine must support:
//!   (multi-)controlled single-qubit unitaries, (controlled) swaps and
//!   (controlled) basis-state permutations on a register, plus the dynamic
//!   operations: measurements, resets and classically-conditioned gates
//!   (a [`Condition`]-guarded unitary, QASM `if (c==k)`).  Permutations are
//!   what keeps Shor's modular-exponentiation circuits self-contained (see
//!   `DESIGN.md`).
//! * [`Circuit`] — an ordered list of operations with convenience builder
//!   methods (`h`, `cx`, `mcx`, `cp`, …) and validation.
//! * [`Circuit::fingerprint`] / [`NoiseModel::fingerprint`] — canonical
//!   128-bit hashes of the IR (gate angles as exact `f64` bit patterns,
//!   names excluded), used as artifact-cache keys by the `weaksim` crate.
//! * [`qasm`] — an OpenQASM 2.0 subset writer and parser so circuits can be
//!   exchanged with other toolchains.
//! * [`NoiseModel`] / [`NoiseChannel`] — descriptions of stochastic noise
//!   (depolarizing, bit/phase flip, amplitude damping) attached to gate
//!   sites, qubits and read-outs, realized per shot by the trajectory
//!   engine for noisy-hardware emulation.
//! * [`CircuitStats`] — gate counts and depth, used by reports.
//!
//! # Examples
//!
//! Building the Bell-state preparation circuit:
//!
//! ```
//! use circuit::{Circuit, Qubit};
//!
//! let mut bell = Circuit::new(2);
//! bell.h(Qubit(0));
//! bell.cx(Qubit(0), Qubit(1));
//! assert_eq!(bell.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod fingerprint;
mod gate;
mod noise;
mod op;
pub mod qasm;
mod stats;

pub use crate::circuit::{Circuit, CliffordSegments, ValidateCircuitError};
pub use gate::OneQubitGate;
pub use noise::{NoiseChannel, NoiseModel, NoiseModelError};
pub use op::{Condition, Operation, Permutation};
pub use stats::CircuitStats;

/// A qubit index within a circuit.
///
/// Qubit 0 is, by the convention of the reproduced paper, the **least
/// significant** bit of a measured bitstring: basis state index
/// `i = sum_k b_k 2^k` where `b_k` is the measurement outcome of `Qubit(k)`.
///
/// # Examples
///
/// ```
/// use circuit::Qubit;
/// let q = Qubit(3);
/// assert_eq!(q.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Qubit(pub u16);

impl Qubit {
    /// The raw index of the qubit.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl From<u16> for Qubit {
    fn from(i: u16) -> Self {
        Qubit(i)
    }
}

impl From<Qubit> for usize {
    fn from(q: Qubit) -> Self {
        q.index()
    }
}

impl std::fmt::Display for Qubit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q[{}]", self.0)
    }
}

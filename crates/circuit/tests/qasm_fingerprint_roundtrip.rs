//! Property test: write→parse→`fingerprint()` is a fixed point.
//!
//! The artifact cache keys on [`Circuit::fingerprint`], so a circuit that
//! travels through its QASM rendering must come back with the identical
//! key — otherwise a service that receives QASM misses the cache for
//! circuits it has already prepared.  The writer emits angles with
//! shortest-round-trip `f64` precision and the parser evaluates them with
//! exact negation, so the fingerprint (which hashes angle *bit patterns*)
//! must survive the trip bit-for-bit.
//!
//! The generator is a seeded SplitMix64 stream (no external property-test
//! crate), drawing random circuits over the full writer-supported surface:
//! all eighteen one-qubit gates with random finite angles, the controlled
//! forms with a QASM rendering (`cx`, `cz`, `cp`, `ccx`, `swap`, `cswap`),
//! measurements, resets and un-nested classical conditions.

use circuit::qasm::{parse, to_qasm};
use circuit::{Circuit, OneQubitGate, Operation, Qubit};
use mathkit::Angle;

/// SplitMix64: the workspace's stock generator for seeded test streams.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..bound`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A finite angle in `(-pi, pi)`, uniform over the representable grid.
    fn angle(&mut self) -> Angle {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        Angle::Radians((2.0 * unit - 1.0) * std::f64::consts::PI)
    }
}

fn random_gate(rng: &mut SplitMix64) -> OneQubitGate {
    match rng.below(18) {
        0 => OneQubitGate::I,
        1 => OneQubitGate::X,
        2 => OneQubitGate::Y,
        3 => OneQubitGate::Z,
        4 => OneQubitGate::H,
        5 => OneQubitGate::S,
        6 => OneQubitGate::Sdg,
        7 => OneQubitGate::T,
        8 => OneQubitGate::Tdg,
        9 => OneQubitGate::SqrtX,
        10 => OneQubitGate::SqrtXdg,
        11 => OneQubitGate::SqrtY,
        12 => OneQubitGate::SqrtYdg,
        13 => OneQubitGate::Phase(rng.angle()),
        14 => OneQubitGate::Rx(rng.angle()),
        15 => OneQubitGate::Ry(rng.angle()),
        16 => OneQubitGate::Rz(rng.angle()),
        _ => OneQubitGate::U {
            theta: rng.angle(),
            phi: rng.angle(),
            lambda: rng.angle(),
        },
    }
}

/// Three distinct qubit indices below `n` (requires `n >= 3`).
fn distinct3(rng: &mut SplitMix64, n: u16) -> (Qubit, Qubit, Qubit) {
    let a = rng.below(u64::from(n)) as u16;
    let b = (a + 1 + rng.below(u64::from(n) - 1) as u16) % n;
    let mut c = (a + 1 + rng.below(u64::from(n) - 1) as u16) % n;
    if c == b {
        c = (c + 1) % n;
        if c == a {
            c = (c + 1) % n;
        }
    }
    (Qubit(a), Qubit(b), Qubit(c))
}

fn random_circuit(rng: &mut SplitMix64, index: u64) -> Circuit {
    let n = 3 + rng.below(4) as u16; // 3..=6 qubits
    let mut circuit = Circuit::with_name(n, format!("property_{index}"));
    circuit.set_num_clbits(n);
    let ops = 5 + rng.below(20);
    for _ in 0..ops {
        let (a, b, c) = distinct3(rng, n);
        match rng.below(12) {
            0..=4 => {
                circuit.gate(random_gate(rng), a);
            }
            5 => {
                circuit.cx(a, b);
            }
            6 => {
                circuit.cz(a, b);
            }
            7 => {
                circuit.cp(rng.angle(), a, b);
            }
            8 => {
                circuit.ccx(a, b, c);
            }
            9 => {
                circuit.swap(a, b);
            }
            10 => {
                circuit.measure(a, rng.below(u64::from(n)) as u16);
            }
            _ => {
                // Un-nested condition on a writable base gate; the compared
                // value must fit the n-bit classical register.
                let value = rng.below(1 << n.min(8));
                circuit.conditioned_gate(value, random_gate(rng), a);
            }
        }
    }
    circuit
}

#[test]
fn write_parse_fingerprint_is_a_fixed_point() {
    let mut rng = SplitMix64(0x5eed_cafe_f00d_0001);
    for index in 0..200 {
        let original = random_circuit(&mut rng, index);
        original.validate().expect("generated circuit is valid");
        let text = to_qasm(&original).expect("generated circuit is writable");
        let reparsed = parse(&text).expect("written QASM parses back");
        assert_eq!(
            original.fingerprint(),
            reparsed.fingerprint(),
            "fingerprint drifted across a QASM round trip (circuit {index}):\n{text}"
        );
    }
}

#[test]
fn reset_and_cswap_survive_the_round_trip() {
    // Deterministic coverage for the writable operations the random menu
    // leaves out or reaches rarely.
    let mut circuit = Circuit::new(3);
    circuit.set_num_clbits(3);
    circuit.h(Qubit(0)).reset(Qubit(1));
    circuit.push(Operation::Swap {
        a: Qubit(0),
        b: Qubit(2),
        controls: vec![Qubit(1)],
    });
    circuit.measure(Qubit(0), 2);
    let text = to_qasm(&circuit).expect("writable");
    let reparsed = parse(&text).expect("parses");
    assert_eq!(circuit.fingerprint(), reparsed.fingerprint());
}

#[test]
fn sqrt_y_gates_parse_back() {
    // `sy`/`sydg` are workspace extensions of the QASM gate alphabet; the
    // writer emits them, so the parser must accept them or round trips of
    // supremacy-style circuits fail.
    let mut circuit = Circuit::new(1);
    circuit
        .gate(OneQubitGate::SqrtY, Qubit(0))
        .gate(OneQubitGate::SqrtYdg, Qubit(0));
    let text = to_qasm(&circuit).expect("writable");
    assert!(text.contains("sy q[0];"));
    assert!(text.contains("sydg q[0];"));
    let reparsed = parse(&text).expect("parses");
    assert_eq!(circuit.fingerprint(), reparsed.fingerprint());
}

//! Node identifiers, interned edge weights and edges.

use mathkit::ValueId;

/// Identifier of a vector (state) decision-diagram node inside a
/// [`DdPackage`](crate::DdPackage).
///
/// The special value [`VectorNodeId::TERMINAL`] denotes the shared terminal
/// node that ends every root-to-terminal path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VectorNodeId(pub(crate) u32);

impl VectorNodeId {
    /// The terminal node.
    pub const TERMINAL: VectorNodeId = VectorNodeId(u32::MAX);

    /// Returns `true` if this is the terminal node.
    #[inline]
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self == Self::TERMINAL
    }

    /// The raw arena index.
    ///
    /// # Panics
    ///
    /// Panics if called on the terminal node, which has no arena slot.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        assert!(!self.is_terminal(), "terminal node has no arena index");
        self.0 as usize
    }
}

/// Identifier of a matrix (operator) decision-diagram node inside a
/// [`DdPackage`](crate::DdPackage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatrixNodeId(pub(crate) u32);

impl MatrixNodeId {
    /// The terminal node.
    pub const TERMINAL: MatrixNodeId = MatrixNodeId(u32::MAX);

    /// Returns `true` if this is the terminal node.
    #[inline]
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self == Self::TERMINAL
    }

    /// The raw arena index.
    ///
    /// # Panics
    ///
    /// Panics if called on the terminal node, which has no arena slot.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        assert!(!self.is_terminal(), "terminal node has no arena index");
        self.0 as usize
    }
}

/// An interned complex edge weight: a pair of canonical real-value ids from
/// the package's complex table.
///
/// Two weights are numerically equal (within the table tolerance) if and only
/// if their `WeightId`s are equal, which is what makes hashing-based node
/// sharing work in the presence of floating-point round-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WeightId {
    /// Canonical id of the real part.
    pub re: ValueId,
    /// Canonical id of the imaginary part.
    pub im: ValueId,
}

impl WeightId {
    /// The interned weight `0`.
    pub const ZERO: WeightId = WeightId {
        re: ValueId::ZERO,
        im: ValueId::ZERO,
    };
    /// The interned weight `1`.
    pub const ONE: WeightId = WeightId {
        re: ValueId::ONE,
        im: ValueId::ZERO,
    };

    /// Returns `true` if the weight is the canonical zero.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Returns `true` if the weight is the canonical one.
    #[inline]
    #[must_use]
    pub fn is_one(self) -> bool {
        self == Self::ONE
    }
}

/// A weighted edge to a vector node.
///
/// The edge weight multiplies every amplitude represented by the sub-diagram
/// it points to.  An edge with weight zero always points to the terminal
/// node (the canonical representation of the zero vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorEdge {
    /// The node the edge points to.
    pub target: VectorNodeId,
    /// The interned complex weight.
    pub weight: WeightId,
}

impl VectorEdge {
    /// The canonical zero edge (weight 0 to the terminal node).
    pub const ZERO: VectorEdge = VectorEdge {
        target: VectorNodeId::TERMINAL,
        weight: WeightId::ZERO,
    };
    /// The terminal edge with weight 1 (the scalar 1).
    pub const ONE: VectorEdge = VectorEdge {
        target: VectorNodeId::TERMINAL,
        weight: WeightId::ONE,
    };

    /// Returns `true` if this edge represents the zero vector.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.weight.is_zero()
    }

    /// Returns `true` if this edge points at the terminal node.
    #[inline]
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self.target.is_terminal()
    }
}

/// A weighted edge to a matrix node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixEdge {
    /// The node the edge points to.
    pub target: MatrixNodeId,
    /// The interned complex weight.
    pub weight: WeightId,
}

impl MatrixEdge {
    /// The canonical zero edge (weight 0 to the terminal node).
    pub const ZERO: MatrixEdge = MatrixEdge {
        target: MatrixNodeId::TERMINAL,
        weight: WeightId::ZERO,
    };
    /// The terminal edge with weight 1 (the scalar 1).
    pub const ONE: MatrixEdge = MatrixEdge {
        target: MatrixNodeId::TERMINAL,
        weight: WeightId::ONE,
    };

    /// Returns `true` if this edge represents the zero matrix.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.weight.is_zero()
    }

    /// Returns `true` if this edge points at the terminal node.
    #[inline]
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self.target.is_terminal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_ids() {
        assert!(VectorNodeId::TERMINAL.is_terminal());
        assert!(MatrixNodeId::TERMINAL.is_terminal());
        assert!(!VectorNodeId(0).is_terminal());
    }

    #[test]
    #[should_panic(expected = "terminal node has no arena index")]
    fn terminal_has_no_index() {
        let _ = VectorNodeId::TERMINAL.index();
    }

    #[test]
    fn weight_constants() {
        assert!(WeightId::ZERO.is_zero());
        assert!(!WeightId::ZERO.is_one());
        assert!(WeightId::ONE.is_one());
        assert!(!WeightId::ONE.is_zero());
    }

    #[test]
    fn canonical_edges() {
        assert!(VectorEdge::ZERO.is_zero());
        assert!(VectorEdge::ZERO.is_terminal());
        assert!(VectorEdge::ONE.is_terminal());
        assert!(!VectorEdge::ONE.is_zero());
        assert!(MatrixEdge::ZERO.is_zero());
        assert!(MatrixEdge::ONE.is_terminal());
    }
}

//! Weak simulation on decision diagrams (Section IV of the paper).
//!
//! The sampler precomputes, for every node, the *downstream probability*:
//! the total probability mass of all half-paths from that node to the
//! terminal.  Together with the squared magnitudes of the outgoing edge
//! weights this yields the probability of branching left or right at each
//! node, so a sample is drawn by one randomized root-to-terminal traversal —
//! `O(n)` work per sample after a precomputation linear in the DD size.
//!
//! *Upstream probabilities* (mass of half-paths from the root down to a
//! node) are also computed; they are not needed for sampling but annotate
//! the per-edge probabilities shown in Fig. 4c of the paper and are exposed
//! through [`EdgeProbabilities`].
//!
//! The interpreted samplers [`DdSampler`] and [`NormalizedSampler`] are
//! retired from production code paths (everything samples through
//! [`CompiledSampler`](crate::CompiledSampler) now) and only compiled when
//! the `comparison-samplers` feature is enabled — the bench crate turns it
//! on for throughput comparisons and the normalization ablation.

#[cfg(feature = "comparison-samplers")]
use crate::edge::VectorEdge;
use crate::edge::VectorNodeId;
#[cfg(feature = "comparison-samplers")]
use crate::package::Normalization;
use crate::{DdPackage, StateDd};
use mathkit::FxHashMap;
#[cfg(feature = "comparison-samplers")]
use rand::Rng;

/// A weak-simulation sampler over a state decision diagram.
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Qubit};
/// use dd::{DdPackage, DdSampler};
/// use rand::SeedableRng;
///
/// let mut ghz = Circuit::new(3);
/// ghz.h(Qubit(0));
/// ghz.cx(Qubit(0), Qubit(1));
/// ghz.cx(Qubit(1), Qubit(2));
///
/// let mut package = DdPackage::new();
/// let state = dd::simulate(&mut package, &ghz)?;
/// let sampler = DdSampler::new(&package, &state);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// for _ in 0..10 {
///     let shot = sampler.sample(&package, &mut rng);
///     assert!(shot == 0 || shot == 0b111);
/// }
/// # Ok::<(), dd::ApplyError>(())
/// ```
#[cfg(feature = "comparison-samplers")]
#[derive(Debug, Clone)]
pub struct DdSampler {
    root: VectorEdge,
    num_qubits: u16,
    downstream: FxHashMap<VectorNodeId, f64>,
}

#[cfg(feature = "comparison-samplers")]
impl DdSampler {
    /// Precomputes the downstream probabilities of every node reachable from
    /// the state's root (a depth-first traversal linear in the DD size).
    #[must_use]
    pub fn new(package: &DdPackage, state: &StateDd) -> Self {
        let mut downstream = FxHashMap::default();
        downstream_probability(package, state.root().target, &mut downstream);
        Self {
            root: state.root(),
            num_qubits: state.num_qubits(),
            downstream,
        }
    }

    /// The number of qubits in each output sample.
    #[must_use]
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// The downstream probability of the node behind `edge` (1 for the
    /// terminal node).
    #[must_use]
    pub fn downstream(&self, edge: VectorEdge) -> f64 {
        if edge.target.is_terminal() {
            1.0
        } else {
            self.downstream.get(&edge.target).copied().unwrap_or(0.0)
        }
    }

    /// Draws one basis-state sample by a randomized root-to-terminal
    /// traversal (`O(n)` per sample).
    ///
    /// # Panics
    ///
    /// Panics if the state is the zero vector (no probability mass).
    pub fn sample<R: Rng + ?Sized>(&self, package: &DdPackage, rng: &mut R) -> u64 {
        assert!(!self.root.is_zero(), "cannot sample from the zero vector");
        let mut index = 0u64;
        let mut edge = self.root;
        while !edge.is_terminal() {
            let node = package.vnode(edge.target);
            let p: [f64; 2] = std::array::from_fn(|bit| {
                let child = node.children[bit];
                if child.is_zero() {
                    0.0
                } else {
                    package.weight_value(child.weight).norm_sqr() * self.downstream(child)
                }
            });
            let total = p[0] + p[1];
            let threshold = rng.gen::<f64>() * total;
            let bit = usize::from(threshold >= p[0]);
            if bit == 1 {
                index |= 1 << node.var;
            }
            edge = node.children[bit];
        }
        index
    }

    /// Draws `shots` samples.
    #[must_use = "the samples are the result of the weak simulation"]
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        package: &DdPackage,
        rng: &mut R,
        shots: usize,
    ) -> Vec<u64> {
        (0..shots).map(|_| self.sample(package, rng)).collect()
    }
}

/// A sampler specialised for the paper's proposed 2-norm normalization
/// (Section IV-C): under that scheme the squared magnitudes of the two
/// outgoing edge weights already sum to one at every node, so no downstream
/// probabilities need to be looked up during the traversal.
#[cfg(feature = "comparison-samplers")]
#[derive(Debug, Clone, Copy)]
pub struct NormalizedSampler {
    root: VectorEdge,
    num_qubits: u16,
}

#[cfg(feature = "comparison-samplers")]
impl NormalizedSampler {
    /// Creates the sampler.
    ///
    /// # Panics
    ///
    /// Panics if the package does not use [`Normalization::TwoNorm`]; with
    /// any other normalization the local weights are not probabilities and
    /// the sampler would be biased.
    #[must_use]
    pub fn new(package: &DdPackage, state: &StateDd) -> Self {
        assert_eq!(
            package.normalization(),
            Normalization::TwoNorm,
            "NormalizedSampler requires the 2-norm normalization scheme"
        );
        Self {
            root: state.root(),
            num_qubits: state.num_qubits(),
        }
    }

    /// The number of qubits in each output sample.
    #[must_use]
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// Draws one sample using only the local edge weights.
    ///
    /// # Panics
    ///
    /// Panics if the state is the zero vector.
    pub fn sample<R: Rng + ?Sized>(&self, package: &DdPackage, rng: &mut R) -> u64 {
        assert!(!self.root.is_zero(), "cannot sample from the zero vector");
        let mut index = 0u64;
        let mut edge = self.root;
        while !edge.is_terminal() {
            let node = package.vnode(edge.target);
            let p0 = if node.children[0].is_zero() {
                0.0
            } else {
                package.weight_value(node.children[0].weight).norm_sqr()
            };
            let bit = usize::from(rng.gen::<f64>() >= p0);
            if bit == 1 {
                index |= 1 << node.var;
            }
            edge = node.children[bit];
        }
        index
    }

    /// Draws `shots` samples.
    #[must_use = "the samples are the result of the weak simulation"]
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        package: &DdPackage,
        rng: &mut R,
        shots: usize,
    ) -> Vec<u64> {
        (0..shots).map(|_| self.sample(package, rng)).collect()
    }
}

/// Per-node probability annotations of a state decision diagram: the
/// downstream and upstream probabilities of Section IV-B and the resulting
/// branch probabilities shown on the edges in Fig. 4c of the paper.
#[derive(Debug, Clone)]
pub struct EdgeProbabilities {
    /// Downstream probability of each node (half-paths to the terminal).
    pub downstream: FxHashMap<VectorNodeId, f64>,
    /// Upstream probability of each node (half-paths from the root).
    pub upstream: FxHashMap<VectorNodeId, f64>,
    /// Probability of taking the 0- and 1-successor when a sample traversal
    /// reaches the node.
    pub branch: FxHashMap<VectorNodeId, [f64; 2]>,
}

impl EdgeProbabilities {
    /// Computes all annotations for `state`.
    ///
    /// Downstream probabilities are computed by a depth-first traversal,
    /// upstream probabilities by a level-ordered (breadth-first) sweep, both
    /// linear in the number of nodes.
    #[must_use]
    pub fn new(package: &DdPackage, state: &StateDd) -> Self {
        let root = state.root();
        let mut downstream = FxHashMap::default();
        downstream_probability(package, root.target, &mut downstream);

        // Upstream sweep: process nodes from the highest variable level down
        // so every predecessor is finished before its successors.
        let mut upstream: FxHashMap<VectorNodeId, f64> = FxHashMap::default();
        if !root.is_zero() && !root.target.is_terminal() {
            upstream.insert(root.target, package.weight_value(root.weight).norm_sqr());
            let mut by_level: Vec<VectorNodeId> = downstream.keys().copied().collect();
            by_level.sort_by_key(|id| std::cmp::Reverse(package.vnode(*id).var));
            for id in by_level {
                let mass = upstream.get(&id).copied().unwrap_or(0.0);
                if mass == 0.0 {
                    continue;
                }
                let node = package.vnode(id);
                for child in node.children {
                    if child.is_zero() || child.target.is_terminal() {
                        continue;
                    }
                    let w = package.weight_value(child.weight).norm_sqr();
                    *upstream.entry(child.target).or_insert(0.0) += mass * w;
                }
            }
        }

        let mut branch = FxHashMap::default();
        for &id in downstream.keys() {
            let node = package.vnode(id);
            let p: [f64; 2] = std::array::from_fn(|bit| {
                let child = node.children[bit];
                if child.is_zero() {
                    0.0
                } else {
                    let down = if child.target.is_terminal() {
                        1.0
                    } else {
                        downstream[&child.target]
                    };
                    package.weight_value(child.weight).norm_sqr() * down
                }
            });
            let total = p[0] + p[1];
            let normalized = if total > 0.0 {
                [p[0] / total, p[1] / total]
            } else {
                [0.0, 0.0]
            };
            branch.insert(id, normalized);
        }

        Self {
            downstream,
            upstream,
            branch,
        }
    }
}

/// Computes downstream probabilities for every node reachable from `target`
/// and stores them in `memo`; returns the value for `target`.
///
/// Uses an explicit work stack instead of recursion, so diagrams whose depth
/// equals the qubit count (e.g. basis states over tens of thousands of
/// qubits) cannot overflow the call stack.
pub(crate) fn downstream_probability(
    package: &DdPackage,
    target: VectorNodeId,
    memo: &mut FxHashMap<VectorNodeId, f64>,
) -> f64 {
    if target.is_terminal() {
        return 1.0;
    }
    if let Some(&v) = memo.get(&target) {
        return v;
    }
    // Depth-first post-order over the DAG: a node stays on the stack until
    // both non-terminal children are memoized, then its own mass is the
    // weight-squared-weighted sum of theirs.
    let mut stack: Vec<VectorNodeId> = vec![target];
    while let Some(&id) = stack.last() {
        if memo.contains_key(&id) {
            stack.pop();
            continue;
        }
        let node = package.vnode(id);
        let mut children_ready = true;
        for child in node.children {
            if !child.is_zero() && !child.target.is_terminal() && !memo.contains_key(&child.target)
            {
                stack.push(child.target);
                children_ready = false;
            }
        }
        if children_ready {
            let mut total = 0.0;
            for child in node.children {
                if child.is_zero() {
                    continue;
                }
                let down = if child.target.is_terminal() {
                    1.0
                } else {
                    memo[&child.target]
                };
                total += package.weight_value(child.weight).norm_sqr() * down;
            }
            memo.insert(id, total);
            stack.pop();
        }
    }
    memo[&target]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::VectorEdge;
    use mathkit::Complex;
    #[cfg(feature = "comparison-samplers")]
    use rand::rngs::StdRng;
    #[cfg(feature = "comparison-samplers")]
    use rand::SeedableRng;

    fn paper_example(package: &mut DdPackage) -> StateDd {
        let a = Complex::new(0.0, -(3.0_f64 / 8.0).sqrt());
        let b = Complex::from_real((1.0_f64 / 8.0).sqrt());
        StateDd::from_amplitudes(
            package,
            &[
                Complex::ZERO,
                a,
                Complex::ZERO,
                a,
                b,
                Complex::ZERO,
                Complex::ZERO,
                b,
            ],
        )
        .unwrap()
    }

    #[cfg(feature = "comparison-samplers")]
    #[test]
    fn downstream_of_root_is_total_probability() {
        let mut p = DdPackage::new();
        let s = paper_example(&mut p);
        let sampler = DdSampler::new(&p, &s);
        let root_down = sampler.downstream(VectorEdge {
            target: s.root().target,
            weight: s.root().weight,
        });
        let w = p.weight_value(s.root().weight).norm_sqr();
        assert!((w * root_down - 1.0).abs() < 1e-12);
    }

    #[test]
    fn branch_probabilities_match_fig_4c() {
        // Fig. 4c: the root (q2) node branches left with probability 3/4 and
        // right with probability 1/4.
        let mut p = DdPackage::new();
        let s = paper_example(&mut p);
        let probs = EdgeProbabilities::new(&p, &s);
        let root = s.root().target;
        let b = probs.branch[&root];
        assert!((b[0] - 0.75).abs() < 1e-12, "left branch {}", b[0]);
        assert!((b[1] - 0.25).abs() < 1e-12, "right branch {}", b[1]);
        // Every q1/q0 node in this example branches 1/2 : 1/2 except the
        // q0 nodes that force a single outcome.
        for (&id, branch) in &probs.branch {
            let total: f64 = branch.iter().sum();
            if probs.downstream[&id] > 0.0 {
                assert!((total - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn upstream_probabilities_sum_to_one_per_level() {
        let mut p = DdPackage::new();
        let s = paper_example(&mut p);
        let probs = EdgeProbabilities::new(&p, &s);
        // The root carries all the mass.
        assert!((probs.upstream[&s.root().target] - 1.0).abs() < 1e-12);
        // Mass arriving at the q1 level sums to 1 (weighted by reachability).
        let level_mass: f64 = probs
            .upstream
            .iter()
            .filter(|(id, _)| p.vnode(**id).var == 1)
            .map(|(_, &m)| m)
            .sum();
        assert!((level_mass - 1.0).abs() < 1e-12);
    }

    #[cfg(feature = "comparison-samplers")]
    #[test]
    fn samples_match_the_exact_distribution() {
        let mut p = DdPackage::new();
        let s = paper_example(&mut p);
        let sampler = DdSampler::new(&p, &s);
        let mut rng = StdRng::seed_from_u64(2020);
        let shots = 200_000;
        let mut counts = [0u64; 8];
        for _ in 0..shots {
            counts[sampler.sample(&p, &mut rng) as usize] += 1;
        }
        let expected = [0.0, 0.375, 0.0, 0.375, 0.125, 0.0, 0.0, 0.125];
        for (i, &e) in expected.iter().enumerate() {
            let freq = counts[i] as f64 / shots as f64;
            assert!(
                (freq - e).abs() < 0.01,
                "index {i}: frequency {freq}, expected {e}"
            );
            if e == 0.0 {
                assert_eq!(counts[i], 0, "impossible outcome {i} was sampled");
            }
        }
    }

    #[cfg(feature = "comparison-samplers")]
    #[test]
    fn normalized_sampler_agrees_with_general_sampler() {
        let mut p = DdPackage::new();
        let s = paper_example(&mut p);
        let general = DdSampler::new(&p, &s);
        let local = NormalizedSampler::new(&p, &s);
        let shots = 100_000;
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts_general = [0u64; 8];
        for _ in 0..shots {
            counts_general[general.sample(&p, &mut rng) as usize] += 1;
        }
        let mut counts_local = [0u64; 8];
        for _ in 0..shots {
            counts_local[local.sample(&p, &mut rng) as usize] += 1;
        }
        for i in 0..8 {
            let fg = counts_general[i] as f64 / shots as f64;
            let fl = counts_local[i] as f64 / shots as f64;
            assert!((fg - fl).abs() < 0.01, "index {i}: {fg} vs {fl}");
        }
    }

    #[cfg(feature = "comparison-samplers")]
    #[test]
    #[should_panic(expected = "2-norm normalization")]
    fn normalized_sampler_rejects_leftmost_normalization() {
        let mut p = DdPackage::with_normalization(Normalization::LeftMost);
        let s = paper_example(&mut p);
        let _ = NormalizedSampler::new(&p, &s);
    }

    #[cfg(feature = "comparison-samplers")]
    #[test]
    #[should_panic(expected = "zero vector")]
    fn sampling_the_zero_vector_panics() {
        let mut p = DdPackage::new();
        let s = StateDd::from_amplitudes(&mut p, &[Complex::ZERO; 4]).unwrap();
        let sampler = DdSampler::new(&p, &s);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sampler.sample(&p, &mut rng);
    }

    #[cfg(feature = "comparison-samplers")]
    #[test]
    fn basis_state_always_samples_itself() {
        let mut p = DdPackage::new();
        let s = StateDd::basis_state(&mut p, 6, 0b101101).unwrap();
        let sampler = DdSampler::new(&p, &s);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            assert_eq!(sampler.sample(&p, &mut rng), 0b101101);
        }
        let local = NormalizedSampler::new(&p, &s);
        for _ in 0..50 {
            assert_eq!(local.sample(&p, &mut rng), 0b101101);
        }
        assert_eq!(sampler.num_qubits(), 6);
        assert_eq!(local.num_qubits(), 6);
    }

    #[test]
    fn downstream_annotation_survives_very_deep_diagrams() {
        // A chain diagram as deep as the recursion limit would allow and
        // then some: the explicit-stack traversal must handle depths far
        // beyond what the 2 MiB test-thread call stack could take.
        let mut p = DdPackage::new();
        let mut edge = p.vector_terminal(Complex::ONE);
        let depth = 60_000u32;
        for var in 0..depth {
            let var = u16::try_from(var % u32::from(u16::MAX)).unwrap();
            edge = p.make_vnode(var, edge, VectorEdge::ZERO).unwrap();
        }
        let mut memo = FxHashMap::default();
        let down = downstream_probability(&p, edge.target, &mut memo);
        assert!((down - 1.0).abs() < 1e-9, "downstream {down}");
        assert_eq!(memo.len(), depth as usize);
    }

    #[cfg(feature = "comparison-samplers")]
    #[test]
    fn downstream_is_one_under_two_norm_normalization() {
        // Under the proposed normalization every node's downstream
        // probability is exactly 1, which is why NormalizedSampler can skip
        // the lookup.
        let mut p = DdPackage::new();
        let s = paper_example(&mut p);
        let sampler = DdSampler::new(&p, &s);
        for (_, &d) in sampler.downstream.iter() {
            assert!((d - 1.0).abs() < 1e-9, "downstream {d}");
        }
    }
}

//! Graphviz DOT export of state decision diagrams.

use crate::sample::EdgeProbabilities;
use crate::{DdPackage, StateDd};
use mathkit::FxHashSet;
use std::fmt::Write as _;

/// Renders a state decision diagram as Graphviz DOT text.
///
/// When `probabilities` is `Some`, every edge is additionally labelled with
/// the branch probability used during sampling — this reproduces the
/// annotated diagram of Fig. 4c of the paper.
///
/// # Examples
///
/// ```
/// use dd::{DdPackage, StateDd};
///
/// let mut package = DdPackage::new();
/// let state = StateDd::basis_state(&mut package, 2, 0b10).unwrap();
/// let dot = dd::to_dot(&package, &state, None);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("q1"));
/// ```
#[must_use]
pub fn to_dot(
    package: &DdPackage,
    state: &StateDd,
    probabilities: Option<&EdgeProbabilities>,
) -> String {
    let mut out = String::from("digraph state_dd {\n");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  terminal [shape=box, label=\"1\"];");

    let root = state.root();
    let _ = writeln!(out, "  root [shape=point];");
    let root_weight = package.weight_value(root.weight);
    let _ = writeln!(
        out,
        "  root -> {} [label=\"{}\"];",
        node_name(root),
        format_weight(root_weight.re, root_weight.im)
    );

    let mut seen: FxHashSet<u32> = FxHashSet::default();
    let mut stack = vec![root.target];
    while let Some(id) = stack.pop() {
        if id.is_terminal() || !seen.insert(id.index() as u32) {
            continue;
        }
        let node = package.vnode(id);
        let _ = writeln!(
            out,
            "  n{} [shape=circle, label=\"q{}\"];",
            id.index(),
            node.var
        );
        for (bit, child) in node.children.iter().enumerate() {
            let style = if bit == 0 { "dashed" } else { "solid" };
            if child.is_zero() {
                let _ = writeln!(
                    out,
                    "  n{} -> zero_{}_{} [style={style}, label=\"0\"];",
                    id.index(),
                    id.index(),
                    bit
                );
                let _ = writeln!(
                    out,
                    "  zero_{}_{} [shape=point, label=\"0\"];",
                    id.index(),
                    bit
                );
                continue;
            }
            let weight = package.weight_value(child.weight);
            let mut label = format_weight(weight.re, weight.im);
            if let Some(probs) = probabilities {
                if let Some(branch) = probs.branch.get(&id) {
                    let _ = write!(label, " (p={:.3})", branch[bit]);
                }
            }
            let _ = writeln!(
                out,
                "  n{} -> {} [style={style}, label=\"{label}\"];",
                id.index(),
                node_name(*child)
            );
            stack.push(child.target);
        }
    }
    out.push_str("}\n");
    out
}

fn node_name(edge: crate::VectorEdge) -> String {
    if edge.target.is_terminal() {
        "terminal".to_string()
    } else {
        format!("n{}", edge.target.index())
    }
}

fn format_weight(re: f64, im: f64) -> String {
    if im == 0.0 {
        format!("{re:.3}")
    } else if re == 0.0 {
        format!("{im:.3}i")
    } else {
        format!("{re:.3}{im:+.3}i")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::Complex;

    #[test]
    fn dot_output_contains_all_levels() {
        let mut p = DdPackage::new();
        let s = StateDd::zero_state(&mut p, 3).unwrap();
        let dot = to_dot(&p, &s, None);
        assert!(dot.contains("q0"));
        assert!(dot.contains("q1"));
        assert!(dot.contains("q2"));
        assert!(dot.contains("terminal"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_output_with_probabilities_labels_edges() {
        let mut p = DdPackage::new();
        let a = Complex::new(0.0, -(3.0_f64 / 8.0).sqrt());
        let b = Complex::from_real((1.0_f64 / 8.0).sqrt());
        let s = StateDd::from_amplitudes(
            &mut p,
            &[
                Complex::ZERO,
                a,
                Complex::ZERO,
                a,
                b,
                Complex::ZERO,
                Complex::ZERO,
                b,
            ],
        )
        .unwrap();
        let probs = EdgeProbabilities::new(&p, &s);
        let dot = to_dot(&p, &s, Some(&probs));
        assert!(dot.contains("p=0.750"));
        assert!(dot.contains("p=0.250"));
    }

    #[test]
    fn zero_children_render_as_zero_stubs() {
        let mut p = DdPackage::new();
        let s = StateDd::basis_state(&mut p, 2, 0b01).unwrap();
        let dot = to_dot(&p, &s, None);
        assert!(dot.contains("zero_"));
    }
}

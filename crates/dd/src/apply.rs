//! Strong simulation of circuits on decision diagrams.

use crate::edge::{MatrixEdge, VectorEdge};
use crate::govern::DdError;
use crate::matrix::OperatorDd;
use crate::ops::matrix_vector_multiply;
use crate::package::OperatorKey;
use crate::parallel::matrix_vector_multiply_parallel;
use crate::{DdPackage, StateDd};
use circuit::{Circuit, OneQubitGate, Operation, Qubit};
use std::fmt;

/// Error returned by [`simulate`] and [`apply_circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// The circuit failed validation.
    InvalidCircuit(circuit::ValidateCircuitError),
    /// The circuit contains a non-unitary or classically-conditioned
    /// operation (measurement, reset or `if (c==k)` gate).  Strong
    /// simulation produces a single state, which is not defined for dynamic
    /// circuits; use the trajectory engine of the `weaksim` crate.
    NonUnitaryOperation {
        /// Index of the offending operation.
        op_index: usize,
    },
    /// The decision-diagram engine was interrupted: the governor's node/byte
    /// budget was exhausted (after garbage collection and cache shrinking
    /// failed to relieve the pressure), its deadline passed, its cancellation
    /// token fired, or a node arena overflowed.
    Dd(DdError),
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::InvalidCircuit(e) => write!(f, "invalid circuit: {e}"),
            ApplyError::NonUnitaryOperation { op_index } => write!(
                f,
                "operation {op_index} is non-unitary or classically conditioned (measure/reset/if); strong simulation requires a unitary circuit — use trajectory simulation"
            ),
            ApplyError::Dd(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ApplyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApplyError::Dd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<circuit::ValidateCircuitError> for ApplyError {
    fn from(e: circuit::ValidateCircuitError) -> Self {
        ApplyError::InvalidCircuit(e)
    }
}

impl From<DdError> for ApplyError {
    fn from(e: DdError) -> Self {
        ApplyError::Dd(e)
    }
}

/// Number of allocated vector nodes above which garbage is collected between
/// gates (when the reachable set is much smaller).
const GC_NODE_THRESHOLD: usize = 250_000;

/// The operator DD of a (multi-)controlled single-qubit gate, memoized in
/// the package's operator cache: repeated gates — ubiquitous in supremacy
/// layers, IPE repetitions and trajectory replays — reuse the previously
/// built diagram instead of re-running the node-level construction.
fn cached_controlled_gate(
    package: &mut DdPackage,
    num_qubits: u16,
    gate: OneQubitGate,
    target: Qubit,
    controls: &[Qubit],
) -> Result<MatrixEdge, DdError> {
    package.cached_operator(
        OperatorKey::gate(num_qubits, gate, target, controls),
        |package| {
            Ok(OperatorDd::controlled_gate(package, num_qubits, gate, target, controls)?.root())
        },
    )
}

/// Applies one lowered *unitary* operation to a state DD and returns the
/// new state.
///
/// Swap operations are decomposed into three CNOTs (picking up any controls
/// on each of them); unitaries and permutations are converted to operator
/// DDs — memoized per (gate, target/control layout) in the package — and
/// applied by matrix–vector multiplication.
///
/// # Errors
///
/// Fails with a [`DdError`] when the package's governor interrupts the run
/// or a node arena overflows.  The non-unitary operations
/// [`Operation::Measure`] and [`Operation::Reset`] fail with
/// [`DdError::NonUnitaryOperation`]: their effect depends on a sampled
/// outcome, so they go through [`measure_qubit`](crate::measure_qubit) /
/// [`reset_qubit`](crate::reset_qubit) instead.  Classically-conditioned
/// operations fail with [`DdError::ConditionedOperation`]; the trajectory
/// engine resolves conditions against the classical record before applying.
pub fn apply_operation(
    package: &mut DdPackage,
    state: StateDd,
    op: &Operation,
) -> Result<StateDd, DdError> {
    apply_operation_impl(package, state, op, None)
}

/// [`apply_operation`] with the gate's matrix–vector multiply fanned out
/// over `workers` construction workers (see
/// [the `parallel` module](crate::parallel)).
///
/// Any `workers >= 1` goes through the same deterministic task machinery,
/// so the resulting state — and the package's entire post-call node layout —
/// is bit-identical across worker counts.
///
/// # Errors
///
/// Same failure surface as [`apply_operation`].
pub fn apply_operation_with_threads(
    package: &mut DdPackage,
    state: StateDd,
    op: &Operation,
    workers: usize,
) -> Result<StateDd, DdError> {
    apply_operation_impl(package, state, op, Some(workers.max(1)))
}

/// Routes one matrix–vector multiply either through the sequential recursion
/// (`workers == None`) or the deterministic parallel decomposition.
fn multiply(
    package: &mut DdPackage,
    operator: MatrixEdge,
    state: VectorEdge,
    workers: Option<usize>,
) -> Result<VectorEdge, DdError> {
    match workers {
        None => matrix_vector_multiply(package, operator, state),
        Some(w) => matrix_vector_multiply_parallel(package, operator, state, w),
    }
}

fn apply_operation_impl(
    package: &mut DdPackage,
    state: StateDd,
    op: &Operation,
    workers: Option<usize>,
) -> Result<StateDd, DdError> {
    let n = state.num_qubits();
    match op {
        Operation::Unitary {
            gate,
            target,
            controls,
        } => {
            let operator = cached_controlled_gate(package, n, *gate, *target, controls)?;
            Ok(StateDd::from_root(
                multiply(package, operator, state.root(), workers)?,
                n,
            ))
        }
        Operation::Swap { a, b, controls } => {
            if a == b {
                return Ok(state);
            }
            let mut current = state;
            for (control, target) in [(*a, *b), (*b, *a), (*a, *b)] {
                let mut all_controls: Vec<Qubit> = controls.clone();
                all_controls.push(control);
                let operator =
                    cached_controlled_gate(package, n, OneQubitGate::X, target, &all_controls)?;
                current =
                    StateDd::from_root(multiply(package, operator, current.root(), workers)?, n);
            }
            Ok(current)
        }
        Operation::Permute {
            permutation,
            controls,
        } => {
            let operator = OperatorDd::controlled_permutation(package, n, permutation, controls)?;
            Ok(StateDd::from_root(
                multiply(package, operator.root(), state.root(), workers)?,
                n,
            ))
        }
        Operation::Measure { .. } | Operation::Reset { .. } => {
            Err(DdError::NonUnitaryOperation { op: op.to_string() })
        }
        Operation::Conditioned { .. } => Err(DdError::ConditionedOperation { op: op.to_string() }),
    }
}

/// Applies every operation of `circuit` to `state`, collecting garbage
/// between gates when the arena grows far beyond the reachable state.
///
/// Budget pressure degrades gracefully before failing: when a gate hits the
/// governor's node/byte budget, the package collects garbage (keeping only
/// the current state), shrinks the compute caches back to their minimum
/// footprint and retries the gate once.  Only persistent pressure surfaces
/// as [`DdError::MemoryOut`], stamped with the index of the operation that
/// could not complete.
///
/// # Errors
///
/// Returns [`ApplyError::InvalidCircuit`] if the circuit fails validation,
/// [`ApplyError::NonUnitaryOperation`] if it contains a measurement, reset
/// or classically-conditioned gate (strong simulation is only defined for
/// unconditionally unitary circuits), and [`ApplyError::Dd`] when the
/// governor interrupts the run (budget, deadline or cancellation) or a node
/// arena overflows.
pub fn apply_circuit(
    package: &mut DdPackage,
    state: StateDd,
    circuit: &Circuit,
) -> Result<StateDd, ApplyError> {
    apply_circuit_impl(package, state, circuit, None)
}

/// [`apply_circuit`] with every gate's construction fanned out over
/// `workers` construction workers; `0` means one worker per available CPU
/// ([`rayon::current_num_threads`]).
///
/// The garbage-collection and graceful-degradation (collect + shrink +
/// retry once) semantics are identical to [`apply_circuit`], and any
/// `workers >= 1` produces a bit-identical package evolution (see
/// [the `parallel` module](crate::parallel)).
///
/// # Errors
///
/// Same failure surface as [`apply_circuit`].
pub fn apply_circuit_with_threads(
    package: &mut DdPackage,
    state: StateDd,
    circuit: &Circuit,
    workers: usize,
) -> Result<StateDd, ApplyError> {
    let workers = if workers == 0 {
        rayon::current_num_threads()
    } else {
        workers
    };
    apply_circuit_impl(package, state, circuit, Some(workers.max(1)))
}

fn apply_circuit_impl(
    package: &mut DdPackage,
    state: StateDd,
    circuit: &Circuit,
    workers: Option<usize>,
) -> Result<StateDd, ApplyError> {
    circuit.validate()?;
    if let Some(op_index) = circuit
        .iter()
        .position(|op| op.is_non_unitary() || op.is_conditioned())
    {
        return Err(ApplyError::NonUnitaryOperation { op_index });
    }
    let mut current = state;
    for (op_index, op) in circuit.iter().enumerate() {
        current = match apply_operation_impl(package, current, op, workers) {
            Ok(next) => next,
            Err(DdError::MemoryOut { .. }) => {
                // Degrade before failing: drop everything not reachable from
                // the current state, shrink the compute caches, and retry the
                // gate once.  The state edge survives the collection, so the
                // retry recomputes exactly the same diagram.
                let roots = package.collect_garbage(&[current.root()]);
                let retry_state = StateDd::from_root(roots[0], current.num_qubits());
                package.shrink_compute_caches();
                apply_operation_impl(package, retry_state, op, workers)
                    .map_err(|e| ApplyError::Dd(e.with_op_index(op_index)))?
            }
            Err(e) => return Err(ApplyError::Dd(e.with_op_index(op_index))),
        };
        if package.allocated_vector_nodes() > GC_NODE_THRESHOLD {
            let reachable = current.node_count(package);
            if package.allocated_vector_nodes() > 4 * reachable {
                let roots = package.collect_garbage(&[current.root()]);
                current = StateDd::from_root(roots[0], current.num_qubits());
            }
        }
    }
    Ok(current)
}

/// Strong-simulates `circuit` from `|0...0>` into a state decision diagram.
///
/// # Errors
///
/// Returns [`ApplyError::InvalidCircuit`] if the circuit fails validation
/// and [`ApplyError::Dd`] when the package's governor interrupts the run.
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Qubit};
/// use dd::DdPackage;
///
/// let mut c = Circuit::new(2);
/// c.h(Qubit(0));
/// c.cx(Qubit(0), Qubit(1));
/// let mut package = DdPackage::new();
/// let state = dd::simulate(&mut package, &c)?;
/// assert!((state.probability(&package, 0b00) - 0.5).abs() < 1e-12);
/// assert!((state.probability(&package, 0b11) - 0.5).abs() < 1e-12);
/// # Ok::<(), dd::ApplyError>(())
/// ```
pub fn simulate(package: &mut DdPackage, circuit: &Circuit) -> Result<StateDd, ApplyError> {
    let state = StateDd::zero_state(package, circuit.num_qubits())?;
    apply_circuit(package, state, circuit)
}

/// [`simulate`] with parallel gate construction: every matrix–vector
/// multiply is decomposed over `workers` construction workers (`0` means
/// one per available CPU).
///
/// Runs at different worker counts build bit-identical packages (same root
/// edge, same node ids, same [`DdStats`](crate::DdStats) node counts); see
/// [the `parallel` module](crate::parallel) for why.
///
/// # Errors
///
/// Same failure surface as [`simulate`].
pub fn simulate_with_threads(
    package: &mut DdPackage,
    circuit: &Circuit,
    workers: usize,
) -> Result<StateDd, ApplyError> {
    let state = StateDd::zero_state(package, circuit.num_qubits())?;
    apply_circuit_with_threads(package, state, circuit, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Permutation;
    use mathkit::{Angle, Complex, SQRT1_2};

    const EPS: f64 = 1e-10;

    fn assert_state(package: &DdPackage, state: &StateDd, expected: &[Complex]) {
        let amps = state.to_amplitudes(package);
        assert_eq!(amps.len(), expected.len());
        for (i, (got, want)) in amps.iter().zip(expected).enumerate() {
            assert!(
                (*got - *want).norm() < EPS,
                "amplitude {i}: got {got}, expected {want}"
            );
        }
    }

    #[test]
    fn bell_state_matches_example_2() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        let mut p = DdPackage::new();
        let s = simulate(&mut p, &c).unwrap();
        let h = Complex::from_real(SQRT1_2);
        assert_state(&p, &s, &[h, Complex::ZERO, Complex::ZERO, h]);
        // One q1 node plus two distinct q0 nodes ([1,0] and [0,1]).
        assert_eq!(s.node_count(&p), 3);
    }

    #[test]
    fn ghz_state_on_five_qubits() {
        let n = 5u16;
        let mut c = Circuit::new(n);
        c.h(Qubit(0));
        for i in 1..n {
            c.cx(Qubit(i - 1), Qubit(i));
        }
        let mut p = DdPackage::new();
        let s = simulate(&mut p, &c).unwrap();
        assert!((s.probability(&p, 0) - 0.5).abs() < EPS);
        assert!((s.probability(&p, (1 << n) - 1) - 0.5).abs() < EPS);
        assert!((s.norm_sqr(&p) - 1.0).abs() < EPS);
    }

    #[test]
    fn x_and_swap_move_excitations() {
        let mut c = Circuit::new(3);
        c.x(Qubit(0));
        c.swap(Qubit(0), Qubit(2));
        let mut p = DdPackage::new();
        let s = simulate(&mut p, &c).unwrap();
        assert!((s.probability(&p, 0b100) - 1.0).abs() < EPS);
    }

    #[test]
    fn controlled_swap_only_fires_with_control_set() {
        let mut c = Circuit::new(3);
        c.x(Qubit(0));
        c.cswap(Qubit(2), Qubit(0), Qubit(1));
        let mut p = DdPackage::new();
        let s = simulate(&mut p, &c).unwrap();
        assert!((s.probability(&p, 0b001) - 1.0).abs() < EPS);

        let mut c = Circuit::new(3);
        c.x(Qubit(0));
        c.x(Qubit(2));
        c.cswap(Qubit(2), Qubit(0), Qubit(1));
        let mut p = DdPackage::new();
        let s = simulate(&mut p, &c).unwrap();
        assert!((s.probability(&p, 0b110) - 1.0).abs() < EPS);
    }

    #[test]
    fn permutation_gate_on_dd() {
        let perm = Permutation::new(vec![Qubit(0), Qubit(1)], vec![1, 2, 3, 0]).unwrap();
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.permute(perm);
        let mut p = DdPackage::new();
        let s = simulate(&mut p, &c).unwrap();
        // (|00> + |01>)/sqrt(2) -> (|01> + |10>)/sqrt(2).
        assert!((s.probability(&p, 0b01) - 0.5).abs() < EPS);
        assert!((s.probability(&p, 0b10) - 0.5).abs() < EPS);
    }

    #[test]
    fn running_example_circuit_matches_fig_4() {
        let mut c = Circuit::new(3);
        c.rx(Angle::Radians(2.0 * std::f64::consts::PI / 3.0), Qubit(2));
        c.x(Qubit(2));
        c.h(Qubit(1));
        c.ccx(Qubit(2), Qubit(1), Qubit(0));
        c.x(Qubit(0));
        c.cx(Qubit(2), Qubit(0));
        let mut p = DdPackage::new();
        let s = simulate(&mut p, &c).unwrap();
        let a = Complex::new(0.0, -(3.0_f64 / 8.0).sqrt());
        let b = Complex::from_real((1.0_f64 / 8.0).sqrt());
        assert_state(
            &p,
            &s,
            &[
                Complex::ZERO,
                a,
                Complex::ZERO,
                a,
                b,
                Complex::ZERO,
                Complex::ZERO,
                b,
            ],
        );
        // Fig. 4b draws six nodes; with full node sharing the [0,1] leaf is
        // reused by both q1 nodes, so the canonical diagram has five.
        assert_eq!(s.node_count(&p), 5);
    }

    #[test]
    fn invalid_circuit_is_rejected() {
        let mut c = Circuit::new(1);
        c.h(Qubit(7));
        let mut p = DdPackage::new();
        assert!(matches!(
            simulate(&mut p, &c),
            Err(ApplyError::InvalidCircuit(_))
        ));
    }

    #[test]
    fn dynamic_circuits_are_rejected_by_strong_simulation() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0)).measure(Qubit(0), 0).x(Qubit(0));
        let mut p = DdPackage::new();
        assert_eq!(
            simulate(&mut p, &c),
            Err(ApplyError::NonUnitaryOperation { op_index: 1 })
        );
    }

    #[test]
    fn applying_a_measurement_as_a_gate_errors_instead_of_panicking() {
        let mut p = DdPackage::new();
        let state = StateDd::zero_state(&mut p, 1).unwrap();
        let mut c = Circuit::new(1);
        c.measure(Qubit(0), 0);
        let err = apply_operation(&mut p, state, &c.operations()[0]).unwrap_err();
        assert!(matches!(err, DdError::NonUnitaryOperation { .. }), "{err}");
        // The package stays fully usable after the rejected call.
        let mut bell = Circuit::new(2);
        bell.h(Qubit(0)).cx(Qubit(0), Qubit(1));
        let s = simulate(&mut p, &bell).unwrap();
        assert!((s.probability(&p, 0b11) - 0.5).abs() < EPS);
    }

    #[test]
    fn applying_a_reset_as_a_gate_errors_instead_of_panicking() {
        let mut p = DdPackage::new();
        let state = StateDd::zero_state(&mut p, 1).unwrap();
        let mut c = Circuit::new(1);
        c.reset(Qubit(0));
        let err = apply_operation(&mut p, state, &c.operations()[0]).unwrap_err();
        assert!(matches!(err, DdError::NonUnitaryOperation { .. }), "{err}");
    }

    #[test]
    fn applying_a_conditioned_gate_errors_instead_of_panicking() {
        let mut p = DdPackage::new();
        let state = StateDd::zero_state(&mut p, 1).unwrap();
        let mut c = Circuit::new(1);
        c.measure(Qubit(0), 0)
            .conditioned_gate(1, OneQubitGate::X, Qubit(0));
        let err = apply_operation(&mut p, state, &c.operations()[1]).unwrap_err();
        assert!(matches!(err, DdError::ConditionedOperation { .. }), "{err}");
    }

    #[test]
    fn diagonal_circuit_keeps_probabilities_uniform() {
        let mut c = Circuit::new(3);
        for i in 0..3 {
            c.h(Qubit(i));
        }
        c.t(Qubit(0));
        c.cz(Qubit(0), Qubit(1));
        c.cp(Angle::pi_over(8), Qubit(1), Qubit(2));
        let mut p = DdPackage::new();
        let s = simulate(&mut p, &c).unwrap();
        for i in 0..8 {
            assert!((s.probability(&p, i) - 0.125).abs() < EPS, "index {i}");
        }
    }

    #[test]
    fn circuit_then_adjoint_returns_to_zero_state() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0))
            .cx(Qubit(0), Qubit(1))
            .t(Qubit(2))
            .ry(Angle::Radians(0.7), Qubit(3))
            .swap(Qubit(1), Qubit(3))
            .ccx(Qubit(0), Qubit(1), Qubit(2));
        let mut p = DdPackage::new();
        let s = simulate(&mut p, &c).unwrap();
        let s = apply_circuit(&mut p, s, &c.adjoint()).unwrap();
        assert!((s.probability(&p, 0) - 1.0).abs() < EPS);
        assert_eq!(s.node_count(&p), 4);
    }
}

//! Decision-diagram node payloads.

use crate::edge::{MatrixEdge, VectorEdge};

/// A vector (state) decision-diagram node.
///
/// A node at variable level `var` splits the represented vector by the value
/// of qubit `var`: the 0-successor describes the half where qubit `var` is
/// `|0>`, the 1-successor the half where it is `|1>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorNode {
    /// The qubit this node decides on.
    pub var: u16,
    /// The successor edges, indexed by the value of qubit `var`.
    pub children: [VectorEdge; 2],
}

impl VectorNode {
    /// The 0-successor edge.
    #[inline]
    #[must_use]
    pub fn zero(&self) -> VectorEdge {
        self.children[0]
    }

    /// The 1-successor edge.
    #[inline]
    #[must_use]
    pub fn one(&self) -> VectorEdge {
        self.children[1]
    }
}

/// A matrix (operator) decision-diagram node.
///
/// A node at level `var` splits the operator into four sub-blocks indexed by
/// the (row, column) bit of qubit `var`: `children[2*row + col]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixNode {
    /// The qubit this node decides on.
    pub var: u16,
    /// The four sub-block edges, indexed by `2*row_bit + col_bit`.
    pub children: [MatrixEdge; 4],
}

impl MatrixNode {
    /// The sub-block for the given row and column bit of this qubit.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is greater than 1.
    #[inline]
    #[must_use]
    pub fn block(&self, row: u8, col: u8) -> MatrixEdge {
        assert!(row < 2 && col < 2, "block indices must be bits");
        self.children[usize::from(2 * row + col)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_node_accessors() {
        let n = VectorNode {
            var: 3,
            children: [VectorEdge::ONE, VectorEdge::ZERO],
        };
        assert_eq!(n.zero(), VectorEdge::ONE);
        assert_eq!(n.one(), VectorEdge::ZERO);
    }

    #[test]
    fn matrix_node_block_indexing() {
        let n = MatrixNode {
            var: 0,
            children: [
                MatrixEdge::ONE,
                MatrixEdge::ZERO,
                MatrixEdge::ZERO,
                MatrixEdge::ONE,
            ],
        };
        assert_eq!(n.block(0, 0), MatrixEdge::ONE);
        assert_eq!(n.block(0, 1), MatrixEdge::ZERO);
        assert_eq!(n.block(1, 1), MatrixEdge::ONE);
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn matrix_node_block_bounds() {
        let n = MatrixNode {
            var: 0,
            children: [MatrixEdge::ZERO; 4],
        };
        let _ = n.block(2, 0);
    }
}

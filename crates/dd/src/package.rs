//! The decision-diagram package: arenas, unique tables, compute caches and
//! normalization.
//!
//! # Hot-path table design
//!
//! Everything the construction hot path touches is a purpose-built table
//! rather than a general-purpose hash map:
//!
//! * **Unique tables** ([`UniqueTable`], one per node arena) are
//!   open-addressing tables of `(hash, node id)` slots.  The node payload
//!   lives only in the arena; a probe compares the precomputed 64-bit hash
//!   first and dereferences the arena only on a hash match, so the 2–4-child
//!   node struct is hashed exactly once per `make_vnode`/`make_mnode` call.
//!   Entries are never deleted — garbage collection rebuilds the table from
//!   the compacted arena in one linear pass instead of churning tombstones —
//!   so probe chains stay short and the table is always tombstone-free.
//!
//! * **Compute caches** (`add`/`mv`/`madd`/`mm`, see [`ComputeCache`]) are
//!   bounded, direct-mapped and *lossy*: a colliding insert simply
//!   overwrites the previous entry.  Losing an entry only costs a
//!   recomputation, never correctness, and in exchange the caches have
//!   - **bounded memory**, independent of circuit depth: each cache starts
//!     at [`COMPUTE_CACHE_MIN_ENTRIES`] slots (allocated lazily on first
//!     use, so throwaway packages cost nothing) and doubles under eviction
//!     pressure up to its fixed maximum — the sizing knobs
//!     [`ADD_CACHE_ENTRIES`], [`MV_CACHE_ENTRIES`], [`MADD_CACHE_ENTRIES`]
//!     and [`MM_CACHE_ENTRIES`], or
//!     [`set_compute_cache_capacity`](DdPackage::set_compute_cache_capacity)
//!     at runtime (`0` disables caching, the reference configuration for
//!     testing that lossiness never changes results),
//!   - **O(1) lookup/insert** with exactly one slot probed, and
//!   - **O(1) clearing**: every entry carries a *generation stamp*, and
//!     [`clear_compute_tables`](DdPackage::clear_compute_tables) (also
//!     called by garbage collection) just bumps the package generation so
//!     all stale entries miss on their stamp.  Deep noisy trajectory
//!     circuits can clear between shots for free.
//!
//! * The **operator cache** memoizes whole gate/projector decision diagrams
//!   keyed by `(operation kind, parameters, target/control layout, register
//!   width)` — see [`DdPackage::cached_operator`].  Repeated gates
//!   (supremacy layers, IPE repetitions, every off-cache trajectory replay)
//!   reuse the previously built [`MatrixEdge`] instead of re-running the
//!   node-level construction.  The cache is cleared whenever the matrix
//!   arena is dropped (garbage collection) and capped at a fixed number of
//!   distinct operators.
//!
//! * Matrix nodes that form **identity chains** are flagged at creation;
//!   the multiply recursions in `ops.rs` shortcut through them (`I·v = v`,
//!   `I·B = B`, `A·I = A`) instead of descending, which removes the
//!   below-target part of every gate cone — the bulk of a naive gate
//!   apply — from the compute working set entirely.
//!
//! All per-table hit/miss/eviction counters are reported through
//! [`DdStats`].

use crate::edge::{MatrixEdge, MatrixNodeId, VectorEdge, VectorNodeId, WeightId};
use crate::govern::{DdError, Governor};
use crate::node::{MatrixNode, VectorNode};
use circuit::{OneQubitGate, Qubit};
use mathkit::{hash_finish, hash_mix, CTable, Complex, FxHashMap, FxHashSet, Tolerance};
use std::mem::size_of;

/// The edge-weight normalization scheme applied when creating vector nodes.
///
/// Normalization is what makes the representation canonical: structurally
/// equal sub-vectors must produce identical (node, weight) pairs so the
/// unique table can share them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Divide both outgoing weights by the left-most non-zero weight
    /// (classical QMDD normalization, Fig. 4b of the paper).
    LeftMost,
    /// Divide both outgoing weights by the 2-norm of the weight pair and pull
    /// the phase of the first non-zero weight into the incoming edge
    /// (the scheme proposed in Section IV-C, Fig. 4d of the paper).  After
    /// this normalization the squared magnitudes of the two outgoing weights
    /// sum to one, so they can be read directly as branch probabilities
    /// during sampling.
    #[default]
    TwoNorm,
}

// ---------------------------------------------------------------------------
// Sizing knobs for the bounded compute caches.
// ---------------------------------------------------------------------------

/// Maximum entries of the vector-addition compute cache (power of two).
/// Caches start at [`COMPUTE_CACHE_MIN_ENTRIES`] and double — clearing on
/// each growth step, losing only cached work — whenever eviction pressure
/// shows the working set does not fit, so small packages stay small while
/// million-node builds get the full capacity.
pub const ADD_CACHE_ENTRIES: usize = 1 << 21;
/// Maximum entries of the matrix–vector multiplication compute cache
/// (power of two); see [`ADD_CACHE_ENTRIES`] for the growth policy.
pub const MV_CACHE_ENTRIES: usize = 1 << 21;
/// Maximum entries of the matrix-addition compute cache (power of two).
pub const MADD_CACHE_ENTRIES: usize = 1 << 14;
/// Maximum entries of the matrix–matrix multiplication compute cache
/// (power of two).
pub const MM_CACHE_ENTRIES: usize = 1 << 14;
/// Initial allocation of every compute cache (power of two).
pub const COMPUTE_CACHE_MIN_ENTRIES: usize = 1 << 14;
/// Maximum number of distinct operator DDs memoized by
/// [`DdPackage::cached_operator`]; the cache is wholesale-cleared when full.
const OPERATOR_CACHE_CAP: usize = 4096;

/// Hit/miss/eviction counters of one bounded lookup table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or a stale/colliding entry).
    pub misses: u64,
    /// Live entries overwritten by a colliding insert (lossy caches) or
    /// dropped by a wholesale clear-on-full (the operator cache).
    pub evictions: u64,
}

impl CacheCounters {
    /// Hits as a fraction of all lookups (0.0 when no lookups happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn add(&mut self, other: &CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// Occupancy and per-table hit/miss/eviction statistics of a [`DdPackage`],
/// used in experiment reports and the benchmark JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DdStats {
    /// Vector nodes currently stored in the arena (including garbage).
    pub vector_nodes: usize,
    /// Matrix nodes currently stored in the arena (including garbage).
    pub matrix_nodes: usize,
    /// Distinct interned real values.
    pub interned_values: usize,
    /// Hits in the vector unique table.
    pub vector_unique_hits: u64,
    /// Misses (insertions) in the vector unique table.
    pub vector_unique_misses: u64,
    /// Hits in the matrix unique table.
    pub matrix_unique_hits: u64,
    /// Misses (insertions) in the matrix unique table.
    pub matrix_unique_misses: u64,
    /// Vector-addition compute-cache counters.
    pub add_cache: CacheCounters,
    /// Matrix–vector multiplication compute-cache counters.
    pub mv_cache: CacheCounters,
    /// Matrix-addition compute-cache counters.
    pub madd_cache: CacheCounters,
    /// Matrix–matrix multiplication compute-cache counters.
    pub mm_cache: CacheCounters,
    /// Memoized gate/projector operator-DD cache counters.
    pub operator_cache: CacheCounters,
    /// Number of garbage collections performed.
    pub garbage_collections: u64,
}

impl DdStats {
    /// Total hits across the four node-level compute caches.
    #[must_use]
    pub fn compute_hits(&self) -> u64 {
        self.add_cache.hits + self.mv_cache.hits + self.madd_cache.hits + self.mm_cache.hits
    }

    /// Total misses across the four node-level compute caches.
    #[must_use]
    pub fn compute_misses(&self) -> u64 {
        self.add_cache.misses + self.mv_cache.misses + self.madd_cache.misses + self.mm_cache.misses
    }

    /// Total lossy evictions across the four node-level compute caches.
    #[must_use]
    pub fn compute_evictions(&self) -> u64 {
        self.add_cache.evictions
            + self.mv_cache.evictions
            + self.madd_cache.evictions
            + self.mm_cache.evictions
    }

    /// Hit rate over all four compute caches combined.
    #[must_use]
    pub fn compute_hit_rate(&self) -> f64 {
        let total = self.compute_hits() + self.compute_misses();
        if total == 0 {
            0.0
        } else {
            self.compute_hits() as f64 / total as f64
        }
    }

    /// Hit rate of the vector unique table (node-sharing rate).
    #[must_use]
    pub fn vector_unique_hit_rate(&self) -> f64 {
        let total = self.vector_unique_hits + self.vector_unique_misses;
        if total == 0 {
            0.0
        } else {
            self.vector_unique_hits as f64 / total as f64
        }
    }

    /// Folds another package's statistics into this one: counters are
    /// summed, occupancy figures take the maximum (the natural aggregation
    /// across the per-worker packages of a parallel trajectory run).
    pub fn merge(&mut self, other: &DdStats) {
        self.vector_nodes = self.vector_nodes.max(other.vector_nodes);
        self.matrix_nodes = self.matrix_nodes.max(other.matrix_nodes);
        self.interned_values = self.interned_values.max(other.interned_values);
        self.vector_unique_hits += other.vector_unique_hits;
        self.vector_unique_misses += other.vector_unique_misses;
        self.matrix_unique_hits += other.matrix_unique_hits;
        self.matrix_unique_misses += other.matrix_unique_misses;
        self.add_cache.add(&other.add_cache);
        self.mv_cache.add(&other.mv_cache);
        self.madd_cache.add(&other.madd_cache);
        self.mm_cache.add(&other.mm_cache);
        self.operator_cache.add(&other.operator_cache);
        self.garbage_collections += other.garbage_collections;
    }
}

// ---------------------------------------------------------------------------
// Open-addressing unique tables.
// ---------------------------------------------------------------------------

/// Sentinel marking an empty unique-table slot (the terminal sentinel
/// `u32::MAX` is never a valid arena id, so it can double as "empty").
const UNIQUE_EMPTY: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct UniqueSlot {
    hash: u64,
    id: u32,
}

const EMPTY_SLOT: UniqueSlot = UniqueSlot {
    hash: 0,
    id: UNIQUE_EMPTY,
};

/// An open-addressing `(hash, arena id)` table with linear probing and no
/// deletion.  The node payload stays in the arena; the caller supplies an
/// equality predicate over arena ids, which is only consulted when the
/// stored 64-bit hash matches — so node structs are hashed once per lookup
/// and compared only on probable hits.
///
/// Crate-visible because parallel construction (`crate::parallel`) reuses it
/// as the per-worker overlay shard: the master table is probed read-only
/// through a shared reference while each worker dedups its private nodes
/// through its own `UniqueTable`, keyed by the same precomputed 64-bit hash.
#[derive(Debug)]
pub(crate) struct UniqueTable {
    slots: Vec<UniqueSlot>,
    len: usize,
}

impl UniqueTable {
    fn new() -> Self {
        Self::with_slots(1 << 12)
    }

    pub(crate) fn with_slots(slots: usize) -> Self {
        let slots = slots.next_power_of_two().max(16);
        Self {
            slots: vec![EMPTY_SLOT; slots],
            len: 0,
        }
    }

    #[inline]
    pub(crate) fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let slot = self.slots[i];
            if slot.id == UNIQUE_EMPTY {
                return None;
            }
            if slot.hash == hash && eq(slot.id) {
                return Some(slot.id);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts an id the caller has verified to be absent.
    pub(crate) fn insert(&mut self, hash: u64, id: u32) {
        // Grow at 3/4 load so probe chains stay short.
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        Self::place(&mut self.slots, UniqueSlot { hash, id });
        self.len += 1;
    }

    fn place(slots: &mut [UniqueSlot], slot: UniqueSlot) {
        let mask = slots.len() - 1;
        let mut i = (slot.hash as usize) & mask;
        while slots[i].id != UNIQUE_EMPTY {
            i = (i + 1) & mask;
        }
        slots[i] = slot;
    }

    fn grow(&mut self) {
        let mut new_slots = vec![EMPTY_SLOT; self.slots.len() * 2];
        for slot in &self.slots {
            if slot.id != UNIQUE_EMPTY {
                Self::place(&mut new_slots, *slot);
            }
        }
        self.slots = new_slots;
    }

    fn clear(&mut self) {
        self.slots.fill(EMPTY_SLOT);
        self.len = 0;
    }
}

/// Hashes a vector node payload (once, by field folding).
#[inline]
pub(crate) fn vnode_hash(node: &VectorNode) -> u64 {
    let mut h = hash_mix(0, u64::from(node.var));
    for child in node.children {
        h = hash_mix(h, vedge_word(child));
    }
    // Final avalanche so low slot bits depend on every field.
    hash_finish(h)
}

/// Hashes a matrix node payload.
#[inline]
fn mnode_hash(node: &MatrixNode) -> u64 {
    let mut h = hash_mix(0, u64::from(node.var));
    for child in node.children {
        h = hash_mix(h, medge_word(child));
    }
    hash_finish(h)
}

/// Packs a vector edge into a pair of mixable words folded to one.
#[inline]
fn vedge_word(e: VectorEdge) -> u64 {
    let w = ((e.weight.re.index() as u64) << 32) | e.weight.im.index() as u64;
    hash_mix(u64::from(e.target.0), w)
}

/// Packs a matrix edge into one mixable word.
#[inline]
fn medge_word(e: MatrixEdge) -> u64 {
    let w = ((e.weight.re.index() as u64) << 32) | e.weight.im.index() as u64;
    hash_mix(u64::from(e.target.0), w)
}

// ---------------------------------------------------------------------------
// Bounded, lossy compute caches.
// ---------------------------------------------------------------------------

/// A key type usable in a [`ComputeCache`]: exact equality plus a cheap
/// precomputed hash.
pub(crate) trait CacheKey: Copy + PartialEq {
    fn key_hash(&self) -> u64;
}

impl CacheKey for (VectorEdge, VectorEdge) {
    #[inline]
    fn key_hash(&self) -> u64 {
        hash_mix(vedge_word(self.0), vedge_word(self.1))
    }
}

impl CacheKey for (MatrixEdge, MatrixEdge) {
    #[inline]
    fn key_hash(&self) -> u64 {
        hash_mix(medge_word(self.0), medge_word(self.1))
    }
}

impl CacheKey for (MatrixNodeId, VectorNodeId) {
    #[inline]
    fn key_hash(&self) -> u64 {
        hash_mix(u64::from(self.0 .0), u64::from(self.1 .0))
    }
}

impl CacheKey for (MatrixNodeId, MatrixNodeId) {
    #[inline]
    fn key_hash(&self) -> u64 {
        hash_mix(u64::from(self.0 .0), u64::from(self.1 .0))
    }
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry<K, V> {
    /// Generation stamp; an entry is live only when it equals the cache's
    /// current generation, which is what makes `clear` O(1).
    stamp: u32,
    key: K,
    value: V,
}

/// A bounded direct-mapped lossy cache with generation-stamped entries.
///
/// Memory is bounded by the configured maximum capacity regardless of how
/// many distinct keys are inserted; a colliding insert overwrites (lossy).
/// The backing storage is allocated lazily on the first insert (starting at
/// [`COMPUTE_CACHE_MIN_ENTRIES`]) and doubles — dropping its contents,
/// which only costs recomputation — whenever the evictions since the last
/// growth step exceed the current size, i.e. when the working set visibly
/// does not fit.  Cheap throwaway packages therefore never pay for the full
/// capacity, while million-node builds grow to the maximum within a few
/// generations.
#[derive(Debug)]
pub(crate) struct ComputeCache<K, V> {
    entries: Vec<CacheEntry<K, V>>,
    capacity: usize,
    max_capacity: usize,
    generation: u32,
    hits: u64,
    misses: u64,
    evictions: u64,
    evictions_since_grow: u64,
    /// Placeholder key/value pair used to initialize the lazy allocation
    /// (never observable: stamp 0 is below every live generation).
    dummy: (K, V),
}

impl<K: CacheKey, V: Copy> ComputeCache<K, V> {
    fn new(max_capacity: usize, dummy: (K, V)) -> Self {
        debug_assert!(max_capacity == 0 || max_capacity.is_power_of_two());
        Self {
            entries: Vec::new(),
            capacity: max_capacity.min(COMPUTE_CACHE_MIN_ENTRIES),
            max_capacity,
            generation: 1,
            hits: 0,
            misses: 0,
            evictions: 0,
            evictions_since_grow: 0,
            dummy,
        }
    }

    #[inline]
    pub(crate) fn lookup(&mut self, key: K) -> Option<V> {
        if self.entries.is_empty() {
            self.misses += 1;
            return None;
        }
        let slot = (key.key_hash() as usize) & (self.entries.len() - 1);
        let entry = &self.entries[slot];
        if entry.stamp == self.generation && entry.key == key {
            self.hits += 1;
            Some(entry.value)
        } else {
            self.misses += 1;
            None
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.is_empty() {
            self.allocate();
        } else if self.evictions_since_grow > self.entries.len() as u64
            && self.capacity < self.max_capacity
        {
            // The working set visibly exceeds the table: double it.  The old
            // entries are dropped (lossy — recomputation, not correctness).
            self.capacity *= 2;
            self.allocate();
        }
        let slot = (key.key_hash() as usize) & (self.entries.len() - 1);
        let entry = &mut self.entries[slot];
        if entry.stamp == self.generation && entry.key != key {
            self.evictions += 1;
            self.evictions_since_grow += 1;
        }
        *entry = CacheEntry {
            stamp: self.generation,
            key,
            value,
        };
    }

    fn allocate(&mut self) {
        let dummy = CacheEntry {
            stamp: 0,
            key: self.dummy.0,
            value: self.dummy.1,
        };
        self.entries = vec![dummy; self.capacity];
        self.evictions_since_grow = 0;
    }

    /// O(1) clear: stale entries are invalidated by bumping the generation.
    fn clear(&mut self) {
        if self.generation == u32::MAX {
            // Generation wrap: hard-reset the stamps once every 2^32 clears.
            for entry in &mut self.entries {
                entry.stamp = 0;
            }
            self.generation = 0;
        }
        self.generation += 1;
    }

    /// Frees the backing storage and resets the growth state to the minimum
    /// capacity (the configured maximum is unchanged), so the cache re-grows
    /// on demand.  Used when degrading under memory pressure.
    fn shrink(&mut self) {
        self.capacity = self.max_capacity.min(COMPUTE_CACHE_MIN_ENTRIES);
        self.entries = Vec::new();
        self.evictions_since_grow = 0;
    }

    /// Bytes held by the backing storage right now.
    fn allocated_bytes(&self) -> usize {
        self.entries.len() * size_of::<CacheEntry<K, V>>()
    }

    /// Resizes (and clears) the cache; 0 disables caching entirely.
    fn set_capacity(&mut self, capacity: usize) {
        self.max_capacity = if capacity == 0 {
            0
        } else {
            capacity.next_power_of_two()
        };
        self.capacity = self.max_capacity.min(COMPUTE_CACHE_MIN_ENTRIES);
        self.entries = Vec::new();
    }

    fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

// ---------------------------------------------------------------------------
// Operator-DD memo keys.
// ---------------------------------------------------------------------------

/// Memo key identifying one operator-DD construction: a (controlled) gate,
/// a measurement projector or an amplitude-damping no-decay operator, on a
/// specific target/control layout over a specific register width.
///
/// Angle parameters are keyed by the bit pattern of their radian value, so
/// two angles that produce identical matrices share an entry while any
/// numerically distinct angle gets its own.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct OperatorKey {
    kind: u8,
    params: [u64; 3],
    target: u16,
    controls: Vec<u16>,
    num_qubits: u16,
}

impl OperatorKey {
    /// Key for a (multi-)controlled single-qubit gate.
    pub(crate) fn gate(
        num_qubits: u16,
        gate: OneQubitGate,
        target: Qubit,
        controls: &[Qubit],
    ) -> Self {
        let (kind, params) = gate_fingerprint(gate);
        Self {
            kind,
            params,
            target: target.0,
            controls: controls.iter().map(|q| q.0).collect(),
            num_qubits,
        }
    }

    /// Key for the diagonal projector `|bit><bit|` on `qubit`.
    pub(crate) fn projector(num_qubits: u16, qubit: Qubit, bit: u8) -> Self {
        Self {
            kind: 32 + bit,
            params: [0; 3],
            target: qubit.0,
            controls: Vec::new(),
            num_qubits,
        }
    }

    /// Key for the amplitude-damping no-decay operator
    /// `diag(1, sqrt(1 - gamma))` on `qubit`.
    pub(crate) fn damp_keep(num_qubits: u16, qubit: Qubit, gamma: f64) -> Self {
        Self {
            kind: 40,
            params: [gamma.to_bits(), 0, 0],
            target: qubit.0,
            controls: Vec::new(),
            num_qubits,
        }
    }
}

/// Discriminant + parameter fingerprint of a gate (exact for the fixed
/// alphabet, bit-pattern of the radian value for parametrized gates).
fn gate_fingerprint(gate: OneQubitGate) -> (u8, [u64; 3]) {
    use OneQubitGate as G;
    match gate {
        G::I => (0, [0; 3]),
        G::X => (1, [0; 3]),
        G::Y => (2, [0; 3]),
        G::Z => (3, [0; 3]),
        G::H => (4, [0; 3]),
        G::S => (5, [0; 3]),
        G::Sdg => (6, [0; 3]),
        G::T => (7, [0; 3]),
        G::Tdg => (8, [0; 3]),
        G::SqrtX => (9, [0; 3]),
        G::SqrtXdg => (10, [0; 3]),
        G::SqrtY => (11, [0; 3]),
        G::SqrtYdg => (12, [0; 3]),
        G::Phase(a) => (13, [a.radians().to_bits(), 0, 0]),
        G::Rx(a) => (14, [a.radians().to_bits(), 0, 0]),
        G::Ry(a) => (15, [a.radians().to_bits(), 0, 0]),
        G::Rz(a) => (16, [a.radians().to_bits(), 0, 0]),
        G::U { theta, phi, lambda } => (
            17,
            [
                theta.radians().to_bits(),
                phi.radians().to_bits(),
                lambda.radians().to_bits(),
            ],
        ),
    }
}

// ---------------------------------------------------------------------------
// The package.
// ---------------------------------------------------------------------------

/// The arena owning every decision-diagram node together with the canonical
/// complex-value table, the unique tables and the compute caches.
///
/// All decision diagrams ([`StateDd`](crate::StateDd),
/// [`OperatorDd`](crate::OperatorDd)) are plain edge handles into a package;
/// the package must outlive them and be passed to every operation.
///
/// # Examples
///
/// ```
/// use dd::{DdPackage, Normalization};
///
/// let mut package = DdPackage::with_normalization(Normalization::LeftMost);
/// let state = dd::StateDd::zero_state(&mut package, 3).unwrap();
/// assert_eq!(state.node_count(&package), 3);
/// ```
#[derive(Debug)]
pub struct DdPackage {
    vnodes: Vec<VectorNode>,
    mnodes: Vec<MatrixNode>,
    /// `midentity[i]` marks matrix node `i` as an identity chain: the exact
    /// identity operator over levels `0..=var`.  Multiplications shortcut
    /// through these nodes without descending (see `ops.rs`), which removes
    /// the below-target part of every gate cone from the compute working
    /// set.
    midentity: Vec<bool>,
    vunique: UniqueTable,
    munique: UniqueTable,
    ctable: CTable,
    normalization: Normalization,
    pub(crate) add_cache: ComputeCache<(VectorEdge, VectorEdge), VectorEdge>,
    pub(crate) mv_cache: ComputeCache<(MatrixNodeId, VectorNodeId), VectorEdge>,
    pub(crate) madd_cache: ComputeCache<(MatrixEdge, MatrixEdge), MatrixEdge>,
    pub(crate) mm_cache: ComputeCache<(MatrixNodeId, MatrixNodeId), MatrixEdge>,
    operator_cache: FxHashMap<OperatorKey, MatrixEdge>,
    vunique_hits: u64,
    vunique_misses: u64,
    munique_hits: u64,
    munique_misses: u64,
    operator_hits: u64,
    operator_misses: u64,
    operator_evictions: u64,
    garbage_collections: u64,
    /// Budgets / deadline / cancellation for every make-node call; the
    /// default is unlimited, which short-circuits to a single branch.
    governor: Governor,
}

impl DdPackage {
    /// Creates a package with the paper's proposed
    /// [2-norm normalization](Normalization::TwoNorm) and the default
    /// numerical tolerance.
    #[must_use]
    pub fn new() -> Self {
        Self::with_normalization(Normalization::default())
    }

    /// Creates a package using the given normalization scheme.
    #[must_use]
    pub fn with_normalization(normalization: Normalization) -> Self {
        Self::with_settings(normalization, Tolerance::default())
    }

    /// Creates a package with explicit normalization and interning tolerance.
    #[must_use]
    pub fn with_settings(normalization: Normalization, tolerance: Tolerance) -> Self {
        let vv_dummy = (VectorEdge::ZERO, VectorEdge::ZERO);
        let mm_dummy = (MatrixEdge::ZERO, MatrixEdge::ZERO);
        let mv_id_dummy = (MatrixNodeId::TERMINAL, VectorNodeId::TERMINAL);
        let mm_id_dummy = (MatrixNodeId::TERMINAL, MatrixNodeId::TERMINAL);
        Self {
            vnodes: Vec::new(),
            mnodes: Vec::new(),
            midentity: Vec::new(),
            vunique: UniqueTable::new(),
            munique: UniqueTable::new(),
            ctable: CTable::with_tolerance(tolerance),
            normalization,
            add_cache: ComputeCache::new(ADD_CACHE_ENTRIES, (vv_dummy, VectorEdge::ZERO)),
            mv_cache: ComputeCache::new(MV_CACHE_ENTRIES, (mv_id_dummy, VectorEdge::ZERO)),
            madd_cache: ComputeCache::new(MADD_CACHE_ENTRIES, (mm_dummy, MatrixEdge::ZERO)),
            mm_cache: ComputeCache::new(MM_CACHE_ENTRIES, (mm_id_dummy, MatrixEdge::ZERO)),
            operator_cache: FxHashMap::default(),
            vunique_hits: 0,
            vunique_misses: 0,
            munique_hits: 0,
            munique_misses: 0,
            operator_hits: 0,
            operator_misses: 0,
            operator_evictions: 0,
            garbage_collections: 0,
            governor: Governor::unlimited(),
        }
    }

    /// Creates a package whose unique tables start at `slots` slots each
    /// (rounded up to a power of two, minimum 16) instead of the tuned
    /// default.  Intended for table-growth stress tests: starting at the
    /// minimum capacity forces the open-addressing tables to rehash under
    /// load almost immediately, which is exactly the pressure the
    /// concurrency soak suite wants to exercise.
    #[must_use]
    pub fn with_unique_table_slots(slots: usize) -> Self {
        let mut package = Self::new();
        package.vunique = UniqueTable::with_slots(slots);
        package.munique = UniqueTable::with_slots(slots);
        package
    }

    /// The id the next freshly-created vector node will get.  Parallel
    /// construction freezes the master at this watermark: worker overlays
    /// treat every target `< vnode_base()` as a shared master node and
    /// offset their private ids above it.
    pub(crate) fn vnode_base(&self) -> u32 {
        self.vnodes.len() as u32
    }

    /// Read-only view of the interned-value table, for frozen-master probes
    /// from worker overlays.
    pub(crate) fn ctable(&self) -> &CTable {
        &self.ctable
    }

    /// Installs a [`Governor`] checked by every subsequent make-node call
    /// (see the [`govern`](crate::govern) module docs for the amortization
    /// scheme).  Replacing the governor mid-run is allowed; the default is
    /// [`Governor::unlimited`].
    pub fn set_governor(&mut self, governor: Governor) {
        self.governor = governor;
    }

    /// The governor currently installed on this package.
    #[must_use]
    pub fn governor(&self) -> &Governor {
        &self.governor
    }

    /// The normalization scheme used for vector nodes.
    #[must_use]
    pub fn normalization(&self) -> Normalization {
        self.normalization
    }

    /// Resizes all four node-level compute caches to `entries` slots each
    /// (rounded up to a power of two); `0` disables compute caching
    /// entirely, which is useful as a reference configuration when testing
    /// that lossy evictions never change results.  Resizing clears the
    /// caches.
    pub fn set_compute_cache_capacity(&mut self, entries: usize) {
        self.add_cache.set_capacity(entries);
        self.mv_cache.set_capacity(entries);
        self.madd_cache.set_capacity(entries);
        self.mm_cache.set_capacity(entries);
    }

    /// Frees the compute caches' backing storage and resets their growth
    /// state to the minimum footprint (their configured maxima are kept, so
    /// they re-grow on demand).  Part of the graceful-degradation path:
    /// under budget pressure the caches are shrunk before the run fails.
    pub fn shrink_compute_caches(&mut self) {
        self.add_cache.shrink();
        self.mv_cache.shrink();
        self.madd_cache.shrink();
        self.mm_cache.shrink();
    }

    /// Approximate bytes held by the package right now: node arenas, unique
    /// tables and compute caches (the interned-value table and operator memo
    /// are comparatively small and not counted).  This is the figure the
    /// governor's byte budget is checked against.
    #[must_use]
    pub fn approx_allocated_bytes(&self) -> u64 {
        let vnodes = self.vnodes.len() * size_of::<VectorNode>();
        let mnodes = self.mnodes.len() * (size_of::<MatrixNode>() + size_of::<bool>());
        let tables =
            (self.vunique.slots.len() + self.munique.slots.len()) * size_of::<UniqueSlot>();
        let caches = self.add_cache.allocated_bytes()
            + self.mv_cache.allocated_bytes()
            + self.madd_cache.allocated_bytes()
            + self.mm_cache.allocated_bytes();
        (vnodes + mnodes + tables + caches) as u64
    }

    /// Current occupancy and hit/miss statistics.
    #[must_use]
    pub fn stats(&self) -> DdStats {
        DdStats {
            vector_nodes: self.vnodes.len(),
            matrix_nodes: self.mnodes.len(),
            interned_values: self.ctable.len(),
            vector_unique_hits: self.vunique_hits,
            vector_unique_misses: self.vunique_misses,
            matrix_unique_hits: self.munique_hits,
            matrix_unique_misses: self.munique_misses,
            add_cache: self.add_cache.counters(),
            mv_cache: self.mv_cache.counters(),
            madd_cache: self.madd_cache.counters(),
            mm_cache: self.mm_cache.counters(),
            operator_cache: CacheCounters {
                hits: self.operator_hits,
                misses: self.operator_misses,
                evictions: self.operator_evictions,
            },
            garbage_collections: self.garbage_collections,
        }
    }

    // ----- weights -------------------------------------------------------

    /// Interns a complex number as an edge weight.
    pub fn weight(&mut self, value: Complex) -> WeightId {
        let tol = self.ctable.tolerance().eps();
        // Snap to exact zero/one so the canonical constants are used.
        let re = if value.re.abs() <= tol { 0.0 } else { value.re };
        let im = if value.im.abs() <= tol { 0.0 } else { value.im };
        let (re, im) = self.ctable.intern_complex(Complex::new(re, im));
        WeightId { re, im }
    }

    /// The complex value of an interned weight.
    #[must_use]
    pub fn weight_value(&self, id: WeightId) -> Complex {
        self.ctable.complex(id.re, id.im)
    }

    /// Multiplies two interned weights.
    pub fn weight_mul(&mut self, a: WeightId, b: WeightId) -> WeightId {
        if a.is_zero() || b.is_zero() {
            return WeightId::ZERO;
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        let value = self.weight_value(a) * self.weight_value(b);
        self.weight(value)
    }

    // ----- vector nodes --------------------------------------------------

    /// The vector node stored under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the terminal node or not in this package.
    #[must_use]
    pub fn vnode(&self, id: VectorNodeId) -> &VectorNode {
        &self.vnodes[id.index()]
    }

    /// The matrix node stored under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the terminal node or not in this package.
    #[must_use]
    pub fn mnode(&self, id: MatrixNodeId) -> &MatrixNode {
        &self.mnodes[id.index()]
    }

    /// The variable (qubit) level of the node a vector edge points to, or
    /// `None` for the terminal.
    #[must_use]
    pub fn vedge_var(&self, edge: VectorEdge) -> Option<u16> {
        if edge.target.is_terminal() {
            None
        } else {
            Some(self.vnode(edge.target).var)
        }
    }

    /// Builds a terminal vector edge with the given complex weight.
    pub fn vector_terminal(&mut self, value: Complex) -> VectorEdge {
        let weight = self.weight(value);
        if weight.is_zero() {
            VectorEdge::ZERO
        } else {
            VectorEdge {
                target: VectorNodeId::TERMINAL,
                weight,
            }
        }
    }

    /// Multiplies an edge weight by a complex scalar, preserving canonical
    /// zero edges.
    pub fn scale_vedge(&mut self, edge: VectorEdge, factor: Complex) -> VectorEdge {
        if edge.is_zero() {
            return VectorEdge::ZERO;
        }
        let weight = self.weight(self.weight_value(edge.weight) * factor);
        if weight.is_zero() {
            VectorEdge::ZERO
        } else {
            VectorEdge {
                target: edge.target,
                weight,
            }
        }
    }

    /// Multiplies a matrix edge weight by a complex scalar.
    pub fn scale_medge(&mut self, edge: MatrixEdge, factor: Complex) -> MatrixEdge {
        if edge.is_zero() {
            return MatrixEdge::ZERO;
        }
        let weight = self.weight(self.weight_value(edge.weight) * factor);
        if weight.is_zero() {
            MatrixEdge::ZERO
        } else {
            MatrixEdge {
                target: edge.target,
                weight,
            }
        }
    }

    /// Creates (or reuses) a vector node at level `var` with the given
    /// successors and returns the normalized edge pointing to it.
    ///
    /// The successors' weights are normalized according to the package's
    /// [`Normalization`]; the factor pulled out is returned as the weight of
    /// the resulting edge.
    ///
    /// # Errors
    ///
    /// Fails with a [`DdError`] when the installed [`Governor`] interrupts
    /// the run (budget, deadline, cancellation) or the arena outgrows the
    /// `u32` id space; with the default unlimited governor only the latter
    /// is possible.
    pub fn make_vnode(
        &mut self,
        var: u16,
        zero: VectorEdge,
        one: VectorEdge,
    ) -> Result<VectorEdge, DdError> {
        self.governor.checkpoint()?;
        let w0 = if zero.is_zero() {
            Complex::ZERO
        } else {
            self.weight_value(zero.weight)
        };
        let w1 = if one.is_zero() {
            Complex::ZERO
        } else {
            self.weight_value(one.weight)
        };
        if w0.is_zero() && w1.is_zero() {
            return Ok(VectorEdge::ZERO);
        }

        let factor = match self.normalization {
            Normalization::LeftMost => {
                if !w0.is_zero() {
                    w0
                } else {
                    w1
                }
            }
            Normalization::TwoNorm => {
                let mag = (w0.norm_sqr() + w1.norm_sqr()).sqrt();
                let phase_source = if !w0.is_zero() { w0 } else { w1 };
                Complex::from_polar(mag, phase_source.arg())
            }
        };

        let nw0 = w0 / factor;
        let nw1 = w1 / factor;
        let zero_edge = self.canonical_child(zero, nw0);
        let one_edge = self.canonical_child(one, nw1);

        let node = VectorNode {
            var,
            children: [zero_edge, one_edge],
        };
        let id = self.intern_vnode_inner(node)?;
        Ok(VectorEdge {
            target: id,
            weight: self.weight(factor),
        })
    }

    /// Canonically interns a fully-normalized vector node, creating it on a
    /// unique-table miss.  This is the re-interning primitive of parallel
    /// construction: worker-private nodes are grafted into the master package
    /// through this method at layer sync points, in a fixed order, so the
    /// resulting arena ids are independent of worker count.
    ///
    /// The caller must pass children that are already canonical (normalized
    /// weights, zero edges collapsed); `make_vnode` is the normalizing
    /// front-end.
    pub(crate) fn intern_vnode(&mut self, node: VectorNode) -> Result<VectorNodeId, DdError> {
        self.governor.checkpoint()?;
        self.intern_vnode_inner(node)
    }

    /// Read-only unique-table lookup: the id of the canonical node
    /// structurally equal to `node`, or `None` without interning anything.
    /// Worker overlays call this through a shared reference to recognise
    /// frozen-master nodes mid-task without taking a lock (the master is not
    /// mutated during the parallel region); hit/miss counters are not
    /// touched, so concurrent probes stay free of data races.
    pub(crate) fn find_vnode(&self, node: &VectorNode) -> Option<VectorNodeId> {
        let hash = vnode_hash(node);
        self.vunique
            .find(hash, |id| self.vnodes[id as usize] == *node)
            .map(VectorNodeId)
    }

    fn intern_vnode_inner(&mut self, node: VectorNode) -> Result<VectorNodeId, DdError> {
        let hash = vnode_hash(&node);
        let vnodes = &self.vnodes;
        match self.vunique.find(hash, |id| vnodes[id as usize] == node) {
            Some(id) => {
                self.vunique_hits += 1;
                Ok(VectorNodeId(id))
            }
            None => {
                self.vunique_misses += 1;
                // A miss is the only place the arena grows, so budget
                // arithmetic runs here (two compares) rather than per call.
                if self.governor.is_limited() {
                    self.governor.check_budget(
                        (self.vnodes.len() + self.mnodes.len() + 1) as u64,
                        self.approx_allocated_bytes(),
                    )?;
                }
                let id = u32::try_from(self.vnodes.len())
                    .ok()
                    .filter(|&id| id != UNIQUE_EMPTY)
                    .ok_or(DdError::ArenaOverflow { arena: "vector" })?;
                self.vnodes.push(node);
                self.vunique.insert(hash, id);
                Ok(VectorNodeId(id))
            }
        }
    }

    fn canonical_child(&mut self, child: VectorEdge, normalized_weight: Complex) -> VectorEdge {
        let weight = self.weight(normalized_weight);
        if weight.is_zero() {
            VectorEdge::ZERO
        } else {
            VectorEdge {
                target: child.target,
                weight,
            }
        }
    }

    // ----- matrix nodes --------------------------------------------------

    /// Builds a terminal matrix edge with the given complex weight.
    pub fn matrix_terminal(&mut self, value: Complex) -> MatrixEdge {
        let weight = self.weight(value);
        if weight.is_zero() {
            MatrixEdge::ZERO
        } else {
            MatrixEdge {
                target: MatrixNodeId::TERMINAL,
                weight,
            }
        }
    }

    /// Creates (or reuses) a matrix node at level `var` with the four
    /// sub-blocks `children[2*row + col]`, returning the normalized edge.
    ///
    /// Matrix nodes always use left-most normalization (the 2-norm scheme is
    /// specific to sampling from state DDs).
    ///
    /// # Errors
    ///
    /// Fails with a [`DdError`] when the installed [`Governor`] interrupts
    /// the run or the arena outgrows the `u32` id space; see
    /// [`make_vnode`](DdPackage::make_vnode).
    pub fn make_mnode(
        &mut self,
        var: u16,
        children: [MatrixEdge; 4],
    ) -> Result<MatrixEdge, DdError> {
        self.governor.checkpoint()?;
        let mut weights = [Complex::ZERO; 4];
        for (w, e) in weights.iter_mut().zip(&children) {
            if !e.is_zero() {
                *w = self.weight_value(e.weight);
            }
        }
        let Some(factor) = weights.iter().copied().find(|w| !w.is_zero()) else {
            return Ok(MatrixEdge::ZERO);
        };

        let mut normalized = [MatrixEdge::ZERO; 4];
        for (i, (edge, w)) in children.iter().zip(&weights).enumerate() {
            let weight = self.weight(*w / factor);
            normalized[i] = if weight.is_zero() {
                MatrixEdge::ZERO
            } else {
                MatrixEdge {
                    target: edge.target,
                    weight,
                }
            };
        }

        let node = MatrixNode {
            var,
            children: normalized,
        };
        let hash = mnode_hash(&node);
        let mnodes = &self.mnodes;
        let id = match self.munique.find(hash, |id| mnodes[id as usize] == node) {
            Some(id) => {
                self.munique_hits += 1;
                MatrixNodeId(id)
            }
            None => {
                self.munique_misses += 1;
                if self.governor.is_limited() {
                    self.governor.check_budget(
                        (self.vnodes.len() + self.mnodes.len() + 1) as u64,
                        self.approx_allocated_bytes(),
                    )?;
                }
                let id = u32::try_from(self.mnodes.len())
                    .ok()
                    .filter(|&id| id != UNIQUE_EMPTY)
                    .ok_or(DdError::ArenaOverflow { arena: "matrix" })?;
                self.midentity.push(self.is_identity_node(&node));
                self.mnodes.push(node);
                self.munique.insert(hash, id);
                MatrixNodeId(id)
            }
        };
        Ok(MatrixEdge {
            target: id,
            weight: self.weight(factor),
        })
    }

    /// Whether `node` is an exact identity chain: diagonal blocks equal with
    /// weight one, off-diagonal blocks zero, and the shared child either the
    /// terminal or itself an identity chain one level down.
    fn is_identity_node(&self, node: &MatrixNode) -> bool {
        let diag = node.children[0];
        node.children[1].is_zero()
            && node.children[2].is_zero()
            && node.children[3] == diag
            && diag.weight.is_one()
            && (diag.target.is_terminal() || self.midentity[diag.target.index()])
    }

    /// Whether the matrix node `id` represents the exact identity operator
    /// over its levels (the terminal does not count — callers handle the
    /// terminal separately).
    #[inline]
    pub(crate) fn is_identity_mnode(&self, id: MatrixNodeId) -> bool {
        !id.is_terminal() && self.midentity[id.index()]
    }

    // ----- operator memoization ------------------------------------------

    /// Returns the memoized operator DD for `key`, building it with `build`
    /// on the first request.  Reuse is sound because matrix nodes are only
    /// ever dropped wholesale (by garbage collection, which clears this
    /// cache too).
    pub(crate) fn cached_operator(
        &mut self,
        key: OperatorKey,
        build: impl FnOnce(&mut Self) -> Result<MatrixEdge, DdError>,
    ) -> Result<MatrixEdge, DdError> {
        if let Some(&edge) = self.operator_cache.get(&key) {
            self.operator_hits += 1;
            return Ok(edge);
        }
        self.operator_misses += 1;
        // An interrupted build inserts nothing, so the memo only ever holds
        // results of completed constructions.
        let edge = build(self)?;
        if self.operator_cache.len() >= OPERATOR_CACHE_CAP {
            self.operator_evictions += self.operator_cache.len() as u64;
            self.operator_cache.clear();
        }
        self.operator_cache.insert(key, edge);
        Ok(edge)
    }

    // ----- compute-table maintenance --------------------------------------

    /// Clears the add/multiply compute caches and the operator memo (the
    /// unique tables and nodes are untouched).  O(1) for the node-level
    /// caches: each just bumps its generation stamp.
    pub fn clear_compute_tables(&mut self) {
        self.add_cache.clear();
        self.mv_cache.clear();
        self.madd_cache.clear();
        self.mm_cache.clear();
        self.operator_cache.clear();
    }

    // ----- garbage collection --------------------------------------------

    /// The number of nodes currently held in the vector arena, including
    /// nodes that are no longer reachable from any root.
    #[must_use]
    pub fn allocated_vector_nodes(&self) -> usize {
        self.vnodes.len()
    }

    /// The number of nodes currently held in the matrix arena.
    #[must_use]
    pub fn allocated_matrix_nodes(&self) -> usize {
        self.mnodes.len()
    }

    /// Counts the vector nodes reachable from `root` (excluding the
    /// terminal), i.e. the "size" column reported for DD-based sampling in
    /// Table I of the paper.
    #[must_use]
    pub fn reachable_vector_nodes(&self, root: VectorEdge) -> usize {
        let mut seen: FxHashSet<VectorNodeId> = FxHashSet::default();
        let mut stack = vec![root.target];
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            let node = self.vnode(id);
            for child in node.children {
                if !child.is_zero() {
                    stack.push(child.target);
                }
            }
        }
        seen.len()
    }

    /// Counts the matrix nodes reachable from `root` (excluding the
    /// terminal).
    #[must_use]
    pub fn reachable_matrix_nodes(&self, root: MatrixEdge) -> usize {
        let mut seen: FxHashSet<MatrixNodeId> = FxHashSet::default();
        let mut stack = vec![root.target];
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            let node = self.mnode(id);
            for child in node.children {
                if !child.is_zero() {
                    stack.push(child.target);
                }
            }
        }
        seen.len()
    }

    /// Reclaims every node not reachable from the given root edges and
    /// returns the updated roots.
    ///
    /// Garbage collection compacts the vector arena, rebuilds the unique
    /// table from the compacted arena (no per-entry map rewrites), drops the
    /// matrix arena, clears the compute caches and the operator memo (both
    /// may refer to collected nodes) and — new since the bounded-cache
    /// overhaul — rebuilds the canonical complex-value table so interned
    /// weights unreachable from the surviving arena are dropped too, keeping
    /// the value table from growing monotonically over long runs.
    ///
    /// Any [`VectorEdge`]/[`MatrixEdge`]/[`WeightId`] not reachable from a
    /// root is invalidated; the returned vector contains the remapped root
    /// edges in the same order as the input.
    pub fn collect_garbage(&mut self, roots: &[VectorEdge]) -> Vec<VectorEdge> {
        self.garbage_collections += 1;

        let old_nodes = std::mem::take(&mut self.vnodes);
        let fresh = CTable::with_tolerance(self.ctable.tolerance());
        let old_ctable = std::mem::replace(&mut self.ctable, fresh);

        let mut state = GcState {
            old_nodes: &old_nodes,
            old_ctable: &old_ctable,
            new_ctable: &mut self.ctable,
            node_remap: FxHashMap::default(),
            weight_remap: FxHashMap::default(),
            new_nodes: Vec::new(),
            table: UniqueTable::new(),
        };

        let mut new_roots = Vec::with_capacity(roots.len());
        for root in roots {
            if root.is_zero() {
                new_roots.push(VectorEdge::ZERO);
                continue;
            }
            let target = if root.target.is_terminal() {
                VectorNodeId::TERMINAL
            } else {
                state.rewrite(root.target.0)
            };
            let weight = state.remap_weight(root.weight);
            new_roots.push(if weight.is_zero() {
                VectorEdge::ZERO
            } else {
                VectorEdge { target, weight }
            });
        }

        let GcState {
            new_nodes, table, ..
        } = state;
        self.vnodes = new_nodes;
        self.vunique = table;

        // Matrix nodes are cheap to rebuild per gate; drop them all, along
        // with every cache that may point at collected nodes.
        self.mnodes.clear();
        self.midentity.clear();
        self.munique.clear();
        self.clear_compute_tables();
        new_roots
    }
}

/// Working state of one garbage-collection pass: rewrites the reachable
/// sub-DAG bottom-up into a fresh arena, re-interning every surviving edge
/// weight into a fresh value table and re-deduplicating nodes through a
/// fresh unique table (weight re-interning can merge representatives, which
/// can in turn make two previously distinct nodes equal).
struct GcState<'a> {
    old_nodes: &'a [VectorNode],
    old_ctable: &'a CTable,
    new_ctable: &'a mut CTable,
    node_remap: FxHashMap<u32, VectorNodeId>,
    weight_remap: FxHashMap<WeightId, WeightId>,
    new_nodes: Vec<VectorNode>,
    table: UniqueTable,
}

impl GcState<'_> {
    fn remap_weight(&mut self, weight: WeightId) -> WeightId {
        if let Some(&mapped) = self.weight_remap.get(&weight) {
            return mapped;
        }
        let value = self.old_ctable.complex(weight.re, weight.im);
        let (re, im) = self.new_ctable.intern_complex(value);
        let mapped = WeightId { re, im };
        self.weight_remap.insert(weight, mapped);
        mapped
    }

    /// Rewrites the sub-DAG under old node `id` into the fresh arena and
    /// returns its new id.
    ///
    /// Uses an explicit work stack instead of recursion (depth-first
    /// post-order: a node stays on the stack until both non-terminal
    /// children are remapped), so diagrams whose depth equals the qubit
    /// count — e.g. chain states over tens of thousands of qubits — cannot
    /// overflow the call stack during garbage collection.
    fn rewrite(&mut self, id: u32) -> VectorNodeId {
        let mut stack: Vec<u32> = vec![id];
        while let Some(&top) = stack.last() {
            if self.node_remap.contains_key(&top) {
                stack.pop();
                continue;
            }
            let node = self.old_nodes[top as usize];
            let mut children_ready = true;
            for child in node.children {
                if !child.is_zero()
                    && !child.target.is_terminal()
                    && !self.node_remap.contains_key(&child.target.0)
                {
                    stack.push(child.target.0);
                    children_ready = false;
                }
            }
            if !children_ready {
                continue;
            }

            let mut children = [VectorEdge::ZERO; 2];
            for (slot, child) in children.iter_mut().zip(node.children) {
                if child.is_zero() {
                    continue;
                }
                let target = if child.target.is_terminal() {
                    VectorNodeId::TERMINAL
                } else {
                    self.node_remap[&child.target.0]
                };
                let weight = self.remap_weight(child.weight);
                *slot = if weight.is_zero() {
                    VectorEdge::ZERO
                } else {
                    VectorEdge { target, weight }
                };
            }
            let new_node = VectorNode {
                var: node.var,
                children,
            };
            let hash = vnode_hash(&new_node);
            let new_nodes = &self.new_nodes;
            let new_id = match self
                .table
                .find(hash, |nid| new_nodes[nid as usize] == new_node)
            {
                Some(nid) => VectorNodeId(nid),
                None => {
                    // Infallible: the compacted arena only ever shrinks, and
                    // the input arena already fit in the u32 id space.
                    #[allow(clippy::expect_used)]
                    let nid = u32::try_from(self.new_nodes.len()).expect("arena overflow");
                    self.new_nodes.push(new_node);
                    self.table.insert(hash, nid);
                    VectorNodeId(nid)
                }
            };
            self.node_remap.insert(top, new_id);
            stack.pop();
        }
        self.node_remap[&id]
    }
}

impl Default for DdPackage {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::SQRT1_2;

    #[test]
    fn weight_interning_round_trips() {
        let mut p = DdPackage::new();
        let w = p.weight(Complex::new(0.25, -0.5));
        assert_eq!(p.weight_value(w), Complex::new(0.25, -0.5));
        assert!(p.weight(Complex::ZERO).is_zero());
        assert!(p.weight(Complex::ONE).is_one());
    }

    #[test]
    fn tiny_values_snap_to_zero() {
        let mut p = DdPackage::new();
        assert!(p.weight(Complex::new(1e-14, -1e-14)).is_zero());
    }

    #[test]
    fn weight_multiplication_shortcuts() {
        let mut p = DdPackage::new();
        let a = p.weight(Complex::new(0.5, 0.5));
        assert!(p.weight_mul(a, WeightId::ZERO).is_zero());
        assert_eq!(p.weight_mul(a, WeightId::ONE), a);
        let sq = p.weight_mul(a, a);
        assert!((p.weight_value(sq) - Complex::new(0.0, 0.5)).norm() < 1e-12);
    }

    #[test]
    fn make_vnode_shares_identical_nodes() {
        let mut p = DdPackage::new();
        let t = p.vector_terminal(Complex::ONE);
        let a = p.make_vnode(0, t, t).unwrap();
        let b = p.make_vnode(0, t, t).unwrap();
        assert_eq!(a.target, b.target);
        assert_eq!(p.allocated_vector_nodes(), 1);
    }

    #[test]
    fn make_vnode_zero_children_give_zero_edge() {
        let mut p = DdPackage::new();
        let e = p.make_vnode(2, VectorEdge::ZERO, VectorEdge::ZERO).unwrap();
        assert!(e.is_zero());
    }

    #[test]
    fn unique_table_survives_growth() {
        // Insert far more distinct nodes than the initial table size and
        // verify every one is still found (exercises open-addressing growth
        // and probe-chain correctness).
        // Weights 1.0, 1.001, ... are spaced far beyond the interning
        // tolerance even after normalization, so every node is distinct and
        // exactly reproducible.
        let weight = |i: usize| Complex::from_real(1.0 + i as f64 * 1e-3);
        let mut p = DdPackage::new();
        let t = p.vector_terminal(Complex::ONE);
        let mut edges = Vec::new();
        for i in 0..20_000 {
            let w = p.scale_vedge(t, weight(i));
            edges.push(p.make_vnode(0, w, t).unwrap());
        }
        assert_eq!(p.allocated_vector_nodes(), 20_000);
        // Re-creating each node hits the unique table instead of allocating.
        for (i, edge) in edges.iter().enumerate() {
            let w = p.scale_vedge(t, weight(i));
            let again = p.make_vnode(0, w, t).unwrap();
            assert_eq!(again.target, edge.target, "node {i} not shared");
        }
        assert_eq!(p.allocated_vector_nodes(), 20_000);
        assert_eq!(p.stats().vector_unique_hits, 20_000);
    }

    #[test]
    fn two_norm_normalization_makes_weights_unit_norm() {
        let mut p = DdPackage::with_normalization(Normalization::TwoNorm);
        let t = p.vector_terminal(Complex::ONE);
        let a = p.scale_vedge(t, Complex::new(3.0, 0.0));
        let b = p.scale_vedge(t, Complex::new(0.0, 4.0));
        let edge = p.make_vnode(0, a, b).unwrap();
        let node = p.vnode(edge.target);
        let w0 = p.weight_value(node.children[0].weight);
        let w1 = p.weight_value(node.children[1].weight);
        assert!((w0.norm_sqr() + w1.norm_sqr() - 1.0).abs() < 1e-12);
        // The factor carries the full magnitude (5) and the phase of w0.
        assert!((p.weight_value(edge.weight).norm() - 5.0).abs() < 1e-12);
        // First nonzero normalized weight is real positive.
        assert!(w0.im.abs() < 1e-12 && w0.re > 0.0);
    }

    #[test]
    fn leftmost_normalization_sets_first_weight_to_one() {
        let mut p = DdPackage::with_normalization(Normalization::LeftMost);
        let t = p.vector_terminal(Complex::ONE);
        let a = p.scale_vedge(t, Complex::from_real(SQRT1_2));
        let b = p.scale_vedge(t, Complex::from_real(-SQRT1_2));
        let edge = p.make_vnode(0, a, b).unwrap();
        let node = p.vnode(edge.target);
        assert!(node.children[0].weight.is_one());
        let w1 = p.weight_value(node.children[1].weight);
        assert!((w1 - Complex::from_real(-1.0)).norm() < 1e-12);
    }

    #[test]
    fn normalization_makes_scaled_subvectors_share_nodes() {
        for norm in [Normalization::LeftMost, Normalization::TwoNorm] {
            let mut p = DdPackage::with_normalization(norm);
            let t = p.vector_terminal(Complex::ONE);
            // (1, 2) and (3i, 6i) are scalar multiples of each other.
            let a1 = p.scale_vedge(t, Complex::from_real(1.0));
            let b1 = p.scale_vedge(t, Complex::from_real(2.0));
            let a2 = p.scale_vedge(t, Complex::new(0.0, 3.0));
            let b2 = p.scale_vedge(t, Complex::new(0.0, 6.0));
            let e1 = p.make_vnode(0, a1, b1).unwrap();
            let e2 = p.make_vnode(0, a2, b2).unwrap();
            assert_eq!(e1.target, e2.target, "normalization {norm:?}");
        }
    }

    #[test]
    fn make_mnode_normalizes_and_shares() {
        let mut p = DdPackage::new();
        let one = p.matrix_terminal(Complex::ONE);
        let half = p.matrix_terminal(Complex::from_real(0.5));
        let a = p
            .make_mnode(0, [half, MatrixEdge::ZERO, MatrixEdge::ZERO, half])
            .unwrap();
        let b = p
            .make_mnode(0, [one, MatrixEdge::ZERO, MatrixEdge::ZERO, one])
            .unwrap();
        // Both are scalar multiples of the identity block, so they share a node.
        assert_eq!(a.target, b.target);
        assert!((p.weight_value(a.weight).re - 0.5).abs() < 1e-12);
        assert!(p.make_mnode(1, [MatrixEdge::ZERO; 4]).unwrap().is_zero());
        let s = p.stats();
        assert_eq!(s.matrix_unique_hits, 1);
        assert_eq!(s.matrix_unique_misses, 1);
    }

    #[test]
    fn stats_report_counts() {
        let mut p = DdPackage::new();
        let t = p.vector_terminal(Complex::ONE);
        let _ = p.make_vnode(0, t, VectorEdge::ZERO).unwrap();
        let s = p.stats();
        assert_eq!(s.vector_nodes, 1);
        assert!(s.interned_values >= 2);
        assert_eq!(s.vector_unique_misses, 1);
    }

    #[test]
    fn compute_cache_is_lossy_and_generation_cleared() {
        let mut p = DdPackage::new();
        let t = p.vector_terminal(Complex::ONE);
        let a = p.make_vnode(0, t, VectorEdge::ZERO).unwrap();
        let b = p.make_vnode(0, VectorEdge::ZERO, t).unwrap();
        let key = (a, b);
        assert_eq!(p.add_cache.lookup(key), None);
        p.add_cache.insert(key, a);
        assert_eq!(p.add_cache.lookup(key), Some(a));
        // O(1) clear invalidates by generation stamp.
        p.clear_compute_tables();
        assert_eq!(p.add_cache.lookup(key), None);
        // Re-inserting after the clear works.
        p.add_cache.insert(key, b);
        assert_eq!(p.add_cache.lookup(key), Some(b));
        let counters = p.add_cache.counters();
        assert_eq!(counters.hits, 2);
        assert_eq!(counters.misses, 2);
    }

    #[test]
    fn compute_cache_capacity_zero_disables_caching() {
        let mut p = DdPackage::new();
        p.set_compute_cache_capacity(0);
        let t = p.vector_terminal(Complex::ONE);
        let a = p.make_vnode(0, t, VectorEdge::ZERO).unwrap();
        p.add_cache.insert((a, a), a);
        assert_eq!(p.add_cache.lookup((a, a)), None);
    }

    #[test]
    fn reachable_count_ignores_garbage() {
        let mut p = DdPackage::new();
        let t = p.vector_terminal(Complex::ONE);
        let keep = p.make_vnode(0, t, VectorEdge::ZERO).unwrap();
        let keep = p.make_vnode(1, keep, VectorEdge::ZERO).unwrap();
        // Create garbage.
        let _ = p.make_vnode(0, t, t).unwrap();
        assert_eq!(p.allocated_vector_nodes(), 3);
        assert_eq!(p.reachable_vector_nodes(keep), 2);
    }

    #[test]
    fn garbage_collection_compacts_and_remaps() {
        let mut p = DdPackage::new();
        let t = p.vector_terminal(Complex::ONE);
        let keep = p.make_vnode(0, t, VectorEdge::ZERO).unwrap();
        let keep = p.make_vnode(1, keep, t).unwrap();
        for i in 0..10 {
            let x = p.scale_vedge(t, Complex::from_real(f64::from(i) + 2.0));
            let _ = p.make_vnode(0, x, t).unwrap();
        }
        assert!(p.allocated_vector_nodes() > 2);
        let roots = p.collect_garbage(&[keep]);
        assert_eq!(p.allocated_vector_nodes(), 2);
        assert_eq!(p.reachable_vector_nodes(roots[0]), 2);
        // The structure survives: level-1 node over a level-0 node.
        let top = p.vnode(roots[0].target);
        assert_eq!(top.var, 1);
        assert_eq!(p.vnode(top.children[0].target).var, 0);
        assert_eq!(p.stats().garbage_collections, 1);
    }

    #[test]
    fn garbage_collection_drops_unreachable_interned_weights() {
        let mut p = DdPackage::new();
        let t = p.vector_terminal(Complex::ONE);
        let h = p.scale_vedge(t, Complex::from_real(SQRT1_2));
        let keep = p.make_vnode(0, h, h).unwrap();
        // A pile of garbage nodes with distinct weights bloats the table.
        for i in 0..5_000 {
            let w = p.scale_vedge(t, Complex::from_real(2.0 + f64::from(i) * 1e-3));
            let _ = p.make_vnode(0, w, t).unwrap();
        }
        let before = p.stats().interned_values;
        assert!(before > 5_000, "value table should have grown: {before}");
        let roots = p.collect_garbage(&[keep]);
        let after = p.stats().interned_values;
        assert!(
            after < 10,
            "value table must shrink to the surviving weights, got {after}"
        );
        // The kept state still reads back correctly.
        let node = p.vnode(roots[0].target);
        let w0 = p.weight_value(node.children[0].weight);
        let w1 = p.weight_value(node.children[1].weight);
        assert!((w0 - w1).norm() < 1e-12);
        assert!(
            (p.weight_value(roots[0].weight).norm() - 1.0).abs() < 1e-9,
            "kept root stays normalized"
        );
    }

    #[test]
    fn garbage_collection_survives_very_deep_diagrams() {
        // A chain diagram far deeper than the call stack could take if the
        // GC rewrite were recursive (the sampler-side traversals are
        // explicitly iterative for the same reason).
        let mut p = DdPackage::new();
        let mut edge = p.vector_terminal(Complex::ONE);
        let depth = 60_000u32;
        for var in 0..depth {
            let var = u16::try_from(var % u32::from(u16::MAX)).unwrap();
            edge = p.make_vnode(var, edge, VectorEdge::ZERO).unwrap();
        }
        let _garbage = p.make_vnode(0, edge, edge).unwrap();
        let roots = p.collect_garbage(&[edge]);
        assert_eq!(p.allocated_vector_nodes(), depth as usize);
        assert_eq!(p.reachable_vector_nodes(roots[0]), depth as usize);
    }

    #[test]
    fn unique_table_rebuild_after_gc_still_shares() {
        let mut p = DdPackage::new();
        let t = p.vector_terminal(Complex::ONE);
        let keep = p.make_vnode(0, t, VectorEdge::ZERO).unwrap();
        let _garbage = p.make_vnode(0, t, t).unwrap();
        let roots = p.collect_garbage(&[keep]);
        // Re-creating the kept node after GC must find it, not duplicate it.
        let t = p.vector_terminal(Complex::ONE);
        let again = p.make_vnode(0, t, VectorEdge::ZERO).unwrap();
        assert_eq!(again.target, roots[0].target);
        assert_eq!(p.allocated_vector_nodes(), 1);
    }

    #[test]
    fn operator_cache_memoizes_gate_builds() {
        let mut p = DdPackage::new();
        let key = OperatorKey::gate(2, OneQubitGate::H, Qubit(0), &[]);
        let mut builds = 0;
        let a = p
            .cached_operator(key.clone(), |p| {
                builds += 1;
                Ok(
                    crate::OperatorDd::controlled_gate(p, 2, OneQubitGate::H, Qubit(0), &[])?
                        .root(),
                )
            })
            .unwrap();
        let b = p
            .cached_operator(key, |p| {
                builds += 1;
                Ok(
                    crate::OperatorDd::controlled_gate(p, 2, OneQubitGate::H, Qubit(0), &[])?
                        .root(),
                )
            })
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(builds, 1, "second request must be served from the memo");
        let s = p.stats();
        assert_eq!(s.operator_cache.hits, 1);
        assert_eq!(s.operator_cache.misses, 1);
        // Distinct layouts get distinct entries.
        let key2 = OperatorKey::gate(2, OneQubitGate::H, Qubit(1), &[]);
        let c = p
            .cached_operator(key2, |p| {
                Ok(
                    crate::OperatorDd::controlled_gate(p, 2, OneQubitGate::H, Qubit(1), &[])?
                        .root(),
                )
            })
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn operator_cache_is_cleared_by_gc() {
        let mut p = DdPackage::new();
        let key = OperatorKey::gate(1, OneQubitGate::X, Qubit(0), &[]);
        let _ = p
            .cached_operator(key.clone(), |p| {
                Ok(
                    crate::OperatorDd::controlled_gate(p, 1, OneQubitGate::X, Qubit(0), &[])?
                        .root(),
                )
            })
            .unwrap();
        let t = p.vector_terminal(Complex::ONE);
        let keep = p.make_vnode(0, t, VectorEdge::ZERO).unwrap();
        let _ = p.collect_garbage(&[keep]);
        // The matrix arena is gone; the memo must rebuild, not return a
        // dangling edge.
        let mut rebuilt = false;
        let edge = p
            .cached_operator(key, |p| {
                rebuilt = true;
                Ok(
                    crate::OperatorDd::controlled_gate(p, 1, OneQubitGate::X, Qubit(0), &[])?
                        .root(),
                )
            })
            .unwrap();
        assert!(rebuilt, "memo must be cleared by garbage collection");
        assert!(!edge.is_zero());
    }
}

//! The decision-diagram package: arenas, unique tables, compute tables and
//! normalization.

use crate::edge::{MatrixEdge, MatrixNodeId, VectorEdge, VectorNodeId, WeightId};
use crate::node::{MatrixNode, VectorNode};
use mathkit::{CTable, Complex, FxHashMap, FxHashSet, Tolerance};

/// The edge-weight normalization scheme applied when creating vector nodes.
///
/// Normalization is what makes the representation canonical: structurally
/// equal sub-vectors must produce identical (node, weight) pairs so the
/// unique table can share them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Divide both outgoing weights by the left-most non-zero weight
    /// (classical QMDD normalization, Fig. 4b of the paper).
    LeftMost,
    /// Divide both outgoing weights by the 2-norm of the weight pair and pull
    /// the phase of the first non-zero weight into the incoming edge
    /// (the scheme proposed in Section IV-C, Fig. 4d of the paper).  After
    /// this normalization the squared magnitudes of the two outgoing weights
    /// sum to one, so they can be read directly as branch probabilities
    /// during sampling.
    #[default]
    TwoNorm,
}

/// Occupancy counters of a [`DdPackage`], used in experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DdStats {
    /// Vector nodes currently stored in the arena (including garbage).
    pub vector_nodes: usize,
    /// Matrix nodes currently stored in the arena (including garbage).
    pub matrix_nodes: usize,
    /// Distinct interned real values.
    pub interned_values: usize,
    /// Hits in the vector unique table.
    pub vector_unique_hits: u64,
    /// Misses (insertions) in the vector unique table.
    pub vector_unique_misses: u64,
    /// Hits in the add/multiply compute tables.
    pub compute_hits: u64,
    /// Misses in the add/multiply compute tables.
    pub compute_misses: u64,
    /// Number of garbage collections performed.
    pub garbage_collections: u64,
}

/// The arena owning every decision-diagram node together with the canonical
/// complex-value table, the unique tables and the compute tables.
///
/// All decision diagrams ([`StateDd`](crate::StateDd),
/// [`OperatorDd`](crate::OperatorDd)) are plain edge handles into a package;
/// the package must outlive them and be passed to every operation.
///
/// # Examples
///
/// ```
/// use dd::{DdPackage, Normalization};
///
/// let mut package = DdPackage::with_normalization(Normalization::LeftMost);
/// let state = dd::StateDd::zero_state(&mut package, 3);
/// assert_eq!(state.node_count(&package), 3);
/// ```
#[derive(Debug)]
pub struct DdPackage {
    vnodes: Vec<VectorNode>,
    mnodes: Vec<MatrixNode>,
    vunique: FxHashMap<VectorNode, VectorNodeId>,
    munique: FxHashMap<MatrixNode, MatrixNodeId>,
    ctable: CTable,
    normalization: Normalization,
    pub(crate) add_cache: FxHashMap<(VectorEdge, VectorEdge), VectorEdge>,
    pub(crate) mv_cache: FxHashMap<(MatrixNodeId, VectorNodeId), VectorEdge>,
    pub(crate) madd_cache: FxHashMap<(MatrixEdge, MatrixEdge), MatrixEdge>,
    pub(crate) mm_cache: FxHashMap<(MatrixNodeId, MatrixNodeId), MatrixEdge>,
    stats: DdStats,
}

impl DdPackage {
    /// Creates a package with the paper's proposed
    /// [2-norm normalization](Normalization::TwoNorm) and the default
    /// numerical tolerance.
    #[must_use]
    pub fn new() -> Self {
        Self::with_normalization(Normalization::default())
    }

    /// Creates a package using the given normalization scheme.
    #[must_use]
    pub fn with_normalization(normalization: Normalization) -> Self {
        Self::with_settings(normalization, Tolerance::default())
    }

    /// Creates a package with explicit normalization and interning tolerance.
    #[must_use]
    pub fn with_settings(normalization: Normalization, tolerance: Tolerance) -> Self {
        Self {
            vnodes: Vec::new(),
            mnodes: Vec::new(),
            vunique: FxHashMap::default(),
            munique: FxHashMap::default(),
            ctable: CTable::with_tolerance(tolerance),
            normalization,
            add_cache: FxHashMap::default(),
            mv_cache: FxHashMap::default(),
            madd_cache: FxHashMap::default(),
            mm_cache: FxHashMap::default(),
            stats: DdStats::default(),
        }
    }

    /// The normalization scheme used for vector nodes.
    #[must_use]
    pub fn normalization(&self) -> Normalization {
        self.normalization
    }

    /// Current occupancy statistics.
    #[must_use]
    pub fn stats(&self) -> DdStats {
        DdStats {
            vector_nodes: self.vnodes.len(),
            matrix_nodes: self.mnodes.len(),
            interned_values: self.ctable.len(),
            ..self.stats
        }
    }

    // ----- weights -------------------------------------------------------

    /// Interns a complex number as an edge weight.
    pub fn weight(&mut self, value: Complex) -> WeightId {
        let tol = self.ctable.tolerance().eps();
        // Snap to exact zero/one so the canonical constants are used.
        let re = if value.re.abs() <= tol { 0.0 } else { value.re };
        let im = if value.im.abs() <= tol { 0.0 } else { value.im };
        let (re, im) = self.ctable.intern_complex(Complex::new(re, im));
        WeightId { re, im }
    }

    /// The complex value of an interned weight.
    #[must_use]
    pub fn weight_value(&self, id: WeightId) -> Complex {
        self.ctable.complex(id.re, id.im)
    }

    /// Multiplies two interned weights.
    pub fn weight_mul(&mut self, a: WeightId, b: WeightId) -> WeightId {
        if a.is_zero() || b.is_zero() {
            return WeightId::ZERO;
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        let value = self.weight_value(a) * self.weight_value(b);
        self.weight(value)
    }

    // ----- vector nodes --------------------------------------------------

    /// The vector node stored under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the terminal node or not in this package.
    #[must_use]
    pub fn vnode(&self, id: VectorNodeId) -> &VectorNode {
        &self.vnodes[id.index()]
    }

    /// The matrix node stored under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the terminal node or not in this package.
    #[must_use]
    pub fn mnode(&self, id: MatrixNodeId) -> &MatrixNode {
        &self.mnodes[id.index()]
    }

    /// The variable (qubit) level of the node a vector edge points to, or
    /// `None` for the terminal.
    #[must_use]
    pub fn vedge_var(&self, edge: VectorEdge) -> Option<u16> {
        if edge.target.is_terminal() {
            None
        } else {
            Some(self.vnode(edge.target).var)
        }
    }

    /// Builds a terminal vector edge with the given complex weight.
    pub fn vector_terminal(&mut self, value: Complex) -> VectorEdge {
        let weight = self.weight(value);
        if weight.is_zero() {
            VectorEdge::ZERO
        } else {
            VectorEdge {
                target: VectorNodeId::TERMINAL,
                weight,
            }
        }
    }

    /// Multiplies an edge weight by a complex scalar, preserving canonical
    /// zero edges.
    pub fn scale_vedge(&mut self, edge: VectorEdge, factor: Complex) -> VectorEdge {
        if edge.is_zero() {
            return VectorEdge::ZERO;
        }
        let weight = self.weight(self.weight_value(edge.weight) * factor);
        if weight.is_zero() {
            VectorEdge::ZERO
        } else {
            VectorEdge {
                target: edge.target,
                weight,
            }
        }
    }

    /// Multiplies a matrix edge weight by a complex scalar.
    pub fn scale_medge(&mut self, edge: MatrixEdge, factor: Complex) -> MatrixEdge {
        if edge.is_zero() {
            return MatrixEdge::ZERO;
        }
        let weight = self.weight(self.weight_value(edge.weight) * factor);
        if weight.is_zero() {
            MatrixEdge::ZERO
        } else {
            MatrixEdge {
                target: edge.target,
                weight,
            }
        }
    }

    /// Creates (or reuses) a vector node at level `var` with the given
    /// successors and returns the normalized edge pointing to it.
    ///
    /// The successors' weights are normalized according to the package's
    /// [`Normalization`]; the factor pulled out is returned as the weight of
    /// the resulting edge.
    pub fn make_vnode(&mut self, var: u16, zero: VectorEdge, one: VectorEdge) -> VectorEdge {
        let w0 = if zero.is_zero() {
            Complex::ZERO
        } else {
            self.weight_value(zero.weight)
        };
        let w1 = if one.is_zero() {
            Complex::ZERO
        } else {
            self.weight_value(one.weight)
        };
        if w0.is_zero() && w1.is_zero() {
            return VectorEdge::ZERO;
        }

        let factor = match self.normalization {
            Normalization::LeftMost => {
                if !w0.is_zero() {
                    w0
                } else {
                    w1
                }
            }
            Normalization::TwoNorm => {
                let mag = (w0.norm_sqr() + w1.norm_sqr()).sqrt();
                let phase_source = if !w0.is_zero() { w0 } else { w1 };
                Complex::from_polar(mag, phase_source.arg())
            }
        };

        let nw0 = w0 / factor;
        let nw1 = w1 / factor;
        let zero_edge = self.canonical_child(zero, nw0);
        let one_edge = self.canonical_child(one, nw1);

        let node = VectorNode {
            var,
            children: [zero_edge, one_edge],
        };
        let id = if let Some(&id) = self.vunique.get(&node) {
            self.stats.vector_unique_hits += 1;
            id
        } else {
            self.stats.vector_unique_misses += 1;
            let id =
                VectorNodeId(u32::try_from(self.vnodes.len()).expect("vector node arena overflow"));
            self.vnodes.push(node);
            self.vunique.insert(node, id);
            id
        };
        VectorEdge {
            target: id,
            weight: self.weight(factor),
        }
    }

    fn canonical_child(&mut self, child: VectorEdge, normalized_weight: Complex) -> VectorEdge {
        let weight = self.weight(normalized_weight);
        if weight.is_zero() {
            VectorEdge::ZERO
        } else {
            VectorEdge {
                target: child.target,
                weight,
            }
        }
    }

    // ----- matrix nodes --------------------------------------------------

    /// Builds a terminal matrix edge with the given complex weight.
    pub fn matrix_terminal(&mut self, value: Complex) -> MatrixEdge {
        let weight = self.weight(value);
        if weight.is_zero() {
            MatrixEdge::ZERO
        } else {
            MatrixEdge {
                target: MatrixNodeId::TERMINAL,
                weight,
            }
        }
    }

    /// Creates (or reuses) a matrix node at level `var` with the four
    /// sub-blocks `children[2*row + col]`, returning the normalized edge.
    ///
    /// Matrix nodes always use left-most normalization (the 2-norm scheme is
    /// specific to sampling from state DDs).
    pub fn make_mnode(&mut self, var: u16, children: [MatrixEdge; 4]) -> MatrixEdge {
        let weights: Vec<Complex> = children
            .iter()
            .map(|e| {
                if e.is_zero() {
                    Complex::ZERO
                } else {
                    self.weight_value(e.weight)
                }
            })
            .collect();
        let Some(factor) = weights.iter().copied().find(|w| !w.is_zero()) else {
            return MatrixEdge::ZERO;
        };

        let mut normalized = [MatrixEdge::ZERO; 4];
        for (i, (edge, w)) in children.iter().zip(&weights).enumerate() {
            let weight = self.weight(*w / factor);
            normalized[i] = if weight.is_zero() {
                MatrixEdge::ZERO
            } else {
                MatrixEdge {
                    target: edge.target,
                    weight,
                }
            };
        }

        let node = MatrixNode {
            var,
            children: normalized,
        };
        let id = if let Some(&id) = self.munique.get(&node) {
            id
        } else {
            let id =
                MatrixNodeId(u32::try_from(self.mnodes.len()).expect("matrix node arena overflow"));
            self.mnodes.push(node);
            self.munique.insert(node, id);
            id
        };
        MatrixEdge {
            target: id,
            weight: self.weight(factor),
        }
    }

    // ----- compute-table statistics --------------------------------------

    pub(crate) fn note_compute_hit(&mut self) {
        self.stats.compute_hits += 1;
    }

    pub(crate) fn note_compute_miss(&mut self) {
        self.stats.compute_misses += 1;
    }

    /// Clears the add/multiply compute tables (the unique tables and nodes
    /// are untouched).
    pub fn clear_compute_tables(&mut self) {
        self.add_cache.clear();
        self.mv_cache.clear();
        self.madd_cache.clear();
        self.mm_cache.clear();
    }

    // ----- garbage collection --------------------------------------------

    /// The number of nodes currently held in the vector arena, including
    /// nodes that are no longer reachable from any root.
    #[must_use]
    pub fn allocated_vector_nodes(&self) -> usize {
        self.vnodes.len()
    }

    /// The number of nodes currently held in the matrix arena.
    #[must_use]
    pub fn allocated_matrix_nodes(&self) -> usize {
        self.mnodes.len()
    }

    /// Counts the vector nodes reachable from `root` (excluding the
    /// terminal), i.e. the "size" column reported for DD-based sampling in
    /// Table I of the paper.
    #[must_use]
    pub fn reachable_vector_nodes(&self, root: VectorEdge) -> usize {
        let mut seen: FxHashSet<VectorNodeId> = FxHashSet::default();
        let mut stack = vec![root.target];
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            let node = self.vnode(id);
            for child in node.children {
                if !child.is_zero() {
                    stack.push(child.target);
                }
            }
        }
        seen.len()
    }

    /// Counts the matrix nodes reachable from `root` (excluding the
    /// terminal).
    #[must_use]
    pub fn reachable_matrix_nodes(&self, root: MatrixEdge) -> usize {
        let mut seen: FxHashSet<MatrixNodeId> = FxHashSet::default();
        let mut stack = vec![root.target];
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            let node = self.mnode(id);
            for child in node.children {
                if !child.is_zero() {
                    stack.push(child.target);
                }
            }
        }
        seen.len()
    }

    /// Reclaims every node not reachable from the given root edges and
    /// returns the updated roots.
    ///
    /// Garbage collection compacts both arenas, rebuilds the unique tables
    /// and clears the compute tables (which may refer to collected nodes).
    /// Any [`VectorEdge`]/[`MatrixEdge`] not passed as a root is invalidated;
    /// the returned vector contains the remapped root edges in the same
    /// order as the input.
    pub fn collect_garbage(&mut self, roots: &[VectorEdge]) -> Vec<VectorEdge> {
        self.stats.garbage_collections += 1;

        // Map old ids to new ids, visiting children before parents.
        let mut remap: FxHashMap<VectorNodeId, VectorNodeId> = FxHashMap::default();
        let mut new_nodes: Vec<VectorNode> = Vec::new();

        // Depth-first post-order rewrite.
        fn rewrite(
            package_nodes: &[VectorNode],
            id: VectorNodeId,
            remap: &mut FxHashMap<VectorNodeId, VectorNodeId>,
            new_nodes: &mut Vec<VectorNode>,
        ) -> VectorNodeId {
            if id.is_terminal() {
                return id;
            }
            if let Some(&mapped) = remap.get(&id) {
                return mapped;
            }
            let node = package_nodes[id.index()];
            let mut children = node.children;
            for child in &mut children {
                if !child.is_zero() {
                    child.target = rewrite(package_nodes, child.target, remap, new_nodes);
                }
            }
            let new_id = VectorNodeId(u32::try_from(new_nodes.len()).expect("arena overflow"));
            new_nodes.push(VectorNode {
                var: node.var,
                children,
            });
            remap.insert(id, new_id);
            new_id
        }

        let mut new_roots = Vec::with_capacity(roots.len());
        for root in roots {
            let mut updated = *root;
            if !updated.is_zero() {
                updated.target = rewrite(&self.vnodes, updated.target, &mut remap, &mut new_nodes);
            }
            new_roots.push(updated);
        }

        self.vnodes = new_nodes;
        self.vunique = self
            .vnodes
            .iter()
            .enumerate()
            .map(|(i, node)| (*node, VectorNodeId(i as u32)))
            .collect();

        // Matrix nodes are cheap to rebuild per gate; drop them all.
        self.mnodes.clear();
        self.munique.clear();
        self.clear_compute_tables();
        new_roots
    }
}

impl Default for DdPackage {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::SQRT1_2;

    #[test]
    fn weight_interning_round_trips() {
        let mut p = DdPackage::new();
        let w = p.weight(Complex::new(0.25, -0.5));
        assert_eq!(p.weight_value(w), Complex::new(0.25, -0.5));
        assert!(p.weight(Complex::ZERO).is_zero());
        assert!(p.weight(Complex::ONE).is_one());
    }

    #[test]
    fn tiny_values_snap_to_zero() {
        let mut p = DdPackage::new();
        assert!(p.weight(Complex::new(1e-14, -1e-14)).is_zero());
    }

    #[test]
    fn weight_multiplication_shortcuts() {
        let mut p = DdPackage::new();
        let a = p.weight(Complex::new(0.5, 0.5));
        assert!(p.weight_mul(a, WeightId::ZERO).is_zero());
        assert_eq!(p.weight_mul(a, WeightId::ONE), a);
        let sq = p.weight_mul(a, a);
        assert!((p.weight_value(sq) - Complex::new(0.0, 0.5)).norm() < 1e-12);
    }

    #[test]
    fn make_vnode_shares_identical_nodes() {
        let mut p = DdPackage::new();
        let t = p.vector_terminal(Complex::ONE);
        let a = p.make_vnode(0, t, t);
        let b = p.make_vnode(0, t, t);
        assert_eq!(a.target, b.target);
        assert_eq!(p.allocated_vector_nodes(), 1);
    }

    #[test]
    fn make_vnode_zero_children_give_zero_edge() {
        let mut p = DdPackage::new();
        let e = p.make_vnode(2, VectorEdge::ZERO, VectorEdge::ZERO);
        assert!(e.is_zero());
    }

    #[test]
    fn two_norm_normalization_makes_weights_unit_norm() {
        let mut p = DdPackage::with_normalization(Normalization::TwoNorm);
        let t = p.vector_terminal(Complex::ONE);
        let a = p.scale_vedge(t, Complex::new(3.0, 0.0));
        let b = p.scale_vedge(t, Complex::new(0.0, 4.0));
        let edge = p.make_vnode(0, a, b);
        let node = p.vnode(edge.target);
        let w0 = p.weight_value(node.children[0].weight);
        let w1 = p.weight_value(node.children[1].weight);
        assert!((w0.norm_sqr() + w1.norm_sqr() - 1.0).abs() < 1e-12);
        // The factor carries the full magnitude (5) and the phase of w0.
        assert!((p.weight_value(edge.weight).norm() - 5.0).abs() < 1e-12);
        // First nonzero normalized weight is real positive.
        assert!(w0.im.abs() < 1e-12 && w0.re > 0.0);
    }

    #[test]
    fn leftmost_normalization_sets_first_weight_to_one() {
        let mut p = DdPackage::with_normalization(Normalization::LeftMost);
        let t = p.vector_terminal(Complex::ONE);
        let a = p.scale_vedge(t, Complex::from_real(SQRT1_2));
        let b = p.scale_vedge(t, Complex::from_real(-SQRT1_2));
        let edge = p.make_vnode(0, a, b);
        let node = p.vnode(edge.target);
        assert!(node.children[0].weight.is_one());
        let w1 = p.weight_value(node.children[1].weight);
        assert!((w1 - Complex::from_real(-1.0)).norm() < 1e-12);
    }

    #[test]
    fn normalization_makes_scaled_subvectors_share_nodes() {
        for norm in [Normalization::LeftMost, Normalization::TwoNorm] {
            let mut p = DdPackage::with_normalization(norm);
            let t = p.vector_terminal(Complex::ONE);
            // (1, 2) and (3i, 6i) are scalar multiples of each other.
            let a1 = p.scale_vedge(t, Complex::from_real(1.0));
            let b1 = p.scale_vedge(t, Complex::from_real(2.0));
            let a2 = p.scale_vedge(t, Complex::new(0.0, 3.0));
            let b2 = p.scale_vedge(t, Complex::new(0.0, 6.0));
            let e1 = p.make_vnode(0, a1, b1);
            let e2 = p.make_vnode(0, a2, b2);
            assert_eq!(e1.target, e2.target, "normalization {norm:?}");
        }
    }

    #[test]
    fn make_mnode_normalizes_and_shares() {
        let mut p = DdPackage::new();
        let one = p.matrix_terminal(Complex::ONE);
        let half = p.matrix_terminal(Complex::from_real(0.5));
        let a = p.make_mnode(0, [half, MatrixEdge::ZERO, MatrixEdge::ZERO, half]);
        let b = p.make_mnode(0, [one, MatrixEdge::ZERO, MatrixEdge::ZERO, one]);
        // Both are scalar multiples of the identity block, so they share a node.
        assert_eq!(a.target, b.target);
        assert!((p.weight_value(a.weight).re - 0.5).abs() < 1e-12);
        assert!(p.make_mnode(1, [MatrixEdge::ZERO; 4]).is_zero());
    }

    #[test]
    fn stats_report_counts() {
        let mut p = DdPackage::new();
        let t = p.vector_terminal(Complex::ONE);
        let _ = p.make_vnode(0, t, VectorEdge::ZERO);
        let s = p.stats();
        assert_eq!(s.vector_nodes, 1);
        assert!(s.interned_values >= 2);
        assert_eq!(s.vector_unique_misses, 1);
    }

    #[test]
    fn reachable_count_ignores_garbage() {
        let mut p = DdPackage::new();
        let t = p.vector_terminal(Complex::ONE);
        let keep = p.make_vnode(0, t, VectorEdge::ZERO);
        let keep = p.make_vnode(1, keep, VectorEdge::ZERO);
        // Create garbage.
        let _ = p.make_vnode(0, t, t);
        assert_eq!(p.allocated_vector_nodes(), 3);
        assert_eq!(p.reachable_vector_nodes(keep), 2);
    }

    #[test]
    fn garbage_collection_compacts_and_remaps() {
        let mut p = DdPackage::new();
        let t = p.vector_terminal(Complex::ONE);
        let keep = p.make_vnode(0, t, VectorEdge::ZERO);
        let keep = p.make_vnode(1, keep, t);
        for i in 0..10 {
            let x = p.scale_vedge(t, Complex::from_real(f64::from(i) + 2.0));
            let _ = p.make_vnode(0, x, t);
        }
        assert!(p.allocated_vector_nodes() > 2);
        let roots = p.collect_garbage(&[keep]);
        assert_eq!(p.allocated_vector_nodes(), 2);
        assert_eq!(p.reachable_vector_nodes(roots[0]), 2);
        // The structure survives: level-1 node over a level-0 node.
        let top = p.vnode(roots[0].target);
        assert_eq!(top.var, 1);
        assert_eq!(p.vnode(top.children[0].target).var, 0);
        assert_eq!(p.stats().garbage_collections, 1);
    }
}
